/**
 * @file
 * microlib_cliff: search-driven sensitivity studies from the CLI.
 *
 * Where microlib_sweep enumerates a grid, microlib_cliff *searches*
 * it: given a `.sweep` spec and two mechanisms, it bisects along a
 * declared numeric axis (or every searchable axis with --all-axes)
 * to the tightest adjacent pair of configurations where the two
 * mechanisms' speedup ranking flips, and emits each cliff as a
 * minimal flip-witness `.sweep` file plus a JSON summary
 * (docs/CLIFF_FINDER.md).
 *
 * Every probe is an ordinary single-variant sweep driven through the
 * same engine/store/backend stack as microlib_sweep, so the familiar
 * flags compose: --store dedupes probes by fingerprint (a re-run
 * against a warm store executes zero tasks and reproduces the same
 * witnesses byte-for-byte — CI diffs exactly that), and --backend
 * process runs each probe under the fault supervisor, so a crashing
 * probe quarantines its poison task and is reported FAULTED without
 * killing the search of the other axes.
 *
 *   microlib_cliff --spec examples/cliff.sweep --mechanisms SP,GHB \
 *       --all-axes --store cliff.store --witness-dir witness --report
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/cliff_finder.hh"
#include "core/process_shard_backend.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/sweep_spec.hh"
#include "sim/version.hh"

using namespace microlib;

namespace
{

struct CliffArgs
{
    std::string spec_path;
    std::string mech_a, mech_b;
    std::vector<std::string> axes; // --axis, repeatable
    bool all_axes = false;
    std::string witness_dir;
    std::string store_path;
    std::string progress_path;
    std::string trace_dir;
    std::string report_path; // "-" = stdout
    bool do_report = false;
    unsigned threads = 0;
    bool use_process_backend = false;
    std::size_t process_shards = 2;
    double heartbeat_timeout = 0.0;
    std::size_t worker_retries = 2;
    std::size_t quarantine_strikes = 3;
    bool verbose = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --spec FILE --mechanisms A,B (--axis KEY | "
        "--all-axes) [options]\n"
        "\n"
        "Search description:\n"
        "  --spec FILE         the base .sweep spec; each declared\n"
        "                      axis's smallest and largest values are\n"
        "                      that axis's search endpoints\n"
        "  --mechanisms A,B    the mechanism pair whose ranking flip\n"
        "                      to bisect to (Base is added to probes\n"
        "                      automatically for speedups)\n"
        "  --axis KEY          search this declared axis (repeatable)\n"
        "  --all-axes          search every searchable declared axis\n"
        "\n"
        "Artifacts:\n"
        "  --witness-dir DIR   write per-axis flip-witness .sweep\n"
        "                      files and .json summaries into DIR\n"
        "  --report [PATH]     write the cliff report table to PATH\n"
        "                      (stdout if omitted or '-')\n"
        "\n"
        "Execution (as in microlib_sweep):\n"
        "  --store PATH        append-only result store; probes are\n"
        "                      deduped by config fingerprint, so a\n"
        "                      re-run executes only unseen points\n"
        "  --backend process   run each probe over forked shard\n"
        "                      workers under the fault supervisor\n"
        "  --shards N          worker count for --backend process\n"
        "                      (default 2)\n"
        "  --heartbeat-timeout SEC   stall detection (default off)\n"
        "  --retries N         worker restarts per shard (default 2)\n"
        "  --strikes K         failures before a task quarantines\n"
        "                      (default 3; a faulted probe marks the\n"
        "                      axis FAULTED, other axes continue)\n"
        "  --threads N         engine worker threads\n"
        "  --progress PATH     JSONL progress stream (per probe)\n"
        "  --trace-dir DIR     persistent trace arena shared across\n"
        "                      probes and with microlib_sweep\n"
        "                      (default: MICROLIB_TRACE_DIR)\n"
        "  --verbose           log each probe\n"
        "  --version           print version + schema tuple and exit\n",
        argv0);
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::uint64_t
parseU64(const char *flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: not a number: %s\n", flag,
                     value.c_str());
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    CliffArgs args;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&](const char *name) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--version") {
            std::printf("%s\n",
                        versionString("microlib_cliff").c_str());
            return 0;
        } else if (flag == "--spec") {
            args.spec_path = value("--spec");
        } else if (flag == "--mechanisms") {
            const auto pair = splitList(value("--mechanisms"));
            if (pair.size() != 2) {
                std::fprintf(stderr,
                             "--mechanisms wants exactly A,B\n");
                return 2;
            }
            args.mech_a = pair[0];
            args.mech_b = pair[1];
        } else if (flag == "--axis") {
            args.axes.push_back(value("--axis"));
        } else if (flag == "--all-axes") {
            args.all_axes = true;
        } else if (flag == "--witness-dir") {
            args.witness_dir = value("--witness-dir");
        } else if (flag == "--store") {
            args.store_path = value("--store");
        } else if (flag == "--progress") {
            args.progress_path = value("--progress");
        } else if (flag == "--trace-dir") {
            args.trace_dir = value("--trace-dir");
        } else if (flag == "--threads") {
            args.threads = static_cast<unsigned>(
                parseU64("--threads", value("--threads")));
        } else if (flag == "--backend") {
            const std::string v = value("--backend");
            if (v == "process") {
                args.use_process_backend = true;
            } else if (v != "thread") {
                std::fprintf(stderr,
                             "--backend wants 'thread' or 'process'\n");
                return 2;
            }
        } else if (flag == "--shards") {
            args.process_shards = static_cast<std::size_t>(
                parseU64("--shards", value("--shards")));
        } else if (flag == "--heartbeat-timeout") {
            const std::string v = value("--heartbeat-timeout");
            char *end = nullptr;
            args.heartbeat_timeout = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                args.heartbeat_timeout < 0) {
                std::fprintf(stderr, "--heartbeat-timeout wants "
                                     "seconds >= 0\n");
                return 2;
            }
        } else if (flag == "--retries") {
            args.worker_retries = static_cast<std::size_t>(
                parseU64("--retries", value("--retries")));
        } else if (flag == "--strikes") {
            args.quarantine_strikes = static_cast<std::size_t>(
                parseU64("--strikes", value("--strikes")));
        } else if (flag == "--report") {
            args.do_report = true;
            // A lone "-" is the documented explicit-stdout spelling,
            // not a flag — consume it.
            if (i + 1 < argc && (argv[i + 1][0] != '-' ||
                                 std::strcmp(argv[i + 1], "-") == 0))
                args.report_path = argv[++i];
        } else if (flag == "--verbose") {
            args.verbose = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (args.spec_path.empty() || args.mech_a.empty()) {
        std::fprintf(stderr,
                     "--spec and --mechanisms are required\n");
        usage(argv[0]);
        return 2;
    }
    if (args.axes.empty() && !args.all_axes) {
        std::fprintf(stderr, "pick --axis KEY or --all-axes\n");
        return 2;
    }
    if (args.use_process_backend && args.store_path.empty()) {
        std::fprintf(stderr, "--backend process needs --store\n");
        return 2;
    }

    SweepSpec spec;
    std::string error;
    if (!SweepSpec::load(args.spec_path, spec, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    const auto &mechs = spec.mechanisms();
    for (const auto &m : {args.mech_a, args.mech_b}) {
        if (std::find(mechs.begin(), mechs.end(), m) == mechs.end() &&
            m != "Base")
            std::fprintf(stderr,
                         "note: mechanism %s is not in the spec's "
                         "mech line (probes add it)\n",
                         m.c_str());
    }

    std::unique_ptr<ResultStore> store;
    if (!args.store_path.empty())
        store = std::make_unique<ResultStore>(args.store_path);

    EngineOptions opts;
    opts.threads = args.threads;
    opts.verbose = false;
    opts.store = store.get();
    opts.progress_path = args.progress_path;
    opts.trace_dir = args.trace_dir;
    opts.heartbeat_timeout = args.heartbeat_timeout;
    opts.max_worker_retries = args.worker_retries;
    opts.quarantine_strikes = args.quarantine_strikes;

    ProcessShardBackend process_backend(
        ProcessShardOptions{args.process_shards, args.threads, false});
    if (args.use_process_backend) {
        opts.backend = &process_backend;
        opts.threads = 1; // the parent only forks, waits and merges
    }

    ExperimentEngine engine(opts);
    CliffFinderOptions copts;
    copts.witness_dir = args.witness_dir;
    copts.verbose = args.verbose;
    CliffFinder finder(engine, spec, copts);

    std::vector<std::string> axes = args.axes;
    if (args.all_axes) {
        axes = finder.searchableAxes();
        // Say which declared axes the search skips and why — a
        // silently missing row reads as "no cliff" when the axis was
        // never searched at all.
        for (const auto &a : spec.axes()) {
            std::string why;
            if (!finder.searchable(a.key, &why))
                std::fprintf(stderr, "skipping %s\n", why.c_str());
        }
        if (axes.empty()) {
            std::fprintf(stderr,
                         "no searchable axes in %s\n",
                         args.spec_path.c_str());
            return 2;
        }
    } else {
        for (const auto &key : axes) {
            if (!finder.searchable(key, &error)) {
                std::fprintf(stderr, "%s\n", error.c_str());
                return 2;
            }
        }
    }

    std::vector<CliffResult> results;
    try {
        for (const auto &key : axes)
            results.push_back(
                finder.find(args.mech_a, args.mech_b, key));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cliff search failed: %s\n", e.what());
        return 1;
    }

    bool any_fault = false;
    std::size_t executed = 0, resumed = 0;
    for (const auto &r : results) {
        executed += r.executed;
        resumed += r.resumed;
        any_fault |= r.status == CliffStatus::Faulted;
        const std::string lo =
            r.lo.evaluated ? std::to_string(r.lo.value) : "-";
        const std::string hi =
            r.hi.evaluated ? std::to_string(r.hi.value) : "-";
        std::printf("%s: %s %s..%s (%zu probe(s), executed %zu, "
                    "resumed %zu)%s\n",
                    r.axis.c_str(), cliffStatusName(r.status),
                    lo.c_str(), hi.c_str(), r.probes.size(),
                    r.executed, r.resumed,
                    r.witness_path.empty()
                        ? ""
                        : (" witness " + r.witness_path).c_str());
    }
    std::printf("cliff search %s vs %s: %zu axis/axes, executed %zu, "
                "resumed %zu\n",
                args.mech_a.c_str(), args.mech_b.c_str(),
                results.size(), executed, resumed);

    if (args.do_report) {
        const std::string text = CliffFinder::report(results).str();
        if (args.report_path.empty() || args.report_path == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(args.report_path.c_str(), "w");
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             args.report_path.c_str());
                return 1;
            }
            std::fputs(text.c_str(), f);
            std::fclose(f);
            std::printf("report written to %s\n",
                        args.report_path.c_str());
        }
    }
    // Mirror microlib_sweep's status contract: 3 = completed but at
    // least one axis FAULTED (a poison task was quarantined), so
    // scripts never mistake a partial report for a clean one.
    return any_fault ? 3 : 0;
}
