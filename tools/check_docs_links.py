#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/*.md.

Checks every markdown link target that is not an external URL or a
pure in-page anchor: the referenced file must exist relative to the
linking file. Run from anywhere:

    python3 tools/check_docs_links.py

Exit code 0 = all links resolve; 1 = dead links (listed on stderr).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def check_file(md: Path) -> list:
    dead = []
    text = md.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (md.parent / path).exists():
            dead.append((md, target))
    return dead


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = [root / "README.md"] + sorted((root / "docs").glob("**/*.md"))
    files = [f for f in files if f.exists()]
    dead = [d for f in files for d in check_file(f)]
    for md, target in dead:
        print(f"dead link in {md.relative_to(root)}: ({target})",
              file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL, ' + str(len(dead)) + ' dead link(s)' if dead else 'all links resolve'}")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
