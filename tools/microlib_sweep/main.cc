/**
 * @file
 * microlib_sweep: the sweep driver cluster launchers call.
 *
 * Describes a (benchmark x mechanism) sweep as a deterministic
 * TaskPlan and either prints it (--plan), runs it — whole, as one
 * shard (--shard i/N), or fanned out over forked shard workers
 * (--backend process) — or merges per-shard result stores
 * (--merge). Because every process that builds the same plan agrees
 * on task indices and fingerprints, disjoint shards can run on
 * separate hosts against separate stores and be concatenated into a
 * result byte-identical to a single-process run:
 *
 *   # one host, the reference
 *   microlib_sweep $M --store single.store --report single.txt
 *
 *   # two hosts, then combine
 *   microlib_sweep $M --shard 0/2 --store s0.store
 *   microlib_sweep $M --shard 1/2 --store s1.store
 *   microlib_sweep $M --store merged.store \
 *       --merge s0.store s1.store --report merged.txt
 *   diff single.txt merged.txt        # byte-identical
 *
 * A rerun against an existing store resumes: only missing tasks
 * execute (a killed shard picks up exactly where it died). See
 * docs/SHARDING.md for the full walkthrough.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/process_shard_backend.hh"
#include "core/registry.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/task_plan.hh"
#include "trace/spec_suite.hh"

using namespace microlib;

namespace
{

struct SweepArgs
{
    std::vector<std::string> benchmarks = {"swim", "gzip", "mcf",
                                           "crafty"};
    std::vector<std::string> mechanisms; // empty = all (Base + 12)
    std::uint64_t trace_length = 500'000;
    std::uint64_t interval = 0; // 0 = trace_length
    bool arbitrary = false;
    std::uint64_t arb_skip = 0;
    std::uint64_t arb_length = 0;
    unsigned threads = 0;
    ShardSpec shard;
    std::string store_path;
    std::string progress_path;
    std::string report_path; // "-" = stdout
    std::size_t trace_budget_mb = 0;
    bool use_process_backend = false;
    std::size_t process_shards = 2;
    bool print_plan = false;
    bool do_report = false;
    bool verbose = false;
    std::vector<std::string> merge_inputs;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] [--merge STORE...]\n"
        "\n"
        "Sweep description (must be identical across shards):\n"
        "  --bench LIST        comma-separated benchmarks, or 'all'\n"
        "                      (default: swim,gzip,mcf,crafty)\n"
        "  --mech LIST         comma-separated mechanisms, or 'all'\n"
        "                      (default: all = Base + 12 mechanisms)\n"
        "  --trace N           SimPoint window length (default 500000)\n"
        "  --interval N        SimPoint interval (default: --trace)\n"
        "  --arbitrary S,L     arbitrary window: skip S, length L\n"
        "\n"
        "Execution:\n"
        "  --store PATH        append-only result store (resume +\n"
        "                      shard hand-off)\n"
        "  --shard I/N         run only tasks with index %% N == I\n"
        "  --backend process   fork shard workers in this invocation\n"
        "  --shards N          worker count for --backend process\n"
        "                      (default 2)\n"
        "  --threads N         engine worker threads (default:\n"
        "                      MICROLIB_THREADS or hardware)\n"
        "  --trace-budget-mb N trace-cache byte budget\n"
        "  --progress PATH     JSONL progress stream (per shard:\n"
        "                      PATH.shard<i>)\n"
        "  --verbose           per-run progress lines\n"
        "\n"
        "Modes:\n"
        "  --plan              print the fingerprinted task list and\n"
        "                      exit (no simulation)\n"
        "  --merge STORE...    merge the given store files into\n"
        "                      --store before anything else runs\n"
        "  --report [PATH]     write the IPC matrix report (stdout\n"
        "                      if PATH is omitted or '-')\n",
        argv0);
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::uint64_t
parseU64(const char *flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: not a number: %s\n", flag,
                     value.c_str());
        std::exit(2);
    }
    return v;
}

/**
 * Deterministic matrix report: fixed-width, fixed-precision, no
 * timestamps or host names — so a sharded-and-merged sweep's report
 * can be `diff`ed byte-for-byte against a single-process run's.
 */
void
writeReport(std::FILE *out, const MatrixResult &res)
{
    std::fprintf(out, "# microlib_sweep IPC matrix (%zu mechanism(s) "
                      "x %zu benchmark(s))\n",
                 res.mechanisms.size(), res.benchmarks.size());
    std::fprintf(out, "%-8s", "");
    for (const auto &b : res.benchmarks)
        std::fprintf(out, "%12s", b.c_str());
    std::fprintf(out, "\n");
    for (std::size_t m = 0; m < res.mechanisms.size(); ++m) {
        std::fprintf(out, "%-8s", res.mechanisms[m].c_str());
        for (std::size_t b = 0; b < res.benchmarks.size(); ++b)
            std::fprintf(out, "%12.6f", res.ipc[m][b]);
        std::fprintf(out, "\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    SweepArgs args;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&](const char *name) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--bench") {
            const std::string v = value("--bench");
            args.benchmarks =
                v == "all" ? specBenchmarkNames() : splitList(v);
        } else if (flag == "--mech") {
            const std::string v = value("--mech");
            args.mechanisms =
                v == "all" ? allMechanismNames() : splitList(v);
        } else if (flag == "--trace") {
            args.trace_length = parseU64("--trace", value("--trace"));
        } else if (flag == "--interval") {
            args.interval = parseU64("--interval", value("--interval"));
        } else if (flag == "--arbitrary") {
            const auto parts = splitList(value("--arbitrary"));
            if (parts.size() != 2) {
                std::fprintf(stderr, "--arbitrary wants S,L\n");
                return 2;
            }
            args.arbitrary = true;
            args.arb_skip = parseU64("--arbitrary", parts[0]);
            args.arb_length = parseU64("--arbitrary", parts[1]);
        } else if (flag == "--threads") {
            args.threads = static_cast<unsigned>(
                parseU64("--threads", value("--threads")));
        } else if (flag == "--shard") {
            if (!ShardSpec::parse(value("--shard"), args.shard)) {
                std::fprintf(stderr,
                             "--shard wants I/N with 0 <= I < N\n");
                return 2;
            }
        } else if (flag == "--store") {
            args.store_path = value("--store");
        } else if (flag == "--progress") {
            args.progress_path = value("--progress");
        } else if (flag == "--trace-budget-mb") {
            args.trace_budget_mb = static_cast<std::size_t>(parseU64(
                "--trace-budget-mb", value("--trace-budget-mb")));
        } else if (flag == "--backend") {
            const std::string v = value("--backend");
            if (v == "process") {
                args.use_process_backend = true;
            } else if (v != "thread") {
                std::fprintf(stderr,
                             "--backend wants 'thread' or 'process'\n");
                return 2;
            }
        } else if (flag == "--shards") {
            args.process_shards = static_cast<std::size_t>(
                parseU64("--shards", value("--shards")));
        } else if (flag == "--plan") {
            args.print_plan = true;
        } else if (flag == "--verbose") {
            args.verbose = true;
        } else if (flag == "--report") {
            args.do_report = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                args.report_path = argv[++i];
        } else if (flag == "--merge") {
            while (i + 1 < argc && argv[i + 1][0] != '-')
                args.merge_inputs.push_back(argv[++i]);
            if (args.merge_inputs.empty()) {
                std::fprintf(stderr,
                             "--merge wants store file(s)\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (args.mechanisms.empty())
        args.mechanisms = allMechanismNames();

    RunConfig cfg;
    if (args.arbitrary) {
        cfg.selection = TraceSelection::Arbitrary;
        cfg.scale.arbitrary_skip = args.arb_skip;
        cfg.scale.arbitrary_length = args.arb_length;
    } else {
        cfg.scale.simpoint_trace = args.trace_length;
        cfg.scale.simpoint_interval =
            args.interval ? args.interval : args.trace_length;
    }

    const TaskPlan plan(args.mechanisms, args.benchmarks, cfg);

    if (args.print_plan) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            std::printf("%s\n",
                        plan.describe(i, args.shard).c_str());
        return 0;
    }

    if ((args.use_process_backend || !args.merge_inputs.empty()) &&
        args.store_path.empty()) {
        std::fprintf(stderr, "--backend process and --merge need "
                             "--store\n");
        return 2;
    }

    std::unique_ptr<ResultStore> store;
    if (!args.store_path.empty())
        store = std::make_unique<ResultStore>(args.store_path);

    if (!args.merge_inputs.empty()) {
        std::size_t merged = 0;
        for (const auto &input : args.merge_inputs)
            merged += store->merge(input);
        std::printf("merged %zu record(s) from %zu store(s) into %s "
                    "(%zu total)\n",
                    merged, args.merge_inputs.size(),
                    args.store_path.c_str(), store->size());
    }

    EngineOptions opts;
    opts.threads = args.threads;
    opts.verbose = args.verbose;
    opts.store = store.get();
    opts.shard = args.shard;
    opts.progress_path = args.progress_path;
    opts.trace_budget_bytes = args.trace_budget_mb * 1024 * 1024;

    ProcessShardBackend process_backend(
        ProcessShardOptions{args.process_shards, args.threads, false});
    if (args.use_process_backend) {
        opts.backend = &process_backend;
        // The parent only forks, waits and merges: a worker pool
        // would sit idle, and fork() from a single-threaded parent
        // sidesteps the multithreaded-fork hazards entirely.
        // --threads applies to each shard worker instead.
        opts.threads = 1;
    }

    ExperimentEngine engine(opts);
    const MatrixResult res = engine.run(args.mechanisms,
                                        args.benchmarks, cfg);
    const RunCounters counts = engine.lastRun();
    std::printf("sweep %s: %zu task(s): executed %zu, resumed %zu, "
                "skipped-by-shard %zu\n",
                args.shard.whole()
                    ? (args.use_process_backend ? "(process shards)"
                                                : "(whole plan)")
                    : ("shard " + args.shard.str()).c_str(),
                plan.size(), counts.executed, counts.resumed,
                counts.skipped);

    if (args.do_report) {
        if (!args.shard.whole())
            std::fprintf(stderr,
                         "warning: report of a single shard run — "
                         "slots of other shards are empty\n");
        if (args.report_path.empty() || args.report_path == "-") {
            writeReport(stdout, res);
        } else {
            std::FILE *f = std::fopen(args.report_path.c_str(), "w");
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             args.report_path.c_str());
                return 1;
            }
            writeReport(f, res);
            std::fclose(f);
            std::printf("report written to %s\n",
                        args.report_path.c_str());
        }
    }
    return 0;
}
