/**
 * @file
 * microlib_sweep: the sweep driver cluster launchers call.
 *
 * A sweep is described declaratively by a SweepSpec — benchmarks x
 * mechanisms x config variants expanded from declared axes — built
 * either from the flags below or parsed from a `.sweep` file
 * (--spec; see docs/SWEEP_SPEC.md). The driver turns the spec into a
 * deterministic TaskPlan and either prints it (--plan / --print-spec)
 * or runs it — whole, as one shard (--shard i/N), or fanned out over
 * forked shard workers (--backend process) — and can merge
 * (--merge) and compact (--compact) per-shard result stores. Because
 * every process that parses the same spec builds the same plan,
 * disjoint shards can run on separate hosts against separate stores
 * and be combined into a result byte-identical to a single-process
 * run:
 *
 *   # one host, the reference
 *   microlib_sweep --spec exp.sweep --store single.store \
 *       --report single.txt
 *
 *   # two hosts, then combine
 *   microlib_sweep --spec exp.sweep --shard 0/2 --store s0.store
 *   microlib_sweep --spec exp.sweep --shard 1/2 --store s1.store
 *   microlib_sweep --spec exp.sweep --store merged.store \
 *       --merge s0.store s1.store --compact --report merged.txt
 *   diff single.txt merged.txt        # byte-identical
 *
 * A rerun against an existing store resumes: only missing (benchmark,
 * mechanism, variant) tasks execute (a killed shard picks up exactly
 * where it died). See docs/SHARDING.md for the full walkthrough.
 *
 * The same binary is also the client and the worker of the sweep
 * service (docs/SWEEP_SERVICE.md): `--backend service --service ADDR`
 * submits the sweep to a microlib_sweepd daemon and fetches the
 * deduplicated results; `--worker ADDR` turns the process into a
 * pull-based worker draining that daemon's queue.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/exit_codes.hh"
#include "core/process_shard_backend.hh"
#include "core/registry.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/service_backend.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"
#include "service/worker.hh"
#include "sim/fingerprint.hh"
#include "sim/version.hh"
#include "trace/spec_suite.hh"
#include "trace/trace_arena.hh"

using namespace microlib;

namespace
{

struct SweepArgs
{
    std::string spec_path; // --spec FILE; empty = build from flags
    std::vector<std::string> benchmarks = {"swim", "gzip", "mcf",
                                           "crafty"};
    std::vector<std::string> mechanisms; // empty = all (Base + 12)
    std::uint64_t trace_length = 500'000;
    std::uint64_t interval = 0; // 0 = trace_length
    bool arbitrary = false;
    std::uint64_t arb_skip = 0;
    std::uint64_t arb_length = 0;
    bool description_flags_used = false; // --bench/--mech/--trace/...
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    unsigned threads = 0;
    ShardSpec shard;
    std::string store_path;
    std::string progress_path;
    std::string report_path; // "-" = stdout
    std::size_t trace_budget_mb = 0;
    std::string trace_dir;      // persistent trace arena directory
    bool prewarm_traces = false; // materialize arena, skip simulation
    bool use_process_backend = false;
    bool use_service_backend = false;
    std::string service_addr;  // --service ADDR (daemon address)
    std::string worker_addr;   // --worker ADDR: be a pull worker
    std::string worker_name;   // --name NAME (worker display name)
    std::size_t process_shards = 2;
    double heartbeat_timeout = 0.0; // seconds; 0 = stall detection off
    std::size_t worker_retries = 2;
    std::size_t quarantine_strikes = 3;
    bool print_plan = false;
    bool print_spec = false;
    bool do_report = false;
    bool do_compact = false;
    bool verbose = false;
    std::vector<std::string> merge_inputs;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] [--merge STORE...]\n"
        "\n"
        "Sweep description (must be identical across shards):\n"
        "  --spec FILE         load a .sweep spec file (replaces the\n"
        "                      flags below; see docs/SWEEP_SPEC.md)\n"
        "  --bench LIST        comma-separated benchmarks, or 'all'\n"
        "                      (default: swim,gzip,mcf,crafty)\n"
        "  --mech LIST         comma-separated mechanisms, or 'all'\n"
        "                      (default: all = Base + 12 mechanisms)\n"
        "  --trace N           SimPoint window length (default 500000)\n"
        "  --interval N        SimPoint interval (default: --trace)\n"
        "  --arbitrary S,L     arbitrary window: skip S, length L\n"
        "  --axis KEY=V1,V2    sweep KEY over the listed values; one\n"
        "                      config variant per combination\n"
        "                      (repeatable; composes with --spec)\n"
        "\n"
        "Execution:\n"
        "  --store PATH        append-only result store (resume +\n"
        "                      shard hand-off)\n"
        "  --shard I/N         run only tasks with index %% N == I\n"
        "  --backend process|service\n"
        "                      process: fork shard workers in this\n"
        "                      invocation; service: submit the sweep\n"
        "                      to a microlib_sweepd daemon (--service)\n"
        "                      and fetch the deduplicated results\n"
        "  --service ADDR      sweep daemon address (unix:/path or\n"
        "                      host:port); implies --backend service\n"
        "  --shards N          worker count for --backend process\n"
        "                      (default 2)\n"
        "  --heartbeat-timeout SEC\n"
        "                      SIGKILL + restart a shard worker whose\n"
        "                      progress stream is silent for SEC\n"
        "                      seconds (must exceed the longest task;\n"
        "                      default 0 = stall detection off)\n"
        "  --retries N         restarts allowed per shard worker\n"
        "                      before the sweep fails (default 2)\n"
        "  --strikes K         failures blamed on one task before it\n"
        "                      is quarantined — excluded, its cells\n"
        "                      reported FAULT, exit status 3\n"
        "                      (default 3; 0 disables quarantine)\n"
        "  --threads N         engine worker threads (default:\n"
        "                      MICROLIB_THREADS or hardware)\n"
        "  --trace-budget-mb N trace-cache byte budget\n"
        "  --trace-dir DIR     persistent trace arena: windows are\n"
        "                      materialized once into DIR and mmap'd\n"
        "                      by every later run, worker and shard\n"
        "                      (default: MICROLIB_TRACE_DIR)\n"
        "  --progress PATH     JSONL progress stream (per shard:\n"
        "                      PATH.shard<i>)\n"
        "  --verbose           per-run progress lines\n"
        "\n"
        "Modes:\n"
        "  --worker ADDR       be a pull-based worker for the sweep\n"
        "                      daemon at ADDR: lease tasks, execute\n"
        "                      them, append to --store (own file!),\n"
        "                      until the daemon shuts down; honors\n"
        "                      --threads/--trace-dir/--trace-budget-mb\n"
        "                      /--verbose; --name sets the display\n"
        "                      name (default host:pid)\n"
        "  --name NAME         worker display name for --worker\n"
        "  --version           print version + schema tuple and exit\n"
        "  --plan              print the fingerprinted task list and\n"
        "                      exit (no simulation)\n"
        "  --prewarm-traces    materialize every trace window of the\n"
        "                      plan into the arena (--trace-dir) and\n"
        "                      exit without simulating — run once so\n"
        "                      a later fleet of shards starts warm\n"
        "  --print-spec        print the canonical spec text (stdout)\n"
        "                      and its hash (stderr), then exit\n"
        "  --merge STORE...    merge the given store files into\n"
        "                      --store before anything else runs\n"
        "  --compact           rewrite --store to one record per key\n"
        "                      (after --merge, before the run)\n"
        "  --report [PATH]     write the IPC matrices (+ sensitivity\n"
        "                      table for multi-variant sweeps) to\n"
        "                      PATH (stdout if omitted or '-')\n"
        "\n"
        "Exit status: 0 clean, 1 sweep failed, 2 usage error,\n"
        "3 completed with quarantined task(s), 4 infrastructure\n"
        "failure (daemon unreachable / died; retry is safe)\n",
        argv0);
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::uint64_t
parseU64(const char *flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: not a number: %s\n", flag,
                     value.c_str());
        std::exit(2);
    }
    return v;
}

/**
 * The sweep description as a SweepSpec: parsed from --spec, or built
 * from the description flags (which then mirror the old two-vector
 * CLI exactly). --axis declarations append in either mode. Exits
 * with the parse/validation error on a bad spec.
 */
SweepSpec
buildSpec(const SweepArgs &args)
{
    SweepSpec spec;
    std::string error;
    if (!args.spec_path.empty()) {
        if (args.description_flags_used) {
            std::fprintf(stderr,
                         "--spec replaces --bench/--mech/--trace/"
                         "--interval/--arbitrary; use --axis to "
                         "extend a spec file\n");
            std::exit(2);
        }
        if (!SweepSpec::load(args.spec_path, spec, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            std::exit(2);
        }
    } else {
        spec.setBenchmarks(args.benchmarks);
        spec.setMechanisms(args.mechanisms.empty()
                               ? allMechanismNames()
                               : args.mechanisms);
        bool ok = true;
        if (args.arbitrary) {
            ok = ok &&
                 spec.addBase("window.selection", "arbitrary", &error);
            ok = ok && spec.addBase("window.skip",
                                    std::to_string(args.arb_skip),
                                    &error);
            ok = ok && spec.addBase("window.length",
                                    std::to_string(args.arb_length),
                                    &error);
        } else {
            const std::uint64_t interval =
                args.interval ? args.interval : args.trace_length;
            ok = ok &&
                 spec.addBase("window.trace_length",
                              std::to_string(args.trace_length),
                              &error);
            ok = ok && spec.addBase("window.interval",
                                    std::to_string(interval), &error);
        }
        if (!ok) {
            std::fprintf(stderr, "%s\n", error.c_str());
            std::exit(2);
        }
    }
    for (const auto &axis : args.axes) {
        if (!spec.addAxis(axis.first, axis.second, &error)) {
            std::fprintf(stderr, "--axis %s: %s\n", axis.first.c_str(),
                         error.c_str());
            std::exit(2);
        }
    }
    return spec;
}

/**
 * Deterministic sweep report: fixed-width, fixed-precision, no
 * timestamps or host names — so a sharded-and-merged sweep's report
 * can be `diff`ed byte-for-byte against a single-process run's. One
 * IPC matrix per config variant, plus the cross-variant sensitivity
 * table when the sweep has more than one.
 */
void
writeReport(std::FILE *out, const SweepResult &res)
{
    const std::size_t nv = res.matrices.size();
    for (std::size_t v = 0; v < nv; ++v) {
        const MatrixResult &m = res.matrices[v];
        std::fprintf(out,
                     "# microlib_sweep IPC matrix (%zu mechanism(s) "
                     "x %zu benchmark(s))%s%s\n",
                     m.mechanisms.size(), m.benchmarks.size(),
                     nv > 1 ? " variant " : "",
                     nv > 1 ? res.variants[v].c_str() : "");
        std::fprintf(out, "%-8s", "");
        for (const auto &b : m.benchmarks)
            std::fprintf(out, "%12s", b.c_str());
        std::fprintf(out, "\n");
        for (std::size_t mi = 0; mi < m.mechanisms.size(); ++mi) {
            std::fprintf(out, "%-8s", m.mechanisms[mi].c_str());
            for (std::size_t b = 0; b < m.benchmarks.size(); ++b) {
                // A quarantined cell holds no result; an explicit
                // FAULT marker beats a misleading 0.000000.
                if (m.faulted(mi, b))
                    std::fprintf(out, "%12s", "FAULT");
                else
                    std::fprintf(out, "%12.6f", m.ipc[mi][b]);
            }
            std::fprintf(out, "\n");
        }
    }
    if (nv > 1)
        std::fputs(sensitivityTable(res).str().c_str(), out);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepArgs args;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&](const char *name) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return exit_ok;
        } else if (flag == "--version") {
            std::printf("%s\n",
                        versionString("microlib_sweep").c_str());
            return exit_ok;
        } else if (flag == "--worker") {
            args.worker_addr = value("--worker");
        } else if (flag == "--service") {
            args.service_addr = value("--service");
            args.use_service_backend = true;
        } else if (flag == "--name") {
            args.worker_name = value("--name");
        } else if (flag == "--spec") {
            args.spec_path = value("--spec");
        } else if (flag == "--bench") {
            const std::string v = value("--bench");
            args.benchmarks =
                v == "all" ? specBenchmarkNames() : splitList(v);
            args.description_flags_used = true;
        } else if (flag == "--mech") {
            const std::string v = value("--mech");
            args.mechanisms =
                v == "all" ? allMechanismNames() : splitList(v);
            args.description_flags_used = true;
        } else if (flag == "--trace") {
            args.trace_length = parseU64("--trace", value("--trace"));
            args.description_flags_used = true;
        } else if (flag == "--interval") {
            args.interval = parseU64("--interval", value("--interval"));
            args.description_flags_used = true;
        } else if (flag == "--arbitrary") {
            const auto parts = splitList(value("--arbitrary"));
            if (parts.size() != 2) {
                std::fprintf(stderr, "--arbitrary wants S,L\n");
                return 2;
            }
            args.arbitrary = true;
            args.arb_skip = parseU64("--arbitrary", parts[0]);
            args.arb_length = parseU64("--arbitrary", parts[1]);
            args.description_flags_used = true;
        } else if (flag == "--axis") {
            const std::string v = value("--axis");
            const auto eq = v.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= v.size()) {
                std::fprintf(stderr,
                             "--axis wants KEY=V1,V2,... got '%s'\n",
                             v.c_str());
                return 2;
            }
            args.axes.emplace_back(v.substr(0, eq),
                                   splitList(v.substr(eq + 1)));
        } else if (flag == "--threads") {
            args.threads = static_cast<unsigned>(
                parseU64("--threads", value("--threads")));
        } else if (flag == "--shard") {
            if (!ShardSpec::parse(value("--shard"), args.shard)) {
                std::fprintf(stderr,
                             "--shard wants I/N with 0 <= I < N\n");
                return 2;
            }
        } else if (flag == "--store") {
            args.store_path = value("--store");
        } else if (flag == "--progress") {
            args.progress_path = value("--progress");
        } else if (flag == "--trace-budget-mb") {
            args.trace_budget_mb = static_cast<std::size_t>(parseU64(
                "--trace-budget-mb", value("--trace-budget-mb")));
        } else if (flag == "--trace-dir") {
            args.trace_dir = value("--trace-dir");
        } else if (flag == "--prewarm-traces") {
            args.prewarm_traces = true;
        } else if (flag == "--backend") {
            const std::string v = value("--backend");
            if (v == "process") {
                args.use_process_backend = true;
            } else if (v == "service") {
                args.use_service_backend = true;
            } else if (v != "thread") {
                std::fprintf(stderr, "--backend wants 'thread', "
                                     "'process' or 'service'\n");
                return exit_usage;
            }
        } else if (flag == "--shards") {
            args.process_shards = static_cast<std::size_t>(
                parseU64("--shards", value("--shards")));
        } else if (flag == "--heartbeat-timeout") {
            const std::string v = value("--heartbeat-timeout");
            char *end = nullptr;
            args.heartbeat_timeout = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                args.heartbeat_timeout < 0) {
                std::fprintf(stderr, "--heartbeat-timeout wants "
                                     "seconds >= 0\n");
                return 2;
            }
        } else if (flag == "--retries") {
            args.worker_retries = static_cast<std::size_t>(
                parseU64("--retries", value("--retries")));
        } else if (flag == "--strikes") {
            args.quarantine_strikes = static_cast<std::size_t>(
                parseU64("--strikes", value("--strikes")));
        } else if (flag == "--plan") {
            args.print_plan = true;
        } else if (flag == "--print-spec") {
            args.print_spec = true;
        } else if (flag == "--compact") {
            args.do_compact = true;
        } else if (flag == "--verbose") {
            args.verbose = true;
        } else if (flag == "--report") {
            args.do_report = true;
            // A lone "-" is the documented explicit-stdout spelling,
            // not a flag — consume it.
            if (i + 1 < argc && (argv[i + 1][0] != '-' ||
                                 std::strcmp(argv[i + 1], "-") == 0))
                args.report_path = argv[++i];
        } else if (flag == "--merge") {
            while (i + 1 < argc && argv[i + 1][0] != '-')
                args.merge_inputs.push_back(argv[++i]);
            if (args.merge_inputs.empty()) {
                std::fprintf(stderr,
                             "--merge wants store file(s)\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (!args.worker_addr.empty()) {
        // Worker mode: no spec of our own — the daemon hands us
        // canonical spec text with every lease.
        WorkerOptions wopts;
        wopts.service = args.worker_addr;
        wopts.store_path = args.store_path;
        wopts.name = args.worker_name;
        wopts.threads = args.threads;
        wopts.verbose = args.verbose;
        wopts.trace_dir = args.trace_dir;
        wopts.trace_budget_bytes =
            args.trace_budget_mb * 1024 * 1024;
        return runWorkerLoop(wopts);
    }

    if (args.use_service_backend && args.service_addr.empty()) {
        std::fprintf(stderr, "--backend service needs --service "
                             "ADDR\n");
        return exit_usage;
    }
    if (args.use_service_backend && args.use_process_backend) {
        std::fprintf(stderr,
                     "--backend process and service conflict\n");
        return exit_usage;
    }

    const SweepSpec spec = buildSpec(args);

    if (args.print_spec) {
        // Canonical text to stdout (redirectable straight into a
        // .sweep file), the stable hash to stderr.
        std::fputs(spec.canonicalText().c_str(), stdout);
        std::fprintf(stderr, "spec hash: %s\n",
                     Fingerprint::hexOf(spec.hash()).c_str());
        return 0;
    }

    const TaskPlan plan(spec);

    if (args.print_plan) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            std::printf("%s\n",
                        plan.describe(i, args.shard).c_str());
        return 0;
    }

    if ((args.use_process_backend || !args.merge_inputs.empty() ||
         args.do_compact) &&
        args.store_path.empty()) {
        std::fprintf(stderr, "--backend process, --merge and "
                             "--compact need --store\n");
        return 2;
    }

    std::unique_ptr<ResultStore> store;
    if (!args.store_path.empty())
        store = std::make_unique<ResultStore>(args.store_path);

    if (!args.merge_inputs.empty()) {
        std::size_t merged = 0;
        for (const auto &input : args.merge_inputs)
            merged += store->merge(input);
        std::printf("merged %zu record(s) from %zu store(s) into %s "
                    "(%zu total)\n",
                    merged, args.merge_inputs.size(),
                    args.store_path.c_str(), store->size());
    }

    if (args.do_compact) {
        const std::size_t kept = store->compact();
        std::printf("compacted %s to %zu record(s)\n",
                    args.store_path.c_str(), kept);
    }

    EngineOptions opts;
    opts.threads = args.threads;
    opts.verbose = args.verbose;
    opts.store = store.get();
    opts.shard = args.shard;
    opts.progress_path = args.progress_path;
    opts.trace_budget_bytes = args.trace_budget_mb * 1024 * 1024;
    opts.trace_dir = args.trace_dir;
    opts.heartbeat_timeout = args.heartbeat_timeout;
    opts.max_worker_retries = args.worker_retries;
    opts.quarantine_strikes = args.quarantine_strikes;

    ProcessShardBackend process_backend(
        ProcessShardOptions{args.process_shards, args.threads, false});
    ServiceBackend service_backend(args.service_addr);
    if (args.use_process_backend) {
        opts.backend = &process_backend;
        // The parent only forks, waits and merges: a worker pool
        // would sit idle, and fork() from a single-threaded parent
        // sidesteps the multithreaded-fork hazards entirely.
        // --threads applies to each shard worker instead.
        opts.threads = 1;
    } else if (args.use_service_backend) {
        opts.backend = &service_backend;
        // Simulation happens on the daemon's workers; this process
        // only submits, polls and fetches.
        opts.threads = 1;
    }

    ExperimentEngine engine(opts);

    if (args.prewarm_traces) {
        // Materialize every unique trace window of the plan into the
        // arena and stop: one generation pass a later fleet of
        // shards, hosts or reruns starts warm from (zero src=gen).
        const auto arena = engine.cache().arena();
        if (!arena) {
            std::fprintf(stderr, "--prewarm-traces needs --trace-dir "
                                 "(or MICROLIB_TRACE_DIR)\n");
            return 2;
        }
        // One representative task per trace slot (slots deduplicate
        // benchmark x window across mechanisms and variants).
        std::vector<std::size_t> rep(plan.traceSlotCount(),
                                     plan.size());
        for (std::size_t i = 0; i < plan.size(); ++i) {
            const std::size_t slot = plan.traceSlot(i);
            if (rep[slot] == plan.size())
                rep[slot] = i;
        }
        std::size_t generated = 0, present = 0;
        for (std::size_t slot = 0; slot < rep.size(); ++slot) {
            const PlanTask &t = plan.task(rep[slot]);
            const std::string &key = plan.slotKey(slot);
            TraceCache::Future fut;
            if (engine.cache().claim(key, fut) !=
                TraceCache::Claim::Owner)
                continue; // duplicate key within this process
            TraceOrigin origin = TraceOrigin::Generated;
            try {
                ExperimentEngine::materializeInto(
                    engine.cache(), key, plan.benchmarks()[t.b],
                    plan.config(t.v), &origin);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "prewarm failed: %s\n",
                             e.what());
                return 1;
            }
            ++(origin == TraceOrigin::Mapped ? present : generated);
            // Release immediately: prewarm only needs the file on
            // disk, not a resident copy of every window at once.
            engine.cache().evict(key);
        }
        std::printf("prewarm %s: %zu window(s) generated, %zu "
                    "already present\n",
                    arena->dir().c_str(), generated, present);
        return 0;
    }

    SweepResult res;
    try {
        res = engine.runPlan(plan);
    } catch (const InfrastructureError &e) {
        // The machinery failed, not the experiment: daemon
        // unreachable, worker retry budget spent. Everything
        // finished so far is in a store; retrying against healthy
        // infrastructure resumes.
        std::fprintf(stderr, "sweep failed (infrastructure): %s\n",
                     e.what());
        return exit_infrastructure;
    } catch (const std::exception &e) {
        // A sweep the supervisor gave up on (retry budget spent, or
        // supervision disabled); the store keeps every finished run
        // for the next attempt's resume.
        std::fprintf(stderr, "sweep failed: %s\n", e.what());
        return exit_failure;
    }
    const RunCounters counts = engine.lastRun();
    std::printf("sweep %s: %zu task(s) over %zu variant(s): executed "
                "%zu, resumed %zu, skipped-by-shard %zu\n",
                args.shard.whole()
                    ? (args.use_process_backend ? "(process shards)"
                                                : "(whole plan)")
                    : ("shard " + args.shard.str()).c_str(),
                plan.size(), plan.variantCount(), counts.executed,
                counts.resumed, counts.skipped);
    if (counts.store_skipped)
        std::printf("store: skipped %zu unreadable record line(s)\n",
                    counts.store_skipped);
    for (const std::size_t q : counts.quarantined)
        std::printf("quarantined: %s\n",
                    plan.describe(q, args.shard).c_str());

    if (args.do_report) {
        if (!args.shard.whole())
            std::fprintf(stderr,
                         "warning: report of a single shard run — "
                         "slots of other shards are empty\n");
        if (args.report_path.empty() || args.report_path == "-") {
            writeReport(stdout, res);
        } else {
            std::FILE *f = std::fopen(args.report_path.c_str(), "w");
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             args.report_path.c_str());
                return 1;
            }
            writeReport(f, res);
            std::fclose(f);
            std::printf("report written to %s\n",
                        args.report_path.c_str());
        }
    }
    // Distinct status for a sweep that completed only by quarantining
    // poison tasks: scripted callers must not mistake a FAULT-marked
    // report for a clean one (see core/exit_codes.hh).
    return counts.quarantined.empty() ? exit_ok : exit_quarantined;
}
