/**
 * @file
 * microlib_sweepd: the deduplicating sweep service daemon.
 *
 * Thin CLI wrapper around SweepService (src/service/sweepd.hh):
 * parse flags, install SIGINT/SIGTERM handlers that request a clean
 * stop, start the listener, run the event loop. The daemon owns one
 * global result store; every sweep any client ever submits dedups
 * against it — identical sweeps collapse to one job, and individual
 * tasks whose fingerprinted records already exist are never queued.
 * Workers attach with `microlib_sweep --worker ADDR`.
 *
 *   microlib_sweepd --listen unix:/tmp/sweepd.sock \
 *       --store global.store --progress sweepd.progress &
 *   microlib_sweep --worker unix:/tmp/sweepd.sock --store w0.store &
 *   microlib_sweep --spec exp.sweep --backend service \
 *       --service unix:/tmp/sweepd.sock --report exp.txt
 *
 * See docs/SWEEP_SERVICE.md for the protocol and failure semantics.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/exit_codes.hh"
#include "service/sweepd.hh"
#include "sim/version.hh"

using namespace microlib;

namespace
{

SweepService *g_service = nullptr;

void
onSignal(int)
{
    // requestStop only flips an atomic: async-signal-safe. The poll
    // loop notices within its 200ms timeout.
    if (g_service)
        g_service->requestStop();
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --listen ADDR --store PATH [options]\n"
        "\n"
        "  --listen ADDR       unix:/path or host:port (host:0 picks\n"
        "                      a free port and prints it)\n"
        "  --store PATH        global append-only result store; every\n"
        "                      submitted sweep dedups against it\n"
        "  --progress PATH     daemon JSONL stream: job lifecycle,\n"
        "                      lease grants, relayed worker events\n"
        "  --lease N           tasks per worker lease (default 4)\n"
        "  --heartbeat-timeout SEC\n"
        "                      cut a lease-holding worker silent for\n"
        "                      SEC seconds; its tasks requeue\n"
        "                      (default 0 = EOF detection only)\n"
        "  --strikes K         failures blamed on one task before it\n"
        "                      is quarantined (default 3; 0 disables)\n"
        "  --retries N         failures per worker before its strikes\n"
        "                      escalate (default 2)\n"
        "  --read-only         serve cached results only: refuse\n"
        "                      workers and any submit that needs\n"
        "                      execution; never write the store\n"
        "  --max-jobs N        completed jobs kept before oldest-\n"
        "                      first eviction (default 64)\n"
        "  --version           print version + schema tuple and exit\n"
        "\n"
        "Exit status: 0 clean shutdown, 2 usage error, 4 cannot\n"
        "start (bad address, unopenable store)\n",
        argv0);
}

std::uint64_t
parseU64(const char *flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: not a number: %s\n", flag,
                     value.c_str());
        std::exit(exit_usage);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepServiceOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&](const char *name) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(exit_usage);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return exit_ok;
        } else if (flag == "--version") {
            std::printf("%s\n",
                        versionString("microlib_sweepd").c_str());
            return exit_ok;
        } else if (flag == "--listen") {
            opts.listen = value("--listen");
        } else if (flag == "--store") {
            opts.store_path = value("--store");
        } else if (flag == "--progress") {
            opts.progress_path = value("--progress");
        } else if (flag == "--lease") {
            opts.lease_size = static_cast<std::size_t>(
                parseU64("--lease", value("--lease")));
            if (opts.lease_size == 0) {
                std::fprintf(stderr, "--lease wants N >= 1\n");
                return exit_usage;
            }
        } else if (flag == "--heartbeat-timeout") {
            const std::string v = value("--heartbeat-timeout");
            char *end = nullptr;
            opts.heartbeat_timeout = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                opts.heartbeat_timeout < 0) {
                std::fprintf(stderr, "--heartbeat-timeout wants "
                                     "seconds >= 0\n");
                return exit_usage;
            }
        } else if (flag == "--strikes") {
            opts.quarantine_strikes = static_cast<std::size_t>(
                parseU64("--strikes", value("--strikes")));
        } else if (flag == "--retries") {
            opts.max_worker_retries = static_cast<std::size_t>(
                parseU64("--retries", value("--retries")));
        } else if (flag == "--read-only") {
            opts.read_only = true;
        } else if (flag == "--max-jobs") {
            opts.max_done_jobs = static_cast<std::size_t>(
                parseU64("--max-jobs", value("--max-jobs")));
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return exit_usage;
        }
    }

    if (opts.listen.empty() || opts.store_path.empty()) {
        std::fprintf(stderr, "--listen and --store are required\n");
        usage(argv[0]);
        return exit_usage;
    }

    SweepService service(opts);
    std::string error;
    if (!service.start(&error)) {
        std::fprintf(stderr, "microlib_sweepd: %s\n", error.c_str());
        return exit_infrastructure;
    }

    g_service = &service;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // The resolved address on stdout: with host:0 this line is how a
    // launcher learns the real port.
    std::printf("microlib_sweepd listening on %s (store %s)\n",
                service.address().c_str(), opts.store_path.c_str());
    std::fflush(stdout);

    const int code = service.run();
    g_service = nullptr;
    return code;
}
