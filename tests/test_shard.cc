/** @file Sharded execution: shard partitions of the TaskPlan are
 *  disjoint and exhaustive, shard stores merged by concatenation
 *  reproduce the single-process MatrixResult bit-identically (both
 *  via in-process --shard style runs and via the forked
 *  ProcessShardBackend), and a killed-and-resumed shard re-executes
 *  only its missing tasks. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/process_shard_backend.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/task_plan.hh"

using namespace microlib;

namespace
{

const std::vector<std::string> mechs = {"Base", "TP", "SP", "GHB"};
const std::vector<std::string> benchs = {"swim", "gzip", "crafty"};

RunConfig
quickConfig()
{
    RunConfig cfg;
    cfg.scale.simpoint_trace = 100'000;
    cfg.scale.simpoint_interval = 100'000;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_shard_" + name;
}

/** Bit-identity over everything the store persists. */
void
expectIdentical(const MatrixResult &a, const MatrixResult &b)
{
    ASSERT_EQ(a.mechanisms, b.mechanisms);
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    for (std::size_t m = 0; m < a.mechanisms.size(); ++m) {
        for (std::size_t bi = 0; bi < a.benchmarks.size(); ++bi) {
            const RunOutput &ra = a.outputs[m][bi];
            const RunOutput &rb = b.outputs[m][bi];
            EXPECT_EQ(a.ipc[m][bi], b.ipc[m][bi])
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(ra.core.instructions, rb.core.instructions);
            EXPECT_EQ(ra.core.cycles, rb.core.cycles);
            EXPECT_EQ(ra.core.ipc, rb.core.ipc);
            EXPECT_EQ(ra.stats, rb.stats)
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
        }
    }
}

/** Copy the first @p n record lines of @p src to @p dst — the store
 *  a shard killed after n completed runs would have left. */
std::size_t
truncateStoreFile(const std::string &src, const std::string &dst,
                  std::size_t n)
{
    std::ifstream in(src);
    std::ofstream out(dst, std::ios::trunc);
    std::string line;
    std::size_t copied = 0;
    while (copied < n && std::getline(in, line)) {
        out << line << '\n';
        ++copied;
    }
    return copied;
}

MatrixResult
referenceRun(const RunConfig &cfg)
{
    EngineOptions opts;
    opts.threads = 4;
    ExperimentEngine engine(opts);
    return engine.run(mechs, benchs, cfg);
}

} // namespace

TEST(Shard, SpecParsesAndPrints)
{
    ShardSpec s;
    EXPECT_TRUE(ShardSpec::parse("0/2", s));
    EXPECT_EQ(s.index, 0u);
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.str(), "0/2");
    EXPECT_TRUE(ShardSpec::parse("3/4", s));
    EXPECT_FALSE(ShardSpec::parse("4/4", s));
    EXPECT_FALSE(ShardSpec::parse("1", s));
    EXPECT_FALSE(ShardSpec::parse("a/2", s));
    EXPECT_FALSE(ShardSpec::parse("1/0", s));
    EXPECT_FALSE(ShardSpec::parse("1/2x", s));
    EXPECT_TRUE(ShardSpec{}.whole());
}

TEST(Shard, PartitionsAreDisjointAndExhaustive)
{
    const TaskPlan plan(mechs, benchs, quickConfig());
    ASSERT_EQ(plan.size(), mechs.size() * benchs.size());

    for (const std::size_t n : {1u, 2u, 4u}) {
        std::set<std::size_t> seen;
        for (std::size_t i = 0; i < n; ++i) {
            const ShardSpec shard{i, n};
            for (const std::size_t t : plan.shardTasks(shard)) {
                // Disjoint: no task appears in two shards.
                EXPECT_TRUE(seen.insert(t).second)
                    << "task " << t << " in two shards of " << n;
                EXPECT_TRUE(TaskPlan::inShard(t, shard));
            }
        }
        // Exhaustive: every task is in exactly one shard.
        EXPECT_EQ(seen.size(), plan.size()) << n << " shards";
    }
}

TEST(Shard, PlanEnumerationIsDeterministic)
{
    const TaskPlan a(mechs, benchs, quickConfig());
    const TaskPlan b(mechs, benchs, quickConfig());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.configHash(), b.configHash());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.task(i).index, i);
        EXPECT_EQ(a.task(i).m, b.task(i).m);
        EXPECT_EQ(a.task(i).b, b.task(i).b);
        EXPECT_EQ(a.resultKey(i).str(), b.resultKey(i).str());
        // The slot assignment is the canonical benchmark-slowest
        // flattening — the contract shards and stores rely on.
        EXPECT_EQ(a.task(i).index,
                  a.task(i).b * mechs.size() + a.task(i).m);
    }
}

TEST(Shard, MergedShardStoresMatchSingleProcess)
{
    const RunConfig cfg = quickConfig();
    const MatrixResult reference = referenceRun(cfg);
    const std::size_t total = mechs.size() * benchs.size();
    const TaskPlan plan(mechs, benchs, cfg);

    // Run each shard the way a separate host would: its own engine,
    // its own store file, in-process thread-pool backend.
    const std::size_t nshards = 2;
    std::vector<std::string> shard_paths;
    for (std::size_t i = 0; i < nshards; ++i) {
        const std::string path =
            tmpPath("merge_s" + std::to_string(i) + ".store");
        std::remove(path.c_str());
        shard_paths.push_back(path);

        ResultStore store(path);
        EngineOptions opts;
        opts.threads = 2;
        opts.store = &store;
        opts.shard = ShardSpec{i, nshards};
        ExperimentEngine engine(opts);
        engine.run(mechs, benchs, cfg);

        const RunCounters counts = engine.lastRun();
        const std::size_t mine =
            plan.shardTasks(ShardSpec{i, nshards}).size();
        EXPECT_EQ(counts.executed, mine);
        EXPECT_EQ(counts.resumed, 0u);
        EXPECT_EQ(counts.skipped, total - mine);
        EXPECT_EQ(store.size(), mine);
    }

    // Merge by concatenation, then resume the whole plan from the
    // merged store: nothing executes and the matrix is bit-identical
    // to the single-process run.
    const std::string merged_path = tmpPath("merge_all.store");
    std::remove(merged_path.c_str());
    ResultStore merged(merged_path);
    std::size_t merged_records = 0;
    for (const auto &path : shard_paths)
        merged_records += merged.merge(path);
    EXPECT_EQ(merged_records, total);
    EXPECT_EQ(merged.size(), total);

    EngineOptions opts;
    opts.threads = 2;
    opts.store = &merged;
    ExperimentEngine engine(opts);
    const MatrixResult combined = engine.run(mechs, benchs, cfg);
    EXPECT_EQ(engine.lastRun().executed, 0u);
    EXPECT_EQ(engine.lastRun().resumed, total);
    EXPECT_EQ(engine.lastRun().skipped, 0u);
    expectIdentical(reference, combined);

    for (const auto &path : shard_paths)
        std::remove(path.c_str());
    std::remove(merged_path.c_str());
}

TEST(Shard, ProcessShardBackendMatchesThreadPool)
{
    const RunConfig cfg = quickConfig();
    const MatrixResult reference = referenceRun(cfg);
    const std::size_t total = mechs.size() * benchs.size();

    const std::string path = tmpPath("process.store");
    std::remove(path.c_str());
    ResultStore store(path);

    ProcessShardOptions popts;
    popts.shards = 2;
    ProcessShardBackend backend(popts);

    EngineOptions opts;
    opts.threads = 1;
    opts.store = &store;
    opts.backend = &backend;
    ExperimentEngine engine(opts);

    const MatrixResult forked = engine.run(mechs, benchs, cfg);
    EXPECT_EQ(engine.lastRun().executed, total);
    EXPECT_EQ(engine.lastRun().resumed, 0u);
    EXPECT_EQ(engine.lastRun().skipped, 0u);
    EXPECT_EQ(store.size(), total);
    expectIdentical(reference, forked);

    // A second run over the merged store resumes everything: the
    // backend forks no workers at all.
    const MatrixResult again = engine.run(mechs, benchs, cfg);
    EXPECT_EQ(engine.lastRun().executed, 0u);
    EXPECT_EQ(engine.lastRun().resumed, total);
    expectIdentical(reference, again);

    std::remove(path.c_str());
}

TEST(Shard, KilledShardResumesOnlyMissingTasks)
{
    const RunConfig cfg = quickConfig();
    const TaskPlan plan(mechs, benchs, cfg);
    const ShardSpec shard{0, 2};
    const std::size_t mine = plan.shardTasks(shard).size();
    const std::size_t total = plan.size();

    // Complete shard 0/2 once to obtain its full store...
    const std::string full_path = tmpPath("kill_full.store");
    std::remove(full_path.c_str());
    {
        ResultStore store(full_path);
        EngineOptions opts;
        opts.threads = 2;
        opts.store = &store;
        opts.shard = shard;
        ExperimentEngine engine(opts);
        engine.run(mechs, benchs, cfg);
        EXPECT_EQ(engine.lastRun().executed, mine);
        EXPECT_EQ(store.size(), mine);
    }

    // ..."kill" it halfway: keep the first half of its records —
    // exactly the file an interrupted shard leaves, since records
    // are appended and flushed as each run completes.
    const std::string half_path = tmpPath("kill_half.store");
    const std::size_t kept =
        truncateStoreFile(full_path, half_path, mine / 2);
    ASSERT_EQ(kept, mine / 2);

    // Restart the shard: exactly the missing tasks execute, the
    // out-of-shard remainder stays skipped.
    ResultStore store(half_path);
    EngineOptions opts;
    opts.threads = 2;
    opts.store = &store;
    opts.shard = shard;
    ExperimentEngine engine(opts);
    engine.run(mechs, benchs, cfg);
    const RunCounters counts = engine.lastRun();
    EXPECT_EQ(counts.resumed, kept);
    EXPECT_EQ(counts.executed, mine - kept);
    EXPECT_EQ(counts.skipped, total - mine);
    // The shard store is whole again.
    EXPECT_EQ(store.size(), mine);

    std::remove(full_path.c_str());
    std::remove(half_path.c_str());
}

TEST(Shard, ProcessBackendResumesKilledWorkerStore)
{
    const RunConfig cfg = quickConfig();
    const TaskPlan plan(mechs, benchs, cfg);
    const std::size_t total = plan.size();
    const std::size_t nshards = 2;

    const std::string path = tmpPath("procresume.store");
    std::remove(path.c_str());

    // Pre-seed shard 0's worker store with half of its records, as
    // a killed worker would have left it (kept because the previous
    // parent run failed before merging).
    const std::string seed_path = tmpPath("procresume_seed.store");
    std::remove(seed_path.c_str());
    std::size_t shard0_tasks = 0;
    {
        ResultStore seed(seed_path);
        EngineOptions opts;
        opts.threads = 2;
        opts.store = &seed;
        opts.shard = ShardSpec{0, nshards};
        ExperimentEngine engine(opts);
        engine.run(mechs, benchs, cfg);
        shard0_tasks = engine.lastRun().executed;
    }
    const std::string worker_path =
        ProcessShardBackend::shardStorePath(path, 0, nshards);
    std::remove(worker_path.c_str());
    truncateStoreFile(seed_path, worker_path, shard0_tasks / 2);

    ResultStore store(path);
    ProcessShardOptions popts;
    popts.shards = nshards;
    ProcessShardBackend backend(popts);
    EngineOptions opts;
    opts.threads = 1;
    opts.store = &store;
    opts.backend = &backend;
    ExperimentEngine engine(opts);
    engine.run(mechs, benchs, cfg);

    // Everything landed, and the accounting is truthful: the
    // pre-seeded records were resumed inside the restarted worker,
    // only the missing tasks were simulated.
    EXPECT_EQ(store.size(), total);
    EXPECT_EQ(engine.lastRun().resumed, shard0_tasks / 2);
    EXPECT_EQ(engine.lastRun().executed, total - shard0_tasks / 2);
    EXPECT_EQ(engine.lastRun().skipped, 0u);

    std::remove(seed_path.c_str());
    std::remove(path.c_str());
}
