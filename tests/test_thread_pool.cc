/** @file Unit tests for the persistent worker pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>

#include "sim/thread_pool.hh"

using namespace microlib;

TEST(ThreadPool, InlineModeRunsOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, caller);
    pool.wait(); // no-op, must not deadlock
}

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&] { count.fetch_add(1); });
        // No wait(): the destructor must finish the backlog.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, JobsRunOnWorkerThreads)
{
    ThreadPool pool(2);
    const auto caller = std::this_thread::get_id();
    std::mutex mu;
    std::set<std::thread::id> ids;
    for (int i = 0; i < 64; ++i)
        pool.submit([&] {
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        });
    pool.wait();
    EXPECT_FALSE(ids.empty());
    EXPECT_EQ(ids.count(caller), 0u);
    EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv)
{
    setenv("MICROLIB_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    setenv("MICROLIB_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    unsetenv("MICROLIB_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}
