/** @file SweepSpec tests: parse/serialize round-trips, cross-host
 *  canonical-hash stability, useful rejection of bad specs, variant
 *  expansion/trace-slot sharing, and the determinism contract of a
 *  2-variant sweep sharded over separate stores (merged byte-
 *  identical to single-process; an interrupted sweep resumes exactly
 *  the missing (benchmark, mechanism, variant) tasks). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"

using namespace microlib;

namespace
{

/** The reference 2-variant spec used throughout: two benchmarks x
 *  two mechanisms, L2 size swept over two points. */
const char *two_variant_text = R"(sweep-spec v1
bench swim gzip
mech Base TP
base window.trace_length=100000
base window.interval=100000
axis hier.l2.size 256k 1M
)";

SweepSpec
twoVariantSpec()
{
    SweepSpec spec;
    std::string error;
    if (!SweepSpec::parse(two_variant_text, spec, &error))
        ADD_FAILURE() << error;
    return spec;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_sweep_spec_" + name;
}

/** Bit-identity across every variant matrix of two sweep results. */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.variants, b.variants);
    ASSERT_EQ(a.matrices.size(), b.matrices.size());
    for (std::size_t v = 0; v < a.matrices.size(); ++v) {
        const MatrixResult &ma = a.matrices[v];
        const MatrixResult &mb = b.matrices[v];
        ASSERT_EQ(ma.mechanisms, mb.mechanisms);
        ASSERT_EQ(ma.benchmarks, mb.benchmarks);
        for (std::size_t m = 0; m < ma.mechanisms.size(); ++m) {
            for (std::size_t bi = 0; bi < ma.benchmarks.size(); ++bi) {
                EXPECT_EQ(ma.ipc[m][bi], mb.ipc[m][bi])
                    << a.variants[v] << " " << ma.mechanisms[m] << "/"
                    << ma.benchmarks[bi];
                EXPECT_EQ(ma.outputs[m][bi].core.cycles,
                          mb.outputs[m][bi].core.cycles);
                EXPECT_EQ(ma.outputs[m][bi].stats,
                          mb.outputs[m][bi].stats);
            }
        }
    }
}

/** Copy the first @p n record lines of @p src to @p dst — the store
 *  an interrupted sweep leaves behind. */
std::size_t
truncateStoreFile(const std::string &src, const std::string &dst,
                  std::size_t n)
{
    std::ifstream in(src);
    std::ofstream out(dst, std::ios::trunc);
    std::string line;
    std::size_t copied = 0;
    while (copied < n && std::getline(in, line)) {
        out << line << '\n';
        ++copied;
    }
    return copied;
}

} // namespace

TEST(SweepSpec, ParseSerializeRoundTrip)
{
    // Sloppy input: comments, blank lines, ragged whitespace, split
    // bench lines — must parse, and canonicalize to the fixed form.
    const std::string sloppy = "# an experiment\n"
                               "sweep-spec v1\n"
                               "\n"
                               "bench   swim\n"
                               "bench gzip   # more workloads\n"
                               "mech Base TP\n"
                               "base  window.trace_length=100000\n"
                               "base window.interval=100000\n"
                               "axis hier.l2.size   256k  1M\n";
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(sloppy, spec, &error)) << error;
    EXPECT_EQ(spec.canonicalText(), two_variant_text);

    // Round trip: parsing the canonical form reproduces it exactly,
    // and the hash agrees.
    SweepSpec again;
    ASSERT_TRUE(
        SweepSpec::parse(spec.canonicalText(), again, &error))
        << error;
    EXPECT_EQ(again.canonicalText(), spec.canonicalText());
    EXPECT_EQ(again.hash(), spec.hash());

    EXPECT_EQ(spec.benchmarks(),
              (std::vector<std::string>{"swim", "gzip"}));
    EXPECT_EQ(spec.mechanisms(),
              (std::vector<std::string>{"Base", "TP"}));
    ASSERT_EQ(spec.axes().size(), 1u);
    EXPECT_EQ(spec.axes()[0].key, "hier.l2.size");
}

TEST(SweepSpec, CanonicalHashIsStable)
{
    // The pinned hash of the reference spec. This value must be
    // identical on every host and every build — it is the identity
    // shards use to agree they are running the same sweep. If this
    // test fails, the canonical format changed: that is a breaking
    // change to every .sweep file in the wild, not a test to update
    // lightly.
    EXPECT_EQ(twoVariantSpec().hash(), 0x25fe8c1c05818c0aull);
}

TEST(SweepSpec, UnknownAxisKeyRejectedUsefully)
{
    SweepSpec spec;
    std::string error;
    const std::string bad = "sweep-spec v1\n"
                            "bench swim\n"
                            "mech Base\n"
                            "axis hier.l3.size 1M 2M\n";
    ASSERT_FALSE(SweepSpec::parse(bad, spec, &error));
    // The error names the line, the offending key, and the known
    // keys — enough to fix the file without reading source code.
    EXPECT_NE(error.find("line 4"), std::string::npos) << error;
    EXPECT_NE(error.find("hier.l3.size"), std::string::npos) << error;
    EXPECT_NE(error.find("known keys"), std::string::npos) << error;
    EXPECT_NE(error.find("hier.l2.size"), std::string::npos) << error;
}

TEST(SweepSpec, RejectsBadValuesBenchmarksAndStructure)
{
    SweepSpec spec;
    std::string error;

    // A value the parameter rejects, at parse time.
    ASSERT_FALSE(SweepSpec::parse("sweep-spec v1\nbench swim\n"
                                  "mech Base\naxis hier.l2.size big\n",
                                  spec, &error));
    EXPECT_NE(error.find("hier.l2.size"), std::string::npos) << error;

    // Unknown benchmark and mechanism names.
    ASSERT_FALSE(SweepSpec::parse(
        "sweep-spec v1\nbench quake3\nmech Base\n", spec, &error));
    EXPECT_NE(error.find("quake3"), std::string::npos) << error;
    ASSERT_FALSE(SweepSpec::parse(
        "sweep-spec v1\nbench swim\nmech Turbo\n", spec, &error));
    EXPECT_NE(error.find("Turbo"), std::string::npos) << error;

    // Missing header / sections; duplicate axis.
    ASSERT_FALSE(SweepSpec::parse("bench swim\n", spec, &error));
    ASSERT_FALSE(
        SweepSpec::parse("sweep-spec v1\nmech Base\n", spec, &error));
    ASSERT_FALSE(SweepSpec::parse("sweep-spec v1\nbench swim\n"
                                  "mech Base\naxis core.rob 64 128\n"
                                  "axis core.rob 32 256\n",
                                  spec, &error));
    EXPECT_NE(error.find("duplicate axis"), std::string::npos)
        << error;
}

TEST(SweepSpec, VariantExpansionFirstAxisSlowest)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("sweep-spec v1\nbench swim\n"
                                 "mech Base\n"
                                 "axis core.rob 64 128\n"
                                 "axis hier.l2.size 256k 512k 1M\n",
                                 spec, &error))
        << error;
    ASSERT_EQ(spec.variantCount(), 6u);
    const std::vector<ConfigVariant> vars = spec.variants();
    EXPECT_EQ(vars[0].name, "core.rob=64,hier.l2.size=256k");
    EXPECT_EQ(vars[1].name, "core.rob=64,hier.l2.size=512k");
    EXPECT_EQ(vars[2].name, "core.rob=64,hier.l2.size=1M");
    EXPECT_EQ(vars[3].name, "core.rob=128,hier.l2.size=256k");
    EXPECT_EQ(vars[5].name, "core.rob=128,hier.l2.size=1M");

    const RunConfig cfg = spec.resolve(vars[2]);
    EXPECT_EQ(cfg.system.core.ruu_size, 64u);
    EXPECT_EQ(cfg.system.hier.l2.size, 1u << 20);
}

TEST(SweepSpec, TraceSlotsSharedAcrossNonWindowVariants)
{
    // An L2-size axis leaves the trace window untouched: both
    // variants of each benchmark must share one trace slot, so the
    // trace is materialized (and refcounted) once.
    const TaskPlan plan(twoVariantSpec());
    EXPECT_EQ(plan.variantCount(), 2u);
    EXPECT_EQ(plan.size(), 8u);
    EXPECT_EQ(plan.traceSlotCount(), 2u); // one per benchmark

    // A window axis splits the slots.
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(
        "sweep-spec v1\nbench swim gzip\nmech Base\n"
        "axis window.trace_length 100k 200k\n", spec, &error))
        << error;
    const TaskPlan windowed(spec);
    EXPECT_EQ(windowed.traceSlotCount(), 4u); // benchmark x window

    // Distinct configs fingerprint distinctly: variants can never
    // collide in the result store.
    EXPECT_NE(plan.configHash(0), plan.configHash(1));
}

TEST(SweepSpec, TwoVariantShardDeterminism)
{
    const SweepSpec spec = twoVariantSpec();
    const TaskPlan plan(spec);
    const std::size_t total = plan.size();

    // Single-process reference.
    SweepResult reference;
    {
        EngineOptions opts;
        opts.threads = 2;
        ExperimentEngine engine(opts);
        reference = engine.run(spec);
    }

    // Two shards, separate engines and stores — the separate-host
    // workflow — then merge by concatenation.
    std::vector<std::string> shard_paths;
    for (std::size_t i = 0; i < 2; ++i) {
        const std::string path =
            tmpPath("shard" + std::to_string(i) + ".store");
        std::remove(path.c_str());
        shard_paths.push_back(path);
        ResultStore store(path);
        EngineOptions opts;
        opts.threads = 2;
        opts.store = &store;
        opts.shard = ShardSpec{i, 2};
        ExperimentEngine engine(opts);
        engine.run(spec);
        EXPECT_EQ(engine.lastRun().executed +
                      engine.lastRun().skipped,
                  total);
    }

    const std::string merged_path = tmpPath("merged.store");
    std::remove(merged_path.c_str());
    ResultStore merged(merged_path);
    std::size_t merged_records = 0;
    for (const auto &path : shard_paths)
        merged_records += merged.merge(path);
    EXPECT_EQ(merged_records, total);
    EXPECT_EQ(merged.compact(), total);

    // Resuming the whole plan from the merged-and-compacted store
    // executes nothing and reproduces the reference bit-for-bit.
    EngineOptions opts;
    opts.threads = 2;
    opts.store = &merged;
    ExperimentEngine engine(opts);
    const SweepResult combined = engine.run(spec);
    EXPECT_EQ(engine.lastRun().executed, 0u);
    EXPECT_EQ(engine.lastRun().resumed, total);
    expectIdentical(reference, combined);

    for (const auto &path : shard_paths)
        std::remove(path.c_str());
    std::remove(merged_path.c_str());
}

TEST(SweepSpec, InterruptedVariantSweepResumesOnlyMissingTasks)
{
    const SweepSpec spec = twoVariantSpec();
    const TaskPlan plan(spec);
    const std::size_t total = plan.size();

    // Complete the sweep once to obtain its full store...
    const std::string full_path = tmpPath("resume_full.store");
    std::remove(full_path.c_str());
    SweepResult reference;
    {
        ResultStore store(full_path);
        EngineOptions opts;
        opts.threads = 2;
        opts.store = &store;
        ExperimentEngine engine(opts);
        reference = engine.run(spec);
        ASSERT_EQ(store.size(), total);
    }

    // ..."kill" it after 3 completed tasks: records are appended and
    // flushed as runs finish, so this is exactly the store an
    // interrupted sweep leaves.
    const std::string half_path = tmpPath("resume_half.store");
    const std::size_t kept =
        truncateStoreFile(full_path, half_path, 3);
    ASSERT_EQ(kept, 3u);

    ResultStore store(half_path);
    EngineOptions opts;
    opts.threads = 2;
    opts.store = &store;
    ExperimentEngine engine(opts);
    const SweepResult resumed = engine.run(spec);
    EXPECT_EQ(engine.lastRun().resumed, kept);
    EXPECT_EQ(engine.lastRun().executed, total - kept);
    EXPECT_EQ(store.size(), total);
    expectIdentical(reference, resumed);

    std::remove(full_path.c_str());
    std::remove(half_path.c_str());
}

TEST(SweepSpec, SingleWrapsClassicApiWithHistoricIndices)
{
    // The one-variant plan must reduce to the historic flat index
    // b * mechanisms + m, so stores written before the variant
    // dimension existed resume unchanged.
    RunConfig cfg;
    cfg.scale.simpoint_trace = 100'000;
    cfg.scale.simpoint_interval = 100'000;
    const TaskPlan plan({"Base", "TP"}, {"swim", "gzip"}, cfg);
    EXPECT_EQ(plan.variantCount(), 1u);
    EXPECT_EQ(plan.variantName(0), "base");
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan.task(i).index, i);
        EXPECT_EQ(plan.task(i).index,
                  plan.task(i).b * 2 + plan.task(i).m);
        EXPECT_EQ(plan.task(i).v, 0u);
    }
    EXPECT_EQ(plan.configHash(0), fingerprintConfig(cfg));
}
