/** @file Result store unit tests: fingerprint sensitivity, exact
 *  record round-trips, schema skipping, and merge-by-append. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/result_store.hh"
#include "sim/fingerprint.hh"

using namespace microlib;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_store_" + name;
}

/** Exact double identity, including the -0.0 / 0.0 distinction. */
bool
sameBits(double a, double b)
{
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

ResultRecord
sampleRecord()
{
    ResultRecord rec;
    rec.key.benchmark = "swim";
    rec.key.mechanism = "GHB";
    rec.key.config_hash = 0x0123456789abcdefull;
    rec.key.trace_seed = 42;
    rec.core.instructions = 100000;
    rec.core.cycles = 73211;
    rec.core.ipc = 100000.0 / 73211.0; // not exactly representable
    rec.core.loads = 20123;
    rec.core.stores = 9877;
    rec.core.branches = 15000;
    rec.core.mispredicts = 600;
    rec.stats["l1d.demand_misses"] = 1234;
    rec.stats["dram.avg_latency"] = 1.0 / 3.0;
    rec.stats["weird.tiny"] = 4.9406564584124654e-324; // denormal min
    rec.stats["weird.huge"] = 1.7976931348623157e308;
    rec.stats["weird.negzero"] = -0.0;
    return rec;
}

} // namespace

TEST(Fingerprint, HexRoundTrip)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{123});
    fp.mix(std::string("hello"));
    fp.mix(0.25);
    const std::string hex = fp.hex();
    ASSERT_EQ(hex.size(), 16u);
    std::uint64_t back = 0;
    ASSERT_TRUE(Fingerprint::parseHex(hex, back));
    EXPECT_EQ(back, fp.value());

    std::uint64_t junk;
    EXPECT_FALSE(Fingerprint::parseHex("xyz", junk));
    EXPECT_FALSE(Fingerprint::parseHex("00112233445566zz", junk));
}

TEST(Fingerprint, FieldsDoNotAlias)
{
    Fingerprint a, b;
    a.mix(std::string("ab"));
    a.mix(std::string("c"));
    b.mix(std::string("a"));
    b.mix(std::string("bc"));
    EXPECT_NE(a.value(), b.value());
}

TEST(ConfigFingerprint, StableForEqualConfigs)
{
    const RunConfig a, b;
    EXPECT_EQ(fingerprintConfig(a), fingerprintConfig(b));
}

TEST(ConfigFingerprint, SensitiveToEveryLayer)
{
    const RunConfig base;
    const std::uint64_t h0 = fingerprintConfig(base);

    RunConfig c = base;
    c.system.hier.l1d.size *= 2;
    EXPECT_NE(fingerprintConfig(c), h0) << "cache geometry";

    c = base;
    c.system.hier.l1d.finite_mshr = !c.system.hier.l1d.finite_mshr;
    EXPECT_NE(fingerprintConfig(c), h0) << "realism flag";

    c = base;
    c.system.hier.sdram.cas_latency += 1;
    EXPECT_NE(fingerprintConfig(c), h0) << "SDRAM timing";

    c = base;
    c.system.hier.memory = MemoryModelKind::ConstantLatency;
    EXPECT_NE(fingerprintConfig(c), h0) << "memory model";

    c = base;
    c.system.core.mispredict_rate += 0.01;
    EXPECT_NE(fingerprintConfig(c), h0) << "core parameter";

    c = base;
    c.scale.simpoint_trace *= 2;
    EXPECT_NE(fingerprintConfig(c), h0) << "trace window";

    c = base;
    c.selection = TraceSelection::Arbitrary;
    EXPECT_NE(fingerprintConfig(c), h0) << "trace selection";

    c = base;
    c.mech.second_guess = true;
    EXPECT_NE(fingerprintConfig(c), h0) << "mechanism option";

    c = base;
    c.mech.tcp_buffer = 1;
    EXPECT_NE(fingerprintConfig(c), h0) << "mechanism knob";
}

TEST(ResultKey, DistinguishesBenchmarkMechanismAndSeed)
{
    const std::uint64_t h = fingerprintConfig(RunConfig{});
    const ResultKey a = makeResultKey("swim", "GHB", h);
    EXPECT_EQ(a.schema, result_store_schema);
    EXPECT_NE(a.str(), makeResultKey("mcf", "GHB", h).str());
    EXPECT_NE(a.str(), makeResultKey("swim", "TP", h).str());
    ResultKey other_seed = a;
    other_seed.trace_seed += 1;
    EXPECT_NE(a.str(), other_seed.str());
    ResultKey other_schema = a;
    other_schema.schema += 1;
    EXPECT_NE(a.str(), other_schema.str());
}

TEST(ResultStoreFormat, RecordRoundTripsBitExactly)
{
    const ResultRecord rec = sampleRecord();
    const std::string line = ResultStore::formatRecord(rec);

    ResultRecord back;
    ASSERT_TRUE(ResultStore::parseRecord(line, back));
    EXPECT_EQ(back.key.str(), rec.key.str());
    EXPECT_EQ(back.core.instructions, rec.core.instructions);
    EXPECT_EQ(back.core.cycles, rec.core.cycles);
    EXPECT_EQ(back.core.loads, rec.core.loads);
    EXPECT_EQ(back.core.stores, rec.core.stores);
    EXPECT_EQ(back.core.branches, rec.core.branches);
    EXPECT_EQ(back.core.mispredicts, rec.core.mispredicts);
    EXPECT_TRUE(sameBits(back.core.ipc, rec.core.ipc));
    ASSERT_EQ(back.stats.size(), rec.stats.size());
    for (const auto &kv : rec.stats) {
        ASSERT_TRUE(back.stats.count(kv.first)) << kv.first;
        EXPECT_TRUE(sameBits(back.stats.at(kv.first), kv.second))
            << kv.first;
    }
}

TEST(ResultStoreFormat, RejectsForeignSchemaAndGarbage)
{
    ResultRecord rec;
    EXPECT_FALSE(ResultStore::parseRecord("", rec));
    EXPECT_FALSE(ResultStore::parseRecord("not a record", rec));
    EXPECT_FALSE(ResultStore::parseRecord(
        "v999 fp=0000000000000000 seed=1 bench=swim mech=TP "
        "instr=1 cycles=1 loads=0 stores=0 branches=0 mispred=0 "
        "ipc=0x1p+0 |",
        rec));
    // A torn write (truncated line) must not parse either.
    const std::string good = ResultStore::formatRecord(sampleRecord());
    EXPECT_FALSE(
        ResultStore::parseRecord(good.substr(0, good.size() / 3), rec));
}

TEST(ResultStore, PersistsAcrossReopen)
{
    const std::string path = tmpPath("reopen.store");
    std::remove(path.c_str());

    const ResultRecord rec = sampleRecord();
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 0u);
        store.put(rec);
        EXPECT_EQ(store.size(), 1u);
    }
    ResultStore store(path);
    EXPECT_EQ(store.size(), 1u);
    const auto found = store.find(rec.key);
    ASSERT_TRUE(found.has_value());
    EXPECT_TRUE(sameBits(found->core.ipc, rec.core.ipc));

    // A different fingerprint misses: stale configs never match.
    ResultKey stale = rec.key;
    stale.config_hash ^= 1;
    EXPECT_FALSE(store.find(stale).has_value());
    std::remove(path.c_str());
}

TEST(ResultStore, LoadSkipsUnreadableLines)
{
    const std::string path = tmpPath("mixed.store");
    {
        std::ofstream out(path);
        out << ResultStore::formatRecord(sampleRecord()) << "\n";
        out << "v999 some future schema line\n";
        out << "garbage that is not a record\n";
        out << "\n";
    }
    ResultStore store(path);
    EXPECT_EQ(store.size(), 1u);
    std::remove(path.c_str());
}

TEST(ResultStore, MergesByConcatenation)
{
    const std::string a = tmpPath("shard_a.store");
    const std::string b = tmpPath("shard_b.store");
    const std::string merged = tmpPath("merged.store");
    std::remove(a.c_str());
    std::remove(b.c_str());

    ResultRecord ra = sampleRecord();
    ResultRecord rb = sampleRecord();
    rb.key.benchmark = "mcf";
    rb.core.ipc = 0.75;
    {
        ResultStore sa(a), sb(b);
        sa.put(ra);
        sb.put(rb);
    }
    {
        // Shard merge = file concatenation, nothing smarter.
        std::ofstream out(merged, std::ios::trunc);
        for (const auto &src : {a, b})
            out << std::ifstream(src).rdbuf();
    }
    ResultStore store(merged);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.find(ra.key).has_value());
    EXPECT_TRUE(store.find(rb.key).has_value());
    for (const auto &p : {a, b, merged})
        std::remove(p.c_str());
}

TEST(ResultStore, MergeRefusesItsOwnBackingFile)
{
    // put() appends to the backing file while merge() is still
    // reading it, so a self-merge would chase its own tail forever
    // (and fill the disk). Must refuse and leave the store intact.
    const std::string path = tmpPath("self_merge.store");
    std::remove(path.c_str());
    ResultStore store(path);
    store.put(sampleRecord());
    EXPECT_EQ(store.merge(path), 0u);
    EXPECT_EQ(store.size(), 1u);
    std::remove(path.c_str());
}

TEST(ResultStore, DuplicateKeyLastWins)
{
    const std::string path = tmpPath("dup.store");
    std::remove(path.c_str());
    ResultRecord first = sampleRecord();
    ResultRecord second = sampleRecord();
    second.core.ipc = 2.0;
    {
        ResultStore store(path);
        store.put(first);
        store.put(second);
        EXPECT_EQ(store.size(), 1u);
    }
    ResultStore store(path);
    ASSERT_EQ(store.size(), 1u);
    EXPECT_TRUE(sameBits(store.find(first.key)->core.ipc, 2.0));
    std::remove(path.c_str());
}

TEST(ResultStoreFormat, EveryProperPrefixIsRejected)
{
    // The torn-write contract, exhaustively: a record truncated at
    // ANY byte — mid-stats included, where a cut hexfloat is still a
    // valid strtod prefix — must fail to parse, so a killed writer
    // costs exactly one run, never a silently corrupted one.
    const std::string line = ResultStore::formatRecord(sampleRecord());
    ResultRecord rec;
    ASSERT_TRUE(ResultStore::parseRecord(line, rec));
    for (std::size_t n = 0; n < line.size(); ++n)
        EXPECT_FALSE(ResultStore::parseRecord(line.substr(0, n), rec))
            << "prefix of length " << n << " parsed";
}

TEST(ResultStore, MemoryOnlyStoreWorks)
{
    ResultStore store;
    const ResultRecord rec = sampleRecord();
    EXPECT_FALSE(store.find(rec.key).has_value());
    store.put(rec);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.find(rec.key).has_value());
    EXPECT_TRUE(store.path().empty());
}

namespace
{

/** Count the record lines of a store file. */
std::size_t
countLines(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line))
        if (!line.empty())
            ++n;
    return n;
}

/** Whole file contents, for byte-identity checks. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::string out, line;
    while (std::getline(in, line)) {
        out += line;
        out += '\n';
    }
    return out;
}

/** A family of distinct records (benchmark names differ). */
ResultRecord
numberedRecord(unsigned i)
{
    ResultRecord rec = sampleRecord();
    rec.key.benchmark = "bench" + std::to_string(i);
    rec.core.cycles = 1000 + i;
    rec.core.ipc = 100000.0 / rec.core.cycles;
    return rec;
}

} // namespace

TEST(ResultStore, CompactRewritesToOneRecordPerKey)
{
    const std::string path = tmpPath("compact.store");
    std::remove(path.c_str());
    {
        ResultStore store(path);
        // A rerun-after-merge store: every record appended twice
        // (merge-by-concatenation keeps duplicate lines; only the
        // in-memory view is last-wins).
        for (unsigned i = 0; i < 4; ++i)
            store.put(numberedRecord(i));
        for (unsigned i = 0; i < 4; ++i)
            store.put(numberedRecord(i));
        ASSERT_EQ(store.size(), 4u);
        ASSERT_EQ(countLines(path), 8u);

        EXPECT_EQ(store.compact(), 4u);
        EXPECT_EQ(store.size(), 4u);
        EXPECT_EQ(countLines(path), 4u);

        // The append stream survives compaction: later puts extend
        // the compacted file.
        store.put(numberedRecord(9));
        EXPECT_EQ(countLines(path), 5u);
    }
    // A reload of the compacted store sees every record.
    ResultStore reloaded(path);
    EXPECT_EQ(reloaded.size(), 5u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(reloaded.find(numberedRecord(i).key).has_value());
    std::remove(path.c_str());
}

TEST(ResultStore, CompactIsAPureFunctionOfTheRecordSet)
{
    // Two stores holding the same records in different append orders
    // (and one with duplicates) must compact to byte-identical
    // files — the property that makes compacted stores diffable.
    const std::string a_path = tmpPath("compact_a.store");
    const std::string b_path = tmpPath("compact_b.store");
    std::remove(a_path.c_str());
    std::remove(b_path.c_str());
    {
        ResultStore a(a_path);
        for (unsigned i = 0; i < 5; ++i)
            a.put(numberedRecord(i));
        ResultStore b(b_path);
        for (unsigned i = 5; i-- > 0;)
            b.put(numberedRecord(i));
        b.put(numberedRecord(2)); // duplicate line
        a.compact();
        b.compact();
    }
    const std::string a_bytes = slurp(a_path);
    EXPECT_FALSE(a_bytes.empty());
    EXPECT_EQ(a_bytes, slurp(b_path));
    std::remove(a_path.c_str());
    std::remove(b_path.c_str());
}

TEST(ResultStore, CompactOnMemoryStoreIsANoOp)
{
    ResultStore store;
    store.put(sampleRecord());
    EXPECT_EQ(store.compact(), 1u);
    EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStore, QueryOpenCreatesNoFile)
{
    // A status/result query against a store that does not exist yet
    // must not conjure an empty file: the append stream opens lazily
    // on the first put(), never on construction.
    const std::string path = tmpPath("query_only.store");
    std::remove(path.c_str());
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_FALSE(store.find(sampleRecord().key).has_value());
    }
    EXPECT_FALSE(std::ifstream(path).good())
        << "query-only open created " << path;
    {
        ResultStore store(path);
        store.put(sampleRecord());
    }
    EXPECT_TRUE(std::ifstream(path).good());
    std::remove(path.c_str());
}

TEST(ResultStoreDeath, ReadOnlyStoreRefusesEveryWrite)
{
    const std::string path = tmpPath("ro.store");
    const std::string other = tmpPath("ro_other.store");
    std::remove(path.c_str());
    std::remove(other.c_str());
    {
        ResultStore rw(path);
        rw.put(sampleRecord());
        ResultStore src(other);
        src.put(sampleRecord());
    }
    ResultStore ro(path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(ro.mode(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(ro.size(), 1u); // reads work
    EXPECT_TRUE(ro.find(sampleRecord().key).has_value());
    EXPECT_EXIT(ro.put(sampleRecord()),
                testing::ExitedWithCode(1), "read-only");
    EXPECT_EXIT(ro.merge(other), testing::ExitedWithCode(1),
                "read-only");
    EXPECT_EXIT(ro.compact(), testing::ExitedWithCode(1),
                "read-only");
    std::remove(path.c_str());
    std::remove(other.c_str());
}
