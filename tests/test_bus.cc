/** @file Unit tests for the split-transaction bus. */

#include <gtest/gtest.h>

#include "mem/bus.hh"

using namespace microlib;

TEST(Bus, SingleBeatTiming)
{
    Bus bus(BusParams{"b", 32, 1});
    EXPECT_EQ(bus.transfer(10, 32), 11u);
    EXPECT_EQ(bus.transfers().value(), 1u);
}

TEST(Bus, MultiBeatTransfer)
{
    Bus bus(BusParams{"b", 32, 1});
    // 64 bytes on a 32-byte bus = 2 beats.
    EXPECT_EQ(bus.transfer(10, 64), 12u);
}

TEST(Bus, SlowBusBeats)
{
    // FSB-like: 64 bytes per beat, 5 CPU cycles per beat.
    Bus bus(BusParams{"fsb", 64, 5});
    const Cycle done = bus.transfer(0, 64);
    EXPECT_EQ(done, 5u);
}

TEST(Bus, ContentionSerializesBeats)
{
    Bus bus(BusParams{"b", 32, 1});
    EXPECT_EQ(bus.transfer(10, 32), 11u);
    EXPECT_EQ(bus.transfer(10, 32), 12u); // same cycle: queued
}

TEST(Bus, BackfillAroundFutureBooking)
{
    Bus bus(BusParams{"b", 32, 1});
    bus.transfer(100, 32);           // response booked in the future
    EXPECT_EQ(bus.transfer(5, 32), 6u); // early transfer unaffected
}

TEST(Bus, BusyCycleAccounting)
{
    Bus bus(BusParams{"b", 32, 1});
    bus.transfer(0, 64);
    bus.transfer(0, 32);
    EXPECT_EQ(bus.busyCycles().value(), 3u);
}

TEST(Bus, ZeroByteTransfersStillTakeABeat)
{
    Bus bus(BusParams{"b", 32, 1});
    EXPECT_EQ(bus.transfer(0, 0), 1u);
}
