/** @file Unit tests for the fundamental type helpers. */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace microlib;

TEST(Types, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(32), 5u);
    EXPECT_EQ(floorLog2(1ull << 20), 20u);
}

TEST(Types, AlignDown)
{
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200u);
    EXPECT_EQ(alignDown(0x1200, 64), 0x1200u);
    EXPECT_EQ(alignDown(0x123f, 32), 0x1220u);
}

TEST(Types, AlignUp)
{
    EXPECT_EQ(alignUp(0x1234, 64), 0x1240u);
    EXPECT_EQ(alignUp(0x1200, 64), 0x1200u);
    EXPECT_EQ(alignUp(1, 4096), 4096u);
}

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Types, LineAlignmentIdentity)
{
    // alignDown/alignUp agree on aligned addresses for all
    // power-of-two granularities used by the models.
    for (std::uint64_t g : {8, 32, 64, 4096}) {
        for (Addr a : {Addr(0), Addr(g), Addr(7 * g)}) {
            EXPECT_EQ(alignDown(a, g), a);
            EXPECT_EQ(alignUp(a, g), a);
        }
    }
}
