/** @file The sweep service stack: LeaseQueue pull scheduling, the
 *  JSONL wire protocol, JobTable dedup, and microlib_sweepd end to
 *  end — an in-process daemon, real pull workers, byte-identical
 *  results vs a local run, resubmit dedup (zero re-execution),
 *  worker-death requeue and strike-to-quarantine. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/exit_codes.hh"
#include "core/lease.hh"
#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/service_backend.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"
#include "service/job_table.hh"
#include "service/net.hh"
#include "service/protocol.hh"
#include "service/sweepd.hh"
#include "service/worker.hh"
#include "sim/version.hh"

using namespace microlib;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_service_" + name;
}

/** A tiny spec-file sweep: 2 benchmarks x 2 mechanisms = 4 tasks at
 *  a short trace length, the same scale the shard tests use. */
const char *const kSpecText = "sweep-spec v1\n"
                              "bench swim gzip\n"
                              "mech Base TP\n"
                              "base window.trace_length=100000\n"
                              "base window.interval=100000\n";

SweepSpec
parseSpec(const std::string &text = kSpecText)
{
    SweepSpec spec;
    std::string error;
    if (!SweepSpec::parse(text, spec, &error))
        ADD_FAILURE() << "spec parse: " << error;
    return spec;
}

std::size_t
countEvents(const std::string &progress_path, const std::string &name)
{
    std::ifstream in(progress_path);
    std::string line;
    std::size_t n = 0;
    const std::string needle = "{\"event\":\"" + name + "\"";
    while (std::getline(in, line))
        if (line.compare(0, needle.size(), needle) == 0)
            ++n;
    return n;
}

/** Bit-identity over everything the store persists (the same check
 *  the shard tests apply to merged shard results). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.matrices.size(), b.matrices.size());
    for (std::size_t v = 0; v < a.matrices.size(); ++v) {
        const MatrixResult &ma = a.matrices[v];
        const MatrixResult &mb = b.matrices[v];
        ASSERT_EQ(ma.mechanisms, mb.mechanisms);
        ASSERT_EQ(ma.benchmarks, mb.benchmarks);
        for (std::size_t m = 0; m < ma.mechanisms.size(); ++m) {
            for (std::size_t bi = 0; bi < ma.benchmarks.size();
                 ++bi) {
                EXPECT_EQ(ma.ipc[m][bi], mb.ipc[m][bi])
                    << ma.mechanisms[m] << "/" << ma.benchmarks[bi];
                EXPECT_EQ(ma.outputs[m][bi].stats,
                          mb.outputs[m][bi].stats)
                    << ma.mechanisms[m] << "/" << ma.benchmarks[bi];
            }
        }
    }
}

// ---------------------------------------------------------------
// LeaseQueue

TEST(LeaseQueue, LeasesLowestPendingInPlanOrder)
{
    LeaseQueue q({5, 1, 3, 7, 9});
    EXPECT_EQ(q.lease("a", 2), (std::vector<std::size_t>{1, 3}));
    EXPECT_EQ(q.lease("b", 2), (std::vector<std::size_t>{5, 7}));
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_EQ(q.leasedCount(), 4u);
    EXPECT_EQ(*q.ownerOf(1), "a");
    EXPECT_EQ(*q.ownerOf(7), "b");
    EXPECT_EQ(q.ownerOf(9), nullptr);
    EXPECT_FALSE(q.done());
}

TEST(LeaseQueue, CompleteRemovesOnlyLeasedTasks)
{
    LeaseQueue q({0, 1, 2});
    q.lease("a", 2); // 0, 1
    EXPECT_TRUE(q.complete(0));
    EXPECT_FALSE(q.complete(0)); // already gone
    EXPECT_FALSE(q.complete(2)); // pending, not leased
    EXPECT_EQ(q.leasedCount(), 1u);
}

TEST(LeaseQueue, ReleaseRequeuesAnOwnersTasks)
{
    LeaseQueue q({0, 1, 2, 3});
    q.lease("dead", 3); // 0,1,2
    q.complete(1);
    EXPECT_EQ(q.release("dead"), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(q.pendingCount(), 3u); // 0,2 back + 3
    EXPECT_EQ(q.leasedCount(), 0u);
    // The released tasks go to the next asker, lowest first.
    EXPECT_EQ(q.lease("b", 2), (std::vector<std::size_t>{0, 2}));
}

TEST(LeaseQueue, RequeueReturnsOneLeasedTask)
{
    LeaseQueue q({4, 5});
    q.lease("a", 2);
    EXPECT_TRUE(q.requeue(5));
    EXPECT_FALSE(q.requeue(5)); // now pending, not leased
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_EQ(q.leasedCount(), 1u);
}

TEST(LeaseQueue, MarkDoneDropsPendingAndLeased)
{
    LeaseQueue q({0, 1, 2, 3});
    q.lease("a", 2); // 0,1
    std::vector<char> done(4, 0);
    done[1] = 1; // leased to a, but its record landed
    done[3] = 1; // still pending
    EXPECT_EQ(q.markDone(done), 2u);
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_EQ(q.leasedCount(), 1u);
    EXPECT_EQ(q.ownerOf(1), nullptr);
}

TEST(LeaseQueue, QuarantineRemovesFromEitherState)
{
    LeaseQueue q({0, 1, 2});
    q.lease("a", 1); // 0
    EXPECT_TRUE(q.quarantine(0));  // leased
    EXPECT_TRUE(q.quarantine(2));  // pending
    EXPECT_FALSE(q.quarantine(2)); // gone
    EXPECT_EQ(q.quarantined(), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_FALSE(q.done());
    q.lease("b", 4);
    q.complete(1);
    EXPECT_TRUE(q.done());
}

// ---------------------------------------------------------------
// Wire protocol

TEST(Protocol, BuilderAndFindersRoundTrip)
{
    const std::string line =
        ProtocolMsg("cmd", "submit")
            .field("spec", std::string("line1\nline \"2\" \\ tail"))
            .field("count", std::uint64_t{42})
            .field("tasks", std::vector<std::size_t>{3, 1, 4})
            .str();
    std::string kind;
    ASSERT_TRUE(protocolKind(line, "cmd", kind));
    EXPECT_EQ(kind, "submit");
    EXPECT_FALSE(protocolKind(line, "reply", kind));

    std::string spec;
    ASSERT_TRUE(jsonFindString(line, "spec", spec));
    EXPECT_EQ(spec, "line1\nline \"2\" \\ tail");

    std::uint64_t count = 0;
    ASSERT_TRUE(jsonFindU64(line, "count", count));
    EXPECT_EQ(count, 42u);

    std::vector<std::size_t> tasks;
    ASSERT_TRUE(jsonFindArray(line, "tasks", tasks));
    EXPECT_EQ(tasks, (std::vector<std::size_t>{3, 1, 4}));
}

TEST(Protocol, MissingKeysAndEmptyArray)
{
    const std::string line = ProtocolMsg("reply", "lease")
                                 .field("ok", std::uint64_t{1})
                                 .field("tasks",
                                        std::vector<std::size_t>{})
                                 .str();
    std::vector<std::size_t> tasks = {99};
    ASSERT_TRUE(jsonFindArray(line, "tasks", tasks));
    EXPECT_TRUE(tasks.empty());
    std::string s;
    EXPECT_FALSE(jsonFindString(line, "job", s));
    std::uint64_t u = 0;
    EXPECT_FALSE(jsonFindU64(line, "count", u));
}

TEST(Protocol, KeyTextInsideAValueIsNotAField)
{
    // A value containing what looks like another field must not
    // shadow the real one: interior quotes are escaped, so the raw
    // byte pattern "key":" only ever opens a true field.
    const std::string line =
        ProtocolMsg("cmd", "submit")
            .field("spec", std::string("\"job\":\"fake\""))
            .field("job", std::string("real"))
            .str();
    std::string job;
    ASSERT_TRUE(jsonFindString(line, "job", job));
    EXPECT_EQ(job, "real");
}

TEST(Version, SchemaTupleNamesEveryPersistedFormat)
{
    const std::string tuple = schemaTuple();
    EXPECT_NE(tuple.find("store="), std::string::npos);
    EXPECT_NE(tuple.find("arena="), std::string::npos);
    EXPECT_NE(tuple.find("sweephash="), std::string::npos);
    const std::string v = versionString("microlib_sweep");
    EXPECT_EQ(v.compare(0, 15, "microlib_sweep "), 0);
    EXPECT_NE(v.find(tuple), std::string::npos);
}

// ---------------------------------------------------------------
// JobTable dedup

TEST(JobTable, IdenticalSpecsNameTheSameJob)
{
    ResultStore store; // in-memory
    JobTable table;
    const SupervisionPolicy policy;
    auto first = table.submit(parseSpec(), store, policy);
    ASSERT_NE(first.job, nullptr);
    EXPECT_FALSE(first.deduped);
    EXPECT_EQ(first.job->total(), 4u);
    EXPECT_EQ(first.job->prefilled, 0u);
    EXPECT_FALSE(first.job->completed);

    auto second = table.submit(parseSpec(), store, policy);
    EXPECT_TRUE(second.deduped);
    EXPECT_EQ(second.job, first.job);
    EXPECT_EQ(table.size(), 1u);
}

TEST(JobTable, LeasableJobsServeOldestFirst)
{
    ResultStore store;
    JobTable table;
    const SupervisionPolicy policy;
    auto sub = table.submit(parseSpec(), store, policy);
    EXPECT_EQ(table.nextLeasable(), sub.job);
    // Drain the queue: no longer leasable, job completes.
    const auto tasks = sub.job->queue.lease("w", 100);
    EXPECT_EQ(tasks.size(), 4u);
    EXPECT_EQ(table.nextLeasable(), nullptr);
    for (const std::size_t t : tasks)
        sub.job->queue.complete(t);
    table.sweepCompleted();
    EXPECT_TRUE(sub.job->completed);
}

// ---------------------------------------------------------------
// End to end: daemon + workers + clients, in process

/** One raw-protocol client connection (what microlib_sweep's
 *  ServiceBackend speaks, hand-rolled for the tests). */
class RawClient
{
  public:
    explicit RawClient(const std::string &addr)
    {
        std::string error;
        const int fd = connectTo(addr, &error);
        EXPECT_GE(fd, 0) << error;
        _sock = std::make_unique<LineSocket>(fd);
    }

    std::string exchange(const std::string &request)
    {
        std::string reply;
        EXPECT_TRUE(_sock->sendLine(request) &&
                    _sock->recvLine(reply))
            << "daemon gone during: " << request;
        return reply;
    }

    void sendRaw(const std::string &line)
    {
        EXPECT_TRUE(_sock->sendLine(line));
    }

    void disconnect() { _sock->close(); }

  private:
    std::unique_ptr<LineSocket> _sock;
};

struct ServiceFixture
{
    SweepServiceOptions opts;
    std::unique_ptr<SweepService> service;
    std::thread loop;

    explicit ServiceFixture(const std::string &tag,
                            std::size_t lease_size = 1,
                            std::size_t strikes = 3)
    {
        opts.listen = "unix:" + tmpPath(tag + ".sock");
        opts.store_path = tmpPath(tag + ".store");
        opts.progress_path = tmpPath(tag + ".progress");
        opts.lease_size = lease_size;
        opts.quarantine_strikes = strikes;
        std::remove(opts.store_path.c_str());
        std::remove(opts.progress_path.c_str());
        service = std::make_unique<SweepService>(opts);
        std::string error;
        if (!service->start(&error)) {
            ADD_FAILURE() << "service start: " << error;
            return;
        }
        loop = std::thread([this] { service->run(); });
    }

    /** Stop the loop, then destroy the service: the destructor
     *  closes every worker connection, which is exactly the EOF
     *  that makes runWorkerLoop return exit_ok. */
    void shutdown()
    {
        if (service && loop.joinable()) {
            service->requestStop();
            loop.join();
        }
        service.reset();
    }

    ~ServiceFixture() { shutdown(); }
};

TEST(SweepService, ByteIdenticalResultsDedupAndWorkerDeath)
{
    const SweepSpec spec = parseSpec();
    const TaskPlan plan(spec);

    // The local reference run (plain thread-pool backend).
    EngineOptions ref_opts;
    ExperimentEngine ref_engine(ref_opts);
    const SweepResult reference = ref_engine.runPlan(plan);

    ServiceFixture fix("e2e", /*lease_size=*/1);
    ASSERT_TRUE(fix.service);

    // Before any real worker attaches: a fake worker leases the
    // first task, heartbeats it and dies. The daemon must requeue
    // it (with a strike) and the job must still complete below.
    {
        RawClient client(fix.service->address());
        client.exchange(ProtocolMsg("cmd", "submit")
                            .field("spec", spec.canonicalText())
                            .str());
        RawClient fake(fix.service->address());
        std::string reply = fake.exchange(
            ProtocolMsg("cmd", "hello")
                .field("name", std::string("fake"))
                .field("schema", schemaTuple())
                .field("store", tmpPath("absent.store"))
                .str());
        std::uint64_t ok = 0;
        ASSERT_TRUE(jsonFindU64(reply, "ok", ok));
        ASSERT_EQ(ok, 1u);
        reply = fake.exchange(ProtocolMsg("cmd", "lease").str());
        std::vector<std::size_t> tasks;
        ASSERT_TRUE(jsonFindArray(reply, "tasks", tasks));
        ASSERT_EQ(tasks.size(), 1u);
        fake.sendRaw(ProgressEvent("heartbeat")
                         .field("task", std::uint64_t(tasks[0]))
                         .str());
        fake.disconnect();
    }

    // Two real workers, each with its own store, pulling leases.
    WorkerOptions w0, w1;
    w0.service = w1.service = fix.service->address();
    w0.store_path = tmpPath("e2e_w0.store");
    w1.store_path = tmpPath("e2e_w1.store");
    std::remove(w0.store_path.c_str());
    std::remove(w1.store_path.c_str());
    w0.name = "w0";
    w1.name = "w1";
    w0.idle_poll_s = w1.idle_poll_s = 0.02;
    int rc0 = -1, rc1 = -1;
    std::thread t0([&] { rc0 = runWorkerLoop(w0); });
    std::thread t1([&] { rc1 = runWorkerLoop(w1); });

    // The service-backend client: submits, polls, fetches — the
    // result must be bit-identical to the local reference.
    ServiceBackend backend(fix.service->address(), 0.02);
    EngineOptions client_opts;
    client_opts.backend = &backend;
    ExperimentEngine client_engine(client_opts);
    const SweepResult via_service = client_engine.runPlan(plan);
    expectIdentical(reference, via_service);
    EXPECT_EQ(client_engine.lastRun().executed, plan.size());
    EXPECT_TRUE(client_engine.lastRun().quarantined.empty());

    // The fake worker's death was supervised: requeue + died event.
    EXPECT_GE(countEvents(fix.opts.progress_path, "worker"), 3u);
    {
        std::ifstream in(fix.opts.progress_path);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        EXPECT_NE(all.find("\"state\":\"died\""), std::string::npos);
    }
    const std::size_t runs_before =
        countEvents(fix.opts.progress_path, "run");
    EXPECT_EQ(runs_before, plan.size());

    // Resubmit: whole-sweep dedup — completes instantly from the
    // existing job, executes nothing new.
    {
        RawClient client(fix.service->address());
        const std::string reply = client.exchange(
            ProtocolMsg("cmd", "submit")
                .field("spec", spec.canonicalText())
                .str());
        std::string dedup, state;
        ASSERT_TRUE(jsonFindString(reply, "dedup", dedup));
        ASSERT_TRUE(jsonFindString(reply, "state", state));
        EXPECT_EQ(dedup, "job");
        EXPECT_EQ(state, "done");
    }
    ExperimentEngine resub_engine(client_opts);
    const SweepResult resubmitted = resub_engine.runPlan(plan);
    expectIdentical(reference, resubmitted);
    EXPECT_EQ(countEvents(fix.opts.progress_path, "run"),
              runs_before);

    fix.shutdown();
    t0.join();
    t1.join();
    EXPECT_EQ(rc0, exit_ok);
    EXPECT_EQ(rc1, exit_ok);
}

TEST(SweepService, StrikesQuarantineAPoisonTask)
{
    const SweepSpec spec = parseSpec();
    const TaskPlan plan(spec);

    // One strike quarantines: the fake worker's single death below
    // condemns the task it heartbeat.
    ServiceFixture fix("quar", /*lease_size=*/1, /*strikes=*/1);
    ASSERT_TRUE(fix.service);

    {
        RawClient client(fix.service->address());
        client.exchange(ProtocolMsg("cmd", "submit")
                            .field("spec", spec.canonicalText())
                            .str());
        RawClient fake(fix.service->address());
        fake.exchange(ProtocolMsg("cmd", "hello")
                          .field("name", std::string("poisoned"))
                          .field("schema", schemaTuple())
                          .field("store", tmpPath("absent2.store"))
                          .str());
        const std::string reply =
            fake.exchange(ProtocolMsg("cmd", "lease").str());
        std::vector<std::size_t> tasks;
        ASSERT_TRUE(jsonFindArray(reply, "tasks", tasks));
        ASSERT_EQ(tasks.size(), 1u);
        EXPECT_EQ(tasks[0], 0u); // lowest plan index leases first
        fake.sendRaw(ProgressEvent("heartbeat")
                         .field("task", std::uint64_t{0})
                         .str());
        fake.disconnect();
    }

    WorkerOptions w;
    w.service = fix.service->address();
    w.store_path = tmpPath("quar_w.store");
    std::remove(w.store_path.c_str());
    w.idle_poll_s = 0.02;
    int rc = -1;
    std::thread t([&] { rc = runWorkerLoop(w); });

    // The client sees the job complete with task 0 excluded: its
    // cell is FAULT, the run counts it quarantined, and the job's
    // exit status is exit_quarantined.
    ServiceBackend backend(fix.service->address(), 0.02);
    EngineOptions client_opts;
    client_opts.backend = &backend;
    ExperimentEngine client_engine(client_opts);
    const SweepResult res = client_engine.runPlan(plan);
    EXPECT_EQ(client_engine.lastRun().quarantined,
              (std::vector<std::size_t>{0}));
    const PlanTask &poisoned = plan.task(0);
    EXPECT_TRUE(
        res.matrix(poisoned.v).faulted(poisoned.m, poisoned.b));

    {
        RawClient client(fix.service->address());
        const std::string reply = client.exchange(
            ProtocolMsg("cmd", "status")
                .field("job", jobIdOf(spec))
                .str());
        std::uint64_t exit = 0;
        ASSERT_TRUE(jsonFindU64(reply, "exit", exit));
        EXPECT_EQ(exit, std::uint64_t(exit_quarantined));
        std::vector<std::size_t> quarantined;
        ASSERT_TRUE(jsonFindArray(reply, "quarantined", quarantined));
        EXPECT_EQ(quarantined, (std::vector<std::size_t>{0}));
    }
    EXPECT_EQ(countEvents(fix.opts.progress_path, "quarantine"), 1u);

    fix.shutdown();
    t.join();
    EXPECT_EQ(rc, exit_ok);
}

TEST(SweepService, HelloRefusesSchemaMismatchAndReadOnlyRefusals)
{
    ServiceFixture fix("refuse");
    ASSERT_TRUE(fix.service);

    // A worker from a different build (wrong schema tuple) must be
    // turned away before it can corrupt anything.
    RawClient wrong(fix.service->address());
    std::string reply = wrong.exchange(
        ProtocolMsg("cmd", "hello")
            .field("name", std::string("old"))
            .field("schema", std::string("store=0;arena=0;sweephash=0"))
            .field("store", tmpPath("old.store"))
            .str());
    std::uint64_t ok = 1;
    ASSERT_TRUE(jsonFindU64(reply, "ok", ok));
    EXPECT_EQ(ok, 0u);
    std::string why;
    ASSERT_TRUE(jsonFindString(reply, "error", why));
    EXPECT_NE(why.find("schema mismatch"), std::string::npos);

    // Leasing without a hello is a protocol error, not a lease.
    reply = wrong.exchange(ProtocolMsg("cmd", "lease").str());
    ASSERT_TRUE(jsonFindU64(reply, "ok", ok));
    EXPECT_EQ(ok, 0u);
    fix.shutdown();

    // A read-only daemon serves completed sweeps only: a submit
    // needing execution is refused and leaves no job behind, and
    // workers are refused outright.
    SweepServiceOptions ro = fix.opts;
    ro.listen = "unix:" + tmpPath("ro.sock");
    ro.read_only = true;
    SweepService service(ro);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;
    std::thread loop([&] { service.run(); });

    RawClient client(service.address());
    reply = client.exchange(ProtocolMsg("cmd", "submit")
                                .field("spec", kSpecText)
                                .str());
    ASSERT_TRUE(jsonFindU64(reply, "ok", ok));
    EXPECT_EQ(ok, 0u);
    reply = client.exchange(ProtocolMsg("cmd", "hello")
                                .field("name", std::string("w"))
                                .field("schema", schemaTuple())
                                .field("store", tmpPath("w.store"))
                                .str());
    ASSERT_TRUE(jsonFindU64(reply, "ok", ok));
    EXPECT_EQ(ok, 0u);

    service.requestStop();
    loop.join();
}

} // namespace
