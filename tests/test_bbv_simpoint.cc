/** @file Unit tests for BBV profiling and SimPoint selection. */

#include <gtest/gtest.h>

#include "trace/simpoint.hh"
#include "trace/spec_suite.hh"

using namespace microlib;

namespace
{

/** A two-phase program: streams, then pointer chase, alternating. */
SpecProgram
twoPhaseProgram()
{
    SpecProgram p;
    p.name = "twophase";
    p.seed = 5;
    p.nominal_length = 400'000;

    StreamKernel::Params sp;
    sp.base = heap_base;
    sp.bytes = 1 << 16;
    PointerChaseKernel::Params cp;
    cp.base = heap_base + (1 << 20);
    cp.node_bytes = 64;
    cp.node_count = 512;
    p.kernels = {
        [sp] {
            return std::unique_ptr<PatternKernel>(new StreamKernel(sp));
        },
        [cp] {
            return std::unique_ptr<PatternKernel>(
                new PointerChaseKernel(cp));
        },
    };
    p.segments = {{0, 50'000}, {1, 50'000}};
    p.loop_from = 0;
    return p;
}

} // namespace

TEST(Bbv, VectorsNormalized)
{
    const BbvProfile prof =
        collectBbv(twoPhaseProgram(), 200'000, 50'000);
    ASSERT_EQ(prof.vectors.size(), 4u);
    for (const auto &v : prof.vectors) {
        double sum = 0.0;
        for (const float x : v)
            sum += x;
        EXPECT_NEAR(sum, 1.0, 1e-3);
    }
}

TEST(Bbv, PhasesProduceDistinctVectors)
{
    const BbvProfile prof =
        collectBbv(twoPhaseProgram(), 200'000, 50'000);
    // Intervals 0/2 are phase A, 1/3 phase B: within-phase distance
    // must be far below cross-phase distance.
    const double same = bbvDistance(prof.vectors[0], prof.vectors[2]);
    const double cross = bbvDistance(prof.vectors[0], prof.vectors[1]);
    EXPECT_LT(same * 5, cross);
}

TEST(KMeans, SeparatesPhases)
{
    const BbvProfile prof =
        collectBbv(twoPhaseProgram(), 400'000, 50'000);
    const KMeansResult km = kMeans(prof.vectors, 2);
    // Alternating assignment pattern.
    for (std::size_t i = 2; i < prof.vectors.size(); ++i)
        EXPECT_EQ(km.assignment[i], km.assignment[i - 2]);
    EXPECT_NE(km.assignment[0], km.assignment[1]);
}

TEST(KMeans, Deterministic)
{
    const BbvProfile prof =
        collectBbv(twoPhaseProgram(), 400'000, 50'000);
    const KMeansResult a = kMeans(prof.vectors, 3);
    const KMeansResult b = kMeans(prof.vectors, 3);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaDecreasesWithK)
{
    const BbvProfile prof =
        collectBbv(specProgram("gcc"), 2'000'000, 200'000);
    const double i1 = kMeans(prof.vectors, 1).inertia;
    const double i4 = kMeans(prof.vectors, 4).inertia;
    EXPECT_LE(i4, i1 + 1e-9);
}

TEST(SimPoint, ChoiceInRange)
{
    const SimPointChoice sp =
        findSimPoint(twoPhaseProgram(), 50'000, 2);
    EXPECT_LT(sp.start_instruction, 400'000u);
    EXPECT_EQ(sp.start_instruction, sp.interval_index * 50'000);
    EXPECT_GT(sp.dominant_weight, 0.0);
    EXPECT_LE(sp.dominant_weight, 1.0);
}

TEST(SimPoint, Deterministic)
{
    const SimPointChoice a = findSimPoint(twoPhaseProgram(), 50'000, 2);
    const SimPointChoice b = findSimPoint(twoPhaseProgram(), 50'000, 2);
    EXPECT_EQ(a.start_instruction, b.start_instruction);
}
