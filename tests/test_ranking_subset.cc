/** @file Unit & property tests for ranking and subset-winner
 *  enumeration (the paper's Table 6 machinery). */

#include <gtest/gtest.h>

#include "core/ranking.hh"
#include "core/subset_winners.hh"
#include "sim/random.hh"

using namespace microlib;

namespace
{

/** Build a MatrixResult directly from an IPC table. */
MatrixResult
matrixOf(const std::vector<std::string> &mechs,
         const std::vector<std::vector<double>> &ipc)
{
    MatrixResult m;
    m.mechanisms = mechs;
    for (std::size_t b = 0; b < ipc[0].size(); ++b)
        m.benchmarks.push_back("b" + std::to_string(b));
    m.ipc = ipc;
    m.outputs.assign(mechs.size(),
                     std::vector<RunOutput>(m.benchmarks.size()));
    return m;
}

} // namespace

TEST(Ranking, OrdersBySpeedup)
{
    const MatrixResult m = matrixOf(
        {"Base", "X", "Y"},
        {{1.0, 1.0}, {1.5, 1.5}, {1.2, 1.2}});
    const auto ranking = rankMechanisms(m);
    EXPECT_EQ(ranking[0].mechanism, "X");
    EXPECT_EQ(ranking[1].mechanism, "Y");
    EXPECT_EQ(ranking[2].mechanism, "Base");
    EXPECT_EQ(rankOf(ranking, "X"), 1u);
    EXPECT_EQ(rankOf(ranking, "Base"), 3u);
}

TEST(Ranking, TotalOrderBreaksExactTiesByAcronym)
{
    // rankBefore is the documented total order: speedup descending,
    // exact ties broken by acronym ascending.
    EXPECT_TRUE(rankBefore({"Z", 1.5, 0}, {"A", 1.2, 0}));
    EXPECT_FALSE(rankBefore({"A", 1.2, 0}, {"Z", 1.5, 0}));
    EXPECT_TRUE(rankBefore({"A", 1.2, 0}, {"Z", 1.2, 0}));
    EXPECT_FALSE(rankBefore({"Z", 1.2, 0}, {"A", 1.2, 0}));
    // Irreflexive, as strict weak ordering demands.
    EXPECT_FALSE(rankBefore({"A", 1.2, 0}, {"A", 1.2, 0}));

    // Two mechanisms with bit-identical speedups rank by name, not by
    // row order: X and Y tie exactly, so X outranks Y.
    const MatrixResult m = matrixOf(
        {"Base", "Y", "X"},
        {{1.0, 1.0}, {1.5, 1.5}, {1.5, 1.5}});
    const auto ranking = rankMechanisms(m);
    EXPECT_EQ(ranking[0].mechanism, "X");
    EXPECT_EQ(ranking[1].mechanism, "Y");
    EXPECT_EQ(rankOf(ranking, "X"), 1u);
    EXPECT_EQ(rankOf(ranking, "Y"), 2u);
}

TEST(Ranking, OrderIndependentOfMatrixRowOrder)
{
    // The same (mechanism, ipc-row) pairs in any row order must
    // produce the identical ranking — the property cliff detection
    // relies on: a flip can only come from results changing, never
    // from catalog order. Includes an exact tie (P and Q).
    const std::vector<std::string> mechs = {"Base", "P", "Q", "R"};
    const std::vector<std::vector<double>> ipc = {
        {1.0, 1.0}, {1.3, 1.3}, {1.3, 1.3}, {1.7, 0.9}};

    const auto reference = rankMechanisms(matrixOf(mechs, ipc));
    const std::vector<std::size_t> perms[] = {
        {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
    for (const auto &perm : perms) {
        std::vector<std::string> pm;
        std::vector<std::vector<double>> pipc;
        for (const std::size_t i : perm) {
            pm.push_back(mechs[i]);
            pipc.push_back(ipc[i]);
        }
        const auto ranking = rankMechanisms(matrixOf(pm, pipc));
        ASSERT_EQ(ranking.size(), reference.size());
        for (std::size_t i = 0; i < ranking.size(); ++i) {
            EXPECT_EQ(ranking[i].mechanism, reference[i].mechanism);
            EXPECT_EQ(ranking[i].avg_speedup,
                      reference[i].avg_speedup);
            EXPECT_EQ(ranking[i].rank, reference[i].rank);
        }
    }
}

TEST(Ranking, SubsetChangesWinner)
{
    // X wins benchmark 0, Y wins benchmark 1.
    const MatrixResult m = matrixOf(
        {"Base", "X", "Y"},
        {{1.0, 1.0}, {2.0, 1.0}, {1.0, 1.8}});
    EXPECT_EQ(rankMechanisms(m, {0})[0].mechanism, "X");
    EXPECT_EQ(rankMechanisms(m, {1})[0].mechanism, "Y");
}

TEST(Ranking, SensitivitySpread)
{
    const MatrixResult m = matrixOf(
        {"Base", "X"},
        {{1.0, 1.0}, {2.0, 1.01}});
    const auto sens = benchmarkSensitivity(m);
    EXPECT_NEAR(sens[0], 1.0, 1e-9);
    EXPECT_NEAR(sens[1], 0.01, 1e-9);
}

TEST(SubsetWinners, SingleMechanismAlwaysWins)
{
    const auto w = subsetWinners({{1.0, 2.0, 3.0}});
    for (std::size_t n = 1; n <= 3; ++n)
        EXPECT_TRUE(w[n][0]);
}

TEST(SubsetWinners, DominatedNeverWins)
{
    // Mechanism 1 strictly dominates mechanism 0 on every benchmark.
    const auto w = subsetWinners({{1.0, 1.0, 1.0}, {1.1, 1.2, 1.3}});
    for (std::size_t n = 1; n <= 3; ++n) {
        EXPECT_FALSE(w[n][0]);
        EXPECT_TRUE(w[n][1]);
    }
}

TEST(SubsetWinners, SpecialistWinsSmallSubsetsOnly)
{
    // Mechanism 0: great on benchmark 0, bad elsewhere.
    // Mechanism 1: steady everywhere.
    const auto w = subsetWinners(
        {{3.0, 0.5, 0.5, 0.5}, {1.2, 1.2, 1.2, 1.2}});
    EXPECT_TRUE(w[1][0]);  // picks its benchmark
    EXPECT_TRUE(w[2][0]);  // 3.0 + 0.5 > 1.2 + 1.2
    EXPECT_FALSE(w[4][0]); // full suite: the generalist wins
    EXPECT_TRUE(w[4][1]);
}

class SubsetWinnersRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(SubsetWinnersRandom, MatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t mechs = 2 + rng.nextBounded(4);
    const std::size_t benchs = 2 + rng.nextBounded(9);
    std::vector<std::vector<double>> speedup(
        mechs, std::vector<double>(benchs));
    for (auto &row : speedup)
        for (auto &v : row)
            v = 0.5 + rng.nextDouble();

    const auto fast = subsetWinners(speedup);
    const auto slow = subsetWinnersBruteForce(speedup);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t n = 1; n < fast.size(); ++n)
        EXPECT_EQ(fast[n], slow[n]) << "subset size " << n;
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, SubsetWinnersRandom,
                         ::testing::Range(0, 12));

TEST(SubsetWinners, FullSuiteWinnerIsGlobalWinner)
{
    Rng rng(77);
    std::vector<std::vector<double>> speedup(
        5, std::vector<double>(10));
    for (auto &row : speedup)
        for (auto &v : row)
            v = 0.5 + rng.nextDouble();
    const auto w = subsetWinners(speedup);
    // The winner for N = all must be the argmax of total speedup.
    std::size_t best = 0;
    double best_sum = -1;
    for (std::size_t m = 0; m < 5; ++m) {
        double s = 0;
        for (const double v : speedup[m])
            s += v;
        if (s > best_sum) {
            best_sum = s;
            best = m;
        }
    }
    EXPECT_TRUE(w[10][best]);
}
