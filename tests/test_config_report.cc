/** @file Unit tests for parameter tables and report rendering. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "core/baseline_config.hh"
#include "sim/config.hh"
#include "sim/report.hh"

using namespace microlib;

TEST(ParamTable, SectionsAndRows)
{
    ParamTable t;
    t.section("Core");
    t.add("width", 8);
    t.add("freq", "2 GHz");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("-- Core --"), std::string::npos);
    EXPECT_NE(out.find("width"), std::string::npos);
    EXPECT_NE(out.find("2 GHz"), std::string::npos);
}

TEST(Table, AlignedOutput)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.rowNumeric("b", {2.5}, 1);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("2.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("demo");
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only one"}), "");
}

TEST(BaselineConfig, Table1Values)
{
    const BaselineConfig cfg = makeBaseline();
    EXPECT_EQ(cfg.core.ruu_size, 128u);
    EXPECT_EQ(cfg.core.lsq_size, 128u);
    EXPECT_EQ(cfg.core.fetch_width, 8u);
    EXPECT_EQ(cfg.hier.l1d.size, 32u * 1024);
    EXPECT_EQ(cfg.hier.l1d.assoc, 1u);
    EXPECT_EQ(cfg.hier.l1d.line, 32u);
    EXPECT_EQ(cfg.hier.l1d.ports, 4u);
    EXPECT_EQ(cfg.hier.l1d.mshrs, 8u);
    EXPECT_EQ(cfg.hier.l2.size, 1024u * 1024);
    EXPECT_EQ(cfg.hier.l2.assoc, 4u);
    EXPECT_EQ(cfg.hier.l2.line, 64u);
    EXPECT_EQ(cfg.hier.l2.latency, 12u);
    EXPECT_EQ(cfg.hier.sdram.banks, 4u);
    EXPECT_EQ(cfg.hier.sdram.rows, 8192u);
    EXPECT_EQ(cfg.hier.sdram.cas_latency, 30u);
    EXPECT_EQ(cfg.hier.sdram.ras_cycle, 110u);
    EXPECT_EQ(cfg.hier.sdram.queue_entries, 32u);
}

TEST(BaselineConfig, VariantsDiffer)
{
    const BaselineConfig c70 = makeConstantMemoryBaseline(70);
    EXPECT_EQ(c70.hier.memory, MemoryModelKind::ConstantLatency);
    EXPECT_EQ(c70.hier.const_latency, 70u);

    const BaselineConfig scaled = makeScaledSdramBaseline();
    EXPECT_LT(scaled.hier.sdram.cas_latency,
              makeBaseline().hier.sdram.cas_latency);

    const BaselineConfig ss =
        makeSimpleScalarCacheBaseline(makeBaseline());
    EXPECT_FALSE(ss.hier.l1d.finite_mshr);
    EXPECT_FALSE(ss.hier.l2.pipeline_stalls);
}

TEST(BaselineConfig, DescribeProducesTable1)
{
    const ParamTable t = describeBaseline(makeBaseline());
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("SDRAM"), std::string::npos);
    EXPECT_NE(os.str().find("128-RUU"), std::string::npos);
}

TEST(TraceScale, DefaultsArePaperScaled)
{
    // MICROLIB_QUICK=1 (the CI ctest environment) shrinks every
    // window 4x; the paper-scale assertion must account for it.
    const char *quick = std::getenv("MICROLIB_QUICK");
    const std::uint64_t div = (quick && quick[0] == '1') ? 4 : 1;
    const TraceScale s = makeTraceScale();
    EXPECT_EQ(s.simpoint_trace, 2'000'000u / div);  // 500 M / 250
    EXPECT_GT(s.arbitrary_length, s.simpoint_trace);
}
