/** @file Unit tests for the out-of-order core timing model. */

#include <gtest/gtest.h>

#include "core/baseline_config.hh"
#include "cpu/ooo_core.hh"

using namespace microlib;

namespace
{

BaselineConfig
cfg()
{
    BaselineConfig c = makeBaseline();
    c.core.mispredict_rate = 0.0; // deterministic tests
    return c;
}

Trace
computeTrace(std::size_t n, std::uint8_t dep, OpClass op = OpClass::IntAlu)
{
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord r;
        r.op = op;
        r.pc = 0x400000; // single line: one ifetch
        r.dep1 = dep;
        t.push_back(r);
    }
    return t;
}

} // namespace

TEST(Core, WidthBoundsIpc)
{
    const BaselineConfig c = cfg();
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    const CoreResult r = core.run(computeTrace(100000, 0), h);
    EXPECT_LE(r.ipc, 8.0);
    EXPECT_GT(r.ipc, 6.0); // independent IntAlu: near commit width
}

TEST(Core, DependenceChainSerializes)
{
    const BaselineConfig c = cfg();
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    const CoreResult r = core.run(computeTrace(100000, 1), h);
    // dep distance 1 with 1-cycle latency: ~1 IPC.
    EXPECT_NEAR(r.ipc, 1.0, 0.1);
}

TEST(Core, DepDistanceScalesIlp)
{
    const BaselineConfig c = cfg();
    Hierarchy h1(c.hier, nullptr), h3(c.hier, nullptr);
    OoOCore core(c.core);
    const double ipc1 = core.run(computeTrace(50000, 1), h1).ipc;
    const double ipc3 = core.run(computeTrace(50000, 3), h3).ipc;
    EXPECT_GT(ipc3, 2.5 * ipc1 * 0.9); // 3 parallel chains
}

TEST(Core, FuContentionLimitsThroughput)
{
    const BaselineConfig c = cfg();
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    // FpMult: 2 units with issue interval 2 -> 1 op/cycle cap.
    const CoreResult r =
        core.run(computeTrace(50000, 0, OpClass::FpMult), h);
    EXPECT_LE(r.ipc, 1.1);
}

TEST(Core, LoadLatencyPropagatesToDependents)
{
    const BaselineConfig c = cfg();
    // Loads that miss everywhere followed by dependent compute.
    Trace t;
    for (std::size_t i = 0; i < 20000; ++i) {
        TraceRecord r;
        if (i % 2 == 0) {
            r.op = OpClass::Load;
            r.addr = static_cast<std::uint32_t>(0x10000000 + i * 32);
            r.dep1 = 0;
        } else {
            r.op = OpClass::IntAlu;
            r.dep1 = 1; // consumes the load
        }
        r.pc = 0x400000;
        t.push_back(r);
    }
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    const CoreResult r = core.run(t, h);
    EXPECT_LT(r.ipc, 2.0); // memory-bound
    EXPECT_EQ(r.loads, 10000u);
}

TEST(Core, StoresArePosted)
{
    const BaselineConfig c = cfg();
    Trace t;
    for (std::size_t i = 0; i < 20000; ++i) {
        TraceRecord r;
        r.op = i % 4 == 0 ? OpClass::Store : OpClass::IntAlu;
        r.addr = static_cast<std::uint32_t>(0x10000000 + i * 8);
        r.pc = 0x400000;
        t.push_back(r);
    }
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    const CoreResult r = core.run(t, h);
    // Stores don't stall commit: IPC stays compute-like even though
    // every store line misses.
    EXPECT_GT(r.ipc, 2.0);
    EXPECT_EQ(r.stores, 5000u);
}

TEST(Core, DeterministicAcrossRuns)
{
    const BaselineConfig c = cfg();
    const Trace t = computeTrace(30000, 2);
    Hierarchy h1(c.hier, nullptr), h2(c.hier, nullptr);
    OoOCore core(c.core);
    const double a = core.run(t, h1).ipc;
    const double b = core.run(t, h2).ipc;
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Core, MispredictsSlowFetch)
{
    BaselineConfig c = cfg();
    Trace t;
    for (std::size_t i = 0; i < 50000; ++i) {
        TraceRecord r;
        r.op = i % 5 == 0 ? OpClass::Branch : OpClass::IntAlu;
        r.pc = 0x400000 + (i % 64) * 4;
        t.push_back(r);
    }
    Hierarchy h1(c.hier, nullptr);
    OoOCore perfect(c.core);
    const double ipc_perfect = perfect.run(t, h1).ipc;

    c.core.mispredict_rate = 0.2;
    Hierarchy h2(c.hier, nullptr);
    OoOCore sloppy(c.core);
    const CoreResult r = sloppy.run(t, h2);
    EXPECT_GT(r.mispredicts, 0u);
    EXPECT_LT(r.ipc, ipc_perfect);
}

TEST(Core, EmptyTrace)
{
    const BaselineConfig c = cfg();
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    const CoreResult r = core.run(Trace{}, h);
    EXPECT_EQ(r.instructions, 0u);
    const CoreResult rv = core.run(TraceView{}, h);
    EXPECT_EQ(rv.instructions, 0u);
}

class CoreWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreWidthTest, IpcNeverExceedsWidth)
{
    BaselineConfig c = cfg();
    c.core.fetch_width = GetParam();
    c.core.commit_width = GetParam();
    Hierarchy h(c.hier, nullptr);
    OoOCore core(c.core);
    const CoreResult r = core.run(computeTrace(50000, 0), h);
    EXPECT_LE(r.ipc, static_cast<double>(GetParam()) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Widths, CoreWidthTest,
                         ::testing::Values(1u, 2u, 4u, 8u));
