/** @file Unit tests for the functional memory image. */

#include <gtest/gtest.h>

#include "trace/memory_image.hh"

using namespace microlib;

TEST(MemoryImage, WriteThenRead)
{
    MemoryImage img;
    img.write(0x1000, 42);
    EXPECT_EQ(img.read(0x1000), 42u);
}

TEST(MemoryImage, UnalignedAccessTruncatesToWord)
{
    MemoryImage img;
    img.write(0x1003, 7); // lands in word 0x1000
    EXPECT_EQ(img.read(0x1000), 7u);
    EXPECT_EQ(img.read(0x1007), 7u);
}

TEST(MemoryImage, DefaultValuesDeterministic)
{
    MemoryImage a, b;
    EXPECT_EQ(a.read(0xdeadbeef), b.read(0xdeadbeef));
    EXPECT_NE(a.read(0x1000), a.read(0x1008)); // different words differ
}

TEST(MemoryImage, DefaultValuesNeverLookLikeHeapPointers)
{
    MemoryImage img;
    for (Addr a = 0x10000000; a < 0x10000000 + 4096; a += 8) {
        const Word v = img.read(a);
        // defaultValue() forces the top byte, above any heap address.
        EXPECT_GE(v, 0xff00000000000000ull);
    }
}

TEST(MemoryImage, TouchedTracking)
{
    MemoryImage img;
    EXPECT_FALSE(img.touched(0x2000));
    img.write(0x2000, 1);
    EXPECT_TRUE(img.touched(0x2000));
    EXPECT_FALSE(img.touched(0x2008));
}

TEST(MemoryImage, ReadLine)
{
    MemoryImage img;
    img.write(0x1000, 1);
    img.write(0x1008, 2);
    std::vector<Word> words;
    img.readLine(0x1010, 32, words); // line 0x1000..0x101f
    ASSERT_EQ(words.size(), 4u);
    EXPECT_EQ(words[0], 1u);
    EXPECT_EQ(words[1], 2u);
}

TEST(MemoryImage, CopySemantics)
{
    MemoryImage img;
    img.write(0x3000, 5);
    MemoryImage copy = img;
    copy.write(0x3000, 9);
    EXPECT_EQ(img.read(0x3000), 5u); // deep copy
    EXPECT_EQ(copy.read(0x3000), 9u);
}

TEST(MemoryImage, SparseAllocation)
{
    MemoryImage img;
    img.write(0x0, 1);
    img.write(0x10000000, 1);
    EXPECT_EQ(img.allocatedPages(), 2u);
}
