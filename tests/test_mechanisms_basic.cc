/** @file Behavioural unit tests for TP, VC, SP and FVC, plus a
 *  parameterized smoke sweep over every registered mechanism. */

#include <gtest/gtest.h>

#include "core/baseline_config.hh"
#include "core/registry.hh"
#include "mechanisms/frequent_value_cache.hh"
#include "mechanisms/stride_prefetch.hh"
#include "mechanisms/tagged_prefetch.hh"
#include "mechanisms/victim_cache.hh"
#include "trace/kernels.hh"

using namespace microlib;

namespace
{

struct Rig
{
    BaselineConfig cfg = makeBaseline();
    std::shared_ptr<MemoryImage> image = std::make_shared<MemoryImage>();
    std::unique_ptr<Hierarchy> hier;

    Rig() { hier = std::make_unique<Hierarchy>(cfg.hier, image); }

    void
    attach(CacheMechanism &mech)
    {
        mech.bind(*hier);
        hier->setClient(&mech);
    }
};

} // namespace

TEST(TaggedPrefetch, PrefetchesNextLineOnL2Miss)
{
    Rig rig;
    MechanismConfig mc;
    TaggedPrefetch tp(mc);
    rig.attach(tp);
    rig.hier->load(0x10000000, 0x400000, 100); // L2 miss
    EXPECT_EQ(tp.prefetches_issued.value(), 1u);
    EXPECT_TRUE(rig.hier->l2Probe(0x10000040)); // next 64B line
}

TEST(TaggedPrefetch, ChainsOnFirstUseOfPrefetchedLine)
{
    Rig rig;
    MechanismConfig mc;
    TaggedPrefetch tp(mc);
    rig.attach(tp);
    rig.hier->load(0x10000000, 0x400000, 100);
    // Touch the prefetched line: its first use must prefetch the
    // following line (the tag-bit behaviour).
    rig.hier->load(0x10000040, 0x400000, 2000);
    EXPECT_TRUE(rig.hier->l2Probe(0x10000080));
}

TEST(VictimCache, SavesConflictMiss)
{
    Rig rig;
    MechanismConfig mc;
    VictimCache vc(mc);
    rig.attach(vc);
    // Direct-mapped L1: A and B 32 KB apart conflict.
    const Addr a = 0x10000000, b = 0x10008000;
    Cycle t = 100;
    t = rig.hier->load(a, 0x400000, t);
    t = rig.hier->load(b, 0x400000, t + 10);   // evicts A into the VC
    const Cycle before = rig.hier->l1d().side_fills.value();
    rig.hier->load(a, 0x400000, t + 10);       // VC hit: fast swap
    EXPECT_EQ(rig.hier->l1d().side_fills.value(), before + 1);
    EXPECT_GE(vc.side_hits.value(), 1u);
}

TEST(VictimCache, CapacityBounded)
{
    Rig rig;
    MechanismConfig mc;
    VictimCache vc(mc);
    rig.attach(vc);
    EXPECT_EQ(vc.buffer().capacity(), 512u / 32u); // Table 3: 512 B
}

TEST(StridePrefetch, DetectsSteadyStride)
{
    Rig rig;
    MechanismConfig mc;
    StridePrefetch sp(mc);
    rig.attach(sp);
    Cycle t = 100;
    // Same PC, constant 256-byte stride: init -> transient -> steady.
    for (int i = 0; i < 6; ++i)
        t = rig.hier->load(0x10000000 + i * 256, 0x400abc, t + 50);
    EXPECT_GT(sp.prefetches_issued.value(), 0u);
}

TEST(StridePrefetch, IgnoresIrregularPcs)
{
    Rig rig;
    MechanismConfig mc;
    StridePrefetch sp(mc);
    rig.attach(sp);
    Rng rng(3);
    Cycle t = 100;
    for (int i = 0; i < 50; ++i)
        t = rig.hier->load(0x10000000 + rng.nextBounded(1 << 20) * 8,
                           0x400abc, t + 50);
    EXPECT_EQ(sp.prefetches_issued.value(), 0u);
}

TEST(StridePrefetch, LookaheadCoversNewLines)
{
    Rig rig;
    MechanismConfig mc;
    StridePrefetch sp(mc);
    rig.attach(sp);
    Cycle t = 100;
    // Small stride (8 B): prefetch targets must still land on lines
    // ahead of the access point.
    for (int i = 0; i < 40; ++i)
        t = rig.hier->load(0x10000000 + i * 8, 0x400abc, t + 20);
    EXPECT_GT(sp.prefetches_issued.value(), 0u);
    EXPECT_TRUE(rig.hier->l2Probe(0x10000000 + 40 * 8 + 64));
}

TEST(FrequentValueCache, CompressibleLineRecognition)
{
    Rig rig;
    // A line of frequent values and a line of garbage.
    for (int w = 0; w < 4; ++w) {
        rig.image->write(0x10000000 + w * 8, frequentValue(w));
        rig.image->write(0x10000020 + w * 8, 0xdeadbeefcafef00dull);
    }
    MechanismConfig mc;
    FrequentValueCache fvc(mc);
    rig.attach(fvc);
    EXPECT_TRUE(fvc.lineCompressible(0x10000000));
    EXPECT_FALSE(fvc.lineCompressible(0x10000020));
}

TEST(FrequentValueCache, ServesEvictedFrequentLine)
{
    Rig rig;
    for (int w = 0; w < 4; ++w)
        rig.image->write(0x10000000 + w * 8, frequentValue(w));
    MechanismConfig mc;
    FrequentValueCache fvc(mc);
    rig.attach(fvc);
    Cycle t = 100;
    t = rig.hier->load(0x10000000, 0x400000, t);
    t = rig.hier->load(0x10008000, 0x400000, t + 10); // evict it
    rig.hier->load(0x10000000, 0x400000, t + 10);
    EXPECT_EQ(fvc.side_hits.value(), 1u);
    EXPECT_GE(fvc.compressible_evictions.value(), 1u);
}

// ------------------------------------------------------------------
// Parameterized sweep: every registered mechanism must wire up, run
// a mixed reference stream, stay self-consistent and report hardware.
// ------------------------------------------------------------------

class MechanismSmokeTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MechanismSmokeTest, RunsAndReportsHardware)
{
    Rig rig;
    MechanismConfig mc;
    auto mech = makeMechanism(GetParam(), mc);
    ASSERT_NE(mech, nullptr);
    rig.attach(*mech);

    Rng rng(42);
    Cycle t = 100;
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = 0x10000000 + rng.nextBounded(1 << 16) * 8;
        if (rng.chance(0.3))
            t = rig.hier->store(addr, 0x400000 + (i % 8) * 4, t + 2);
        else
            t = rig.hier->load(addr, 0x400000 + (i % 8) * 4, t + 2);
        ASSERT_LT(t, Cycle(1) << 40) << "timestamps must stay sane";
    }

    const auto hw = mech->hardware();
    EXPECT_FALSE(hw.empty());
    for (const auto &s : hw)
        EXPECT_FALSE(s.name.empty());

    StatSet stats;
    mech->registerStats(stats);
    EXPECT_TRUE(stats.has("mech." + GetParam() + ".prefetches_issued"));

    ParamTable params;
    mech->describe(params);
    EXPECT_GT(params.rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismSmokeTest,
    ::testing::Values("TP", "VC", "SP", "Markov", "FVC", "DBCP", "TKVC",
                      "TK", "CDP", "CDPSP", "TCP", "GHB"));

TEST(Registry, TableTwoComplete)
{
    EXPECT_EQ(mechanismRegistry().size(), 12u);
    EXPECT_EQ(allMechanismNames().size(), 13u); // + Base
    EXPECT_EQ(allMechanismNames().front(), "Base");
}

TEST(Registry, BaseIsNull)
{
    MechanismConfig mc;
    EXPECT_EQ(makeMechanism("Base", mc), nullptr);
}

TEST(Registry, DescLookup)
{
    const MechanismDesc &d = mechanismDesc("GHB");
    EXPECT_EQ(d.year, 2004);
    EXPECT_EQ(d.level, CacheLevel::L2);
}
