/** @file Unit tests for the trace generator. */

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/spec_suite.hh"
#include "trace/window.hh"

using namespace microlib;

namespace
{

SpecProgram
tinyProgram()
{
    SpecProgram p;
    p.name = "tiny";
    p.seed = 99;
    p.mem_ratio = 0.4;
    p.stack_frac = 0.5;
    StreamKernel::Params sp;
    sp.base = heap_base;
    sp.bytes = 1 << 16;
    sp.stride = 8;
    p.kernels = {[sp] {
        return std::unique_ptr<PatternKernel>(new StreamKernel(sp));
    }};
    p.segments = {{0, 100'000}};
    p.nominal_length = 200'000;
    return p;
}

} // namespace

TEST(Generator, Deterministic)
{
    SpecGenerator a(tinyProgram()), b(tinyProgram());
    TraceRecord ra, rb;
    for (int i = 0; i < 50000; ++i) {
        a.next(ra);
        b.next(rb);
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
        ASSERT_EQ(ra.value, rb.value);
    }
}

TEST(Generator, ResetRestartsExactly)
{
    SpecGenerator gen(tinyProgram());
    std::vector<TraceRecord> first(1000);
    for (auto &r : first)
        gen.next(r);
    gen.reset();
    TraceRecord r;
    for (const auto &expect : first) {
        gen.next(r);
        ASSERT_EQ(r.pc, expect.pc);
        ASSERT_EQ(r.addr, expect.addr);
    }
}

TEST(Generator, MemRatioConverges)
{
    SpecGenerator gen(tinyProgram());
    TraceRecord r;
    int mem = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        gen.next(r);
        mem += r.isMem() ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(mem) / n, 0.4, 0.05);
}

TEST(Generator, LoadsCarryImageValues)
{
    SpecGenerator gen(tinyProgram());
    TraceRecord r;
    for (int i = 0; i < 10000; ++i) {
        gen.next(r);
        if (r.isLoad()) {
            EXPECT_EQ(r.value, gen.image().read(r.addr))
                << "load value must match the functional image";
        }
    }
}

TEST(Generator, StoresUpdateImage)
{
    SpecGenerator gen(tinyProgram());
    TraceRecord r;
    bool found = false;
    for (int i = 0; i < 20000 && !found; ++i) {
        gen.next(r);
        if (r.isStore()) {
            EXPECT_EQ(gen.image().read(r.addr), r.value);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Generator, StableMemSitePcs)
{
    // All loads of one static site must share a PC (PC-indexed
    // mechanisms depend on it): count distinct load PCs; it must be
    // small (sites x spread), not grow with the trace.
    SpecGenerator gen(tinyProgram());
    TraceRecord r;
    std::set<std::uint32_t> pcs;
    for (int i = 0; i < 100000; ++i) {
        gen.next(r);
        if (r.isMem())
            pcs.insert(r.pc);
    }
    EXPECT_LT(pcs.size(), 64u);
}

TEST(Generator, StackReferencesAreLocal)
{
    SpecGenerator gen(tinyProgram());
    TraceRecord r;
    int stack_refs = 0, mem_refs = 0;
    for (int i = 0; i < 100000; ++i) {
        gen.next(r);
        if (!r.isMem())
            continue;
        ++mem_refs;
        if (r.addr >= stack_base && r.addr < stack_base + 64 * 1024)
            ++stack_refs;
    }
    EXPECT_NEAR(static_cast<double>(stack_refs) / mem_refs, 0.5, 0.05);
}

TEST(Generator, SkipMatchesStreaming)
{
    SpecGenerator a(tinyProgram());
    a.skip(12345);
    TraceRecord ra;
    a.next(ra);

    SpecGenerator b(tinyProgram());
    TraceRecord rb;
    for (int i = 0; i < 12346; ++i)
        b.next(rb);
    EXPECT_EQ(ra.pc, rb.pc);
    EXPECT_EQ(ra.addr, rb.addr);
}

TEST(Generator, MaterializeWindow)
{
    const MaterializedTrace t =
        materialize(tinyProgram(), TraceWindow{1000, 5000});
    EXPECT_EQ(t.records.size(), 5000u);
    EXPECT_EQ(t.benchmark, "tiny");
    ASSERT_NE(t.image, nullptr);
}

TEST(Generator, MaterializeIsPureFunctionOfWindow)
{
    const MaterializedTrace a =
        materialize(tinyProgram(), TraceWindow{500, 2000});
    const MaterializedTrace b =
        materialize(tinyProgram(), TraceWindow{500, 2000});
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        ASSERT_EQ(a.records[i].addr, b.records[i].addr);
        ASSERT_EQ(a.records[i].value, b.records[i].value);
    }
}

TEST(Generator, RejectsBadPrograms)
{
    SpecProgram p = tinyProgram();
    p.segments.clear();
    EXPECT_EXIT(SpecGenerator{p}, ::testing::ExitedWithCode(1), "");
}

TEST(Generator, SerialChaseLoadsDependOnPriorLoad)
{
    SpecProgram p = tinyProgram();
    PointerChaseKernel::Params cp;
    cp.base = heap_base;
    cp.node_bytes = 64;
    cp.node_count = 1024;
    cp.payload_touches = 0.0;
    p.kernels = {[cp] {
        return std::unique_ptr<PatternKernel>(
            new PointerChaseKernel(cp));
    }};
    p.stack_frac = 0.0;
    SpecGenerator gen(p);
    TraceRecord r;
    int serial = 0, loads = 0;
    std::int64_t last_load_idx = -1;
    for (int i = 0; i < 50000; ++i) {
        gen.next(r);
        if (!r.isLoad())
            continue;
        ++loads;
        // dep1 must point back at (or beyond) the previous load.
        if (last_load_idx >= 0 && r.dep1 != 0 &&
            i - r.dep1 <= last_load_idx)
            ++serial;
        last_load_idx = i;
    }
    EXPECT_GT(loads, 0);
    EXPECT_GT(static_cast<double>(serial) / loads, 0.8);
}
