/** @file ExperimentEngine scheduler tests: determinism across worker
 *  counts, trace sharing across matrices, and the compatibility
 *  wrapper. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/scheduler.hh"
#include "sim/logging.hh"

using namespace microlib;

namespace
{

RunConfig
quickConfig()
{
    RunConfig cfg;
    cfg.scale.simpoint_trace = 100'000;
    cfg.scale.simpoint_interval = 100'000;
    cfg.scale.arbitrary_skip = 50'000;
    cfg.scale.arbitrary_length = 100'000;
    return cfg;
}

MatrixResult
runWithThreads(unsigned threads, const RunConfig &cfg)
{
    EngineOptions opts;
    opts.threads = threads;
    ExperimentEngine engine(opts);
    return engine.run({"Base", "TP", "SP", "GHB"},
                      {"swim", "gzip", "crafty"}, cfg);
}

/** Full bit-identity: IPC matrix and every per-run stat snapshot. */
void
expectIdentical(const MatrixResult &a, const MatrixResult &b)
{
    ASSERT_EQ(a.mechanisms, b.mechanisms);
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    for (std::size_t m = 0; m < a.mechanisms.size(); ++m) {
        for (std::size_t bi = 0; bi < a.benchmarks.size(); ++bi) {
            // Exact equality, not near-equality: scheduling order
            // must never leak into results.
            EXPECT_EQ(a.ipc[m][bi], b.ipc[m][bi])
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(a.outputs[m][bi].stats, b.outputs[m][bi].stats)
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(a.outputs[m][bi].benchmark, a.benchmarks[bi]);
            EXPECT_EQ(a.outputs[m][bi].mechanism, a.mechanisms[m]);
        }
    }
}

} // namespace

TEST(Scheduler, BitIdenticalAcrossWorkerCounts)
{
    const RunConfig cfg = quickConfig();
    const MatrixResult serial = runWithThreads(1, cfg);
    const MatrixResult four = runWithThreads(4, cfg);
    const MatrixResult eight = runWithThreads(8, cfg);
    expectIdentical(serial, four);
    expectIdentical(serial, eight);
}

TEST(Scheduler, RunMatrixHonorsThreadsEnv)
{
    const RunConfig cfg = quickConfig();
    setenv("MICROLIB_THREADS", "1", 1);
    const MatrixResult serial =
        runMatrix({"Base", "GHB"}, {"swim", "mcf"}, cfg);
    setenv("MICROLIB_THREADS", "8", 1);
    const MatrixResult parallel =
        runMatrix({"Base", "GHB"}, {"swim", "mcf"}, cfg);
    unsetenv("MICROLIB_THREADS");
    expectIdentical(serial, parallel);
}

TEST(Scheduler, EngineReuseAcrossMatrices)
{
    const RunConfig cfg = quickConfig();
    EngineOptions opts;
    opts.threads = 2;
    ExperimentEngine engine(opts);

    const MatrixResult first =
        engine.run({"Base", "TP"}, {"swim", "gzip"}, cfg);
    EXPECT_EQ(engine.cache().traceCount(), 2u);

    // A second matrix over the same windows reuses both traces...
    const MatrixResult second =
        engine.run({"Base", "SP"}, {"swim", "gzip"}, cfg);
    EXPECT_EQ(engine.cache().traceCount(), 2u);

    // ...and sees the exact same baseline numbers.
    for (std::size_t b = 0; b < 2; ++b)
        EXPECT_EQ(first.ipc[0][b], second.ipc[0][b]);
}

TEST(Scheduler, ConfigsWithSameWindowShareTraces)
{
    // Figure 9's setup: finite vs infinite MSHR differ only in the
    // system config, so both matrices must share one trace per
    // benchmark.
    const RunConfig finite = quickConfig();
    RunConfig infinite = quickConfig();
    infinite.system.hier.l1d.finite_mshr = false;
    infinite.system.hier.l1i.finite_mshr = false;
    infinite.system.hier.l2.finite_mshr = false;

    EngineOptions opts;
    opts.threads = 2;
    ExperimentEngine engine(opts);
    engine.run({"Base", "TK"}, {"swim"}, finite);
    engine.run({"Base", "TK"}, {"swim"}, infinite);
    EXPECT_EQ(engine.cache().traceCount(), 1u);

    // Different windows do make a new entry.
    RunConfig other = quickConfig();
    other.selection = TraceSelection::Arbitrary;
    engine.run({"Base"}, {"swim"}, other);
    EXPECT_EQ(engine.cache().traceCount(), 2u);
}

TEST(Scheduler, OneShotModeEvictsTraces)
{
    const RunConfig cfg = quickConfig();
    EngineOptions opts;
    opts.threads = 2;
    opts.keep_traces = false;
    ExperimentEngine engine(opts);
    const MatrixResult res =
        engine.run({"Base", "TP"}, {"swim", "gzip"}, cfg);
    EXPECT_EQ(engine.cache().traceCount(), 0u);
    for (const auto &row : res.ipc)
        for (const double ipc : row)
            EXPECT_GT(ipc, 0.0);
}

TEST(Scheduler, TraceEndpointSharesWithMatrixRuns)
{
    const RunConfig cfg = quickConfig();
    ExperimentEngine engine(EngineOptions{1, false, true});
    const auto direct = engine.trace("swim", cfg);
    engine.run({"Base"}, {"swim"}, cfg);
    EXPECT_EQ(engine.cache().traceCount(), 1u);
    const auto again = engine.trace("swim", cfg);
    EXPECT_EQ(direct.get(), again.get());
}

TEST(Scheduler, EmptyMatrixIsFine)
{
    const RunConfig cfg = quickConfig();
    ExperimentEngine engine(EngineOptions{2, false, true});
    const MatrixResult no_mechs = engine.run({}, {"swim"}, cfg);
    EXPECT_TRUE(no_mechs.ipc.empty());
    const MatrixResult no_benchs = engine.run({"Base"}, {}, cfg);
    ASSERT_EQ(no_benchs.ipc.size(), 1u);
    EXPECT_TRUE(no_benchs.ipc[0].empty());
}

TEST(Scheduler, MatchesStandaloneRunOne)
{
    // The engine must produce exactly what a hand-rolled
    // materializeFor + runOne produces: same traces, same numbers.
    const RunConfig cfg = quickConfig();
    ExperimentEngine engine(EngineOptions{4, false, true});
    const MatrixResult res =
        engine.run({"Base", "GHB"}, {"crafty"}, cfg);
    const MaterializedTrace trace = materializeFor("crafty", cfg);
    EXPECT_EQ(res.ipc[0][0], runOne(trace, "Base", cfg).ipc());
    EXPECT_EQ(res.ipc[1][0], runOne(trace, "GHB", cfg).ipc());
}
