/** @file Unit tests for the SDRAM timing model. */

#include <gtest/gtest.h>

#include "mem/sdram.hh"

using namespace microlib;

namespace
{

SdramParams
params()
{
    SdramParams p; // Table 1 defaults
    return p;
}

MemRequest
read(Addr addr, Cycle when)
{
    MemRequest r;
    r.addr = addr;
    r.kind = AccessKind::DemandRead;
    r.when = when;
    return r;
}

} // namespace

TEST(Sdram, FirstAccessActivates)
{
    Sdram dram(params(), nullptr);
    const Cycle done = dram.access(read(0x10000000, 100));
    // activate + tRCD + CL at minimum.
    EXPECT_GE(done, 100u + 30 + 30);
    EXPECT_EQ(dram.activates.value(), 1u);
    EXPECT_EQ(dram.row_empty.value(), 1u);
}

TEST(Sdram, RowHitIsCheaper)
{
    Sdram dram(params(), nullptr);
    const Cycle first = dram.access(read(0x10000000, 100));
    // Same row, later: CAS only.
    const Cycle start2 = first + 10;
    const Cycle second = dram.access(read(0x10000000 + 64 * 4, start2));
    EXPECT_EQ(dram.row_hits.value(), 1u);
    EXPECT_LT(second - start2, first - 100);
}

TEST(Sdram, RowConflictPaysPrecharge)
{
    SdramParams p = params();
    p.scheduler_rows = 1; // plain open-page to expose the conflict
    Sdram dram(p, nullptr);
    dram.access(read(0x10000000, 100));
    // Same bank, different row (jump a full row-group times banks).
    const std::uint64_t row_bytes = p.columns * p.column_bytes;
    const Addr conflict = 0x10000000 + row_bytes * p.banks * 8;
    const Cycle start = 1000;
    const Cycle done = dram.access(read(conflict, start));
    EXPECT_EQ(dram.row_conflicts.value(), 1u);
    EXPECT_GE(done - start, p.ras_precharge + p.ras_to_cas +
                                p.cas_latency);
}

TEST(Sdram, SchedulerKeepsInterleavedRowsHot)
{
    Sdram dram(params(), nullptr); // scheduler_rows = 4
    const std::uint64_t row_bytes =
        params().columns * params().column_bytes;
    const Addr a = 0x10000000;
    const Addr b = a + row_bytes * params().banks * 8; // same bank
    Cycle t = 1000;
    // Alternate two rows of one bank: with row batching both stay
    // warm after the first touches.
    for (int i = 0; i < 10; ++i) {
        dram.access(read(a + 64 * i, t));
        dram.access(read(b + 64 * i, t + 40));
        t += 500;
    }
    EXPECT_GE(dram.row_hits.value(), 12u);
}

TEST(Sdram, QueueBackpressure)
{
    SdramParams p = params();
    p.queue_entries = 2;
    Sdram dram(p, nullptr);
    // Burst of concurrent requests: with a 2-entry queue the third
    // must wait for an earlier completion.
    dram.access(read(0x10000000, 100));
    dram.access(read(0x20000000, 100));
    dram.access(read(0x30000000, 100));
    dram.access(read(0x40000000, 100));
    EXPECT_GT(dram.queue_stalls.value(), 0u);
}

TEST(Sdram, FsbTransferAddsTime)
{
    Bus fsb(BusParams{"fsb", 64, 5});
    Sdram with_bus(params(), &fsb);
    Sdram without(params(), nullptr);
    const Cycle w = with_bus.access(read(0x10000000, 100));
    const Cycle wo = without.access(read(0x10000000, 100));
    EXPECT_GE(w, wo + 5);
}

TEST(Sdram, ScaleTimingsShrinksLatency)
{
    SdramParams p = params();
    p.scaleTimings(0.4);
    EXPECT_EQ(p.cas_latency, 12u); // 30 * 0.4
    EXPECT_LT(p.ras_cycle, params().ras_cycle);
    EXPECT_GE(p.ras_to_ras, 1u);
}

TEST(Sdram, LatencyStatTracksReads)
{
    Sdram dram(params(), nullptr);
    dram.access(read(0x10000000, 100));
    EXPECT_EQ(dram.latency.count(), 1u);
    EXPECT_GT(dram.latency.mean(), 0.0);
}

TEST(Sdram, WritesArePosted)
{
    Sdram dram(params(), nullptr);
    MemRequest wb = read(0x10000000, 100);
    wb.kind = AccessKind::Writeback;
    dram.access(wb);
    EXPECT_EQ(dram.writes.value(), 1u);
    EXPECT_EQ(dram.reads.value(), 0u);
    EXPECT_EQ(dram.latency.count(), 0u); // latency samples reads only
}

class SdramMappingTest : public ::testing::TestWithParam<DramMapping>
{
};

TEST_P(SdramMappingTest, ConsecutiveLinesSpreadOverBanks)
{
    SdramParams p = params();
    p.mapping = GetParam();
    Sdram dram(p, nullptr);
    // Consecutive lines early on: at least two banks activate (line
    // interleave guarantees it; permutation preserves it).
    dram.access(read(0x10000000, 100));
    dram.access(read(0x10000040, 100));
    dram.access(read(0x10000080, 100));
    dram.access(read(0x100000c0, 100));
    EXPECT_GE(dram.activates.value(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Mappings, SdramMappingTest,
    ::testing::Values(DramMapping::LineInterleave,
                      DramMapping::PermutationInterleave));
