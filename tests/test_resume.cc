/** @file Resume semantics: a sweep interrupted after N of M runs
 *  re-executes exactly M-N tasks on restart, and the merged report is
 *  bit-identical to an uninterrupted run across worker counts. The
 *  interruption is simulated by pre-seeding a store with the first
 *  half of a finished sweep's records — exactly the file a killed
 *  process leaves behind, since records are appended and flushed as
 *  each run completes. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/result_store.hh"
#include "core/scheduler.hh"

using namespace microlib;

namespace
{

const std::vector<std::string> mechs = {"Base", "TP", "SP", "GHB"};
const std::vector<std::string> benchs = {"swim", "gzip", "crafty"};

RunConfig
quickConfig()
{
    RunConfig cfg;
    cfg.scale.simpoint_trace = 100'000;
    cfg.scale.simpoint_interval = 100'000;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_resume_" + name;
}

MatrixResult
runWithStore(unsigned threads, const RunConfig &cfg, ResultStore *store,
             RunCounters &counts)
{
    EngineOptions opts;
    opts.threads = threads;
    opts.store = store;
    ExperimentEngine engine(opts);
    MatrixResult res = engine.run(mechs, benchs, cfg);
    counts = engine.lastRun();
    return res;
}

/** Bit-identity over everything the store persists: the IPC matrix,
 *  all CoreResult fields, and every stat snapshot value. */
void
expectIdentical(const MatrixResult &a, const MatrixResult &b)
{
    ASSERT_EQ(a.mechanisms, b.mechanisms);
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    for (std::size_t m = 0; m < a.mechanisms.size(); ++m) {
        for (std::size_t bi = 0; bi < a.benchmarks.size(); ++bi) {
            const RunOutput &ra = a.outputs[m][bi];
            const RunOutput &rb = b.outputs[m][bi];
            EXPECT_EQ(a.ipc[m][bi], b.ipc[m][bi])
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(ra.core.instructions, rb.core.instructions);
            EXPECT_EQ(ra.core.cycles, rb.core.cycles);
            EXPECT_EQ(ra.core.ipc, rb.core.ipc);
            EXPECT_EQ(ra.core.loads, rb.core.loads);
            EXPECT_EQ(ra.core.stores, rb.core.stores);
            EXPECT_EQ(ra.core.branches, rb.core.branches);
            EXPECT_EQ(ra.core.mispredicts, rb.core.mispredicts);
            EXPECT_EQ(ra.stats, rb.stats)
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(ra.benchmark, a.benchmarks[bi]);
            EXPECT_EQ(ra.mechanism, a.mechanisms[m]);
        }
    }
}

/** Copy the first @p n record lines of @p src to @p dst — the store
 *  a sweep killed after n completed runs would have left. */
std::size_t
truncateStoreFile(const std::string &src, const std::string &dst,
                  std::size_t n)
{
    std::ifstream in(src);
    std::ofstream out(dst, std::ios::trunc);
    std::string line;
    std::size_t copied = 0;
    while (copied < n && std::getline(in, line)) {
        out << line << '\n';
        ++copied;
    }
    return copied;
}

} // namespace

TEST(Resume, InterruptedSweepExecutesOnlyMissingRuns)
{
    const RunConfig cfg = quickConfig();
    const std::size_t total = mechs.size() * benchs.size();
    const std::string full_path = tmpPath("full.store");
    const std::string half_path = tmpPath("half.store");
    std::remove(full_path.c_str());

    // Uninterrupted sweep: every task executes, every record lands.
    RunCounters counts;
    MatrixResult uninterrupted;
    {
        ResultStore store(full_path);
        uninterrupted = runWithStore(4, cfg, &store, counts);
        EXPECT_EQ(counts.executed, total);
        EXPECT_EQ(counts.resumed, 0u);
        EXPECT_EQ(store.size(), total);
    }

    // "Kill" it halfway: keep the first N of M records.
    const std::size_t kept =
        truncateStoreFile(full_path, half_path, total / 2);
    ASSERT_EQ(kept, total / 2);

    // Restart across worker counts: exactly M-N tasks execute, and
    // the merged matrix is bit-identical to the uninterrupted run.
    for (const unsigned threads : {1u, 4u, 8u}) {
        const std::string path =
            tmpPath("resume_t" + std::to_string(threads) + ".store");
        std::remove(path.c_str());
        truncateStoreFile(full_path, path, total / 2);

        ResultStore store(path);
        ASSERT_EQ(store.size(), total / 2);
        const MatrixResult resumed =
            runWithStore(threads, cfg, &store, counts);
        EXPECT_EQ(counts.resumed, total / 2) << threads << " workers";
        EXPECT_EQ(counts.executed, total - total / 2)
            << threads << " workers";
        expectIdentical(uninterrupted, resumed);
        // The store is whole again: a further restart runs nothing.
        EXPECT_EQ(store.size(), total);
        std::remove(path.c_str());
    }

    std::remove(full_path.c_str());
    std::remove(half_path.c_str());
}

TEST(Resume, CompletedSweepRerunsNothing)
{
    const RunConfig cfg = quickConfig();
    const std::size_t total = mechs.size() * benchs.size();
    const std::string path = tmpPath("complete.store");
    std::remove(path.c_str());

    ResultStore store(path);
    RunCounters counts;
    const MatrixResult first = runWithStore(2, cfg, &store, counts);
    EXPECT_EQ(counts.executed, total);

    const MatrixResult second = runWithStore(2, cfg, &store, counts);
    EXPECT_EQ(counts.executed, 0u);
    EXPECT_EQ(counts.resumed, total);
    expectIdentical(first, second);
    std::remove(path.c_str());
}

TEST(Resume, StaleRecordsAreIgnoredNeverReused)
{
    const RunConfig cfg = quickConfig();
    const std::size_t total = mechs.size() * benchs.size();
    const std::string path = tmpPath("stale.store");
    std::remove(path.c_str());

    // Fill the store under one configuration...
    RunCounters counts;
    ResultStore store(path);
    runWithStore(2, cfg, &store, counts);
    EXPECT_EQ(store.size(), total);

    // ...then change the system: every record is stale, every task
    // re-executes, and the store now holds both configurations.
    RunConfig bigger_l1 = cfg;
    bigger_l1.system.hier.l1d.size *= 2;
    runWithStore(2, bigger_l1, &store, counts);
    EXPECT_EQ(counts.resumed, 0u);
    EXPECT_EQ(counts.executed, total);
    EXPECT_EQ(store.size(), 2 * total);
    std::remove(path.c_str());
}

TEST(Resume, MemoryStoreResumesWithinProcess)
{
    const RunConfig cfg = quickConfig();
    ResultStore store; // no backing file
    RunCounters counts;
    const MatrixResult first = runWithStore(2, cfg, &store, counts);
    EXPECT_EQ(counts.executed, mechs.size() * benchs.size());
    const MatrixResult again = runWithStore(2, cfg, &store, counts);
    EXPECT_EQ(counts.executed, 0u);
    expectIdentical(first, again);
}
