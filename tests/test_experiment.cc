/** @file Integration tests for the experiment engine. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hh"
#include "core/selections.hh"
#include "trace/spec_suite.hh"

using namespace microlib;

namespace
{

RunConfig
quickConfig()
{
    RunConfig cfg;
    cfg.scale.simpoint_trace = 100'000;
    cfg.scale.simpoint_interval = 100'000;
    cfg.scale.arbitrary_skip = 50'000;
    cfg.scale.arbitrary_length = 100'000;
    return cfg;
}

} // namespace

TEST(Experiment, RunOneDeterministic)
{
    const RunConfig cfg = quickConfig();
    const MaterializedTrace trace = materializeFor("crafty", cfg);
    const RunOutput a = runOne(trace, "Base", cfg);
    const RunOutput b = runOne(trace, "Base", cfg);
    EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Experiment, SelectionsProduceDifferentWindows)
{
    RunConfig sp = quickConfig();
    RunConfig arb = quickConfig();
    arb.selection = TraceSelection::Arbitrary;
    const MaterializedTrace a = materializeFor("gcc", sp);
    const MaterializedTrace b = materializeFor("gcc", arb);
    EXPECT_EQ(b.window.skip, 50'000u);
    EXPECT_EQ(a.records.size(), 100'000u);
    EXPECT_EQ(b.records.size(), 100'000u);
}

TEST(Experiment, MatrixShape)
{
    const RunConfig cfg = quickConfig();
    const std::vector<std::string> mechs = {"Base", "TP"};
    const std::vector<std::string> benchs = {"crafty", "swim"};
    const MatrixResult res = runMatrix(mechs, benchs, cfg);
    ASSERT_EQ(res.ipc.size(), 2u);
    ASSERT_EQ(res.ipc[0].size(), 2u);
    for (const auto &row : res.ipc)
        for (const double ipc : row) {
            EXPECT_GT(ipc, 0.0);
            EXPECT_LT(ipc, 8.0);
        }
}

TEST(Experiment, SpeedupAlgebra)
{
    const RunConfig cfg = quickConfig();
    const MatrixResult res =
        runMatrix({"Base", "SP"}, {"swim"}, cfg);
    const std::size_t base = res.mechIndex("Base");
    const std::size_t sp = res.mechIndex("SP");
    EXPECT_DOUBLE_EQ(res.speedup(base, 0), 1.0);
    EXPECT_DOUBLE_EQ(res.speedup(sp, 0),
                     res.ipc[sp][0] / res.ipc[base][0]);
    EXPECT_DOUBLE_EQ(res.avgSpeedup(sp), res.speedup(sp, 0));
}

TEST(Experiment, MatrixParallelismInvariant)
{
    // The same matrix computed serially and with 2 workers must be
    // bit-identical, down to the stat snapshots (runs are
    // independent and slots are pre-assigned).
    const RunConfig cfg = quickConfig();
    setenv("MICROLIB_THREADS", "1", 1);
    const MatrixResult serial =
        runMatrix({"Base", "TP", "SP"}, {"gzip"}, cfg);
    setenv("MICROLIB_THREADS", "2", 1);
    const MatrixResult parallel =
        runMatrix({"Base", "TP", "SP"}, {"gzip"}, cfg);
    unsetenv("MICROLIB_THREADS");
    for (std::size_t m = 0; m < serial.ipc.size(); ++m) {
        EXPECT_EQ(serial.ipc[m][0], parallel.ipc[m][0]);
        EXPECT_EQ(serial.outputs[m][0].stats,
                  parallel.outputs[m][0].stats);
    }
}

TEST(Experiment, IndexLookups)
{
    const RunConfig cfg = quickConfig();
    const MatrixResult res =
        runMatrix({"Base", "TP"}, {"crafty", "swim"}, cfg);
    // Engine-produced matrices carry prebuilt indices.
    EXPECT_EQ(res.mechIndex("Base"), 0u);
    EXPECT_EQ(res.mechIndex("TP"), 1u);
    EXPECT_EQ(res.benchIndex("crafty"), 0u);
    EXPECT_EQ(res.benchIndex("swim"), 1u);

    // Hand-assembled matrices still resolve via the fallback scan,
    // and buildIndices() can be called explicitly.
    MatrixResult hand;
    hand.mechanisms = {"Base", "GHB"};
    hand.benchmarks = {"mcf"};
    EXPECT_EQ(hand.mechIndex("GHB"), 1u);
    EXPECT_EQ(hand.benchIndex("mcf"), 0u);
    hand.buildIndices();
    EXPECT_EQ(hand.mechIndex("GHB"), 1u);
    EXPECT_EQ(hand.benchIndex("mcf"), 0u);
}

TEST(Experiment, StatsSnapshotsPopulated)
{
    const RunConfig cfg = quickConfig();
    const MaterializedTrace trace = materializeFor("swim", cfg);
    const RunOutput out = runOne(trace, "GHB", cfg);
    EXPECT_GT(out.stat("l1d.demand_accesses"), 0.0);
    EXPECT_GT(out.stat("l2.demand_accesses"), 0.0);
    EXPECT_TRUE(out.stats.count("mech.GHB.prefetches_issued"));
    EXPECT_FALSE(out.hardware.empty());
}

TEST(Selections, PaperSetsExist)
{
    // Every selection name must be a real benchmark.
    for (const auto &sel :
         {dbcpSelection(), ghbSelection(), highSensitivitySelection(),
          lowSensitivitySelection()}) {
        for (const auto &name : sel)
            EXPECT_NO_FATAL_FAILURE(specProgram(name));
    }
    EXPECT_EQ(dbcpSelection().size(), 5u);
    EXPECT_EQ(ghbSelection().size(), 12u);
    EXPECT_EQ(highSensitivitySelection().size(), 6u);
    EXPECT_EQ(lowSensitivitySelection().size(), 6u);
}
