/** @file Unit tests for the access-pattern kernels. */

#include <gtest/gtest.h>

#include <set>

#include "trace/kernels.hh"

using namespace microlib;

TEST(Kernels, StreamAdvancesByStride)
{
    StreamKernel::Params p;
    p.base = heap_base;
    p.bytes = 1024;
    p.stride = 16;
    StreamKernel k(p);
    MemoryImage img;
    Rng rng(1);
    k.setup(img, rng);
    const MemRef a = k.next(img, rng);
    const MemRef b = k.next(img, rng);
    EXPECT_EQ(a.addr, heap_base);
    EXPECT_EQ(b.addr, heap_base + 16);
}

TEST(Kernels, StreamWrapsAtEnd)
{
    StreamKernel::Params p;
    p.base = heap_base;
    p.bytes = 64;
    p.stride = 32;
    StreamKernel k(p);
    MemoryImage img;
    Rng rng(1);
    k.setup(img, rng);
    for (int i = 0; i < 10; ++i) {
        const MemRef r = k.next(img, rng);
        EXPECT_GE(r.addr, heap_base);
        EXPECT_LT(r.addr + 8, heap_base + 64 + 8);
    }
}

TEST(Kernels, MultiStrideUsesDistinctSlots)
{
    MultiStrideKernel::Params p;
    p.base = heap_base;
    p.array_bytes = 4096;
    p.strides = {8, 64};
    p.has_write_stream = true;
    MultiStrideKernel k(p);
    MemoryImage img;
    Rng rng(1);
    k.setup(img, rng);
    std::set<unsigned> slots;
    bool store_seen = false;
    for (int i = 0; i < 9; ++i) {
        const MemRef r = k.next(img, rng);
        slots.insert(r.slot);
        store_seen = store_seen || r.store;
    }
    EXPECT_EQ(slots.size(), 3u);
    EXPECT_TRUE(store_seen);
}

TEST(Kernels, MultiStrideArraysDoNotAliasInL1Sets)
{
    MultiStrideKernel::Params p;
    p.base = heap_base;
    p.array_bytes = 1 << 20; // multiple of 32 KB: would alias unpadded
    p.strides = {8, 8};
    MultiStrideKernel k(p);
    MemoryImage img;
    Rng rng(1);
    k.setup(img, rng);
    const MemRef a = k.next(img, rng);
    const MemRef b = k.next(img, rng);
    // Direct-mapped 32 KB L1 with 32 B lines: set = (addr/32) % 1024.
    const auto set = [](Addr x) { return (x / 32) % 1024; };
    EXPECT_NE(set(a.addr), set(b.addr));
}

TEST(Kernels, PointerChaseFormsCycle)
{
    PointerChaseKernel::Params p;
    p.base = heap_base;
    p.node_bytes = 64;
    p.node_count = 64;
    p.next_offset = 0;
    p.shuffle = 1.0;
    p.payload_touches = 0.0;
    PointerChaseKernel k(p);
    MemoryImage img;
    Rng rng(3);
    k.setup(img, rng);
    // Follow the chain functionally: it must visit all nodes and
    // return to the start (one big cycle).
    Addr start = heap_base;
    Addr cur = img.read(start);
    std::set<Addr> seen{start};
    for (unsigned i = 0; i < p.node_count - 1; ++i) {
        EXPECT_TRUE(looksLikeHeapPointer(cur));
        EXPECT_EQ(seen.count(cur), 0u);
        seen.insert(cur);
        cur = img.read(cur);
    }
    EXPECT_EQ(cur, start);
}

TEST(Kernels, PointerChaseLinkLoadsAreSerial)
{
    PointerChaseKernel::Params p;
    p.base = heap_base;
    p.node_bytes = 64;
    p.node_count = 32;
    p.payload_touches = 0.0;
    PointerChaseKernel k(p);
    MemoryImage img;
    Rng rng(3);
    k.setup(img, rng);
    const MemRef r = k.next(img, rng);
    EXPECT_TRUE(r.serial_dep);
    EXPECT_EQ(r.slot, 0u);
}

TEST(Kernels, AmmpStyleOffsetRespected)
{
    PointerChaseKernel::Params p;
    p.base = heap_base;
    p.node_bytes = 128;
    p.node_count = 16;
    p.next_offset = 88;
    p.payload_touches = 0.0;
    PointerChaseKernel k(p);
    MemoryImage img;
    Rng rng(3);
    k.setup(img, rng);
    const MemRef r = k.next(img, rng);
    // The link load address is 88 bytes into some node.
    EXPECT_EQ((r.addr - heap_base) % 128, 88u);
}

TEST(Kernels, MarkovWalkStaysInRegion)
{
    MarkovChainKernel::Params p;
    p.base = heap_base;
    p.states = 16;
    p.state_bytes = 32;
    p.fanout = 2;
    MarkovChainKernel k(p);
    MemoryImage img;
    Rng rng(5);
    k.setup(img, rng);
    for (int i = 0; i < 200; ++i) {
        const MemRef r = k.next(img, rng);
        EXPECT_GE(r.addr, heap_base);
        EXPECT_LT(r.addr, heap_base + 16 * 32);
        EXPECT_TRUE(r.serial_dep);
    }
}

TEST(Kernels, MarkovPrimarySuccessorDominates)
{
    MarkovChainKernel::Params p;
    p.base = heap_base;
    p.states = 64;
    p.state_bytes = 32;
    p.fanout = 2;
    p.primary_prob = 0.9;
    MarkovChainKernel k(p);
    MemoryImage img;
    Rng rng(5);
    k.setup(img, rng);
    // Count distinct successor states observed after a fixed state's
    // visits: the first successor should dominate.
    std::map<std::uint64_t, std::map<std::uint64_t, int>> seen;
    std::uint64_t prev_state = (k.next(img, rng).addr - heap_base) / 32;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t s = (k.next(img, rng).addr - heap_base) / 32;
        ++seen[prev_state][s];
        prev_state = s;
    }
    // For a well-visited state, the top successor takes ~90%.
    int checked = 0;
    for (const auto &kv : seen) {
        int total = 0, best = 0;
        for (const auto &succ : kv.second) {
            total += succ.second;
            best = std::max(best, succ.second);
        }
        if (total < 200)
            continue;
        EXPECT_GT(static_cast<double>(best) / total, 0.7);
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

TEST(Kernels, GatherDataDependsOnIndex)
{
    GatherKernel::Params p;
    p.base = heap_base;
    p.index_entries = 128;
    p.table_bytes = 4096;
    GatherKernel k(p);
    MemoryImage img;
    Rng rng(7);
    k.setup(img, rng);
    const MemRef index_ref = k.next(img, rng);
    const MemRef data_ref = k.next(img, rng);
    EXPECT_FALSE(index_ref.serial_dep);
    EXPECT_TRUE(data_ref.serial_dep);
    // The data address matches the index value stored in the image.
    const Word idx = img.read(index_ref.addr) % (p.table_bytes / 8);
    EXPECT_EQ(data_ref.addr,
              heap_base + alignUp(128 * 8, 4096) + 4160 + idx * 8);
}

TEST(Kernels, HotColdRespectsHotFraction)
{
    HotColdKernel::Params p;
    p.base = heap_base;
    p.hot_bytes = 1024;
    p.cold_bytes = 1 << 20;
    p.hot_frac = 0.9;
    HotColdKernel k(p);
    MemoryImage img;
    Rng rng(9);
    k.setup(img, rng);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const MemRef r = k.next(img, rng);
        hot += (r.addr < heap_base + 1024) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.02);
}

TEST(Kernels, FrequentValuesAreRecognizable)
{
    for (unsigned i = 0; i < 7; ++i) {
        const Word v = frequentValue(i);
        // Frequent values must never look like heap pointers, so the
        // CDP and FVC mechanisms cannot confuse them.
        EXPECT_FALSE(looksLikeHeapPointer(v)) << v;
    }
}

TEST(Kernels, RandomKernelCoversRegion)
{
    RandomKernel::Params p;
    p.base = heap_base;
    p.bytes = 1 << 16;
    RandomKernel k(p);
    MemoryImage img;
    Rng rng(11);
    k.setup(img, rng);
    std::set<Addr> lines;
    for (int i = 0; i < 5000; ++i)
        lines.insert(alignDown(k.next(img, rng).addr, 64));
    EXPECT_GT(lines.size(), 500u); // far beyond any cache set
}

TEST(Kernels, PointerChaseChainsAreIndependentCycles)
{
    PointerChaseKernel::Params p;
    p.base = heap_base;
    p.node_bytes = 64;
    p.node_count = 64;
    p.next_offset = 0;
    p.shuffle = 1.0;
    p.payload_touches = 0.0;
    p.chains = 4;
    PointerChaseKernel k(p);
    MemoryImage img;
    Rng rng(3);
    k.setup(img, rng);

    // The link loads round-robin over 4 chains, each tagged with its
    // own dependence key so the chains overlap in the machine.
    std::set<std::uint8_t> keys;
    std::set<Addr> first_round;
    for (unsigned i = 0; i < 4; ++i) {
        const MemRef r = k.next(img, rng);
        EXPECT_TRUE(r.serial_dep);
        EXPECT_NE(r.dep_key, 0u); // key 0 is the global chain
        keys.insert(r.dep_key);
        first_round.insert(r.addr);
    }
    EXPECT_EQ(keys.size(), 4u);
    EXPECT_EQ(first_round.size(), 4u);

    // Each chain is its own cycle of node_count / chains nodes:
    // following any chain functionally returns to its start without
    // leaving its node set.
    for (unsigned c = 0; c < 4; ++c) {
        // Chain heads are the first node of each order slice; find
        // them by walking: every node reachable from a head in 15
        // steps, the 16th back at the head.
        Addr start = *std::next(first_round.begin(), c);
        Addr cur = img.read(start);
        std::set<Addr> seen{start};
        for (unsigned i = 0; i < 64 / 4 - 1; ++i) {
            EXPECT_TRUE(looksLikeHeapPointer(cur));
            EXPECT_TRUE(seen.insert(cur).second);
            cur = img.read(cur);
        }
        EXPECT_EQ(cur, start);
    }
}

TEST(Kernels, SingleChainKeepsClassicDependenceKey)
{
    // chains == 1 must stay on dep_key 0 — the key every other load
    // uses — so existing benchmarks generate bit-identical traces.
    PointerChaseKernel::Params p;
    p.base = heap_base;
    p.node_bytes = 64;
    p.node_count = 32;
    p.payload_touches = 0.0;
    PointerChaseKernel k(p);
    MemoryImage img;
    Rng rng(3);
    k.setup(img, rng);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(k.next(img, rng).dep_key, 0u);
}
