/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace microlib;

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(Stats, DistributionBuckets)
{
    Distribution d(10.0, 4); // buckets [0,10) [10,20) [20,30) [30,40)
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(99); // overflow
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(1), 2u);
    EXPECT_EQ(d.bucket(2), 0u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.total(), 4u);
    EXPECT_NEAR(d.mean(), (5 + 15 + 15 + 99) / 4.0, 1e-9);
}

TEST(Stats, DistributionReset)
{
    Distribution d(1.0, 4);
    d.sample(1);
    d.reset();
    EXPECT_EQ(d.total(), 0u);
    EXPECT_EQ(d.bucket(1), 0u);
}

TEST(Stats, StatSetLookup)
{
    StatSet set;
    Counter c;
    Average a;
    c += 3;
    a.sample(10.0);
    set.registerCounter("l1.misses", &c);
    set.registerAverage("dram.latency", &a);

    EXPECT_TRUE(set.has("l1.misses"));
    EXPECT_FALSE(set.has("l1.hits"));
    EXPECT_DOUBLE_EQ(set.get("l1.misses"), 3.0);
    EXPECT_DOUBLE_EQ(set.get("dram.latency"), 10.0);
}

TEST(Stats, StatSetNamesSorted)
{
    StatSet set;
    Counter c1, c2;
    set.registerCounter("zeta", &c1);
    set.registerCounter("alpha", &c2);
    const auto names = set.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Stats, StatSetTracksLiveValues)
{
    StatSet set;
    Counter c;
    set.registerCounter("x", &c);
    EXPECT_DOUBLE_EQ(set.get("x"), 0.0);
    c += 7;
    EXPECT_DOUBLE_EQ(set.get("x"), 7.0); // registry reads through
}

TEST(Stats, DumpFormat)
{
    StatSet set;
    Counter c;
    c += 2;
    set.registerCounter("a.b", &c);
    std::ostringstream os;
    set.dump(os);
    EXPECT_EQ(os.str(), "a.b = 2\n");
}
