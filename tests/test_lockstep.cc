/** @file Lockstep multi-variant execution tests: the lockstep path
 *  (one SoA trace pass advancing V variant simulations block by
 *  block) must be bit-identical — every CoreResult field and every
 *  stat — to the per-variant oracle, for any thread count, across a
 *  ProcessShardBackend merge, and when an interrupted sweep resumes
 *  mid-group (only the missing variants re-execute). Also covers
 *  TaskPlan::lockstepGroups' grouping/ordering contract and the raw
 *  LockstepGroup API against OoOCore::run(). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/baseline_config.hh"
#include "core/process_shard_backend.hh"
#include "core/registry.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"
#include "cpu/lockstep.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "trace/spec_suite.hh"
#include "trace/window.hh"

using namespace microlib;

namespace
{

/** The reference lockstep spec: three benchmarks x two mechanisms x
 *  three L2-size variants, all sharing one trace slot per benchmark,
 *  so every (benchmark, mechanism) cell forms a 3-member group. */
const char *lockstep_text = R"(sweep-spec v1
bench swim gzip mcf
mech Base TP
base window.trace_length=100000
base window.interval=100000
axis hier.l2.size 256k 512k 1M
)";

SweepSpec
lockstepSpec()
{
    SweepSpec spec;
    std::string error;
    if (!SweepSpec::parse(lockstep_text, spec, &error))
        ADD_FAILURE() << error;
    return spec;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_lockstep_" + name;
}

/** Bit-identity across every variant matrix of two sweep results:
 *  the full CoreResult, not just IPC, plus the stat snapshot. */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.variants, b.variants);
    ASSERT_EQ(a.matrices.size(), b.matrices.size());
    for (std::size_t v = 0; v < a.matrices.size(); ++v) {
        const MatrixResult &ma = a.matrices[v];
        const MatrixResult &mb = b.matrices[v];
        ASSERT_EQ(ma.mechanisms, mb.mechanisms);
        ASSERT_EQ(ma.benchmarks, mb.benchmarks);
        for (std::size_t m = 0; m < ma.mechanisms.size(); ++m) {
            for (std::size_t bi = 0; bi < ma.benchmarks.size();
                 ++bi) {
                const RunOutput &oa = ma.outputs[m][bi];
                const RunOutput &ob = mb.outputs[m][bi];
                const std::string where = a.variants[v] + " " +
                                          ma.mechanisms[m] + "/" +
                                          ma.benchmarks[bi];
                EXPECT_EQ(oa.core.instructions, ob.core.instructions)
                    << where;
                EXPECT_EQ(oa.core.cycles, ob.core.cycles) << where;
                EXPECT_EQ(oa.core.ipc, ob.core.ipc) << where;
                EXPECT_EQ(oa.core.loads, ob.core.loads) << where;
                EXPECT_EQ(oa.core.stores, ob.core.stores) << where;
                EXPECT_EQ(oa.core.branches, ob.core.branches)
                    << where;
                EXPECT_EQ(oa.core.mispredicts, ob.core.mispredicts)
                    << where;
                EXPECT_EQ(oa.stats, ob.stats) << where;
            }
        }
    }
}

/** Bit-identity of two single-run outputs. */
void
expectIdentical(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.ipc, b.core.ipc);
    EXPECT_EQ(a.core.loads, b.core.loads);
    EXPECT_EQ(a.core.stores, b.core.stores);
    EXPECT_EQ(a.core.branches, b.core.branches);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_EQ(a.stats, b.stats);
}

/** Run the reference spec on a fresh engine. */
SweepResult
runSweep(bool lockstep, unsigned threads,
         ResultStore *store = nullptr,
         ExecutionBackend *backend = nullptr)
{
    EngineOptions opts;
    opts.threads = threads;
    opts.lockstep = lockstep;
    opts.store = store;
    opts.backend = backend;
    ExperimentEngine engine(opts);
    return engine.run(lockstepSpec());
}

/** Copy the first @p n record lines of @p src to @p dst — the store
 *  an interrupted sweep leaves behind. */
std::size_t
truncateStoreFile(const std::string &src, const std::string &dst,
                  std::size_t n)
{
    std::ifstream in(src);
    std::ofstream out(dst, std::ios::trunc);
    std::string line;
    std::size_t copied = 0;
    while (copied < n && std::getline(in, line)) {
        out << line << '\n';
        ++copied;
    }
    return copied;
}

} // namespace

TEST(Lockstep, GroupsPendingTasksByTraceSlotAndMechanism)
{
    const TaskPlan plan(lockstepSpec());
    ASSERT_EQ(plan.size(), 18u); // 3 bench x 3 variants x 2 mechs
    ASSERT_EQ(plan.traceSlotCount(), 3u);

    // Nothing done, whole plan: one group per (benchmark, mechanism)
    // cell, members in variant order, groups ordered by their first
    // member's plan index, union exactly the pending set.
    std::vector<char> done(plan.size(), 0);
    const auto groups = plan.lockstepGroups(done, ShardSpec{});
    ASSERT_EQ(groups.size(), 6u);
    std::vector<char> seen(plan.size(), 0);
    std::size_t prev_first = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        ASSERT_EQ(groups[g].size(), 3u);
        if (g > 0)
            EXPECT_GT(groups[g].front(), prev_first);
        prev_first = groups[g].front();
        const PlanTask &first = plan.task(groups[g].front());
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            const std::size_t flat = groups[g][i];
            EXPECT_FALSE(seen[flat]);
            seen[flat] = 1;
            const PlanTask &t = plan.task(flat);
            EXPECT_EQ(t.m, first.m);
            EXPECT_EQ(plan.traceSlot(flat),
                      plan.traceSlot(groups[g].front()));
            EXPECT_EQ(t.v, i); // members in variant order
        }
    }
    for (std::size_t i = 0; i < plan.size(); ++i)
        EXPECT_TRUE(seen[i]) << "task " << i << " missing";

    // Resumed tasks vanish from their group; a fully resumed group
    // vanishes entirely.
    std::vector<char> part(plan.size(), 0);
    part[groups[0][1]] = 1; // middle variant of the first group
    for (std::size_t flat : groups[1])
        part[flat] = 1; // all of the second group
    const auto partial = plan.lockstepGroups(part, ShardSpec{});
    ASSERT_EQ(partial.size(), 5u);
    EXPECT_EQ(partial[0],
              (std::vector<std::size_t>{groups[0][0], groups[0][2]}));

    // Sharding: each shard's groups cover exactly its pending tasks.
    for (std::size_t s = 0; s < 2; ++s) {
        const ShardSpec shard{s, 2};
        std::vector<std::size_t> covered;
        for (const auto &g : plan.lockstepGroups(done, shard))
            covered.insert(covered.end(), g.begin(), g.end());
        EXPECT_EQ(covered, plan.pendingTasks(done, shard));
    }
}

TEST(Lockstep, WindowAxisSplitsGroups)
{
    // A window-moving axis gives each variant its own trace slot, so
    // no two variants may share a lockstep group.
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(
        "sweep-spec v1\nbench swim\nmech Base\n"
        "axis window.trace_length 100k 200k\n", spec, &error))
        << error;
    const TaskPlan plan(spec);
    std::vector<char> done(plan.size(), 0);
    const auto groups = plan.lockstepGroups(done, ShardSpec{});
    ASSERT_EQ(groups.size(), plan.size());
    for (const auto &g : groups)
        EXPECT_EQ(g.size(), 1u);
}

TEST(Lockstep, GroupMatchesIndependentRuns)
{
    // The raw cpu-layer API: V cores advanced by one LockstepGroup
    // pass produce the same CoreResult as V independent run() calls.
    const BaselineConfig base = makeBaseline();
    const TraceWindow window{0, 50'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);

    std::vector<CacheParams> l2s(3, base.hier.l2);
    l2s[0].size = 256 * 1024;
    l2s[1].size = 512 * 1024;
    l2s[2].size = 1024 * 1024;

    std::vector<std::unique_ptr<Hierarchy>> hiers;
    std::vector<std::unique_ptr<OoOCore>> cores;
    LockstepGroup group;
    for (const CacheParams &l2 : l2s) {
        HierarchyParams hp = base.hier;
        hp.l2 = l2;
        hiers.push_back(
            std::make_unique<Hierarchy>(hp, trace.image));
        cores.push_back(std::make_unique<OoOCore>(base.core));
        group.add(*cores.back(), *hiers.back());
    }
    ASSERT_EQ(group.size(), 3u);
    group.run(trace.view());

    for (std::size_t v = 0; v < l2s.size(); ++v) {
        HierarchyParams hp = base.hier;
        hp.l2 = l2s[v];
        Hierarchy hier(hp, trace.image);
        OoOCore core(base.core);
        const CoreResult solo = core.run(trace.view(), hier);
        const CoreResult &locked = group.result(v);
        EXPECT_EQ(locked.instructions, solo.instructions);
        EXPECT_EQ(locked.cycles, solo.cycles);
        EXPECT_EQ(locked.ipc, solo.ipc);
        EXPECT_EQ(locked.loads, solo.loads);
        EXPECT_EQ(locked.stores, solo.stores);
        EXPECT_EQ(locked.branches, solo.branches);
        EXPECT_EQ(locked.mispredicts, solo.mispredicts);
    }
}

TEST(Lockstep, RunLockstepMatchesRunOne)
{
    // The experiment-layer fan-out: runLockstep over mixed configs
    // is bit-identical (stats included) to per-config runOne calls.
    const SweepSpec spec = lockstepSpec();
    const TaskPlan plan(spec);
    const MaterializedTrace trace =
        materializeFor("gzip", plan.config(0));
    for (const char *mech : {"Base", "TP"}) {
        std::vector<const RunConfig *> cfgs;
        for (std::size_t v = 0; v < plan.variantCount(); ++v)
            cfgs.push_back(&plan.config(v));
        const std::vector<RunOutput> locked =
            runLockstep(trace, mech, cfgs);
        ASSERT_EQ(locked.size(), cfgs.size());
        for (std::size_t v = 0; v < cfgs.size(); ++v)
            expectIdentical(locked[v],
                            runOne(trace, mech, *cfgs[v]));
    }
}

TEST(Lockstep, SweepBitIdenticalToOracleAcrossThreadCounts)
{
    // The oracle: lockstep off, each task simulated alone.
    const SweepResult oracle = runSweep(false, 1);
    for (const unsigned threads : {1u, 4u, 8u}) {
        const SweepResult locked = runSweep(true, threads);
        expectIdentical(oracle, locked);
    }
    // The oracle itself is also thread-count invariant.
    expectIdentical(oracle, runSweep(false, 4));
}

TEST(Lockstep, ProcessShardMergeBitIdentical)
{
    const SweepResult oracle = runSweep(false, 1);

    const std::string store_path = tmpPath("shards.store");
    std::remove(store_path.c_str());
    for (std::size_t i = 0; i < 4; ++i)
        std::remove(ProcessShardBackend::shardStorePath(
                        store_path, i, 2)
                        .c_str());
    ResultStore store(store_path);
    ProcessShardOptions popts;
    popts.shards = 2;
    ProcessShardBackend backend(popts);
    const SweepResult merged = runSweep(true, 1, &store, &backend);
    expectIdentical(oracle, merged);
    std::remove(store_path.c_str());
}

TEST(Lockstep, InterruptedSweepResumesOnlyMissingGroupMembers)
{
    const TaskPlan plan(lockstepSpec());
    const std::size_t total = plan.size();

    // Complete the sweep once (lockstep, 1 thread: group order and
    // store record order are deterministic)...
    const std::string full_path = tmpPath("resume_full.store");
    std::remove(full_path.c_str());
    SweepResult reference;
    {
        ResultStore full(full_path);
        reference = runSweep(true, 1, &full);
        ASSERT_EQ(full.size(), total);
    }

    // ..."kill" it after 4 records. With 3-member groups that is one
    // whole group plus one member of the next: the resumed sweep
    // faces a partially completed lockstep group.
    const std::string half_path = tmpPath("resume_half.store");
    const std::size_t kept =
        truncateStoreFile(full_path, half_path, 4);
    ASSERT_EQ(kept, 4u);

    ResultStore store(half_path);
    EngineOptions opts;
    opts.threads = 1;
    opts.lockstep = true;
    opts.store = &store;
    ExperimentEngine engine(opts);
    const SweepResult resumed = engine.run(lockstepSpec());
    // Only the missing variants re-execute — the partially done
    // group runs as a 2-member group, not a re-run 3-member one.
    EXPECT_EQ(engine.lastRun().resumed, kept);
    EXPECT_EQ(engine.lastRun().executed, total - kept);
    EXPECT_EQ(store.size(), total);
    expectIdentical(reference, resumed);

    std::remove(full_path.c_str());
    std::remove(half_path.c_str());
}
