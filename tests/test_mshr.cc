/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

using namespace microlib;

TEST(Mshr, PrimaryMissAllocates)
{
    MshrFile mshr(4, 4, false);
    const MshrOutcome out = mshr.allocate(0x1000, 10);
    EXPECT_FALSE(out.merged);
    EXPECT_EQ(out.start, 10u);
    EXPECT_EQ(mshr.occupancy(10), 1u);
}

TEST(Mshr, SecondaryMissMerges)
{
    MshrFile mshr(4, 4, false);
    mshr.allocate(0x1000, 10);
    const MshrOutcome out = mshr.allocate(0x1000, 12);
    EXPECT_TRUE(out.merged);
    EXPECT_EQ(mshr.occupancy(12), 1u); // still one entry
}

TEST(Mshr, MergedReadsBounded)
{
    MshrFile mshr(4, 2, false); // two reads per entry
    mshr.allocate(0x1000, 10);        // primary (read 1)
    EXPECT_TRUE(mshr.allocate(0x1000, 11).merged); // read 2
    mshr.complete(0x1000, 100);
    // Third read exceeds the merge capacity: it waits for the refill.
    const MshrOutcome out = mshr.allocate(0x1000, 12);
    EXPECT_FALSE(out.merged);
    EXPECT_GE(out.start, 100u);
}

TEST(Mshr, FullFileStalls)
{
    MshrFile mshr(2, 4, false);
    mshr.allocate(0x1000, 10);
    mshr.complete(0x1000, 50);
    mshr.allocate(0x2000, 10);
    mshr.complete(0x2000, 80);
    // Third distinct line must wait for the earliest retirement (50).
    const MshrOutcome out = mshr.allocate(0x3000, 12);
    EXPECT_GE(out.start, 50u);
    EXPECT_EQ(mshr.fullStalls().value(), 1u);
}

TEST(Mshr, InfiniteNeverStalls)
{
    MshrFile mshr(1, 4, true);
    for (Addr line = 0; line < 100 * 64; line += 64) {
        const MshrOutcome out = mshr.allocate(0x10000 + line, 5);
        EXPECT_EQ(out.start, 5u);
        mshr.complete(0x10000 + line, 500);
    }
    EXPECT_EQ(mshr.fullStalls().value(), 0u);
}

TEST(Mshr, MergeSeesRefillTime)
{
    MshrFile mshr(4, 4, false);
    mshr.allocate(0x1000, 10);
    mshr.complete(0x1000, 90);
    const MshrOutcome out = mshr.allocate(0x1000, 20);
    ASSERT_TRUE(out.merged);
    EXPECT_EQ(out.data_ready, 90u);
}

TEST(Mshr, RetiredEntryFreesSlot)
{
    MshrFile mshr(1, 4, false);
    mshr.allocate(0x1000, 10);
    mshr.complete(0x1000, 20);
    // After cycle 20 the entry is dead; a new line allocates freely.
    const MshrOutcome out = mshr.allocate(0x2000, 30);
    EXPECT_EQ(out.start, 30u);
    EXPECT_EQ(mshr.fullStalls().value(), 0u);
}
