/** @file End-to-end integration tests: the headline paper behaviours
 *  must hold on small dedicated workloads. */

#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "trace/spec_suite.hh"

using namespace microlib;

namespace
{

RunConfig
quick()
{
    RunConfig cfg;
    cfg.scale.simpoint_trace = 300'000;
    cfg.scale.simpoint_interval = 150'000;
    return cfg;
}

/** One engine for the whole suite: tests with identical windows
 *  share materialized traces instead of regenerating them. */
ExperimentEngine &
engine()
{
    static ExperimentEngine the_engine;
    return the_engine;
}

double
speedupOf(const std::string &bench, const std::string &mech,
          const RunConfig &cfg)
{
    const auto trace = engine().trace(bench, cfg);
    const double base = runOne(*trace, "Base", cfg).ipc();
    return runOne(*trace, mech, cfg).ipc() / base;
}

} // namespace

TEST(Integration, PrefetchersHelpStreams)
{
    const RunConfig cfg = quick();
    // swim: stride streams. Both classic prefetchers must win.
    EXPECT_GT(speedupOf("swim", "TP", cfg), 1.05);
    EXPECT_GT(speedupOf("swim", "GHB", cfg), 1.02);
}

TEST(Integration, CdpHurtsMcf)
{
    const RunConfig cfg = quick();
    // The paper's 0.75: pointer-flooded bus.
    EXPECT_LT(speedupOf("mcf", "CDP", cfg), 0.97);
}

TEST(Integration, CdpPrefersTwolfOverMcf)
{
    // The robust shape from the paper: CDP treats pointer codes very
    // differently — it helps twolf (1.07) and sinks mcf (0.75). At
    // small test scale the absolute numbers move, but the ordering
    // and the gap must hold.
    const RunConfig cfg = quick();
    const double twolf = speedupOf("twolf", "CDP", cfg);
    const double mcf = speedupOf("mcf", "CDP", cfg);
    EXPECT_GT(twolf, mcf + 0.02);
}

TEST(Integration, MarkovWinsGzip)
{
    const RunConfig cfg = quick();
    const auto trace = engine().trace("gzip", cfg);
    const double base = runOne(*trace, "Base", cfg).ipc();
    const double markov = runOne(*trace, "Markov", cfg).ipc() / base;
    // Markov must beat the stride prefetchers on gzip (paper).
    const double sp = runOne(*trace, "SP", cfg).ipc() / base;
    const double ghb = runOne(*trace, "GHB", cfg).ipc() / base;
    EXPECT_GT(markov, 1.01);
    EXPECT_GT(markov, sp);
    EXPECT_GT(markov, ghb);
}

TEST(Integration, MemoryModelShrinksSpeedups)
{
    // Figure 8's core claim on one benchmark: GHB's gain under the
    // constant-latency memory exceeds its gain under SDRAM.
    RunConfig sdram = quick();
    RunConfig flat = quick();
    flat.system = makeConstantMemoryBaseline(70);
    const double gain_flat = speedupOf("swim", "GHB", flat) - 1.0;
    const double gain_sdram = speedupOf("swim", "GHB", sdram) - 1.0;
    EXPECT_GT(gain_flat, 0.0);
    EXPECT_LT(gain_sdram / gain_flat, 1.5); // not magically larger
}

TEST(Integration, DbcpFixedBeatsInitial)
{
    RunConfig fixed = quick();
    RunConfig initial = quick();
    initial.mech.second_guess = true;
    const auto trace = engine().trace("crafty", fixed);
    const double base = runOne(*trace, "Base", fixed).ipc();
    const double f = runOne(*trace, "DBCP", fixed).ipc() / base;
    const double i = runOne(*trace, "DBCP", initial).ipc() / base;
    EXPECT_GE(f, i - 0.01); // the fix never hurts materially
}

TEST(Integration, SimpointAndArbitraryWindowsDiffer)
{
    RunConfig sp = quick();
    RunConfig arb = quick();
    arb.selection = TraceSelection::Arbitrary;
    arb.scale.arbitrary_skip = 400'000;
    arb.scale.arbitrary_length = 300'000;
    const double a = speedupOf("gcc", "GHB", sp);
    const double b = speedupOf("gcc", "GHB", arb);
    // Not a strict inequality claim — just actually different runs.
    EXPECT_NE(a, b);
}

TEST(Integration, LucasIsDramPathological)
{
    // Use a window that covers lucas's bit-reversal phase (its
    // second segment) — the source of the paper's 389-cycle average.
    RunConfig cfg = quick();
    cfg.selection = TraceSelection::Arbitrary;
    cfg.scale.arbitrary_skip = 1'300'000;
    cfg.scale.arbitrary_length = 400'000;
    const auto lucas = engine().trace("lucas", cfg);
    const auto gzip = engine().trace("gzip", cfg);
    const RunOutput rl = runOne(*lucas, "Base", cfg);
    const RunOutput rg = runOne(*gzip, "Base", cfg);
    // Figure 8's latency spread: lucas's average DRAM latency far
    // above gzip's.
    EXPECT_GT(rl.stat("dram.latency"),
              1.4 * rg.stat("dram.latency"));
}
