/** @file Tests for the 26 SPEC CPU2000 stand-in programs. */

#include <gtest/gtest.h>

#include <set>

#include "trace/spec_suite.hh"

using namespace microlib;

TEST(SpecSuite, TwentySixBenchmarks)
{
    EXPECT_EQ(specSuite().size(), 26u);
    EXPECT_EQ(specBenchmarkNames().size(), 26u);
}

TEST(SpecSuite, NamesUniqueAndOrdered)
{
    const auto &names = specBenchmarkNames();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
    // Table 4 order: FP block first (ammp..wupwise), then INT.
    EXPECT_EQ(names.front(), "ammp");
    EXPECT_EQ(names.back(), "vpr");
}

TEST(SpecSuite, FpClassification)
{
    EXPECT_TRUE(isFpBenchmark("swim"));
    EXPECT_TRUE(isFpBenchmark("lucas"));
    EXPECT_FALSE(isFpBenchmark("gcc"));
    EXPECT_FALSE(isFpBenchmark("mcf"));
    unsigned fp = 0;
    for (const auto &n : specBenchmarkNames())
        fp += isFpBenchmark(n) ? 1 : 0;
    EXPECT_EQ(fp, 14u);
}

TEST(SpecSuite, LookupFailsLoudly)
{
    EXPECT_EXIT(specProgram("quake3"), ::testing::ExitedWithCode(1),
                "");
}

class SpecProgramTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecProgramTest, GeneratesCleanly)
{
    const SpecProgram &prog = specProgram(GetParam());
    SpecGenerator gen(prog);
    TraceRecord r;
    std::uint64_t mem = 0, stores = 0;
    const std::uint64_t n = 60'000;
    for (std::uint64_t i = 0; i < n; ++i) {
        gen.next(r);
        if (r.isMem()) {
            ++mem;
            ASSERT_GE(r.addr, 0x01000000u) << "suspicious address";
        }
        if (r.isStore())
            ++stores;
    }
    // Instruction mix within sane bounds.
    const double ratio = static_cast<double>(mem) / n;
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 0.6);
    EXPECT_GT(stores, 0u);
}

TEST_P(SpecProgramTest, NominalLengthCoversSegments)
{
    const SpecProgram &prog = specProgram(GetParam());
    std::uint64_t one_pass = 0;
    for (const auto &seg : prog.segments)
        one_pass += seg.instructions;
    // The nominal run must include several phase passes so SimPoint
    // has real phases to cluster.
    EXPECT_GE(prog.nominal_length, one_pass);
}

INSTANTIATE_TEST_SUITE_P(
    All, SpecProgramTest,
    ::testing::ValuesIn(std::vector<std::string>{
        "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d",
        "galgel", "lucas", "mesa", "mgrid", "sixtrack", "swim",
        "wupwise", "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
        "mcf", "parser", "perlbmk", "twolf", "vortex", "vpr"}));

TEST(SpecSuite, McfNodesCarryPointers)
{
    // CDP's mcf disaster requires pointer-rich node payloads.
    SpecGenerator gen(specProgram("mcf"));
    TraceRecord r;
    unsigned pointer_values = 0, loads = 0;
    for (int i = 0; i < 200'000; ++i) {
        gen.next(r);
        if (r.isLoad() && r.addr >= heap_base) {
            ++loads;
            if (looksLikeHeapPointer(r.value))
                ++pointer_values;
        }
    }
    EXPECT_GT(loads, 0u);
    EXPECT_GT(pointer_values, loads / 20);
}

TEST(SpecSuite, AmmpNextPointerOffset)
{
    // The paper's ammp pathology: link loads at 88 bytes into
    // 128-byte nodes.
    SpecGenerator gen(specProgram("ammp"));
    TraceRecord r;
    unsigned link_loads = 0;
    for (int i = 0; i < 200'000; ++i) {
        gen.next(r);
        if (r.isLoad() && r.addr >= heap_base &&
            r.addr < heap_base + (48u << 20) &&
            (r.addr - heap_base) % 128 == 88)
            ++link_loads;
    }
    EXPECT_GT(link_loads, 100u);
}
