/** @file Unit tests for the backfilling resource schedule. */

#include <gtest/gtest.h>

#include "mem/resource.hh"

using namespace microlib;

TEST(Resource, CapacityPerCycle)
{
    ResourceSchedule sched(2);
    EXPECT_EQ(sched.acquire(10), 10u);
    EXPECT_EQ(sched.acquire(10), 10u);
    EXPECT_EQ(sched.acquire(10), 11u); // third acquisition spills
}

TEST(Resource, BackfillBeforeFutureBooking)
{
    ResourceSchedule sched(1);
    // A refill books cycle 100; a demand access at cycle 5 must not
    // wait for it.
    EXPECT_EQ(sched.acquire(100), 100u);
    EXPECT_EQ(sched.acquire(5), 5u);
    EXPECT_EQ(sched.acquire(5), 6u);
    EXPECT_EQ(sched.acquire(100), 101u);
}

TEST(Resource, BookedQuery)
{
    ResourceSchedule sched(3);
    sched.acquire(42);
    sched.acquire(42);
    EXPECT_EQ(sched.booked(42), 2u);
    EXPECT_EQ(sched.booked(43), 0u);
}

TEST(Resource, WindowReuse)
{
    ResourceSchedule sched(1, 64);
    // Fill a cycle, then come back one full window later: the slot
    // must have been recycled.
    EXPECT_EQ(sched.acquire(7), 7u);
    EXPECT_EQ(sched.acquire(7 + 64), 7u + 64);
}

class ResourceCapacitySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ResourceCapacitySweep, NeverExceedsCapacity)
{
    const unsigned cap = GetParam();
    ResourceSchedule sched(cap);
    // Issue many acquisitions at the same cycle; each cycle must
    // receive at most `cap` bookings.
    std::map<Cycle, unsigned> counts;
    for (unsigned i = 0; i < cap * 10; ++i)
        ++counts[sched.acquire(1000)];
    for (const auto &kv : counts)
        EXPECT_LE(kv.second, cap);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ResourceCapacitySweep,
                         ::testing::Values(1u, 2u, 4u, 8u));
