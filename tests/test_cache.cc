/** @file Unit tests for the detailed cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/cache_simple.hh"
#include "mem/const_memory.hh"

using namespace microlib;

namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "t";
    p.size = 1024;
    p.line = 32;
    p.assoc = 2;
    p.ports = 2;
    p.latency = 1;
    return p;
}

MemRequest
read(Addr addr, Cycle when)
{
    MemRequest r;
    r.addr = addr;
    r.kind = AccessKind::DemandRead;
    r.when = when;
    return r;
}

MemRequest
write(Addr addr, Cycle when)
{
    MemRequest r = read(addr, when);
    r.kind = AccessKind::DemandWrite;
    return r;
}

} // namespace

TEST(Cache, HitAfterMiss)
{
    Cache c(smallCache(), nullptr, nullptr);
    c.access(read(0x100, 0));
    c.access(read(0x104, 50)); // same line
    EXPECT_EQ(c.demand_misses.value(), 1u);
    EXPECT_EQ(c.demand_hits.value(), 1u);
}

TEST(Cache, HitLatency)
{
    Cache c(smallCache(), nullptr, nullptr);
    c.access(read(0x100, 0));
    const Cycle done = c.access(read(0x100, 100));
    EXPECT_EQ(done, 101u); // 1-cycle latency
}

TEST(Cache, MissFetchesFromParent)
{
    ConstMemory mem(70);
    Cache c(smallCache(), &mem, nullptr);
    const Cycle done = c.access(read(0x100, 0));
    EXPECT_GT(done, 70u);
    EXPECT_EQ(mem.reads.value(), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 1024 B / 32 B / 2-way = 16 sets; lines 32*16 apart share a set.
    Cache c(smallCache(), nullptr, nullptr);
    const Addr a = 0x0, b = 0x200, d = 0x400; // same set, 3 lines
    c.access(read(a, 0));
    c.access(read(b, 10));
    c.access(read(d, 20)); // evicts a (LRU)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    ConstMemory mem(10);
    CacheParams p = smallCache();
    Cache c(p, &mem, nullptr);
    c.access(write(0x0, 0));   // allocate + dirty
    c.access(read(0x200, 10));
    c.access(read(0x400, 20)); // evicts dirty line 0x0
    EXPECT_EQ(c.writebacks.value(), 1u);
    EXPECT_EQ(mem.writes.value(), 1u);
}

TEST(Cache, CleanEvictionSilent)
{
    ConstMemory mem(10);
    Cache c(smallCache(), &mem, nullptr);
    c.access(read(0x0, 0));
    c.access(read(0x200, 10));
    c.access(read(0x400, 20));
    EXPECT_EQ(c.writebacks.value(), 0u);
}

TEST(Cache, SecondAccessRidesInflightFill)
{
    ConstMemory mem(100);
    Cache c(smallCache(), &mem, nullptr);
    const Cycle first = c.access(read(0x100, 0));
    // Second access to the line while its fill is still in flight:
    // no second memory read, and the data is not available before
    // the original fill lands.
    const Cycle second = c.access(read(0x108, 1));
    EXPECT_EQ(mem.reads.value(), 1u);
    EXPECT_GE(second + 2, first);
    EXPECT_EQ(c.delayed_hits.value(), 1u);
}

TEST(Cache, PrefetchInstallsWithBit)
{
    ConstMemory mem(50);
    Cache c(smallCache(), &mem, nullptr);
    MemRequest pf = read(0x100, 0);
    pf.kind = AccessKind::Prefetch;
    c.access(pf);
    EXPECT_TRUE(c.probe(0x100));
    EXPECT_TRUE(c.linePrefetched(0x100));
    EXPECT_EQ(c.prefetch_fills.value(), 1u);

    // First demand use clears the bit and counts as used.
    c.access(read(0x100, 200));
    EXPECT_FALSE(c.linePrefetched(0x100));
    EXPECT_EQ(c.prefetch_used.value(), 1u);
}

TEST(Cache, DemandMergesWithInflightPrefetch)
{
    ConstMemory mem(100);
    Cache c(smallCache(), &mem, nullptr);
    MemRequest pf = read(0x100, 0);
    pf.kind = AccessKind::Prefetch;
    c.access(pf);
    // Demand arrives while the prefetch is still in flight.
    const Cycle done = c.access(read(0x100, 10));
    EXPECT_EQ(mem.reads.value(), 1u); // no duplicate fetch
    EXPECT_GT(done, 10u);
}

TEST(Cache, WritebackRequestMarksDirty)
{
    Cache c(smallCache(), nullptr, nullptr);
    c.access(read(0x100, 0));
    MemRequest wb = read(0x100, 10);
    wb.kind = AccessKind::Writeback;
    c.access(wb);
    // Evict it: must write back (we can't see dirty directly, so use
    // a parent-backed cache).
    ConstMemory mem(10);
    Cache c2(smallCache(), &mem, nullptr);
    c2.access(read(0x100, 0));
    wb.when = 20;
    c2.access(wb);
    c2.access(read(0x300, 30));
    c2.access(read(0x500, 40));
    EXPECT_EQ(c2.writebacks.value(), 1u);
}

TEST(Cache, WritebackMissAllocatesWithoutFetch)
{
    ConstMemory mem(100);
    Cache c(smallCache(), &mem, nullptr);
    MemRequest wb = read(0x100, 0);
    wb.kind = AccessKind::Writeback;
    c.access(wb);
    EXPECT_TRUE(c.probe(0x100));
    EXPECT_EQ(mem.reads.value(), 0u); // full-line write, no fill read
}

TEST(Cache, Invalidate)
{
    Cache c(smallCache(), nullptr, nullptr);
    c.access(read(0x100, 0));
    EXPECT_TRUE(c.probe(0x100));
    c.invalidate(0x100);
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, SimpleScalarPresetsRelaxRealism)
{
    const CacheParams p = makeSimpleScalarLike(smallCache());
    EXPECT_FALSE(p.finite_mshr);
    EXPECT_FALSE(p.pipeline_stalls);
    EXPECT_FALSE(p.refill_uses_ports);
    EXPECT_TRUE(p.port_contention); // demand ports stay modeled
}

TEST(Cache, RealismFeatureComposition)
{
    const CacheParams p = withRealism(
        smallCache(), {RealismFeature::FiniteMshr,
                       RealismFeature::RefillPorts});
    EXPECT_TRUE(p.finite_mshr);
    EXPECT_TRUE(p.refill_uses_ports);
    EXPECT_FALSE(p.pipeline_stalls);
}

namespace
{

/** Client recorder for observing cache events through the sealed
 *  hook shim (the same dispatch path the mechanisms use). */
struct RecordingHooks final : public HierarchyClient
{
    unsigned accesses = 0, misses = 0, evicts = 0, refills = 0;
    bool supply = false; ///< claim misses from the side structure

    void
    cacheAccess(CacheLevel, const MemRequest &, bool hit, bool) override
    {
        ++accesses;
        if (!hit)
            ++misses;
    }
    bool
    cacheMissProbe(CacheLevel, Addr, Cycle, Cycle &extra) override
    {
        extra = 2;
        return supply;
    }
    void cacheEvict(CacheLevel, Addr, bool, Cycle) override { ++evicts; }
    void
    cacheRefill(CacheLevel, Addr, AccessKind, Cycle) override
    {
        ++refills;
    }
};

} // namespace

TEST(Cache, HooksFireOnDemandPath)
{
    ConstMemory mem(10);
    Cache c(smallCache(), &mem, nullptr);
    RecordingHooks hooks;
    c.bindClient(&hooks, CacheLevel::L1D, nullptr);
    c.access(read(0x100, 0));  // miss + refill
    c.access(read(0x100, 50)); // hit
    EXPECT_EQ(hooks.accesses, 2u);
    EXPECT_EQ(hooks.misses, 1u);
    EXPECT_EQ(hooks.refills, 1u);
}

TEST(Cache, SideStructureSuppliesMiss)
{
    ConstMemory mem(100);
    Cache c(smallCache(), &mem, nullptr);
    RecordingHooks hooks;
    hooks.supply = true;
    c.bindClient(&hooks, CacheLevel::L1D, nullptr);
    const Cycle done = c.access(read(0x100, 0));
    // Served by the side structure: latency + extra, and no memory
    // read happened.
    EXPECT_LE(done, 10u);
    EXPECT_EQ(mem.reads.value(), 0u);
    EXPECT_EQ(c.side_fills.value(), 1u);
    EXPECT_TRUE(c.probe(0x100)); // line migrated into the cache
}
