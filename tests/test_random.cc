/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace microlib;

TEST(Random, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3u);
}

TEST(Random, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Random, BoundedCoversRange)
{
    Rng rng(7);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int count : seen)
        EXPECT_GT(count, 800); // roughly uniform
}

TEST(Random, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, GeometricMeanApproximately)
{
    Rng rng(11);
    const double target = 5.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(target));
    EXPECT_NEAR(sum / n, target, 0.5);
}

TEST(Random, GeometricNeverZero)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.nextGeometric(1.5), 1u);
}

class RandomChanceTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RandomChanceTest, ChanceMatchesProbability)
{
    const double p = GetParam();
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RandomChanceTest,
                         ::testing::Values(0.0, 0.1, 0.35, 0.5, 0.85,
                                           1.0));
