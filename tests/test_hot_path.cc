/**
 * @file
 * Hot-path determinism tests.
 *
 * The block-based SoA loop (OoOCore::run over a TraceView) must be a
 * pure re-expression of the seed's record-at-a-time AoS loop (kept as
 * OoOCore::runReference): same CoreResult bit for bit, same cache and
 * MSHR counters, for every mechanism — including ones that exercise
 * the devirtualized hook shim's side-fill, eviction and refill paths.
 * A second suite pins the full stat snapshot across MICROLIB_THREADS
 * 1/4/8 so the scheduler cannot leak ordering into the new loop.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hh"
#include "core/scheduler.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "sim/stats.hh"
#include "trace/window.hh"

using namespace microlib;

namespace
{

const std::vector<std::string> kBenchmarks = {"swim", "mcf", "crafty"};
const std::vector<std::string> kMechanisms = {"Base", "VC", "GHB"};

RunConfig
quickConfig()
{
    RunConfig cfg;
    cfg.selection = TraceSelection::Arbitrary;
    cfg.scale.arbitrary_skip = 25'000;
    cfg.scale.arbitrary_length = 80'000;
    return cfg;
}

/** One full run (hierarchy + mechanism + stats), through either the
 *  SoA hot loop or the AoS reference loop. Mirrors runOne(). */
struct FullRun
{
    CoreResult core;
    std::map<std::string, double> stats;
};

FullRun
simulate(const MaterializedTrace &trace, const std::string &mechanism,
         const RunConfig &cfg, bool reference)
{
    FullRun out;
    Hierarchy hier(cfg.system.hier, trace.image);
    std::unique_ptr<CacheMechanism> mech =
        makeMechanism(mechanism, cfg.mech);

    StatSet stats;
    hier.registerStats(stats);
    if (mech) {
        mech->bind(hier);
        mech->registerStats(stats);
        hier.setClient(mech.get());
    }

    OoOCore core(cfg.system.core);
    out.core = reference ? core.runReference(trace.records, hier)
                         : core.run(trace.view(), hier);
    stats.snapshot(out.stats);
    return out;
}

void
expectBitIdentical(const FullRun &a, const FullRun &b,
                   const std::string &label)
{
    EXPECT_EQ(a.core.instructions, b.core.instructions) << label;
    EXPECT_EQ(a.core.cycles, b.core.cycles) << label;
    EXPECT_EQ(a.core.ipc, b.core.ipc) << label; // exact, not near
    EXPECT_EQ(a.core.loads, b.core.loads) << label;
    EXPECT_EQ(a.core.stores, b.core.stores) << label;
    EXPECT_EQ(a.core.branches, b.core.branches) << label;
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts) << label;
    // The full snapshot covers every cache and MSHR counter
    // (demand_misses, writebacks, side_fills, mshr_full_stalls, ...).
    ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
    for (const auto &kv : a.stats) {
        const auto it = b.stats.find(kv.first);
        ASSERT_NE(it, b.stats.end()) << label << ": " << kv.first;
        EXPECT_EQ(kv.second, it->second) << label << ": " << kv.first;
    }
}

} // namespace

TEST(HotPath, SoaLoopMatchesSeedLoopAcrossMatrix)
{
    const RunConfig cfg = quickConfig();
    for (const auto &benchmark : kBenchmarks) {
        const MaterializedTrace trace = materializeFor(benchmark, cfg);
        ASSERT_EQ(trace.soa.size(), trace.records.size());
        for (const auto &mechanism : kMechanisms) {
            const FullRun soa = simulate(trace, mechanism, cfg, false);
            const FullRun ref = simulate(trace, mechanism, cfg, true);
            expectBitIdentical(soa, ref, benchmark + "/" + mechanism);
            // A real simulation happened (guards against both loops
            // degenerating together).
            EXPECT_GT(soa.core.cycles, 0u);
            EXPECT_GT(soa.stats.at("l1d.demand_accesses"), 0.0);
        }
    }
}

TEST(HotPath, RunOverloadsShareOneLoop)
{
    // The Trace overload transposes and delegates: both entry points
    // must agree exactly.
    const RunConfig cfg = quickConfig();
    const MaterializedTrace trace = materializeFor("gzip", cfg);
    const BaselineConfig sys = makeBaseline();

    Hierarchy h1(sys.hier, trace.image);
    OoOCore c1(sys.core);
    const CoreResult via_records = c1.run(trace.records, h1);

    Hierarchy h2(sys.hier, trace.image);
    OoOCore c2(sys.core);
    const CoreResult via_view = c2.run(trace.view(), h2);

    EXPECT_EQ(via_records.cycles, via_view.cycles);
    EXPECT_EQ(via_records.ipc, via_view.ipc);
    EXPECT_EQ(via_records.mispredicts, via_view.mispredicts);
}

TEST(HotPath, BitIdenticalAcrossWorkerCounts)
{
    const RunConfig cfg = quickConfig();
    std::vector<MatrixResult> results;
    for (const unsigned threads : {1u, 4u, 8u}) {
        setenv("MICROLIB_THREADS", std::to_string(threads).c_str(), 1);
        EngineOptions opts;
        opts.threads = threads;
        ExperimentEngine engine(opts);
        results.push_back(engine.run(kMechanisms, kBenchmarks, cfg));
    }
    unsetenv("MICROLIB_THREADS");

    const MatrixResult &base = results.front();
    for (std::size_t r = 1; r < results.size(); ++r) {
        const MatrixResult &other = results[r];
        ASSERT_EQ(base.mechanisms, other.mechanisms);
        ASSERT_EQ(base.benchmarks, other.benchmarks);
        for (std::size_t m = 0; m < base.mechanisms.size(); ++m) {
            for (std::size_t b = 0; b < base.benchmarks.size(); ++b) {
                const RunOutput &x = base.outputs[m][b];
                const RunOutput &y = other.outputs[m][b];
                const std::string label = base.mechanisms[m] + "/" +
                                          base.benchmarks[b];
                EXPECT_EQ(x.core.cycles, y.core.cycles) << label;
                EXPECT_EQ(x.core.ipc, y.core.ipc) << label;
                EXPECT_EQ(x.stats, y.stats) << label;
            }
        }
    }
}
