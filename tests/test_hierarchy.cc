/** @file Unit tests for the assembled memory hierarchy. */

#include <gtest/gtest.h>

#include "core/baseline_config.hh"
#include "mem/hierarchy.hh"

using namespace microlib;

namespace
{

HierarchyParams
baseParams()
{
    return makeBaseline().hier;
}

} // namespace

TEST(Hierarchy, LoadMissGoesToDram)
{
    Hierarchy h(baseParams(), nullptr);
    const Cycle done = h.load(0x10000000, 0x400000, 100);
    // L1 miss -> L2 miss -> SDRAM: tRCD + CL + FSB at the very least.
    EXPECT_GT(done, 100u + 60u);
    EXPECT_EQ(h.l1d().demand_misses.value(), 1u);
    EXPECT_EQ(h.l2().demand_misses.value(), 1u);
    EXPECT_EQ(h.sdram()->reads.value(), 1u);
}

TEST(Hierarchy, SecondLoadHitsL1)
{
    Hierarchy h(baseParams(), nullptr);
    const Cycle first = h.load(0x10000000, 0x400000, 100);
    const Cycle second = h.load(0x10000000, 0x400000, first + 10);
    // A fast L1 hit: port + 1-cycle latency, small slack allowed.
    EXPECT_LE(second, first + 10 + 3);
}

TEST(Hierarchy, ConstantMemoryMode)
{
    HierarchyParams p = baseParams();
    p.memory = MemoryModelKind::ConstantLatency;
    p.const_latency = 70;
    Hierarchy h(p, nullptr);
    EXPECT_EQ(h.sdram(), nullptr);
    const Cycle done = h.load(0x10000000, 0x400000, 0);
    EXPECT_GT(done, 70u);
    EXPECT_LT(done, 150u);
}

TEST(Hierarchy, PrefetchIntoL2Installs)
{
    Hierarchy h(baseParams(), nullptr);
    h.prefetchIntoL2(0x10000000, 0, 100);
    EXPECT_TRUE(h.l2Probe(0x10000000));
    EXPECT_FALSE(h.l1Probe(0x10000000));
}

TEST(Hierarchy, BufferFetchDoesNotInstallInL1)
{
    Hierarchy h(baseParams(), nullptr);
    const Cycle ready = h.fetchForL1Buffer(0x10000000, 100);
    EXPECT_GT(ready, 100u);
    EXPECT_FALSE(h.l1Probe(0x10000000));
    EXPECT_TRUE(h.l2Probe(0x10000000)); // passed through the L2
}

TEST(Hierarchy, IfetchUsesICache)
{
    Hierarchy h(baseParams(), nullptr);
    h.ifetch(0x400000, 10);
    EXPECT_EQ(h.l1i().demand_accesses.value(), 1u);
}

TEST(Hierarchy, StatsRegistered)
{
    Hierarchy h(baseParams(), nullptr);
    StatSet stats;
    h.registerStats(stats);
    EXPECT_TRUE(stats.has("l1d.demand_misses"));
    EXPECT_TRUE(stats.has("l2.demand_accesses"));
    EXPECT_TRUE(stats.has("dram.row_hits"));
}

namespace
{

/** Client recording per-level events. */
struct RecordingClient : public HierarchyClient
{
    unsigned l1_events = 0, l2_events = 0, contents = 0;
    std::vector<Word> last_words;

    void
    cacheAccess(CacheLevel lvl, const MemRequest &, bool, bool) override
    {
        (lvl == CacheLevel::L1D ? l1_events : l2_events) += 1;
    }
    bool wantsLineContent(CacheLevel lvl) const override
    {
        return lvl == CacheLevel::L2;
    }
    void
    lineContent(CacheLevel, Addr, const std::vector<Word> &words,
                AccessKind, Cycle) override
    {
        ++contents;
        last_words = words;
    }
};

} // namespace

TEST(Hierarchy, ClientSeesBothLevels)
{
    Hierarchy h(baseParams(), nullptr);
    RecordingClient client;
    h.setClient(&client);
    h.load(0x10000000, 0x400000, 100); // L1 miss -> L2 access
    EXPECT_EQ(client.l1_events, 1u);
    EXPECT_EQ(client.l2_events, 1u);
}

TEST(Hierarchy, LineContentDeliveredFromImage)
{
    auto image = std::make_shared<MemoryImage>();
    image->write(0x10000000, 0xabcd);
    Hierarchy h(baseParams(), image);
    RecordingClient client;
    h.setClient(&client);
    h.load(0x10000000, 0x400000, 100);
    ASSERT_GE(client.contents, 1u);
    ASSERT_EQ(client.last_words.size(), 8u); // 64 B L2 line
    EXPECT_EQ(client.last_words[0], 0xabcdu);
}
