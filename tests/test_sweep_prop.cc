/** @file Property/round-trip tests for the sweep-spec stack: seeded
 *  randomized specs drawn from the settable-parameter registry must
 *  survive parse(canonicalText()) unchanged with a stable hash, and
 *  every single-line mutation of a canonical spec must either be
 *  rejected by the parser or change the hash — the guarantee that
 *  makes the spec hash a trustworthy sweep identity. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hh"
#include "core/sweep_spec.hh"
#include "sim/random.hh"
#include "trace/spec_suite.hh"

using namespace microlib;

namespace
{

/**
 * Generic candidate value tokens. Each registry parameter accepts a
 * different syntax (plain integers, k/M-scaled byte counts, enum
 * words, on/off flags); rather than hard-coding per-key knowledge the
 * generator offers every candidate to AxisParam::apply on a scratch
 * config and keeps the ones the parameter itself accepts — so the
 * test exercises exactly the registry's own validation and never goes
 * stale when keys are added.
 */
const std::vector<std::string> &
candidateTokens()
{
    static const std::vector<std::string> pool = {
        "1",    "2",    "3",     "4",     "8",     "12",
        "16",   "32",   "48",    "64",    "128",   "256",
        "512",  "1024", "4096",  "8192",  "10000", "50000",
        "100000", "4k", "64k",   "256k",  "1M",    "2M",
        "sdram", "const", "on",  "off",   "true",  "false",
        "0",    "0.5",  "simpoint", "arbitrary", "full",
    };
    return pool;
}

/** The values of @p param that the candidate pool covers. */
std::vector<std::string>
legalValues(const AxisParam &param)
{
    std::vector<std::string> out;
    for (const auto &tok : candidateTokens()) {
        RunConfig scratch;
        if (param.apply(scratch, tok, nullptr))
            out.push_back(tok);
    }
    return out;
}

/** Sample @p n distinct elements of @p pool, preserving pool order
 *  (canonical text keeps declaration order, so ordering the sample
 *  deterministically keeps the round-trip comparison simple). */
template <typename T>
std::vector<T>
sample(Rng &rng, const std::vector<T> &pool, std::size_t n)
{
    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    for (std::size_t i = 0; i + 1 < idx.size(); ++i)
        std::swap(idx[i],
                  idx[i + rng.nextBounded(idx.size() - i)]);
    idx.resize(std::min(n, idx.size()));
    std::sort(idx.begin(), idx.end());
    std::vector<T> out;
    for (const std::size_t i : idx)
        out.push_back(pool[i]);
    return out;
}

/** Generate a random valid spec: 1-3 benchmarks, 1-3 mechanisms,
 *  0-3 base settings, 0-2 axes of 2-3 values each. Every setting is
 *  validated by the registry, so parse() must accept the result. */
SweepSpec
randomSpec(Rng &rng)
{
    std::vector<std::string> bench_pool = specBenchmarkNames();
    for (const auto &b : extraBenchmarkNames())
        bench_pool.push_back(b);

    SweepSpec spec;
    spec.setBenchmarks(
        sample(rng, bench_pool, 1 + rng.nextBounded(3)));
    spec.setMechanisms(
        sample(rng, allMechanismNames(), 1 + rng.nextBounded(3)));

    // Pick the settable keys this spec will use, then split them
    // between base settings and axes so no key is used twice.
    std::vector<const AxisParam *> usable;
    for (const auto &p : axisRegistry())
        if (legalValues(p).size() >= 3)
            usable.push_back(&p);
    const auto chosen =
        sample(rng, usable, rng.nextBounded(6)); // up to 5 keys
    std::size_t axes = 0;
    for (const AxisParam *param : chosen) {
        const auto values = legalValues(*param);
        std::string error;
        if (axes < 2 && rng.nextBounded(2) == 0) {
            ++axes;
            const auto axis_values =
                sample(rng, values, 2 + rng.nextBounded(2));
            EXPECT_TRUE(spec.addAxis(param->key, axis_values,
                                     &error))
                << param->key << ": " << error;
        } else {
            EXPECT_TRUE(spec.addBase(
                param->key, values[rng.nextBounded(values.size())],
                &error))
                << param->key << ": " << error;
        }
    }
    return spec;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

std::string
join(const std::vector<std::string> &ls)
{
    std::string out;
    for (const auto &l : ls) {
        out += l;
        out += '\n';
    }
    return out;
}

} // namespace

TEST(SweepProp, RegistryOffersSearchableAndEnumKeys)
{
    // The generator is only meaningful if the candidate pool actually
    // covers the registry; guard against silent emptiness.
    std::size_t covered = 0;
    for (const auto &p : axisRegistry())
        if (legalValues(p).size() >= 3)
            ++covered;
    EXPECT_GE(covered, 10u);
}

class SweepPropRandom : public ::testing::TestWithParam<int>
{
};

/** parse(canonicalText()) is the identity: same canonical text, same
 *  hash, same shape — for any registry-valid spec. */
TEST_P(SweepPropRandom, CanonicalRoundTripIsIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    const SweepSpec spec = randomSpec(rng);
    const std::string text = spec.canonicalText();

    SweepSpec back;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(text, back, &error))
        << error << "\n" << text;
    EXPECT_EQ(back.canonicalText(), text);
    EXPECT_EQ(back.hash(), spec.hash());
    EXPECT_EQ(back.benchmarks(), spec.benchmarks());
    EXPECT_EQ(back.mechanisms(), spec.mechanisms());
    EXPECT_EQ(back.variantCount(), spec.variantCount());

    // Parsing the same text twice gives the same hash (stability),
    // and the hash is a pure function of the canonical text alone.
    SweepSpec again;
    ASSERT_TRUE(SweepSpec::parse(text, again, &error)) << error;
    EXPECT_EQ(again.hash(), back.hash());

    // Every variant resolves without tripping the registry (resolve
    // is fatal on a setting the registry rejects, so this is the "no
    // validated spec can explode mid-sweep" property).
    for (const auto &v : spec.variants())
        (void)spec.resolve(v);
}

/** Comments and blank lines are presentation, not identity. */
TEST_P(SweepPropRandom, CommentsDoNotChangeTheHash)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
    const SweepSpec spec = randomSpec(rng);
    std::string decorated = "# leading comment\n\n";
    for (const auto &line : lines(spec.canonicalText())) {
        decorated += line;
        decorated += "\n# interleaved comment\n\n";
    }
    SweepSpec back;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(decorated, back, &error)) << error;
    EXPECT_EQ(back.hash(), spec.hash());
    EXPECT_EQ(back.canonicalText(), spec.canonicalText());
}

/** Any single-line deletion of a canonical spec is either rejected
 *  by the parser or changes the hash — no two distinct specs can
 *  silently share an identity. */
TEST_P(SweepPropRandom, SingleLineDeletionRejectedOrRehashed)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
    const SweepSpec spec = randomSpec(rng);
    const auto ls = lines(spec.canonicalText());

    for (std::size_t drop = 0; drop < ls.size(); ++drop) {
        std::vector<std::string> mutated = ls;
        mutated.erase(mutated.begin() + drop);
        SweepSpec back;
        std::string error;
        if (!SweepSpec::parse(join(mutated), back, &error)) {
            EXPECT_FALSE(error.empty());
            continue; // rejected: fine
        }
        EXPECT_NE(back.hash(), spec.hash())
            << "dropping line '" << ls[drop]
            << "' kept the hash but parsed";
    }
}

/** Corrupting any value token is rejected (the registry validates at
 *  parse time) or changes the hash (e.g. a bench/mech name swapped
 *  for another known one). */
TEST_P(SweepPropRandom, TokenCorruptionRejectedOrRehashed)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 3);
    const SweepSpec spec = randomSpec(rng);
    const auto ls = lines(spec.canonicalText());

    for (std::size_t i = 1; i < ls.size(); ++i) { // skip the header
        // Replace the line's last token with garbage.
        std::vector<std::string> mutated = ls;
        const std::size_t cut = mutated[i].find_last_of(" =");
        ASSERT_NE(cut, std::string::npos) << mutated[i];
        mutated[i] = mutated[i].substr(0, cut + 1) + "zz@junk";
        SweepSpec back;
        std::string error;
        EXPECT_FALSE(SweepSpec::parse(join(mutated), back, &error))
            << "corrupted line '" << mutated[i] << "' parsed";
        EXPECT_FALSE(error.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepPropRandom,
                         ::testing::Range(0, 24));

/** Deterministic spot-checks of the mutation property on the
 *  committed two-variant example from test_sweep_spec's family. */
TEST(SweepProp, DuplicateAxisLineIsRejected)
{
    const std::string text = "sweep-spec v1\n"
                             "bench swim\n"
                             "mech Base SP\n"
                             "axis core.rob 32 64\n";
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(text, spec, &error)) << error;

    SweepSpec dup;
    EXPECT_FALSE(SweepSpec::parse(text + "axis core.rob 96 128\n",
                                  dup, &error));
    EXPECT_NE(error.find("duplicate axis"), std::string::npos)
        << error;
}

TEST(SweepProp, ReorderedDeclarationsChangeTheHash)
{
    // Declaration order is identity: axes expand first-axis-slowest
    // and base settings apply in order, so reordering is a different
    // sweep and must hash differently.
    SweepSpec a, b;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("sweep-spec v1\n"
                                 "bench swim\n"
                                 "mech Base SP\n"
                                 "axis core.rob 32 64\n"
                                 "axis hier.l2.size 64k 1M\n",
                                 a, &error))
        << error;
    ASSERT_TRUE(SweepSpec::parse("sweep-spec v1\n"
                                 "bench swim\n"
                                 "mech Base SP\n"
                                 "axis hier.l2.size 64k 1M\n"
                                 "axis core.rob 32 64\n",
                                 b, &error))
        << error;
    EXPECT_NE(a.hash(), b.hash());
}
