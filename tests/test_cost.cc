/** @file Unit tests for the CACTI/XCACTI stand-in cost models. */

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "cost/cacti.hh"
#include "cost/mechanism_cost.hh"
#include "cost/xcacti.hh"

using namespace microlib;

TEST(Cacti, AreaMonotonicInSize)
{
    const SramSpec small{"s", 1024, 1, 1};
    const SramSpec big{"b", 1024 * 1024, 1, 1};
    EXPECT_LT(sramAreaMm2(small), sramAreaMm2(big));
}

TEST(Cacti, PortsCostArea)
{
    const SramSpec one{"s", 32 * 1024, 1, 1};
    const SramSpec four{"s", 32 * 1024, 1, 4};
    EXPECT_LT(sramAreaMm2(one), sramAreaMm2(four));
}

TEST(Cacti, CamCostsMoreThanRam)
{
    const SramSpec ram{"r", 512, 1, 1};
    const SramSpec cam{"c", 512, 0, 1}; // assoc 0 = fully associative
    EXPECT_LT(sramAreaMm2(ram), sramAreaMm2(cam));
}

TEST(Cacti, EmptySpecIsFree)
{
    EXPECT_EQ(sramAreaMm2({"none", 0, 1, 1}), 0.0);
}

TEST(Cacti, CacheAreaIncludesTags)
{
    const double data_only = sramAreaMm2({"d", 32 * 1024, 1, 1});
    const double full = cacheAreaMm2(32 * 1024, 32, 1, 1);
    EXPECT_GT(full, data_only);
}

TEST(Xcacti, EnergyMonotonicInSize)
{
    EXPECT_LT(accessEnergyNj({"s", 8 * 1024, 1, 1}),
              accessEnergyNj({"b", 1024 * 1024, 1, 1}));
}

TEST(Xcacti, FullyAssociativeEnergyPenalty)
{
    EXPECT_LT(accessEnergyNj({"r", 512, 1, 1}),
              accessEnergyNj({"c", 512, 0, 1}));
}

TEST(MechanismCost, MarkovDwarfsSp)
{
    // The paper's Figure 5 headline: Markov/DBCP megabyte tables vs
    // SP/GHB's hundreds of bytes.
    MechanismConfig mc;
    auto markov = makeMechanism("Markov", mc);
    auto sp = makeMechanism("SP", mc);
    const double markov_area = totalAreaMm2(markov->hardware());
    const double sp_area = totalAreaMm2(sp->hardware());
    EXPECT_GT(markov_area, 50.0 * sp_area);
}

TEST(MechanismCost, RatiosComputed)
{
    RunOutput mech_run, base_run;
    mech_run.mechanism = "SP";
    mech_run.hardware = {{"sp.rpt", 8192, 1, 1}};
    mech_run.stats["l1d.demand_accesses"] = 1e6;
    mech_run.stats["l2.demand_accesses"] = 1e5;
    mech_run.stats["mech.SP.table_reads"] = 1e6;
    mech_run.stats["mech.SP.prefetches_issued"] = 1e4;
    base_run.stats["l1d.demand_accesses"] = 1e6;
    base_run.stats["l2.demand_accesses"] = 1e5;

    const BaselineConfig sys = makeBaseline();
    const CostReport rep = computeCost(mech_run, base_run, sys);
    EXPECT_GT(rep.area_ratio, 0.0);
    EXPECT_LT(rep.area_ratio, 0.1); // 8 KB vs ~1 MB of cache
    EXPECT_GT(rep.power_ratio, 1.0); // extra activity costs energy
}

TEST(MechanismCost, DbcpAreaRatioIsLarge)
{
    MechanismConfig mc;
    auto dbcp = makeMechanism("DBCP", mc);
    RunOutput run, base;
    run.mechanism = "DBCP";
    run.hardware = dbcp->hardware();
    const BaselineConfig sys = makeBaseline();
    const CostReport rep = computeCost(run, base, sys);
    EXPECT_GT(rep.area_ratio, 0.5); // ~2MB of tables vs ~1MB caches
}
