/** @file Behavioural unit tests for the correlation/content
 *  prefetchers: Markov, DBCP, TK, TKVC, CDP, TCP, GHB. */

#include <gtest/gtest.h>

#include "core/baseline_config.hh"
#include "mechanisms/cdp.hh"
#include "mechanisms/cdp_sp.hh"
#include "mechanisms/dbcp.hh"
#include "mechanisms/ghb.hh"
#include "mechanisms/markov_prefetch.hh"
#include "mechanisms/tcp.hh"
#include "mechanisms/timekeeping.hh"
#include "mechanisms/timekeeping_victim.hh"
#include "trace/kernels.hh"

using namespace microlib;

namespace
{

struct Rig
{
    BaselineConfig cfg = makeBaseline();
    std::shared_ptr<MemoryImage> image = std::make_shared<MemoryImage>();
    std::unique_ptr<Hierarchy> hier;

    Rig() { hier = std::make_unique<Hierarchy>(cfg.hier, image); }

    void
    attach(CacheMechanism &mech)
    {
        mech.bind(*hier);
        hier->setClient(&mech);
    }
};

} // namespace

TEST(Markov, LearnsRepeatedMissSequence)
{
    Rig rig;
    MechanismConfig mc;
    MarkovPrefetch markov(mc);
    rig.attach(markov);
    // A fixed miss sequence over lines far apart, repeated; after the
    // first round the successors are known and prefetched into the
    // buffer, which then serves the misses.
    const Addr seq[] = {0x10000000, 0x11000000, 0x12000000,
                        0x13000000};
    Cycle t = 100;
    for (int round = 0; round < 6; ++round)
        for (const Addr a : seq)
            t = rig.hier->load(a, 0x400000, t + 2000) + 2000;
    EXPECT_GT(markov.prefetches_issued.value(), 0u);
    EXPECT_GT(markov.side_hits.value(), 0u);
}

TEST(Dbcp, SignatureUpdateDiffersAcrossVariants)
{
    MechanismConfig fixed_cfg;
    MechanismConfig guess_cfg;
    guess_cfg.second_guess = true;
    Dbcp fixed(fixed_cfg), initial(guess_cfg);
    // Without the PC pre-hash, adjacent PCs collide much more; the
    // two variants must produce different signatures.
    EXPECT_NE(fixed.updateSignature(0, 0x400004),
              initial.updateSignature(0, 0x400004));
}

TEST(Dbcp, LearnsDeathSuccession)
{
    Rig rig;
    MechanismConfig mc;
    Dbcp dbcp(mc);
    rig.attach(dbcp);
    // Conflict pair: A dies to B, B dies to A, cyclically with a
    // stable access signature (single PC).
    const Addr a = 0x10000000, b = 0x10008000;
    Cycle t = 100;
    for (int i = 0; i < 30; ++i)
        t = rig.hier->load(i % 2 ? b : a, 0x400000, t + 500) + 500;
    EXPECT_GT(dbcp.prefetches_issued.value(), 0u);
    EXPECT_GT(dbcp.side_hits.value(), 0u);
}

TEST(Timekeeping, QuantizationOnlyInFixedBuild)
{
    MechanismConfig fixed_cfg;
    Timekeeping fixed(fixed_cfg);
    EXPECT_EQ(fixed.quantize(1000), 512u);
    EXPECT_EQ(fixed.quantize(511), 0u);

    MechanismConfig guess_cfg;
    guess_cfg.second_guess = true;
    Timekeeping initial(guess_cfg);
    EXPECT_EQ(initial.quantize(1000), 1000u);
}

TEST(Timekeeping, PrefetchesReplacementOfDeadLine)
{
    Rig rig;
    MechanismConfig mc;
    Timekeeping tk(mc);
    rig.attach(tk);
    const Addr a = 0x10000000, b = 0x10008000; // same L1 set
    Cycle t = 100;
    for (int i = 0; i < 40; ++i) {
        t += 3000; // idle beyond the 1023-cycle death threshold
        rig.hier->load(i % 2 ? b : a, 0x400000, t);
    }
    EXPECT_GT(tk.prefetches_issued.value(), 0u);
    EXPECT_GT(tk.side_hits.value(), 0u);
}

TEST(TimekeepingVictim, FiltersDeadLines)
{
    Rig rig;
    MechanismConfig mc;
    TimekeepingVictim tkvc(mc);
    rig.attach(tkvc);
    const Addr a = 0x10000000, b = 0x10008000;
    // Recently-used A evicted: admitted. Long-idle A evicted:
    // filtered.
    Cycle t = 100;
    rig.hier->load(a, 0x400000, t);
    rig.hier->load(b, 0x400000, t + 50); // A idle 50 < threshold
    EXPECT_EQ(tkvc.admitted.value(), 1u);

    rig.hier->load(a, 0x400000, t + 100); // B evicted, A back
    rig.hier->load(b, 0x400000, t + 50'000); // A idle huge: filtered
    EXPECT_GE(tkvc.filtered.value(), 1u);
}

TEST(Cdp, CandidateFilter)
{
    EXPECT_TRUE(Cdp::candidate(heap_base + 0x1000));
    EXPECT_FALSE(Cdp::candidate(42));                 // small int
    EXPECT_FALSE(Cdp::candidate(heap_base + 0x1001)); // unaligned
    EXPECT_FALSE(Cdp::candidate(0xffffffffffffffffull));
}

TEST(Cdp, PrefetchesPointersInRefilledLines)
{
    Rig rig;
    // Line at A holds a pointer to B.
    const Addr a = 0x10000000, b = 0x14000000;
    rig.image->write(a, b);
    MechanismConfig mc;
    Cdp cdp(mc);
    rig.attach(cdp);
    rig.hier->load(a, 0x400000, 100); // refill scans content
    EXPECT_GE(cdp.pointers_found.value(), 1u);
    EXPECT_TRUE(rig.hier->l2Probe(b));
}

TEST(Cdp, RecursionBoundedByDepth)
{
    Rig rig;
    // Chain a -> b -> c -> d -> e via pointers in line heads.
    const Addr chain[] = {0x10000000, 0x14000000, 0x18000000,
                          0x1c000000, 0x20000000, 0x24000000};
    for (int i = 0; i < 5; ++i)
        rig.image->write(chain[i], chain[i + 1]);
    MechanismConfig mc;
    Cdp cdp(mc);
    rig.attach(cdp);
    rig.hier->load(chain[0], 0x400000, 100);
    // Depth threshold 3: b, c, d prefetched; e must not be.
    EXPECT_TRUE(rig.hier->l2Probe(chain[1]));
    EXPECT_TRUE(rig.hier->l2Probe(chain[2]));
    EXPECT_TRUE(rig.hier->l2Probe(chain[3]));
    EXPECT_FALSE(rig.hier->l2Probe(chain[4]));
}

TEST(CdpSp, CombinesBothEngines)
{
    Rig rig;
    const Addr ptr_line = 0x10000000, target = 0x14000000;
    rig.image->write(ptr_line, target);
    MechanismConfig mc;
    CdpSp combo(mc);
    rig.attach(combo);
    // Pointer side.
    rig.hier->load(ptr_line, 0x400200, 100);
    EXPECT_TRUE(rig.hier->l2Probe(target));
    // Stride side.
    const auto fills_before = rig.hier->l2().prefetch_fills.value();
    Cycle t = 10000;
    for (int i = 0; i < 8; ++i)
        t = rig.hier->load(0x30000000 + i * 256, 0x400abc, t + 50);
    EXPECT_GT(rig.hier->l2().prefetch_fills.value(), fills_before);
    EXPECT_TRUE(rig.hier->l2Probe(0x30000000 + 8 * 256));
}

TEST(Tcp, LearnsTagPatternPerSet)
{
    Rig rig;
    MechanismConfig mc;
    Tcp tcp(mc);
    rig.attach(tcp);
    // Six tags cycling in one L2 set (more than the 4 ways, so every
    // access stays a miss): after one full cycle each pattern
    // (t1,t2)->t3 is known and prefetched.
    const std::uint64_t l2_sets = 1024 * 1024 / (64 * 4);
    const Addr t0 = 0x10000000;
    const Addr stride = l2_sets * 64; // same set, next tag
    Cycle t = 100;
    for (int round = 0; round < 5; ++round)
        for (int k = 0; k < 6; ++k)
            t = rig.hier->load(t0 + k * stride, 0x400000, t + 3000);
    EXPECT_GT(tcp.prefetches_issued.value(), 0u);
}

TEST(Tcp, BufferSizeFollowsConfig)
{
    MechanismConfig big;
    big.tcp_buffer = 128;
    EXPECT_EQ(Tcp(big).queueCapacity(), 128u);

    MechanismConfig small;
    small.tcp_buffer = 1;
    EXPECT_EQ(Tcp(small).queueCapacity(), 1u);

    MechanismConfig guessed;
    guessed.second_guess = true;
    EXPECT_EQ(Tcp(guessed).queueCapacity(), 1u);
}

TEST(Ghb, DetectsConstantStrideInMissStream)
{
    Rig rig;
    MechanismConfig mc;
    Ghb ghb(mc);
    rig.attach(ghb);
    Cycle t = 100;
    // L2 miss stream with constant 64-line stride from one PC. GHB
    // trains on misses only, so after each degree-4 burst the next
    // few accesses hit and the pattern re-syncs — coverage comes in
    // waves, as in the original design.
    for (int i = 0; i < 20; ++i)
        t = rig.hier->load(0x10000000 + i * 4096, 0x400abc, t + 500);
    EXPECT_GE(ghb.prefetches_issued.value(), 8u);
    // A good share of the stream was served by prefetched L2 lines.
    EXPECT_GE(rig.hier->l2().prefetch_used.value(), 4u);
}

TEST(Ghb, ReplaysDeltaPatterns)
{
    Rig rig;
    MechanismConfig mc;
    Ghb ghb(mc);
    rig.attach(ghb);
    // Repeating delta pattern +4096,+8192 per PC.
    Cycle t = 100;
    Addr a = 0x10000000;
    for (int i = 0; i < 12; ++i) {
        a += (i % 2) ? 8192 : 4096;
        t = rig.hier->load(a, 0x400abc, t + 500);
    }
    EXPECT_GT(ghb.chain_walks.value(), 0u);
    EXPECT_GT(ghb.prefetches_issued.value(), 0u);
}

TEST(Ghb, BoundedByRequestQueue)
{
    MechanismConfig mc;
    Ghb::Params p;
    p.request_queue = 4; // Table 3
    Ghb ghb(mc, p);
    const auto hw = ghb.hardware();
    // Tiny structures: total well under a kilobyte besides the GHB.
    std::uint64_t total = 0;
    for (const auto &s : hw)
        total += s.bytes;
    EXPECT_LT(total, 8192u);
}
