/** @file Unit tests for the concurrent trace cache. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "trace/spec_suite.hh"
#include "trace/trace_cache.hh"

using namespace microlib;

namespace
{

MaterializedTrace
smallTrace(const std::string &benchmark)
{
    return materialize(specProgram(benchmark), TraceWindow{0, 10'000});
}

} // namespace

TEST(TraceCache, GetMaterializesOnce)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto make = [&] {
        calls.fetch_add(1);
        return smallTrace("swim");
    };
    const auto a = cache.get("swim", make);
    const auto b = cache.get("swim", make);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(a.get(), b.get()); // literally the same object
    EXPECT_EQ(a->records.size(), 10'000u);
    EXPECT_EQ(cache.traceCount(), 1u);
}

TEST(TraceCache, ClaimFulfillLifecycle)
{
    TraceCache cache;
    TraceCache::Future fut;
    ASSERT_EQ(cache.claim("k", fut), TraceCache::Claim::Owner);
    EXPECT_FALSE(cache.ready("k"));

    // A second claimant sees the entry in flight.
    TraceCache::Future fut2;
    EXPECT_EQ(cache.claim("k", fut2), TraceCache::Claim::Pending);

    cache.fulfill("k", smallTrace("gzip"));
    EXPECT_TRUE(cache.ready("k"));
    EXPECT_EQ(cache.claim("k", fut2), TraceCache::Claim::Ready);
    EXPECT_EQ(fut.get().get(), fut2.get().get());
    EXPECT_EQ(cache.wait("k").get(), fut.get().get());
}

TEST(TraceCache, ConcurrentGetSharesOneMaterialization)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto make = [&] {
        calls.fetch_add(1);
        return smallTrace("mcf");
    };
    std::vector<std::thread> threads;
    std::vector<TraceCache::TracePtr> got(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back(
            [&, t] { got[t] = cache.get("mcf", make); });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(calls.load(), 1);
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
}

TEST(TraceCache, EvictAllowsRematerialization)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto make = [&] {
        calls.fetch_add(1);
        return smallTrace("swim");
    };
    const auto a = cache.get("swim", make);
    cache.evict("swim");
    EXPECT_EQ(cache.traceCount(), 0u);
    const auto b = cache.get("swim", make);
    EXPECT_EQ(calls.load(), 2);
    // The evicted trace stays valid for holders of the old pointer.
    EXPECT_EQ(a->records.size(), b->records.size());
}

TEST(TraceCache, FailedMaterializationRetries)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto flaky = [&]() -> MaterializedTrace {
        if (calls.fetch_add(1) == 0)
            throw std::runtime_error("boom");
        return smallTrace("gzip");
    };
    EXPECT_THROW(cache.get("gzip", flaky), std::runtime_error);
    const auto ok = cache.get("gzip", flaky);
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(ok->records.size(), 10'000u);
}

TEST(TraceCache, ClearDropsTracesKeepsSimPoints)
{
    TraceCache cache;
    cache.get("swim", [] { return smallTrace("swim"); });
    const SimPointChoice sp = cache.simPoint("swim", 100'000, 4);
    EXPECT_EQ(cache.traceCount(), 1u);
    EXPECT_EQ(cache.simPointCount(), 1u);
    cache.clear();
    EXPECT_EQ(cache.traceCount(), 0u);
    EXPECT_EQ(cache.simPointCount(), 1u);
    // Cached choice still served, and stable.
    const SimPointChoice again = cache.simPoint("swim", 100'000, 4);
    EXPECT_EQ(sp.start_instruction, again.start_instruction);
}

TEST(TraceCache, SimPointMatchesDirectComputation)
{
    TraceCache cache;
    const SimPointChoice cached = cache.simPoint("crafty", 100'000, 4);
    const SimPointChoice direct =
        findSimPoint(specProgram("crafty"), 100'000, 4);
    EXPECT_EQ(cached.start_instruction, direct.start_instruction);
    EXPECT_EQ(cached.interval_index, direct.interval_index);
}

TEST(TraceCache, SimPointConcurrentCallsAgree)
{
    TraceCache cache;
    std::vector<std::thread> threads;
    std::vector<SimPointChoice> got(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            got[t] = cache.simPoint("gzip", 100'000, 4);
        });
    for (auto &t : threads)
        t.join();
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(got[t].start_instruction, got[0].start_instruction);
    EXPECT_EQ(cache.simPointCount(), 1u);
}

TEST(TraceCache, DistinctKeysDistinctEntries)
{
    TraceCache cache;
    cache.get("a", [] { return smallTrace("swim"); });
    cache.get("b", [] { return smallTrace("swim"); });
    EXPECT_EQ(cache.traceCount(), 2u);
}

TEST(TraceCache, UnlimitedBudgetRetainsEverything)
{
    TraceCache cache;
    cache.get("a", [] { return smallTrace("swim"); });
    cache.get("b", [] { return smallTrace("gzip"); });
    EXPECT_EQ(cache.byteBudget(), 0u);
    EXPECT_EQ(cache.traceCount(), 2u);
    EXPECT_GT(cache.residentBytes(), 0u);
}

TEST(TraceCache, BudgetEvictsLeastRecentlyUsedUnpinned)
{
    TraceCache cache;
    // One benchmark under three keys: identical footprints make the
    // budget arithmetic exact.
    cache.get("a", [] { return smallTrace("swim"); });
    const std::size_t one_trace = cache.residentBytes();
    ASSERT_GT(one_trace, 0u);
    cache.get("b", [] { return smallTrace("swim"); });
    cache.get("c", [] { return smallTrace("swim"); });

    // Touch "a" so "b" becomes the LRU entry, then budget down to
    // roughly two traces: exactly "b" must go.
    TraceCache::Future fut;
    EXPECT_EQ(cache.claim("a", fut), TraceCache::Claim::Ready);
    cache.setByteBudget(2 * one_trace + one_trace / 2);
    EXPECT_EQ(cache.traceCount(), 2u);
    EXPECT_TRUE(cache.ready("a"));
    EXPECT_FALSE(cache.ready("b"));
    EXPECT_TRUE(cache.ready("c"));
}

TEST(TraceCache, PinnedTracesSurviveAnyBudget)
{
    TraceCache cache;
    cache.pin("a"); // pins may precede the entry itself
    cache.get("a", [] { return smallTrace("swim"); });
    cache.get("b", [] { return smallTrace("gzip"); });
    cache.setByteBudget(1); // absurdly small: evict all it may
    EXPECT_TRUE(cache.ready("a"));  // pinned: untouchable
    EXPECT_FALSE(cache.ready("b")); // unpinned: gone
    // Unpinning releases "a" to the budget too.
    cache.unpin("a");
    EXPECT_EQ(cache.traceCount(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);
}

TEST(TraceCache, BudgetEvictionIsCorrectnessNeutral)
{
    // An evicted trace re-materializes identically: budget pressure
    // trades time, never results.
    TraceCache cache;
    auto make = [] { return smallTrace("swim"); };
    const auto first = cache.get("k", make);
    cache.setByteBudget(1);
    EXPECT_EQ(cache.traceCount(), 0u);
    cache.setByteBudget(0);
    const auto again = cache.get("k", make);
    ASSERT_EQ(first->records.size(), again->records.size());
    for (std::size_t i = 0; i < first->records.size(); ++i) {
        EXPECT_EQ(first->records[i].pc, again->records[i].pc);
        EXPECT_EQ(first->records[i].addr, again->records[i].addr);
    }
}
