/** @file Unit tests for the concurrent trace cache. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "trace/spec_suite.hh"
#include "trace/trace_cache.hh"

using namespace microlib;

namespace
{

MaterializedTrace
smallTrace(const std::string &benchmark)
{
    return materialize(specProgram(benchmark), TraceWindow{0, 10'000});
}

} // namespace

TEST(TraceCache, GetMaterializesOnce)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto make = [&] {
        calls.fetch_add(1);
        return smallTrace("swim");
    };
    const auto a = cache.get("swim", make);
    const auto b = cache.get("swim", make);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(a.get(), b.get()); // literally the same object
    EXPECT_EQ(a->records.size(), 10'000u);
    EXPECT_EQ(cache.traceCount(), 1u);
}

TEST(TraceCache, ClaimFulfillLifecycle)
{
    TraceCache cache;
    TraceCache::Future fut;
    ASSERT_EQ(cache.claim("k", fut), TraceCache::Claim::Owner);
    EXPECT_FALSE(cache.ready("k"));

    // A second claimant sees the entry in flight.
    TraceCache::Future fut2;
    EXPECT_EQ(cache.claim("k", fut2), TraceCache::Claim::Pending);

    cache.fulfill("k", smallTrace("gzip"));
    EXPECT_TRUE(cache.ready("k"));
    EXPECT_EQ(cache.claim("k", fut2), TraceCache::Claim::Ready);
    EXPECT_EQ(fut.get().get(), fut2.get().get());
    EXPECT_EQ(cache.wait("k").get(), fut.get().get());
}

TEST(TraceCache, ConcurrentGetSharesOneMaterialization)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto make = [&] {
        calls.fetch_add(1);
        return smallTrace("mcf");
    };
    std::vector<std::thread> threads;
    std::vector<TraceCache::TracePtr> got(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back(
            [&, t] { got[t] = cache.get("mcf", make); });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(calls.load(), 1);
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
}

TEST(TraceCache, EvictAllowsRematerialization)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto make = [&] {
        calls.fetch_add(1);
        return smallTrace("swim");
    };
    const auto a = cache.get("swim", make);
    cache.evict("swim");
    EXPECT_EQ(cache.traceCount(), 0u);
    const auto b = cache.get("swim", make);
    EXPECT_EQ(calls.load(), 2);
    // The evicted trace stays valid for holders of the old pointer.
    EXPECT_EQ(a->records.size(), b->records.size());
}

TEST(TraceCache, FailedMaterializationRetries)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    auto flaky = [&]() -> MaterializedTrace {
        if (calls.fetch_add(1) == 0)
            throw std::runtime_error("boom");
        return smallTrace("gzip");
    };
    EXPECT_THROW(cache.get("gzip", flaky), std::runtime_error);
    const auto ok = cache.get("gzip", flaky);
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(ok->records.size(), 10'000u);
}

TEST(TraceCache, ClearDropsTracesKeepsSimPoints)
{
    TraceCache cache;
    cache.get("swim", [] { return smallTrace("swim"); });
    const SimPointChoice sp = cache.simPoint("swim", 100'000, 4);
    EXPECT_EQ(cache.traceCount(), 1u);
    EXPECT_EQ(cache.simPointCount(), 1u);
    cache.clear();
    EXPECT_EQ(cache.traceCount(), 0u);
    EXPECT_EQ(cache.simPointCount(), 1u);
    // Cached choice still served, and stable.
    const SimPointChoice again = cache.simPoint("swim", 100'000, 4);
    EXPECT_EQ(sp.start_instruction, again.start_instruction);
}

TEST(TraceCache, SimPointMatchesDirectComputation)
{
    TraceCache cache;
    const SimPointChoice cached = cache.simPoint("crafty", 100'000, 4);
    const SimPointChoice direct =
        findSimPoint(specProgram("crafty"), 100'000, 4);
    EXPECT_EQ(cached.start_instruction, direct.start_instruction);
    EXPECT_EQ(cached.interval_index, direct.interval_index);
}

TEST(TraceCache, SimPointConcurrentCallsAgree)
{
    TraceCache cache;
    std::vector<std::thread> threads;
    std::vector<SimPointChoice> got(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            got[t] = cache.simPoint("gzip", 100'000, 4);
        });
    for (auto &t : threads)
        t.join();
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(got[t].start_instruction, got[0].start_instruction);
    EXPECT_EQ(cache.simPointCount(), 1u);
}

TEST(TraceCache, DistinctKeysDistinctEntries)
{
    TraceCache cache;
    cache.get("a", [] { return smallTrace("swim"); });
    cache.get("b", [] { return smallTrace("swim"); });
    EXPECT_EQ(cache.traceCount(), 2u);
}
