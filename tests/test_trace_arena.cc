/** @file Persistent trace arena: publish→tryLoad round-trips are
 *  bit-identical, corrupted/truncated/foreign files are rejected and
 *  transparently regenerated, concurrent writers leave one valid
 *  file, mapped traces charge only owned bytes to the cache budget,
 *  and warm engine runs (thread-pool and forked shards alike)
 *  reproduce cold results byte-for-byte with zero src=gen events. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/process_shard_backend.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/task_plan.hh"
#include "trace/spec_suite.hh"
#include "trace/trace_arena.hh"
#include "trace/trace_cache.hh"

using namespace microlib;

namespace
{

const std::vector<std::string> mechs = {"Base", "TP", "GHB"};
const std::vector<std::string> benchs = {"pchase", "swim"};

/** Arbitrary-window config: no SimPoint profiling, so tests are fast
 *  and the window is MICROLIB_QUICK-independent. */
RunConfig
arbConfig(std::uint64_t skip = 1'000, std::uint64_t length = 50'000)
{
    RunConfig cfg;
    cfg.selection = TraceSelection::Arbitrary;
    cfg.scale.arbitrary_skip = skip;
    cfg.scale.arbitrary_length = length;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_arena_" + name;
}

/** A fresh (removed + recreated-on-use) arena directory. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = tmpPath(name);
    std::filesystem::remove_all(dir);
    return dir;
}

MaterializedTrace
makeTrace(const std::string &benchmark = "pchase",
          std::uint64_t skip = 1'000, std::uint64_t length = 20'000)
{
    return materialize(specProgram(benchmark),
                       TraceWindow{skip, length});
}

/** Bit-identity over everything the hot path consumes. */
void
expectSameTrace(const MaterializedTrace &a, const MaterializedTrace &b)
{
    ASSERT_EQ(a.benchmark, b.benchmark);
    ASSERT_EQ(a.window.skip, b.window.skip);
    ASSERT_EQ(a.window.length, b.window.length);
    const TraceView va = a.view(), vb = b.view();
    ASSERT_EQ(va.n, vb.n);
    EXPECT_EQ(0, std::memcmp(va.pc, vb.pc, va.n * sizeof(*va.pc)));
    EXPECT_EQ(0,
              std::memcmp(va.addr, vb.addr, va.n * sizeof(*va.addr)));
    EXPECT_EQ(
        0, std::memcmp(va.value, vb.value, va.n * sizeof(*va.value)));
    EXPECT_EQ(0, std::memcmp(va.op, vb.op, va.n * sizeof(*va.op)));
    EXPECT_EQ(0, std::memcmp(va.dep1, vb.dep1, va.n));
    EXPECT_EQ(0, std::memcmp(va.dep2, vb.dep2, va.n));

    // Images: identical page sets with identical words and masks.
    ASSERT_TRUE(a.image && b.image);
    ASSERT_EQ(a.image->allocatedPages(), b.image->allocatedPages());
    std::vector<Addr> pages_a, pages_b;
    std::vector<const Word *> words_b;
    std::vector<const std::uint64_t *> masks_b;
    b.image->forEachPage([&](Addr idx, const Word *w,
                             const std::uint64_t *m) {
        pages_b.push_back(idx);
        words_b.push_back(w);
        masks_b.push_back(m);
    });
    std::size_t i = 0;
    a.image->forEachPage([&](Addr idx, const Word *w,
                             const std::uint64_t *m) {
        ASSERT_LT(i, pages_b.size());
        EXPECT_EQ(idx, pages_b[i]);
        EXPECT_EQ(0, std::memcmp(w, words_b[i],
                                 MemoryImage::page_bytes));
        EXPECT_EQ(0,
                  std::memcmp(m, masks_b[i],
                              (MemoryImage::words_per_page / 64) *
                                  sizeof(std::uint64_t)));
        ++i;
    });
    (void)pages_a;
}

void
expectIdentical(const MatrixResult &a, const MatrixResult &b)
{
    ASSERT_EQ(a.mechanisms, b.mechanisms);
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    for (std::size_t m = 0; m < a.mechanisms.size(); ++m) {
        for (std::size_t bi = 0; bi < a.benchmarks.size(); ++bi) {
            EXPECT_EQ(a.ipc[m][bi], b.ipc[m][bi])
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(a.outputs[m][bi].core.cycles,
                      b.outputs[m][bi].core.cycles);
            EXPECT_EQ(a.outputs[m][bi].stats, b.outputs[m][bi].stats)
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
        }
    }
}

/** Lines of @p path containing @p needle. */
std::size_t
countLines(const std::string &path, const std::string &needle)
{
    std::ifstream in(path);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line))
        if (line.find(needle) != std::string::npos)
            ++n;
    return n;
}

/** Flip one byte of @p path at @p offset. */
void
flipByte(const std::string &path, std::size_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

} // namespace

TEST(TraceArena, PublishLoadRoundTripIsBitIdentical)
{
    TraceArena arena(freshDir("roundtrip"));
    const MaterializedTrace gen = makeTrace();
    const std::string key = "roundtrip-key";
    ASSERT_TRUE(arena.publish(key, gen));

    const auto loaded = arena.tryLoad(key);
    ASSERT_TRUE(loaded.has_value());
    expectSameTrace(gen, *loaded);

    // The mapped trace borrows: no AoS records, no owned SoA heap,
    // and the mapping spans the whole file.
    EXPECT_TRUE(loaded->mapped());
    EXPECT_TRUE(loaded->records.empty());
    EXPECT_TRUE(loaded->soa.borrowed());
    EXPECT_EQ(loaded->soa.footprintBytes(), 0u);
    EXPECT_EQ(loaded->footprintMappedBytes(),
              std::filesystem::file_size(arena.pathFor(key)));
    EXPECT_LT(loaded->footprintOwnedBytes(), gen.footprintOwnedBytes());
    EXPECT_FALSE(gen.mapped());

    const TraceArenaStats stats = arena.stats();
    EXPECT_EQ(stats.published, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.rejected, 0u);
}

TEST(TraceArena, FirstWriterWinsOnRepublish)
{
    TraceArena arena(freshDir("republish"));
    const MaterializedTrace gen = makeTrace();
    const std::string key = "republish-key";
    ASSERT_TRUE(arena.publish(key, gen));
    const auto mtime =
        std::filesystem::last_write_time(arena.pathFor(key));

    // A second publish of a valid key is a no-op (the existing file
    // may be mid-map in another process).
    ASSERT_TRUE(arena.publish(key, gen));
    EXPECT_EQ(arena.stats().published, 1u);
    EXPECT_EQ(std::filesystem::last_write_time(arena.pathFor(key)),
              mtime);
}

TEST(TraceArena, MissIsNotARejection)
{
    TraceArena arena(freshDir("miss"));
    EXPECT_FALSE(arena.tryLoad("never-published").has_value());
    EXPECT_EQ(arena.stats().misses, 1u);
    EXPECT_EQ(arena.stats().rejected, 0u);
}

TEST(TraceArena, RejectsTruncatedFile)
{
    TraceArena arena(freshDir("truncated"));
    const std::string key = "trunc-key";
    ASSERT_TRUE(arena.publish(key, makeTrace()));
    const std::string path = arena.pathFor(key);
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full / 2);

    EXPECT_FALSE(arena.tryLoad(key).has_value());
    EXPECT_EQ(arena.stats().rejected, 1u);

    // Republish over the damaged file and the key is whole again.
    ASSERT_TRUE(arena.publish(key, makeTrace()));
    EXPECT_TRUE(arena.tryLoad(key).has_value());
    EXPECT_EQ(std::filesystem::file_size(path), full);
}

TEST(TraceArena, RejectsBitFlip)
{
    TraceArena arena(freshDir("bitflip"));
    const std::string key = "flip-key";
    ASSERT_TRUE(arena.publish(key, makeTrace()));
    const std::string path = arena.pathFor(key);
    // Deep inside the column payload: only the checksum catches it.
    flipByte(path, std::filesystem::file_size(path) / 2);
    EXPECT_FALSE(arena.tryLoad(key).has_value());
    EXPECT_EQ(arena.stats().rejected, 1u);
}

TEST(TraceArena, RejectsForeignSchemaVersion)
{
    TraceArena arena(freshDir("schema"));
    const std::string key = "schema-key";
    ASSERT_TRUE(arena.publish(key, makeTrace()));
    // The schema field is bytes 8..11 of the header (after the u64
    // magic); a reader of any other version must ignore the file.
    flipByte(arena.pathFor(key), 8);
    EXPECT_FALSE(arena.tryLoad(key).has_value());
    EXPECT_EQ(arena.stats().rejected, 1u);
}

TEST(TraceArena, RejectsWrongKeyAtSamePath)
{
    TraceArena arena(freshDir("wrongkey"));
    const std::string key = "the-real-key";
    ASSERT_TRUE(arena.publish(key, makeTrace()));
    // Simulate a filename hash collision: another key's lookup lands
    // on this file. The stored key must not match.
    const std::string impostor = "some-other-key";
    std::filesystem::copy_file(
        arena.pathFor(key), arena.pathFor(impostor),
        std::filesystem::copy_options::overwrite_existing);
    EXPECT_FALSE(arena.tryLoad(impostor).has_value());
    EXPECT_EQ(arena.stats().rejected, 1u);
}

TEST(TraceArena, ConcurrentDualWriterLeavesOneValidFile)
{
    const std::string dir = freshDir("dualwrite");
    const std::string key = "contended-key";
    const MaterializedTrace gen = makeTrace();

    // Two arenas over one directory, racing the same key — the
    // in-process analogue of two shard workers. rename() is atomic,
    // so whatever the interleaving, the key ends valid.
    TraceArena a(dir), b(dir);
    std::thread ta([&] { a.publish(key, gen); });
    std::thread tb([&] { b.publish(key, gen); });
    ta.join();
    tb.join();

    TraceArena reader(dir);
    const auto loaded = reader.tryLoad(key);
    ASSERT_TRUE(loaded.has_value());
    expectSameTrace(gen, *loaded);
    // No stray tmp files left behind.
    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        EXPECT_EQ(e.path().extension(), ".mltrace") << e.path();
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(TraceArena, MaterializeIntoRegeneratesOverCorruption)
{
    const std::string dir = freshDir("regen");
    const RunConfig cfg = arbConfig();
    const std::string key = traceCacheKey("swim", cfg);

    TraceCache cold;
    cold.setArena(std::make_shared<TraceArena>(dir));
    TraceCache::Future fut;
    ASSERT_EQ(cold.claim(key, fut), TraceCache::Claim::Owner);
    TraceOrigin origin = TraceOrigin::Mapped;
    const auto first = ExperimentEngine::materializeInto(
        cold, key, "swim", cfg, &origin);
    EXPECT_EQ(origin, TraceOrigin::Generated);
    // The miss was published, and the owner itself ends up mapped
    // (its heap copy swapped for the shared page-cache mapping).
    EXPECT_TRUE(first->mapped());

    // Corrupt the published file: a fresh cache must silently fall
    // back to generation — the arena is never a correctness
    // dependency — and republish a valid file.
    const std::string path = cold.arena()->pathFor(key);
    flipByte(path, std::filesystem::file_size(path) - 1);

    TraceCache warm;
    warm.setArena(std::make_shared<TraceArena>(dir));
    ASSERT_EQ(warm.claim(key, fut), TraceCache::Claim::Owner);
    const auto second = ExperimentEngine::materializeInto(
        warm, key, "swim", cfg, &origin);
    EXPECT_EQ(origin, TraceOrigin::Generated);
    expectSameTrace(*first, *second);
    EXPECT_EQ(warm.arena()->stats().rejected, 1u);
    EXPECT_EQ(warm.arena()->stats().published, 1u);

    // Third time is the charm: a clean arena hit, no generation.
    TraceCache third;
    third.setArena(std::make_shared<TraceArena>(dir));
    ASSERT_EQ(third.claim(key, fut), TraceCache::Claim::Owner);
    const auto mapped = ExperimentEngine::materializeInto(
        third, key, "swim", cfg, &origin);
    EXPECT_EQ(origin, TraceOrigin::Mapped);
    expectSameTrace(*first, *mapped);
}

TEST(TraceArena, BudgetChargesOwnedBytesOnly)
{
    TraceArena arena(freshDir("budget"));
    const std::string key = "budget-key";
    const MaterializedTrace gen = makeTrace("swim", 0, 100'000);
    ASSERT_TRUE(arena.publish(key, gen));
    auto loaded = arena.tryLoad(key);
    ASSERT_TRUE(loaded.has_value());

    // A budget far below the trace's mapped footprint but above its
    // owned footprint: the mapped entry must stay resident, because
    // fulfill() charges owned bytes only (the OS page cache owns the
    // mapping's bytes).
    const std::size_t owned = loaded->footprintOwnedBytes();
    const std::size_t mapped_bytes = loaded->footprintMappedBytes();
    ASSERT_LT(owned, mapped_bytes);

    TraceCache cache;
    cache.setByteBudget(owned + owned / 2);
    TraceCache::Future fut;
    ASSERT_EQ(cache.claim(key, fut), TraceCache::Claim::Owner);
    cache.fulfill(key, std::move(*loaded));
    EXPECT_TRUE(cache.ready(key));
    EXPECT_EQ(cache.residentBytes(), owned);
    EXPECT_LE(cache.residentBytes(), cache.byteBudget());

    // The same budget cannot hold the generated (heap-owned) copy.
    ASSERT_GT(gen.footprintOwnedBytes(), cache.byteBudget());
}

TEST(TraceArena, WarmEngineRunIsByteIdenticalWithZeroGenEvents)
{
    const std::string dir = freshDir("warmrun");
    const RunConfig cfg = arbConfig();

    // Reference: no arena at all.
    MatrixResult reference;
    {
        EngineOptions opts;
        opts.threads = 2;
        ExperimentEngine engine(opts);
        reference = engine.run(mechs, benchs, cfg);
    }

    const std::string cold_progress = tmpPath("cold.jsonl");
    const std::string warm_progress = tmpPath("warm.jsonl");
    {
        EngineOptions opts;
        opts.threads = 2;
        opts.trace_dir = dir;
        opts.progress_path = cold_progress;
        ExperimentEngine engine(opts);
        expectIdentical(reference, engine.run(mechs, benchs, cfg));
    }
    EXPECT_EQ(countLines(cold_progress, "\"src\":\"gen\""),
              benchs.size());
    EXPECT_EQ(countLines(cold_progress, "\"src\":\"arena\""), 0u);

    // A fresh engine (fresh process, as far as the cache knows) over
    // the same directory: every window mmaps, nothing generates.
    {
        EngineOptions opts;
        opts.threads = 2;
        opts.trace_dir = dir;
        opts.progress_path = warm_progress;
        ExperimentEngine engine(opts);
        expectIdentical(reference, engine.run(mechs, benchs, cfg));
    }
    EXPECT_EQ(countLines(warm_progress, "\"src\":\"gen\""), 0u);
    EXPECT_EQ(countLines(warm_progress, "\"src\":\"arena\""),
              benchs.size());

    std::remove(cold_progress.c_str());
    std::remove(warm_progress.c_str());
}

TEST(TraceArena, TwoShardProcessBackendSharesOneArena)
{
    const std::string dir = freshDir("shards");
    const RunConfig cfg = arbConfig();

    MatrixResult reference;
    {
        EngineOptions opts;
        opts.threads = 2;
        ExperimentEngine engine(opts);
        reference = engine.run(mechs, benchs, cfg);
    }

    // Warm the arena first so the forked workers' trace events are
    // deterministic: every worker must map, none may generate.
    {
        EngineOptions opts;
        opts.threads = 2;
        opts.trace_dir = dir;
        ExperimentEngine engine(opts);
        expectIdentical(reference, engine.run(mechs, benchs, cfg));
    }

    const std::string store_path = tmpPath("shards.store");
    const std::string progress = tmpPath("shards.jsonl");
    std::remove(store_path.c_str());
    ResultStore store(store_path);
    ProcessShardOptions popts;
    popts.shards = 2;
    ProcessShardBackend backend(popts);
    EngineOptions opts;
    opts.threads = 1;
    opts.store = &store;
    opts.backend = &backend;
    opts.trace_dir = dir;
    opts.progress_path = progress;
    ExperimentEngine engine(opts);
    expectIdentical(reference, engine.run(mechs, benchs, cfg));

    // Both workers drew every window from the shared arena.
    std::size_t gen = 0, arena_hits = 0;
    for (const std::size_t shard : {0u, 1u}) {
        const std::string p =
            progress + ".shard" + std::to_string(shard);
        gen += countLines(p, "\"src\":\"gen\"");
        arena_hits += countLines(p, "\"src\":\"arena\"");
        std::remove(p.c_str());
    }
    EXPECT_EQ(gen, 0u);
    EXPECT_GT(arena_hits, 0u);

    std::remove(store_path.c_str());
    std::remove(progress.c_str());
}
