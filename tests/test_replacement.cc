/** @file Unit tests for LRU replacement state. */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

using namespace microlib;

TEST(Lru, PrefersInvalidWays)
{
    LruState lru(4, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    std::vector<bool> valid = {true, true, false, true};
    EXPECT_EQ(lru.victim(0, valid), 2u);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruState lru(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    lru.touch(0, 0); // refresh way 0
    std::vector<bool> valid(4, true);
    EXPECT_EQ(lru.victim(0, valid), 1u);
}

TEST(Lru, SetsIndependent)
{
    LruState lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    std::vector<bool> valid(2, true);
    EXPECT_EQ(lru.victim(0, valid), 0u);
    EXPECT_EQ(lru.victim(1, valid), 0u); // way 0 in set 1 untouched
}

TEST(Lru, SequenceProperty)
{
    // Touch ways in order; victim must always be the oldest touch.
    LruState lru(1, 8);
    std::vector<bool> valid(8, true);
    for (unsigned w = 0; w < 8; ++w)
        lru.touch(0, w);
    for (unsigned round = 0; round < 20; ++round) {
        const std::size_t victim = lru.lruWay(0);
        EXPECT_EQ(victim, round % 8);
        lru.touch(0, victim);
    }
}
