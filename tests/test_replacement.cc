/** @file Unit tests for LRU replacement state. */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

using namespace microlib;

TEST(Lru, PrefersInvalidWays)
{
    LruState lru(4, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    // Ways 0, 1 and 3 valid; way 2 free.
    EXPECT_EQ(lru.victim(0, 0b1011u), 2u);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruState lru(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    lru.touch(0, 0); // refresh way 0
    EXPECT_EQ(lru.victim(0, 0b1111u), 1u);
}

TEST(Lru, SetsIndependent)
{
    LruState lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    EXPECT_EQ(lru.victim(0, 0b11u), 0u);
    EXPECT_EQ(lru.victim(1, 0b11u), 0u); // way 0 in set 1 untouched
}

TEST(Lru, EmptySetVictimizesWayZero)
{
    LruState lru(1, 8);
    EXPECT_EQ(lru.victim(0, 0u), 0u);
}

TEST(Lru, FullSixtyFourWayMask)
{
    // The widest supported geometry: a saturated mask must fall back
    // to the LRU scan, not index past the mask.
    LruState lru(1, 64);
    for (unsigned w = 0; w < 64; ++w)
        lru.touch(0, w);
    lru.touch(0, 0);
    EXPECT_EQ(lru.victim(0, ~std::uint64_t{0}), 1u);
    // A single hole is still found first.
    EXPECT_EQ(lru.victim(0, ~std::uint64_t{0} ^ (std::uint64_t{1} << 63)),
              63u);
}

TEST(Lru, SequenceProperty)
{
    // Touch ways in order; victim must always be the oldest touch.
    LruState lru(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        lru.touch(0, w);
    for (unsigned round = 0; round < 20; ++round) {
        const std::size_t victim = lru.lruWay(0);
        EXPECT_EQ(victim, round % 8);
        lru.touch(0, victim);
    }
}
