/** @file Supervised sweep execution: the fault-injection grammar, the
 *  torn-line-tolerant progress follower, the strike/retry/quarantine
 *  policy, result-store checksum + torn-tail hardening, and the
 *  end-to-end recovery guarantees — a worker crashed or wedged by a
 *  deterministic FaultPlan restarts, resumes, and merges a result
 *  bit-identical to an undisturbed run; a poison task is quarantined
 *  after K strikes and the rest of the sweep completes. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/process_shard_backend.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/supervisor.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"
#include "sim/fault.hh"

using namespace microlib;

namespace
{

const std::vector<std::string> mechs = {"Base", "TP", "SP", "GHB"};
const std::vector<std::string> benchs = {"swim", "gzip", "crafty"};

RunConfig
quickConfig()
{
    RunConfig cfg;
    cfg.scale.simpoint_trace = 100'000;
    cfg.scale.simpoint_interval = 100'000;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_supervision_" + name;
}

/** Scoped environment variable: set on construction, unset on
 *  destruction — fault plans must never leak into later tests (an
 *  armed crash clause would abort the test process itself). */
struct EnvGuard
{
    EnvGuard(const char *name, const std::string &value) : _name(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(_name); }
    const char *_name;
};

/** Remove the derived per-worker files a supervised run creates (and
 *  a failed earlier test may have left behind). */
void
cleanWorkerFiles(const std::string &store, std::size_t nshards)
{
    std::remove(store.c_str());
    for (std::size_t i = 0; i < nshards; ++i) {
        const std::string shard =
            ProcessShardBackend::shardStorePath(store, i, nshards);
        std::remove(shard.c_str());
        std::remove((shard + ".progress").c_str());
        std::remove((shard + ".faultstate").c_str());
    }
}

/** Bit-identity over everything the store persists. */
void
expectIdentical(const MatrixResult &a, const MatrixResult &b)
{
    ASSERT_EQ(a.mechanisms, b.mechanisms);
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    for (std::size_t m = 0; m < a.mechanisms.size(); ++m) {
        for (std::size_t bi = 0; bi < a.benchmarks.size(); ++bi) {
            const RunOutput &ra = a.outputs[m][bi];
            const RunOutput &rb = b.outputs[m][bi];
            EXPECT_EQ(a.ipc[m][bi], b.ipc[m][bi])
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
            EXPECT_EQ(ra.core.instructions, rb.core.instructions);
            EXPECT_EQ(ra.core.cycles, rb.core.cycles);
            EXPECT_EQ(ra.core.ipc, rb.core.ipc);
            EXPECT_EQ(ra.stats, rb.stats)
                << a.mechanisms[m] << "/" << a.benchmarks[bi];
        }
    }
}

const MatrixResult &
reference()
{
    // Computed once, strictly before any test arms MICROLIB_FAULT —
    // an in-process run under an armed crash clause would abort the
    // test binary.
    static const MatrixResult ref = [] {
        EngineOptions opts;
        opts.threads = 4;
        ExperimentEngine engine(opts);
        return engine.run(mechs, benchs, quickConfig());
    }();
    return ref;
}

/** One supervised process-backend sweep under the current
 *  environment; returns the merged SweepResult. */
SweepResult
supervisedRun(ExperimentEngine &engine)
{
    return engine.runPlan(TaskPlan(mechs, benchs, quickConfig()));
}

} // namespace

// ---------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------

TEST(FaultPlan, ParsesClauses)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("crash@7", plan, nullptr));
    ASSERT_EQ(plan.clauses.size(), 1u);
    EXPECT_EQ(plan.clauses[0].kind, FaultKind::Crash);
    EXPECT_EQ(plan.clauses[0].task, 7u);
    EXPECT_EQ(plan.clauses[0].count, 1u);
    EXPECT_EQ(plan.clauses[0].str(), "crash@7:1");

    ASSERT_TRUE(FaultPlan::parse("hang@3:2", plan, nullptr));
    ASSERT_EQ(plan.clauses.size(), 1u);
    EXPECT_EQ(plan.clauses[0].kind, FaultKind::Hang);
    EXPECT_EQ(plan.clauses[0].task, 3u);
    EXPECT_EQ(plan.clauses[0].count, 2u);

    // ',' and '|' both separate clauses; whitespace is ignored.
    ASSERT_TRUE(FaultPlan::parse(" crash@1 , hang@2:5 ", plan, nullptr));
    ASSERT_EQ(plan.clauses.size(), 2u);
    ASSERT_TRUE(FaultPlan::parse("crash@1|hang@2", plan, nullptr));
    ASSERT_EQ(plan.clauses.size(), 2u);

    // Empty text is an empty (inert) plan, not an error.
    ASSERT_TRUE(FaultPlan::parse("", plan, nullptr));
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedInput)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse("boom@1", plan, &error));
    EXPECT_NE(error.find("unknown kind"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("crash1", plan, &error));
    EXPECT_FALSE(FaultPlan::parse("crash@x", plan, &error));
    EXPECT_FALSE(FaultPlan::parse("crash@1:y", plan, &error));
    EXPECT_FALSE(FaultPlan::parse("crash@1:0", plan, &error));
    EXPECT_FALSE(FaultPlan::parse("crash@1,hang@1", plan, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

// ---------------------------------------------------------------
// ProgressFollower: torn-line tolerance, heartbeat extraction
// ---------------------------------------------------------------

TEST(ProgressFollower, ConsumesOnlyCompleteLines)
{
    const std::string path = tmpPath("follower.jsonl");
    std::remove(path.c_str());

    ProgressFollower follower(path);
    EXPECT_FALSE(follower.poll()); // no file yet

    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"event\":\"heartbeat\",\"task\":7}\n";
        out << "{\"event\":\"heartbeat\",\"task\":9"; // torn: no '\n'
        out.flush();
    }
    std::size_t task = 0;
    EXPECT_TRUE(follower.poll()); // the complete line is liveness...
    ASSERT_TRUE(follower.lastHeartbeatTask(task));
    EXPECT_EQ(task, 7u); // ...but the torn line is invisible
    EXPECT_FALSE(follower.poll()); // and not liveness either

    { // the writer finishes the line: now it counts
        std::ofstream out(path, std::ios::app);
        out << ",\"x\":1}\n";
        out.flush();
    }
    EXPECT_TRUE(follower.poll());
    ASSERT_TRUE(follower.lastHeartbeatTask(task));
    EXPECT_EQ(task, 9u);

    { // restarted worker: truncate-and-rewrite rewinds the follower
        std::ofstream out(path, std::ios::trunc);
        out << "{\"event\":\"heartbeat\",\"task\":2}\n";
        out.flush();
    }
    EXPECT_TRUE(follower.poll()); // the shrink itself
    EXPECT_TRUE(follower.poll()); // the fresh stream's line
    ASSERT_TRUE(follower.lastHeartbeatTask(task));
    EXPECT_EQ(task, 2u);

    std::remove(path.c_str());
}

TEST(ProgressFollower, ParsesOnlyHeartbeats)
{
    std::size_t task = 99;
    EXPECT_TRUE(ProgressFollower::parseHeartbeat(
        "{\"event\":\"heartbeat\",\"task\":42,\"bench\":\"swim\"}",
        task));
    EXPECT_EQ(task, 42u);
    EXPECT_FALSE(ProgressFollower::parseHeartbeat(
        "{\"event\":\"run\",\"task\":42}", task));
    EXPECT_FALSE(ProgressFollower::parseHeartbeat(
        "{\"event\":\"heartbeat\",\"bench\":\"swim\"}", task));
    EXPECT_FALSE(ProgressFollower::parseHeartbeat(
        "{\"event\":\"heartbeat\",\"task\":", task));
}

// ---------------------------------------------------------------
// SweepSupervisor policy: strikes, retries, backoff, quarantine
// ---------------------------------------------------------------

TEST(Supervisor, RetryBudgetWithExponentialBackoff)
{
    SupervisionPolicy policy;
    policy.max_worker_retries = 2;
    policy.backoff_initial_s = 0.25;
    policy.backoff_max_s = 8.0;
    SweepSupervisor sup(policy);

    WorkerFailure f;
    f.worker = 0;
    f.detail = "killed by signal 9";

    SupervisionVerdict v = sup.decide(f);
    EXPECT_EQ(v.action, SupervisionVerdict::Action::Restart);
    EXPECT_DOUBLE_EQ(v.delay_s, 0.25);
    v = sup.decide(f);
    EXPECT_EQ(v.action, SupervisionVerdict::Action::Restart);
    EXPECT_DOUBLE_EQ(v.delay_s, 0.5);
    v = sup.decide(f); // third failure: budget of 2 spent
    EXPECT_EQ(v.action, SupervisionVerdict::Action::GiveUp);

    // Another worker has its own budget.
    f.worker = 1;
    EXPECT_EQ(sup.decide(f).action,
              SupervisionVerdict::Action::Restart);
}

TEST(Supervisor, BackoffIsCapped)
{
    SupervisionPolicy policy;
    policy.max_worker_retries = 10;
    policy.backoff_initial_s = 4.0;
    policy.backoff_max_s = 8.0;
    SweepSupervisor sup(policy);
    WorkerFailure f;
    EXPECT_DOUBLE_EQ(sup.decide(f).delay_s, 4.0);
    EXPECT_DOUBLE_EQ(sup.decide(f).delay_s, 8.0);
    EXPECT_DOUBLE_EQ(sup.decide(f).delay_s, 8.0); // capped, not 16
}

TEST(Supervisor, QuarantineAfterStrikesResetsRetryBudget)
{
    SupervisionPolicy policy;
    policy.max_worker_retries = 2;
    policy.quarantine_strikes = 3;
    SweepSupervisor sup(policy);

    WorkerFailure f;
    f.worker = 1;
    f.has_task = true;
    f.task = 5;
    f.detail = "killed by signal 6";

    EXPECT_EQ(sup.decide(f).action,
              SupervisionVerdict::Action::Restart); // strike 1, retry 1
    EXPECT_EQ(sup.decide(f).action,
              SupervisionVerdict::Action::Restart); // strike 2, retry 2
    const SupervisionVerdict v = sup.decide(f);     // strike 3
    EXPECT_EQ(v.action, SupervisionVerdict::Action::Restart);
    EXPECT_TRUE(v.quarantined);
    EXPECT_EQ(v.task, 5u);
    ASSERT_EQ(sup.quarantined().size(), 1u);
    EXPECT_EQ(sup.quarantined()[0], 5u);
    EXPECT_TRUE(sup.isQuarantined(5));
    // The poison task is gone; the worker's budget starts over, so
    // a fresh (unrelated) failure restarts instead of giving up.
    EXPECT_EQ(sup.retries(1), 0u);
    f.has_task = false;
    EXPECT_EQ(sup.decide(f).action,
              SupervisionVerdict::Action::Restart);
}

TEST(Supervisor, ZeroStrikesDisablesQuarantine)
{
    SupervisionPolicy policy;
    policy.max_worker_retries = 1;
    policy.quarantine_strikes = 0;
    SweepSupervisor sup(policy);
    WorkerFailure f;
    f.has_task = true;
    f.task = 3;
    EXPECT_FALSE(sup.decide(f).quarantined);
    EXPECT_EQ(sup.decide(f).action,
              SupervisionVerdict::Action::GiveUp);
    EXPECT_TRUE(sup.quarantined().empty());
}

// ---------------------------------------------------------------
// Result-store hardening: checksum + torn tails
// ---------------------------------------------------------------

TEST(StoreHardening, ChecksumRoundTripsAndLegacyLinesStillParse)
{
    ResultRecord rec;
    rec.key = makeResultKey("swim", "Base",
                            fingerprintConfig(quickConfig()));
    rec.core.instructions = 1000;
    rec.core.cycles = 2000;
    rec.core.ipc = 0.5;
    rec.stats["l2.misses"] = 42.0;

    const std::string line = ResultStore::formatRecord(rec);
    const auto ck = line.rfind(" ck=");
    ASSERT_NE(ck, std::string::npos);

    ResultRecord back;
    EXPECT_TRUE(ResultStore::parseRecord(line, back));
    EXPECT_EQ(back.key.str(), rec.key.str());
    EXPECT_EQ(back.core.ipc, rec.core.ipc);
    EXPECT_EQ(back.stats, rec.stats);

    // A pre-checksum line (the " ck=<hex>" field spliced out) still
    // parses: old stores stay readable.
    std::string legacy = line;
    legacy.erase(ck, 4 + 16);
    EXPECT_TRUE(ResultStore::parseRecord(legacy, back));
    EXPECT_EQ(back.core.ipc, rec.core.ipc);
}

TEST(StoreHardening, CorruptedLinesAreRejected)
{
    ResultRecord rec;
    rec.key = makeResultKey("swim", "Base",
                            fingerprintConfig(quickConfig()));
    rec.core.instructions = 1000;
    rec.core.cycles = 2000;
    rec.core.ipc = 0.5;
    rec.stats["l2.misses"] = 42.0;
    const std::string line = ResultStore::formatRecord(rec);

    ResultRecord back;
    // In-place corruption that tears nothing: flip one digit of a
    // counter. Only the checksum can catch this.
    std::string bitrot = line;
    const auto pos = bitrot.find("instr=1000");
    ASSERT_NE(pos, std::string::npos);
    bitrot[pos + 6] = '9';
    EXPECT_FALSE(ResultStore::parseRecord(bitrot, back));

    // A corrupted checksum field itself.
    std::string badck = line;
    const auto ck = badck.rfind(" ck=");
    badck[ck + 4] = badck[ck + 4] == '0' ? '1' : '0';
    EXPECT_FALSE(ResultStore::parseRecord(badck, back));

    // Every proper prefix is still rejected (terminator + checksum).
    for (std::size_t n = 0; n < line.size(); ++n)
        EXPECT_FALSE(
            ResultStore::parseRecord(line.substr(0, n), back))
            << "prefix of length " << n << " parsed";
}

TEST(StoreHardening, TornTailIsSkippedCountedAndResumedPast)
{
    const RunConfig cfg = quickConfig();
    const std::size_t total = mechs.size() * benchs.size();

    // A complete store...
    const std::string full = tmpPath("torn_full.store");
    std::remove(full.c_str());
    {
        ResultStore store(full);
        EngineOptions opts;
        opts.threads = 2;
        opts.store = &store;
        ExperimentEngine engine(opts);
        engine.run(mechs, benchs, cfg);
        EXPECT_EQ(store.size(), total);
    }

    // ...SIGKILLed mid-append: every line but the last survives, the
    // last is cut mid-record (not at a line boundary).
    const std::string torn = tmpPath("torn_half.store");
    {
        std::ifstream in(full);
        std::ofstream out(torn, std::ios::trunc);
        std::string line;
        std::size_t copied = 0;
        while (std::getline(in, line)) {
            if (copied + 1 == total) {
                out << line.substr(0, line.size() / 2); // torn write
                break;
            }
            out << line << '\n';
            ++copied;
        }
    }

    // The reload skips exactly the torn record, counts it, and the
    // resume re-executes exactly that one task.
    ResultStore store(torn);
    EXPECT_EQ(store.size(), total - 1);
    EXPECT_EQ(store.unreadable(), 1u);

    EngineOptions opts;
    opts.threads = 2;
    opts.store = &store;
    ExperimentEngine engine(opts);
    const MatrixResult res = engine.run(mechs, benchs, cfg);
    EXPECT_EQ(engine.lastRun().resumed, total - 1);
    EXPECT_EQ(engine.lastRun().executed, 1u);
    EXPECT_EQ(engine.lastRun().store_skipped, 1u);
    expectIdentical(reference(), res);

    std::remove(full.c_str());
    std::remove(torn.c_str());
}

// ---------------------------------------------------------------
// End-to-end supervised recovery (deterministic fault injection)
// ---------------------------------------------------------------

TEST(SupervisedSweep, CrashRecoveryIsBitIdenticalAcrossThreadCounts)
{
    // crash@5:1 aborts the owning worker the first time task 5 is
    // about to run. The supervisor restarts it; the per-worker
    // firing-state file stops a second firing; the restarted worker
    // resumes its own records and finishes. The merged result must
    // be bit-identical to the undisturbed reference — whatever the
    // worker thread count.
    reference(); // materialize BEFORE arming the fault plan
    EnvGuard fault("MICROLIB_FAULT", "crash@5:1");
    for (const unsigned threads : {1u, 4u, 8u}) {
        const std::string path = tmpPath(
            "crash_t" + std::to_string(threads) + ".store");
        cleanWorkerFiles(path, 2);

        ResultStore store(path);
        ProcessShardBackend backend(
            ProcessShardOptions{2, threads, false});
        EngineOptions opts;
        opts.threads = 1;
        opts.store = &store;
        opts.backend = &backend;
        opts.worker_backoff_s = 0.01; // keep the test quick
        ExperimentEngine engine(opts);

        const SweepResult res = supervisedRun(engine);
        const RunCounters counts = engine.lastRun();
        EXPECT_TRUE(counts.quarantined.empty());
        EXPECT_EQ(counts.executed + counts.resumed,
                  mechs.size() * benchs.size());
        expectIdentical(reference(), res.matrices.front());
        cleanWorkerFiles(path, 2);
    }
}

TEST(SupervisedSweep, HangIsDetectedKilledAndRecovered)
{
    // hang@4:1 wedges the owning worker (it stops heartbeating but
    // never exits). Stall detection must SIGKILL and restart it, and
    // the rerun — the clause's budget now spent — completes with a
    // bit-identical result.
    reference();
    EnvGuard fault("MICROLIB_FAULT", "hang@4:1");
    const std::string path = tmpPath("hang.store");
    cleanWorkerFiles(path, 2);

    ResultStore store(path);
    ProcessShardBackend backend(ProcessShardOptions{2, 2, false});
    EngineOptions opts;
    opts.threads = 1;
    opts.store = &store;
    opts.backend = &backend;
    opts.heartbeat_timeout = 10.0; // >> any single quick-config task
    opts.worker_backoff_s = 0.01;
    ExperimentEngine engine(opts);

    const SweepResult res = supervisedRun(engine);
    EXPECT_TRUE(engine.lastRun().quarantined.empty());
    expectIdentical(reference(), res.matrices.front());
    cleanWorkerFiles(path, 2);
}

TEST(SupervisedSweep, PoisonTaskIsQuarantinedAndSweepCompletes)
{
    // crash@5:99 is a poison task: it kills its worker on every
    // encounter. After 3 strikes the supervisor quarantines it; every
    // OTHER task must complete bit-identically, the faulted cell is
    // flagged, and the sensitivity table renders FAULT.
    reference();
    EnvGuard fault("MICROLIB_FAULT", "crash@5:99");
    const std::string path = tmpPath("poison.store");
    cleanWorkerFiles(path, 2);

    ResultStore store(path);
    ProcessShardBackend backend(ProcessShardOptions{2, 2, false});
    EngineOptions opts;
    opts.threads = 1;
    opts.store = &store;
    opts.backend = &backend;
    opts.worker_backoff_s = 0.01;
    ExperimentEngine engine(opts);

    const SweepResult res = supervisedRun(engine);
    const RunCounters counts = engine.lastRun();
    ASSERT_EQ(counts.quarantined.size(), 1u);
    EXPECT_EQ(counts.quarantined[0], 5u);

    const TaskPlan plan(mechs, benchs, quickConfig());
    const PlanTask &poison = plan.task(5);
    const MatrixResult &m = res.matrices.front();
    const MatrixResult &ref = reference();
    EXPECT_TRUE(m.faulted(poison.m, poison.b));
    for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
        for (std::size_t b = 0; b < benchs.size(); ++b) {
            if (mi == poison.m && b == poison.b)
                continue;
            EXPECT_FALSE(m.faulted(mi, b));
            EXPECT_EQ(m.ipc[mi][b], ref.ipc[mi][b])
                << mechs[mi] << "/" << benchs[b];
        }
    }

    // The cross-variant summary refuses to average over the hole.
    const std::string table = sensitivityTable(res).str();
    EXPECT_NE(table.find("FAULT"), std::string::npos);

    cleanWorkerFiles(path, 2);
}

TEST(ProgressStreamFollower, SurfacesOnlyCompleteLinesAcrossTornFeeds)
{
    ProgressStreamFollower f;
    // A line split across three arbitrary chunk boundaries — the
    // byte splits a socket read can produce.
    f.feed("{\"event\":\"run\",\"be");
    EXPECT_FALSE(f.hasLines());
    EXPECT_GT(f.pending(), 0u);
    f.feed("nch\":\"swim\"}\n{\"event\":\"hea");
    ASSERT_TRUE(f.hasLines());
    auto lines = f.takeLines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "{\"event\":\"run\",\"bench\":\"swim\"}");
    EXPECT_FALSE(f.hasLines());

    // The heartbeat completes mid-stream and updates blame.
    std::size_t task = 0;
    EXPECT_FALSE(f.lastHeartbeatTask(task));
    f.feed("rtbeat\",\"task\":7}\n");
    lines = f.takeLines();
    ASSERT_EQ(lines.size(), 1u);
    ASSERT_TRUE(f.lastHeartbeatTask(task));
    EXPECT_EQ(task, 7u);

    // Two lines in one chunk arrive in order; the later heartbeat
    // wins the blame.
    f.feed("{\"event\":\"heartbeat\",\"task\":9}\n"
           "{\"event\":\"run\",\"bench\":\"gzip\"}\n");
    EXPECT_EQ(f.takeLines().size(), 2u);
    ASSERT_TRUE(f.lastHeartbeatTask(task));
    EXPECT_EQ(task, 9u);

    f.reset();
    EXPECT_FALSE(f.lastHeartbeatTask(task));
    EXPECT_EQ(f.pending(), 0u);
}

TEST(ProgressStreamFollower, FeedFdReassemblesAPipeStream)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ProgressStreamFollower f;

    // Partial write: no newline yet, so bytes buffer but no line
    // surfaces.
    const char *head = "{\"event\":\"heartbeat\",\"ta";
    ASSERT_EQ(::write(fds[1], head, strlen(head)),
              static_cast<ssize_t>(strlen(head)));
    EXPECT_GT(f.feedFd(fds[0]), 0);
    EXPECT_FALSE(f.hasLines());
    EXPECT_EQ(f.pending(), strlen(head));

    const char *tail = "sk\":3}\n{\"event\":\"done\"}\n{\"torn";
    ASSERT_EQ(::write(fds[1], tail, strlen(tail)),
              static_cast<ssize_t>(strlen(tail)));
    EXPECT_GT(f.feedFd(fds[0]), 0);
    const auto lines = f.takeLines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"event\":\"heartbeat\",\"task\":3}");
    EXPECT_EQ(lines[1], "{\"event\":\"done\"}");
    std::size_t task = 0;
    ASSERT_TRUE(f.lastHeartbeatTask(task));
    EXPECT_EQ(task, 3u);

    // Writer dies mid-line: EOF is reported as 0, and the torn tail
    // is never surfaced as a line — exactly the file follower's
    // whole-lines-only contract.
    ::close(fds[1]);
    EXPECT_EQ(f.feedFd(fds[0]), 0);
    EXPECT_FALSE(f.hasLines());
    EXPECT_EQ(f.pending(), strlen("{\"torn"));
    ::close(fds[0]);
}
