/** @file Cliff-finder tests: the pure bisection core against
 *  closed-form two-mechanism models with analytically known
 *  crossovers (exact bracket + probe-count bound), and the
 *  engine-backed search end to end — the committed example spec's
 *  pinned flip bracket, zero re-executed tasks against a warm
 *  ResultStore, and bit-identical witness replay across
 *  MICROLIB_THREADS 1/4/8 and a 2-shard merge. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/cliff_finder.hh"
#include "core/ranking.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"

using namespace microlib;

namespace
{

/** The committed examples/cliff.sweep, inlined so the test is
 *  self-contained. The explicit window pins make results (and the
 *  pinned flip bracket below) MICROLIB_QUICK-independent. */
const char *cliff_spec_text = R"(sweep-spec v1
bench pchase swim gzip
mech Base SP GHB
base window.trace_length=50000
base window.interval=50000
axis hier.l2.size 64k 1M
axis core.rob 32 128
)";

SweepSpec
cliffSpec()
{
    SweepSpec spec;
    std::string error;
    if (!SweepSpec::parse(cliff_spec_text, spec, &error))
        ADD_FAILURE() << error;
    return spec;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "microlib_cliff_" + name;
}

/**
 * Closed-form prober: mechanism A's speedup is @p a(v), B's is
 * constant 1.0; the winner comes from the same rankBefore total
 * order the engine-backed prober uses, so exact ties follow the
 * documented acronym rule.
 */
CliffProber
syntheticProber(double (*a)(std::uint64_t), std::size_t *calls)
{
    return [a, calls](std::uint64_t v) {
        if (calls)
            ++*calls;
        CliffProbe p;
        p.value = v;
        p.speedup_a = a(v);
        p.speedup_b = 1.0;
        p.a_wins = rankBefore({"A", p.speedup_a, 0},
                              {"B", p.speedup_b, 0});
        return p;
    };
}

} // namespace

TEST(AxisMidpoint, LinearBisectsAndStopsWhenAdjacent)
{
    EXPECT_EQ(axisMidpoint(AxisScale::Linear, 0, 100), 50u);
    EXPECT_EQ(axisMidpoint(AxisScale::Linear, 10, 13), 11u);
    EXPECT_EQ(axisMidpoint(AxisScale::Linear, 5, 7), 6u);
    EXPECT_EQ(axisMidpoint(AxisScale::Linear, 5, 6), 0u);
}

TEST(AxisMidpoint, Pow2BisectsInLogSpace)
{
    EXPECT_EQ(axisMidpoint(AxisScale::Pow2, 65536, 1048576), 262144u);
    EXPECT_EQ(axisMidpoint(AxisScale::Pow2, 1, 4), 2u);
    EXPECT_EQ(axisMidpoint(AxisScale::Pow2, 262144, 524288), 0u);
}

TEST(AxisMidpoint, BoundCountsEndpointsPlusIterations)
{
    // 8 linear steps: 2 endpoints + ceil(log2 8) = 5.
    EXPECT_EQ(bisectionBound(AxisScale::Linear, 0, 8), 5u);
    EXPECT_EQ(bisectionBound(AxisScale::Linear, 5, 6), 2u);
    // 64k..1M is 4 doublings: 2 + 2.
    EXPECT_EQ(bisectionBound(AxisScale::Pow2, 65536, 1048576), 4u);
    EXPECT_EQ(bisectionBound(AxisScale::Pow2, 1, 2), 2u);
}

TEST(BisectCliff, LinearKnownCrossoverExactBracket)
{
    // A's speedup falls through B's constant 1.0 at exactly v = 1000:
    // at 1000 the speedups tie and the acronym rule hands A ("A" <
    // "B") the win, so the flip is the adjacent pair (1000, 1001).
    std::size_t calls = 0;
    const CliffResult r = bisectCliff(
        AxisScale::Linear, 1, 4096,
        syntheticProber(
            [](std::uint64_t v) { return 2.0 - v / 1000.0; },
            &calls));
    EXPECT_EQ(r.status, CliffStatus::Flip);
    EXPECT_EQ(r.lo.value, 1000u);
    EXPECT_EQ(r.hi.value, 1001u);
    EXPECT_TRUE(r.lo.a_wins);
    EXPECT_FALSE(r.hi.a_wins);
    EXPECT_EQ(r.probes.size(), calls);
    EXPECT_LE(r.probes.size(),
              bisectionBound(AxisScale::Linear, 1, 4096));
}

TEST(BisectCliff, Pow2KnownCrossoverExactBracket)
{
    const CliffResult r = bisectCliff(
        AxisScale::Pow2, 4096, 4194304,
        syntheticProber(
            [](std::uint64_t v) { return v <= 262144 ? 1.2 : 0.8; },
            nullptr));
    EXPECT_EQ(r.status, CliffStatus::Flip);
    EXPECT_EQ(r.lo.value, 262144u);
    EXPECT_EQ(r.hi.value, 524288u);
    EXPECT_LE(r.probes.size(),
              bisectionBound(AxisScale::Pow2, 4096, 4194304));
}

TEST(BisectCliff, AgreeingEndpointsReportNoFlipAfterTwoProbes)
{
    const CliffResult r = bisectCliff(
        AxisScale::Linear, 1, 1000,
        syntheticProber([](std::uint64_t) { return 1.5; }, nullptr));
    EXPECT_EQ(r.status, CliffStatus::NoFlip);
    EXPECT_EQ(r.probes.size(), 2u);
    EXPECT_EQ(r.lo.value, 1u);
    EXPECT_EQ(r.hi.value, 1000u);
}

TEST(BisectCliff, FaultedProbeStopsTheSearchHonestly)
{
    // The first midpoint faults: the search must stop with status
    // Faulted, keeping the endpoint bracket it had.
    std::size_t calls = 0;
    const CliffProber prober = [&](std::uint64_t v) {
        ++calls;
        CliffProbe p;
        p.value = v;
        p.faulted = calls > 2; // endpoints fine, midpoints fault
        p.speedup_a = v < 500 ? 1.5 : 0.5;
        p.speedup_b = 1.0;
        p.a_wins = p.speedup_a > p.speedup_b;
        return p;
    };
    const CliffResult r = bisectCliff(AxisScale::Linear, 0, 1024,
                                      prober);
    EXPECT_EQ(r.status, CliffStatus::Faulted);
    EXPECT_EQ(r.probes.size(), 3u);
    EXPECT_TRUE(r.lo.evaluated);
    EXPECT_TRUE(r.hi.evaluated);
    EXPECT_TRUE(r.probes.back().faulted);
}

TEST(BisectCliff, FaultedEndpointLeavesHiUnevaluated)
{
    const CliffProber prober = [](std::uint64_t v) {
        CliffProbe p;
        p.value = v;
        p.faulted = true;
        return p;
    };
    const CliffResult r = bisectCliff(AxisScale::Linear, 0, 16,
                                      prober);
    EXPECT_EQ(r.status, CliffStatus::Faulted);
    EXPECT_EQ(r.probes.size(), 1u);
    EXPECT_FALSE(r.hi.evaluated);
}

TEST(CliffFinder, SearchableAxesAndRejectionReasons)
{
    SweepSpec spec = cliffSpec();
    ExperimentEngine engine;
    const CliffFinder finder(engine, spec);
    EXPECT_EQ(finder.searchableAxes(),
              (std::vector<std::string>{"hier.l2.size", "core.rob"}));

    std::string error;
    EXPECT_TRUE(finder.searchable("hier.l2.size", &error)) << error;
    // Not declared in the spec at all.
    EXPECT_FALSE(finder.searchable("hier.l1d.size", &error));
    EXPECT_NE(error.find("not declared"), std::string::npos) << error;

    // An enum axis is enumerable but not bisectable.
    SweepSpec mem_spec;
    ASSERT_TRUE(SweepSpec::parse("sweep-spec v1\n"
                                 "bench swim\n"
                                 "mech Base SP\n"
                                 "axis hier.memory sdram const\n",
                                 mem_spec, &error))
        << error;
    const CliffFinder mem_finder(engine, mem_spec);
    EXPECT_FALSE(mem_finder.searchable("hier.memory", &error));
    EXPECT_NE(error.find("not numeric"), std::string::npos) << error;
    EXPECT_TRUE(mem_finder.searchableAxes().empty());

    // A one-point axis has no endpoints to disagree.
    SweepSpec one_spec;
    ASSERT_TRUE(SweepSpec::parse("sweep-spec v1\n"
                                 "bench swim\n"
                                 "mech Base SP\n"
                                 "axis core.rob 64\n",
                                 one_spec, &error))
        << error;
    const CliffFinder one_finder(engine, one_spec);
    EXPECT_FALSE(one_finder.searchable("core.rob", &error));
    EXPECT_NE(error.find("two distinct"), std::string::npos) << error;

    // Pow2 axes require power-of-two endpoints.
    SweepSpec odd_spec;
    ASSERT_TRUE(SweepSpec::parse("sweep-spec v1\n"
                                 "bench swim\n"
                                 "mech Base SP\n"
                                 "axis hier.l2.size 96k 1M\n",
                                 odd_spec, &error))
        << error;
    const CliffFinder odd_finder(engine, odd_spec);
    EXPECT_FALSE(odd_finder.searchable("hier.l2.size", &error));
    EXPECT_NE(error.find("power of two"), std::string::npos) << error;
}

TEST(CliffFinder, AxisSliceProbeAndWitnessSynthesis)
{
    const SweepSpec spec = cliffSpec();

    // Probe slice: one value, other axes pinned at their first
    // declared value as base settings.
    SweepSpec probe;
    std::string error;
    ASSERT_TRUE(spec.axisSlice({"Base", "SP", "GHB"}, "hier.l2.size",
                               {"262144"}, probe, &error))
        << error;
    EXPECT_EQ(probe.canonicalText(), "sweep-spec v1\n"
                                     "bench pchase swim gzip\n"
                                     "mech Base SP GHB\n"
                                     "base window.trace_length=50000\n"
                                     "base window.interval=50000\n"
                                     "base core.rob=32\n"
                                     "axis hier.l2.size 262144\n");
    EXPECT_EQ(probe.variantCount(), 1u);

    // Witness slice: the two bracket values stay an axis.
    SweepSpec witness;
    ASSERT_TRUE(spec.axisSlice({"Base", "SP", "GHB"}, "core.rob",
                               {"32", "33"}, witness, &error))
        << error;
    EXPECT_EQ(witness.canonicalText(),
              "sweep-spec v1\n"
              "bench pchase swim gzip\n"
              "mech Base SP GHB\n"
              "base window.trace_length=50000\n"
              "base window.interval=50000\n"
              "base hier.l2.size=64k\n"
              "axis core.rob 32 33\n");

    // Round-trip: a synthesized slice is an ordinary canonical spec.
    SweepSpec again;
    ASSERT_TRUE(SweepSpec::parse(witness.canonicalText(), again,
                                 &error))
        << error;
    EXPECT_EQ(again.hash(), witness.hash());

    // Bad values surface the registry's error, not a crash.
    SweepSpec bad;
    EXPECT_FALSE(spec.axisSlice({"Base"}, "hier.l2.size", {"fast"},
                                bad, &error));
    EXPECT_NE(error.find("hier.l2.size"), std::string::npos) << error;
}

/** The engine-backed search on the committed example spec: the
 *  SP-vs-GHB L2-size cliff, pinned. Window sizes are explicit in the
 *  spec, so the bracket is the same under MICROLIB_QUICK. */
TEST(CliffFinder, FindsPinnedFlipAndResumesWarm)
{
    const std::string store_path = tmpPath("warm.store");
    std::remove(store_path.c_str());

    const SweepSpec spec = cliffSpec();
    CliffResult first;
    {
        ResultStore store(store_path);
        EngineOptions opts;
        opts.store = &store;
        ExperimentEngine engine(opts);
        CliffFinder finder(engine, spec);
        first = finder.find("SP", "GHB", "hier.l2.size");
    }
    EXPECT_EQ(first.status, CliffStatus::Flip);
    EXPECT_EQ(first.lo.value, 262144u);
    EXPECT_EQ(first.hi.value, 524288u);
    EXPECT_FALSE(first.lo.a_wins); // GHB wins the cramped L2
    EXPECT_TRUE(first.hi.a_wins);  // SP wins once the L2 fits
    EXPECT_LE(first.probes.size(),
              bisectionBound(AxisScale::Pow2, 65536, 1048576));
    EXPECT_GT(first.executed, 0u);

    // Same search against the warm store: zero new tasks, and every
    // probe bit-identical (value, both speedups, winner).
    {
        ResultStore store(store_path);
        EngineOptions opts;
        opts.store = &store;
        ExperimentEngine engine(opts);
        CliffFinder finder(engine, spec);
        const CliffResult again =
            finder.find("SP", "GHB", "hier.l2.size");
        EXPECT_EQ(again.executed, 0u);
        EXPECT_GT(again.resumed, 0u);
        ASSERT_EQ(again.probes.size(), first.probes.size());
        for (std::size_t i = 0; i < first.probes.size(); ++i) {
            EXPECT_EQ(again.probes[i].value, first.probes[i].value);
            EXPECT_EQ(again.probes[i].speedup_a,
                      first.probes[i].speedup_a);
            EXPECT_EQ(again.probes[i].speedup_b,
                      first.probes[i].speedup_b);
            EXPECT_EQ(again.probes[i].a_wins,
                      first.probes[i].a_wins);
        }
    }
}

/** Witness replay is bit-identical for any thread count and for a
 *  2-shard split merged back together — the sweep stack's
 *  determinism contract applied to the cliff finder's artifact. */
TEST(CliffFinder, WitnessReplayDeterminism)
{
    const SweepSpec spec = cliffSpec();
    ExperimentEngine search_engine;
    CliffFinder finder(search_engine, spec);
    const CliffResult r = finder.find("SP", "GHB", "hier.l2.size");
    ASSERT_EQ(r.status, CliffStatus::Flip);
    const SweepSpec witness = finder.witnessSpec(r);

    // The witness must reproduce the flip: the SP-vs-GHB ranking
    // inverts between its two variants.
    auto spBeatsGhb = [](const MatrixResult &m) {
        const auto ranking = rankMechanisms(m);
        return rankOf(ranking, "SP") < rankOf(ranking, "GHB");
    };

    SweepResult reference;
    {
        EngineOptions opts;
        opts.threads = 1;
        ExperimentEngine engine(opts);
        reference = engine.run(witness);
    }
    EXPECT_FALSE(spBeatsGhb(reference.matrices[0]));
    EXPECT_TRUE(spBeatsGhb(reference.matrices[1]));

    for (const unsigned threads : {4u, 8u}) {
        EngineOptions opts;
        opts.threads = threads;
        ExperimentEngine engine(opts);
        const SweepResult res = engine.run(witness);
        ASSERT_EQ(res.matrices.size(), reference.matrices.size());
        for (std::size_t v = 0; v < res.matrices.size(); ++v)
            for (std::size_t m = 0;
                 m < res.matrices[v].mechanisms.size(); ++m)
                for (std::size_t b = 0;
                     b < res.matrices[v].benchmarks.size(); ++b) {
                    EXPECT_EQ(res.matrices[v].ipc[m][b],
                              reference.matrices[v].ipc[m][b])
                        << threads << " threads, variant " << v;
                    EXPECT_EQ(
                        res.matrices[v].outputs[m][b].stats,
                        reference.matrices[v].outputs[m][b].stats);
                }
    }

    // 2-shard split: each shard runs alone against its own store;
    // merging and resuming executes nothing and matches the
    // single-process run bit-for-bit.
    std::vector<std::string> shard_paths;
    for (std::size_t i = 0; i < 2; ++i) {
        const std::string path =
            tmpPath("witness_s" + std::to_string(i) + ".store");
        std::remove(path.c_str());
        shard_paths.push_back(path);
        ResultStore store(path);
        EngineOptions opts;
        opts.store = &store;
        opts.shard = ShardSpec{i, 2};
        ExperimentEngine engine(opts);
        engine.run(witness);
    }
    const std::string merged_path = tmpPath("witness_merged.store");
    std::remove(merged_path.c_str());
    ResultStore merged(merged_path);
    for (const auto &path : shard_paths)
        merged.merge(path);
    EngineOptions opts;
    opts.store = &merged;
    ExperimentEngine engine(opts);
    const SweepResult res = engine.run(witness);
    EXPECT_EQ(engine.lastRun().executed, 0u);
    for (std::size_t v = 0; v < res.matrices.size(); ++v)
        for (std::size_t m = 0; m < res.matrices[v].mechanisms.size();
             ++m)
            for (std::size_t b = 0;
                 b < res.matrices[v].benchmarks.size(); ++b)
                EXPECT_EQ(res.matrices[v].ipc[m][b],
                          reference.matrices[v].ipc[m][b])
                    << "merged shards, variant " << v;
}

/** findAll + witness artifacts: the multi-axis driver searches both
 *  example axes, writes a .sweep only for the flipping one, a .json
 *  for both, and a second run against the same store reproduces the
 *  artifact bytes exactly. */
TEST(CliffFinder, FindAllWritesDeterministicWitnesses)
{
    const std::string store_path = tmpPath("witness_dir.store");
    std::remove(store_path.c_str());

    auto runOnce = [&](const std::string &dir) {
        ResultStore store(store_path);
        EngineOptions opts;
        opts.store = &store;
        ExperimentEngine engine(opts);
        CliffFinderOptions copts;
        copts.witness_dir = dir;
        CliffFinder finder(engine, cliffSpec(), copts);
        return finder.findAll("SP", "GHB");
    };

    const std::string dir1 = tmpPath("wit1");
    const std::string dir2 = tmpPath("wit2");
    const auto first = runOnce(dir1);
    const auto again = runOnce(dir2);

    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].axis, "hier.l2.size");
    EXPECT_EQ(first[0].status, CliffStatus::Flip);
    EXPECT_FALSE(first[0].witness_path.empty());
    EXPECT_EQ(first[1].axis, "core.rob");
    EXPECT_EQ(first[1].status, CliffStatus::NoFlip);
    EXPECT_TRUE(first[1].witness_path.empty());

    // Deterministic rendering: reports and artifacts byte-identical
    // between the fresh and the fully resumed search.
    EXPECT_EQ(CliffFinder::report(first).str(),
              CliffFinder::report(again).str());
    for (const char *name :
         {"cliff__hier-l2-size__SP_vs_GHB.sweep",
          "cliff__hier-l2-size__SP_vs_GHB.json",
          "cliff__core-rob__SP_vs_GHB.json"}) {
        auto slurp = [](const std::string &path) {
            std::ifstream in(path);
            EXPECT_TRUE(in.good()) << path;
            return std::string(std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>());
        };
        EXPECT_EQ(slurp(dir1 + "/" + name), slurp(dir2 + "/" + name))
            << name;
    }
    for (const auto &r : again)
        EXPECT_EQ(r.executed, 0u) << r.axis;
}
