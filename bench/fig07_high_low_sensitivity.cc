/**
 * @file
 * Figure 7 — Speedups on high- and low-sensitivity benchmark sets.
 *
 * Paper claim: both absolute performance and the mechanism ranking
 * are severely affected by restricting the comparison to the six
 * most or six least sensitive benchmarks.
 */

#include <iostream>

#include "common.hh"
#include "core/selections.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 7: high- vs low-sensitivity selections",
        "restricting to the 6 most / least sensitive benchmarks "
        "changes absolute speedups and the ranking");

    RunConfig cfg;
    const MatrixResult matrix =
        loadOrRun(engine(), "default_matrix", mechanismSet(), benchmarkSet(),
                  cfg);

    const auto high = indicesOf(matrix, highSensitivitySelection());
    const auto low = indicesOf(matrix, lowSensitivitySelection());

    printRanking("All benchmarks", matrix);
    printRanking("High-sensitivity six", matrix, high);
    printRanking("Low-sensitivity six", matrix, low);

    // Rank shifts overview.
    const auto all_rank = rankMechanisms(matrix);
    const auto high_rank = rankMechanisms(matrix, high);
    const auto low_rank = rankMechanisms(matrix, low);

    Table shifts("Rank per selection");
    shifts.header({"mechanism", "all", "high-6", "low-6"});
    for (const auto &name : matrix.mechanisms)
        shifts.row({name, std::to_string(rankOf(all_rank, name)),
                    std::to_string(rankOf(high_rank, name)),
                    std::to_string(rankOf(low_rank, name))});
    shifts.print(std::cout);
    return 0;
}
