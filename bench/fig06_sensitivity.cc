/**
 * @file
 * Figure 6 — Benchmark sensitivity to data-cache mechanisms.
 *
 * Paper claim: sensitivity varies enormously; wupwise, bzip2,
 * crafty, eon, perlbmk and vortex are barely sensitive, while apsi,
 * equake, fma3d, mgrid, swim and gap respond strongly and therefore
 * dominate any assessment of research ideas.
 */

#include <algorithm>
#include <iostream>

#include "common.hh"
#include "core/selections.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 6: benchmark sensitivity",
        "mechanism-induced speedup spread varies strongly across "
        "benchmarks; a small set dominates every comparison");

    RunConfig cfg;
    const MatrixResult matrix =
        loadOrRun(engine(), "default_matrix", mechanismSet(), benchmarkSet(),
                  cfg);

    const std::vector<double> sens = benchmarkSensitivity(matrix);

    std::vector<std::size_t> order(matrix.benchmarks.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return sens[a] > sens[b];
              });

    Table t("Speedup spread (max - min over mechanisms), descending");
    t.header({"benchmark", "spread", "paper class"});
    for (const auto b : order) {
        std::string cls = "-";
        for (const auto &n : highSensitivitySelection())
            if (n == matrix.benchmarks[b])
                cls = "high (paper)";
        for (const auto &n : lowSensitivitySelection())
            if (n == matrix.benchmarks[b])
                cls = "low (paper)";
        t.row({matrix.benchmarks[b], Table::num(sens[b], 4), cls});
    }
    t.print(std::cout);

    // Agreement check: how many of the paper's high-sensitivity six
    // land in our top half, and lows in the bottom half?
    const std::size_t half = matrix.benchmarks.size() / 2;
    unsigned high_ok = 0, low_ok = 0;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::string &name = matrix.benchmarks[order[pos]];
        for (const auto &n : highSensitivitySelection())
            if (n == name && pos < half)
                ++high_ok;
        for (const auto &n : lowSensitivitySelection())
            if (n == name && pos >= half)
                ++low_ok;
    }
    std::cout << "\nAgreement with the paper's classification: "
              << high_ok << "/6 high-sensitivity in top half, "
              << low_ok << "/6 low-sensitivity in bottom half.\n";
    return 0;
}
