/**
 * @file
 * Figure 3 — Fixing the DBCP reverse-engineered implementation.
 *
 * Paper claim: the initial DBCP build (wrong benchmark ISA aside:
 * missing PC pre-hash, half-size correlation table, no confidence
 * decrement) differs from the fixed build by 38% average speedup;
 * interestingly the TK authors' own reverse-engineered DBCP matched
 * the *initial* (wrong) build.
 *
 * Validation setup, as in the paper: arbitrary trace window and
 * 70-cycle constant memory.
 */

#include <cmath>
#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 3: fixing the DBCP implementation",
        "initial (second-guessed) vs fixed DBCP differ substantially "
        "in average speedup (paper: 38%)");

    const auto benchs = benchmarkSet();

    RunConfig fixed_cfg;
    fixed_cfg.system = makeConstantMemoryBaseline(70);
    fixed_cfg.selection = TraceSelection::Arbitrary;

    RunConfig initial_cfg = fixed_cfg;
    initial_cfg.mech.second_guess = true;

    Table t("DBCP speedup: initial vs fixed build");
    t.header({"benchmark", "initial", "fixed", "delta %"});

    double avg_initial = 0.0, avg_fixed = 0.0, avg_delta = 0.0;
    for (const auto &bench : benchs) {
        const auto trace = engine().trace(bench, fixed_cfg);
        const double base = runOne(*trace, "Base", fixed_cfg).ipc();
        const double init =
            runOne(*trace, "DBCP", initial_cfg).ipc() / base;
        const double fixd =
            runOne(*trace, "DBCP", fixed_cfg).ipc() / base;
        avg_initial += init;
        avg_fixed += fixd;
        avg_delta += 100.0 * std::abs(fixd - init) / init;
        t.row({bench, Table::num(init, 4), Table::num(fixd, 4),
               Table::num(100.0 * (fixd - init) / init, 2)});
    }
    const double n = static_cast<double>(benchs.size());
    t.row({"AVG", Table::num(avg_initial / n, 4),
           Table::num(avg_fixed / n, 4), Table::num(avg_delta / n, 2)});
    t.print(std::cout);

    std::cout << "\nPaper: fixed build clearly stronger (their fixed "
                 "DBCP outperformed their TK by 32% after the fix).\n";
    return 0;
}
