/**
 * @file
 * Figure 8 — Effect of the memory model on speedups and ranking.
 *
 * Paper claims:
 *  - moving from the SimpleScalar-like constant 70-cycle memory to
 *    the detailed SDRAM cuts average speedups by ~58-60%;
 *  - GHB loses far more than SP (-18.7% vs -2.8%): its extra traffic
 *    is punished by real memory access rules;
 *  - the ranking changes (DBCP beats VC/TKVC under constant latency,
 *    loses under SDRAM);
 *  - under SDRAM, average latency varies per benchmark (87..389
 *    cycles) and per mechanism (GHB turns lucas's 1.12 speedup into
 *    a 0.76 slowdown).
 */

#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 8: memory model precision",
        "speedups shrink and rankings flip when a constant-latency "
        "memory is replaced by real SDRAM");

    const auto mechs = mechanismSet();
    const auto benchs = benchmarkSet();

    RunConfig const70;
    const70.system = makeConstantMemoryBaseline(70);
    RunConfig sdram70;
    sdram70.system = makeScaledSdramBaseline();
    RunConfig sdram170; // the default Table 1 SDRAM

    const MatrixResult m_const =
        loadOrRun(engine(), "const70_matrix", mechs, benchs, const70);
    const MatrixResult m_s70 =
        loadOrRun(engine(), "sdram70_matrix", mechs, benchs, sdram70);
    const MatrixResult m_s170 =
        loadOrRun(engine(), "default_matrix", mechs, benchs, sdram170);

    Table t("Average speedup per memory model");
    t.header({"mechanism", "const-70", "sdram-70", "sdram-170",
              "drop % (const->sdram170)"});
    double drop_sum = 0.0;
    unsigned drop_n = 0;
    for (std::size_t m = 0; m < mechs.size(); ++m) {
        if (mechs[m] == "Base")
            continue;
        const double sc = m_const.avgSpeedup(m);
        const double s7 = m_s70.avgSpeedup(m);
        const double s17 = m_s170.avgSpeedup(m);
        double drop = 0.0;
        if (sc > 1.0) {
            drop = 100.0 * ((sc - 1.0) - (s17 - 1.0)) / (sc - 1.0);
            drop_sum += drop;
            ++drop_n;
        }
        t.row({mechs[m], Table::num(sc, 4), Table::num(s7, 4),
               Table::num(s17, 4), Table::num(drop, 1)});
    }
    t.print(std::cout);
    if (drop_n)
        std::cout << "\nAverage speedup-gain reduction const-70 -> "
                  << "SDRAM: "
                  << Table::num(drop_sum / drop_n, 1)
                  << "% (paper: ~58%)\n";

    // Ranking flips.
    const auto rank_const = rankMechanisms(m_const);
    const auto rank_sdram = rankMechanisms(m_s170);
    Table flips("Rank: const-70 vs sdram-170");
    flips.header({"mechanism", "const-70", "sdram-170"});
    for (const auto &name : mechs)
        flips.row({name, std::to_string(rankOf(rank_const, name)),
                   std::to_string(rankOf(rank_sdram, name))});
    flips.print(std::cout);

    // Per-benchmark DRAM latency spread under the baseline.
    const std::size_t base_m = m_s170.mechIndex("Base");
    Table lat("Average SDRAM latency per benchmark (baseline cache)");
    lat.header({"benchmark", "avg latency (cpu cycles)"});
    for (std::size_t b = 0; b < benchs.size(); ++b)
        lat.row({benchs[b],
                 Table::num(
                     m_s170.outputs[base_m][b].stat("dram.latency"),
                     1)});
    lat.print(std::cout);

    // The lucas/GHB case study.
    for (std::size_t b = 0; b < benchs.size(); ++b) {
        if (benchs[b] != "lucas")
            continue;
        const std::size_t ghb = m_s170.mechIndex("GHB");
        std::cout << "\nlucas case study: GHB speedup const-70 = "
                  << Table::num(m_const.speedup(ghb, b), 3)
                  << ", sdram-170 = "
                  << Table::num(m_s170.speedup(ghb, b), 3)
                  << " (paper: 1.12 -> 0.76)\n";
    }
    return 0;
}
