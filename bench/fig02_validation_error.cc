/**
 * @file
 * Figure 2 — Validation of TK, TCP and TKVC against the articles.
 *
 * Paper claim: reverse-engineered implementations differ from the
 * article graphs by ~5% average relative speedup error, with sign
 * flips on individual benchmarks (gcc, gzip under TK).
 *
 * The original bar graphs are not machine-readable here, so the
 * author-confirmed builds (post-contact configuration) stand in for
 * the article numbers, and the second-guessed initial builds play
 * the reverse-engineered implementations — the documented wrong
 * guesses are exactly the ones the paper describes (Section 2.2,
 * 3.4). Validation setup: "skip, simulate" trace and the 70-cycle
 * SimpleScalar memory, as in the paper's Section 2.2.
 */

#include <cmath>
#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 2: validation of TK, TCP, TKVC",
        "reverse-engineered builds are ~5% off the article builds on "
        "average, with per-benchmark sign flips");

    const auto benchs = benchmarkSet();
    const std::vector<std::string> mechs = {"TK", "TCP", "TKVC"};

    RunConfig confirmed;
    confirmed.system = makeConstantMemoryBaseline(70);
    confirmed.selection = TraceSelection::Arbitrary;

    RunConfig guessed = confirmed;
    guessed.mech.second_guess = true;

    Table t("Relative speedup error vs article (confirmed) build, %");
    auto header = std::vector<std::string>{"benchmark"};
    for (const auto &m : mechs)
        header.push_back(m);
    t.header(header);

    std::vector<double> err_sum(mechs.size(), 0.0);
    std::vector<unsigned> sign_flips(mechs.size(), 0);

    for (const auto &bench : benchs) {
        const auto trace = engine().trace(bench, confirmed);
        const double base_ipc =
            runOne(*trace, "Base", confirmed).ipc();

        std::vector<std::string> row = {bench};
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const double article =
                runOne(*trace, mechs[m], confirmed).ipc() / base_ipc;
            const double ours =
                runOne(*trace, mechs[m], guessed).ipc() / base_ipc;
            const double err = 100.0 * (ours - article) / article;
            err_sum[m] += std::abs(err);
            if ((article - 1.0) * (ours - 1.0) < 0)
                ++sign_flips[m];
            row.push_back(Table::num(err, 2));
        }
        t.row(row);
    }

    std::vector<std::string> avg = {"AVG |err|"};
    for (std::size_t m = 0; m < mechs.size(); ++m)
        avg.push_back(Table::num(
            err_sum[m] / static_cast<double>(benchs.size()), 2));
    t.row(avg);
    t.print(std::cout);

    std::cout << "\nSpeedup/slowdown sign flips:";
    for (std::size_t m = 0; m < mechs.size(); ++m)
        std::cout << " " << mechs[m] << "=" << sign_flips[m];
    std::cout << "\nPaper: average error ~5%, flips observed (e.g. "
                 "gcc/gzip for TK).\n";
    return 0;
}
