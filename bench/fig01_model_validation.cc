/**
 * @file
 * Figure 1 — MicroLib cache model validation.
 *
 * Paper claim: the hybrid SimpleScalar+MicroLib system differs from
 * the original SimpleScalar by 6.8% average IPC because of four
 * modeled behaviours (finite MSHR, pipeline stalls, LSQ back-
 * pressure, refills using real ports); after aligning SimpleScalar
 * step by step the residual difference is ~2%.
 *
 * Here: every benchmark runs under (a) the detailed MicroLib cache
 * model and (b) the SimpleScalar-like idealization, then the four
 * realism features are enabled cumulatively to show the gap closing.
 */

#include <cmath>
#include <iostream>

#include "common.hh"
#include "mem/cache_simple.hh"

using namespace microlib;
using namespace microlib::bench;

namespace
{

/** Average |IPC difference| (%) of config @p cfg vs reference IPCs. */
double
runConfig(const std::vector<std::string> &benchs, const RunConfig &cfg,
          const std::vector<double> &ref, std::vector<double> *out_ipc,
          Table *table, const std::string &label)
{
    double sum = 0.0;
    for (std::size_t b = 0; b < benchs.size(); ++b) {
        // The engine caches by resolved window, so the many
        // alignment-step configs below share one trace per benchmark.
        const auto trace = engine().trace(benchs[b], cfg);
        const RunOutput run = runOne(*trace, "Base", cfg);
        const double ipc = run.ipc();
        if (out_ipc)
            (*out_ipc)[b] = ipc;
        if (!ref.empty()) {
            const double diff = 100.0 * std::abs(ipc - ref[b]) / ref[b];
            sum += diff;
            if (table)
                table->row({benchs[b], label, Table::num(ipc, 4),
                            Table::num(diff, 2)});
        }
    }
    return benchs.empty() ? 0.0 : sum / static_cast<double>(
                                            benchs.size());
}

} // namespace

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 1: MicroLib cache model validation",
        "idealized SimpleScalar cache differs ~7% IPC from the "
        "detailed model; aligning 4 modeled behaviours closes the "
        "gap to ~2%");

    const auto benchs = benchmarkSet();

    // Reference: the detailed MicroLib model (all realism on).
    RunConfig detailed;
    std::vector<double> ref(benchs.size(), 0.0);
    runConfig(benchs, detailed, {}, &ref, nullptr, "");

    Table per_bench("Per-benchmark IPC difference vs MicroLib model");
    per_bench.header({"benchmark", "model", "IPC", "diff %"});

    // Step 0: fully SimpleScalar-like.
    RunConfig ss;
    ss.system = makeSimpleScalarCacheBaseline(ss.system);
    const double base_diff =
        runConfig(benchs, ss, ref, nullptr, &per_bench, "SimpleScalar");
    per_bench.print(std::cout);

    // Cumulative alignment steps.
    Table steps("Alignment steps (cumulative)");
    steps.header({"step", "avg IPC diff %"});
    steps.row({"SimpleScalar-like (none)", Table::num(base_diff, 2)});

    std::vector<RealismFeature> enabled;
    for (const auto f : allRealismFeatures()) {
        enabled.push_back(f);
        RunConfig step;
        step.system.hier.l1d =
            withRealism(step.system.hier.l1d, enabled);
        step.system.hier.l1i =
            withRealism(step.system.hier.l1i, enabled);
        step.system.hier.l2 = withRealism(step.system.hier.l2, enabled);
        const double d =
            runConfig(benchs, step, ref, nullptr, nullptr, "");
        steps.row({"+ " + realismFeatureName(f), Table::num(d, 2)});
    }
    steps.print(std::cout);

    std::cout << "\nPaper: 6.8% before alignment, 2% after. Expect the "
                 "first row well above the last.\n";
    return 0;
}
