/**
 * @file
 * Figure 11 — Effect of trace selection on ranking.
 *
 * Paper claims: "skip 1 B, simulate 2 B" traces and 500 M SimPoint
 * traces disagree significantly; most mechanisms look better on the
 * arbitrary traces, with TP the notable exception — so even 2 B-
 * instruction traces are not a sufficient precaution.
 *
 * Here the same experiment runs at 1:250 scale: SimPoint windows vs
 * "skip 3 M, simulate 6 M" arbitrary windows.
 */

#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 11: trace selection",
        "SimPoint vs arbitrary skip/simulate windows shift average "
        "speedups and the ranking");

    const auto mechs = mechanismSet();
    const auto benchs = benchmarkSet();

    RunConfig simpoint;
    RunConfig arbitrary;
    arbitrary.selection = TraceSelection::Arbitrary;

    const MatrixResult m_sp =
        loadOrRun(engine(), "default_matrix", mechs, benchs, simpoint);
    const MatrixResult m_arb =
        loadOrRun(engine(), "arbitrary_matrix", mechs, benchs, arbitrary);

    Table t("Average speedup: SimPoint vs arbitrary trace");
    t.header({"mechanism", "simpoint", "arbitrary", "delta %"});
    for (std::size_t m = 0; m < mechs.size(); ++m) {
        if (mechs[m] == "Base")
            continue;
        const double s = m_sp.avgSpeedup(m);
        const double a = m_arb.avgSpeedup(m);
        t.row({mechs[m], Table::num(s, 4), Table::num(a, 4),
               Table::num(100.0 * (a - s) / s, 2)});
    }
    t.print(std::cout);

    const auto rank_sp = rankMechanisms(m_sp);
    const auto rank_arb = rankMechanisms(m_arb);
    Table flips("Rank per trace selection");
    flips.header({"mechanism", "simpoint", "arbitrary"});
    for (const auto &name : mechs)
        flips.row({name, std::to_string(rankOf(rank_sp, name)),
                   std::to_string(rankOf(rank_arb, name))});
    flips.print(std::cout);

    std::cout << "\nPaper: trace selection materially affects research "
                 "decisions; arbitrary windows flattered most "
                 "mechanisms except TP.\n";
    return 0;
}
