/**
 * @file
 * Figure 10 — Effect of second-guessing undocumented choices:
 * TCP's prefetch request buffer, 1 entry vs 128 entries.
 *
 * Paper claims: the TCP article never specifies how prefetch
 * requests are buffered. The choice is a trade-off: with 1 entry
 * most prefetches are discarded, with 128 pending prefetches seize
 * the bus and delay demand misses. Differences are tiny on crafty
 * and eon and dramatic on lucas, mgrid and art; lucas *degrades*
 * with the large buffer.
 */

#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 10: TCP prefetch buffer second-guessing",
        "1-entry vs 128-entry prefetch buffers swing individual "
        "benchmarks dramatically (lucas, mgrid, art) and leave "
        "others untouched (crafty, eon)");

    const auto benchs = benchmarkSet();

    RunConfig big;
    big.mech.tcp_buffer = 128;
    RunConfig small = big;
    small.mech.tcp_buffer = 1;

    Table t("TCP speedup per prefetch buffer size");
    t.header({"benchmark", "buffer=1", "buffer=128", "delta %"});

    double avg1 = 0.0, avg128 = 0.0;
    for (const auto &bench : benchs) {
        const auto trace = engine().trace(bench, big);
        const double base = runOne(*trace, "Base", big).ipc();
        const double s1 = runOne(*trace, "TCP", small).ipc() / base;
        const double s128 = runOne(*trace, "TCP", big).ipc() / base;
        avg1 += s1;
        avg128 += s128;
        t.row({bench, Table::num(s1, 4), Table::num(s128, 4),
               Table::num(100.0 * (s128 - s1) / s1, 2)});
    }
    const double n = static_cast<double>(benchs.size());
    t.row({"AVG", Table::num(avg1 / n, 4), Table::num(avg128 / n, 4),
           ""});
    t.print(std::cout);

    std::cout << "\nPaper: the authors confirmed a buffer existed; "
                 "its size was chosen (128) by matching the article's "
                 "average performance.\n";
    return 0;
}
