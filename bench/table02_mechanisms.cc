/**
 * @file
 * Tables 2, 3 and 5 — mechanism inventory, configurations, and the
 * comparisons the original articles performed.
 *
 * Machine-checkable form of the paper's descriptive tables: the
 * registry (Table 2), each mechanism's parameter dump (Table 3), and
 * who compared against whom (Table 5: few articles compare against
 * more than one or two predecessors).
 */

#include <iostream>

#include "common.hh"
#include "core/registry.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Tables 2/3/5: mechanism inventory",
        "twelve mechanisms spanning 1982-2004, their Table 3 "
        "configurations and prior-comparison record");

    Table t2("Table 2: target data cache optimizations");
    t2.header({"acronym", "level", "year", "mechanism"});
    for (const auto &d : mechanismRegistry())
        t2.row({d.acronym, d.level == CacheLevel::L1D ? "L1" : "L2",
                std::to_string(d.year), d.title});
    t2.print(std::cout);

    Table t5("Table 5: comparisons in the original articles");
    t5.header({"mechanism", "compared against"});
    for (const auto &d : mechanismRegistry()) {
        std::string versus;
        for (const auto &v : d.compared_against)
            versus += (versus.empty() ? "" : ", ") + v;
        if (versus.empty())
            versus = "(none)";
        t5.row({d.acronym, versus});
    }
    t5.print(std::cout);

    // Table 3: instantiate each mechanism and dump its parameters.
    std::cout << "\n== Table 3: configuration of cache optimizations ==\n";
    RunConfig cfg;
    Hierarchy hier(cfg.system.hier, nullptr);
    ParamTable params;
    for (const auto &d : mechanismRegistry()) {
        auto mech = d.make(cfg.mech);
        mech->bind(hier);
        mech->describe(params);
    }
    params.print(std::cout);

    std::cout << "\n== Table 1: baseline configuration ==\n";
    describeBaseline(cfg.system).print(std::cout);
    return 0;
}
