/**
 * @file
 * Shared harness code for the per-figure/table bench binaries.
 *
 * Each binary regenerates one table or figure of the paper. Full
 * 13-mechanism x 26-benchmark sweeps are expensive, so every
 * completed run is persisted in the shared versioned result store
 * (bench_cache/results.microlib by default; see
 * docs/RESULT_STORE.md). Binaries that need the same runs (Figure 4,
 * Figure 5, Tables 6/7, Figures 6/7) share them through the store,
 * an interrupted sweep resumes where it stopped, and a
 * configuration change invalidates records by fingerprint — per run,
 * not per file. The old per-tag TSV matrix cache is gone; the tag
 * survives purely as a progress label.
 */

#ifndef MICROLIB_BENCH_COMMON_HH
#define MICROLIB_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/ranking.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "sim/report.hh"

namespace microlib::bench
{

/** All 26 benchmarks (or a 8-benchmark subset when MICROLIB_QUICK=1,
 *  for smoke runs). */
std::vector<std::string> benchmarkSet();

/** "Base" + all twelve mechanisms. */
std::vector<std::string> mechanismSet();

/**
 * The harness-wide ExperimentEngine. One engine per bench binary:
 * its worker pool persists across matrices and its trace cache is
 * shared, so binaries sweeping several configurations (Figures 8, 9
 * and 11) materialize each benchmark window once, not once per
 * matrix. The engine writes every finished run to resultStore().
 */
ExperimentEngine &engine();

/** The harness-wide result store, at cacheDir()/results.microlib. */
ResultStore &resultStore();

/**
 * Run the matrix on @p eng, resuming any runs the result store
 * already holds (all of them, when a sibling binary finished the
 * sweep earlier). @p tag labels progress output only — record
 * identity is the store fingerprint.
 */
MatrixResult loadOrRun(ExperimentEngine &eng, const std::string &tag,
                       const std::vector<std::string> &mechanisms,
                       const std::vector<std::string> &benchmarks,
                       const RunConfig &cfg);

/** Benchmark indices of @p names inside @p matrix. */
std::vector<std::size_t> indicesOf(const MatrixResult &matrix,
                                   const std::vector<std::string> &names);

/** Print a per-mechanism average-speedup ranking table. */
void printRanking(const std::string &title, const MatrixResult &matrix,
                  const std::vector<std::size_t> &subset = {});

/** Directory used for cached matrices. */
std::string cacheDir();

} // namespace microlib::bench

#endif // MICROLIB_BENCH_COMMON_HH
