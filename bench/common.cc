#include "common.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib::bench
{

std::vector<std::string>
benchmarkSet()
{
    const char *quick = std::getenv("MICROLIB_QUICK");
    if (quick && quick[0] == '1') {
        return {"ammp", "swim", "gzip", "mcf", "crafty", "lucas",
                "twolf", "gap"};
    }
    return specBenchmarkNames();
}

std::vector<std::string>
mechanismSet()
{
    return allMechanismNames();
}

ExperimentEngine &
engine()
{
    static ExperimentEngine the_engine{[] {
        EngineOptions opts;
        opts.verbose = std::getenv("MICROLIB_VERBOSE") != nullptr;
        return opts;
    }()};
    return the_engine;
}

std::string
cacheDir()
{
    if (const char *env = std::getenv("MICROLIB_CACHE_DIR"))
        return env;
    return "bench_cache";
}

namespace
{

std::string
cachePath(const std::string &tag)
{
    return cacheDir() + "/" + tag + ".tsv";
}

/** Cache format version; bump to invalidate stale results. */
constexpr int cache_version = 3;

bool
loadMatrix(const std::string &tag,
           const std::vector<std::string> &mechanisms,
           const std::vector<std::string> &benchmarks,
           MatrixResult &out)
{
    std::ifstream in(cachePath(tag));
    if (!in)
        return false;
    std::string header;
    std::getline(in, header);
    std::ostringstream expect;
    expect << "microlib-cache v" << cache_version << " mechs "
           << mechanisms.size() << " benchs " << benchmarks.size();
    if (header != expect.str())
        return false;

    out.mechanisms = mechanisms;
    out.benchmarks = benchmarks;
    out.buildIndices();
    out.ipc.assign(mechanisms.size(),
                   std::vector<double>(benchmarks.size(), 0.0));
    out.outputs.assign(mechanisms.size(),
                       std::vector<RunOutput>(benchmarks.size()));

    std::string line;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        std::istringstream is(line);
        std::string mech, bench;
        double ipc;
        if (!(is >> mech >> bench >> ipc))
            return false;
        auto find = [](const std::vector<std::string> &v,
                       const std::string &s) -> int {
            for (std::size_t i = 0; i < v.size(); ++i)
                if (v[i] == s)
                    return static_cast<int>(i);
            return -1;
        };
        const int mi = find(mechanisms, mech);
        const int bi = find(benchmarks, bench);
        if (mi < 0 || bi < 0)
            return false;
        const auto m = static_cast<std::size_t>(mi);
        const auto b = static_cast<std::size_t>(bi);
        out.ipc[m][b] = ipc;
        RunOutput &run = out.outputs[m][b];
        run.mechanism = mech;
        run.benchmark = bench;
        run.core.ipc = ipc;
        std::string kv;
        while (is >> kv) {
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                continue;
            run.stats[kv.substr(0, eq)] =
                std::strtod(kv.c_str() + eq + 1, nullptr);
        }
        ++rows;
    }
    return rows == mechanisms.size() * benchmarks.size();
}

void
storeMatrix(const std::string &tag, const MatrixResult &res)
{
    std::filesystem::create_directories(cacheDir());
    std::ofstream out(cachePath(tag));
    out << "microlib-cache v" << cache_version << " mechs "
        << res.mechanisms.size() << " benchs " << res.benchmarks.size()
        << "\n";
    out.precision(10);
    for (std::size_t m = 0; m < res.mechanisms.size(); ++m) {
        for (std::size_t b = 0; b < res.benchmarks.size(); ++b) {
            const RunOutput &run = res.outputs[m][b];
            out << res.mechanisms[m] << " " << res.benchmarks[b] << " "
                << res.ipc[m][b];
            for (const auto &kv : run.stats)
                out << " " << kv.first << "=" << kv.second;
            out << "\n";
        }
    }
}

} // namespace

MatrixResult
loadOrRun(ExperimentEngine &eng, const std::string &tag,
          const std::vector<std::string> &mechanisms,
          const std::vector<std::string> &benchmarks,
          const RunConfig &cfg)
{
    MatrixResult res;
    if (loadMatrix(tag, mechanisms, benchmarks, res)) {
        std::cout << "[cache] loaded matrix '" << tag << "' from "
                  << cachePath(tag) << "\n";
        return res;
    }
    std::cout << "[run] sweeping matrix '" << tag << "' ("
              << mechanisms.size() << " mechanisms x "
              << benchmarks.size() << " benchmarks, "
              << eng.threads() << " workers)...\n";
    res = eng.run(mechanisms, benchmarks, cfg);
    storeMatrix(tag, res);
    return res;
}

std::vector<std::size_t>
indicesOf(const MatrixResult &matrix,
          const std::vector<std::string> &names)
{
    std::vector<std::size_t> idx;
    for (const auto &n : names) {
        // Skip benchmarks absent from quick-mode subsets.
        for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b)
            if (matrix.benchmarks[b] == n)
                idx.push_back(b);
    }
    return idx;
}

void
printRanking(const std::string &title, const MatrixResult &matrix,
             const std::vector<std::size_t> &subset)
{
    const auto ranking = rankMechanisms(matrix, subset);
    Table t(title);
    t.header({"rank", "mechanism", "avg speedup"});
    for (const auto &e : ranking)
        t.row({std::to_string(e.rank), e.mechanism,
               Table::num(e.avg_speedup, 4)});
    t.print(std::cout);
}

} // namespace microlib::bench
