#include "common.hh"

#include <cstdlib>
#include <iostream>

#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib::bench
{

std::vector<std::string>
benchmarkSet()
{
    const char *quick = std::getenv("MICROLIB_QUICK");
    if (quick && quick[0] == '1') {
        return {"ammp", "swim", "gzip", "mcf", "crafty", "lucas",
                "twolf", "gap"};
    }
    return specBenchmarkNames();
}

std::vector<std::string>
mechanismSet()
{
    return allMechanismNames();
}

ResultStore &
resultStore()
{
    static ResultStore the_store(cacheDir() + "/results.microlib");
    return the_store;
}

ExperimentEngine &
engine()
{
    static ExperimentEngine the_engine{[] {
        EngineOptions opts;
        opts.verbose = std::getenv("MICROLIB_VERBOSE") != nullptr;
        // Every finished run persists; re-running any harness over
        // overlapping (benchmark, mechanism, config) cells resumes.
        opts.store = &resultStore();
        return opts;
    }()};
    return the_engine;
}

std::string
cacheDir()
{
    if (const char *env = std::getenv("MICROLIB_CACHE_DIR"))
        return env;
    return "bench_cache";
}

MatrixResult
loadOrRun(ExperimentEngine &eng, const std::string &tag,
          const std::vector<std::string> &mechanisms,
          const std::vector<std::string> &benchmarks,
          const RunConfig &cfg)
{
    std::cout << "[run] sweeping matrix '" << tag << "' ("
              << mechanisms.size() << " mechanisms x "
              << benchmarks.size() << " benchmarks, "
              << eng.threads() << " workers)...\n";
    MatrixResult res = eng.run(mechanisms, benchmarks, cfg);
    const RunCounters counts = eng.lastRun();
    const ResultStore *store = eng.resultStore();
    std::cout << "[store] '" << tag << "': " << counts.resumed
              << " resumed, " << counts.executed << " executed";
    if (store && !store->path().empty())
        std::cout << " (" << store->path() << ")";
    std::cout << "\n";
    return res;
}

std::vector<std::size_t>
indicesOf(const MatrixResult &matrix,
          const std::vector<std::string> &names)
{
    std::vector<std::size_t> idx;
    for (const auto &n : names) {
        // Skip benchmarks absent from quick-mode subsets.
        for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b)
            if (matrix.benchmarks[b] == n)
                idx.push_back(b);
    }
    return idx;
}

void
printRanking(const std::string &title, const MatrixResult &matrix,
             const std::vector<std::size_t> &subset)
{
    const auto ranking = rankMechanisms(matrix, subset);
    Table t(title);
    t.header({"rank", "mechanism", "avg speedup"});
    for (const auto &e : ranking)
        t.row({std::to_string(e.rank), e.mechanism,
               Table::num(e.avg_speedup, 4)});
    t.print(std::cout);
}

} // namespace microlib::bench
