/**
 * @file
 * Table 6 — Which mechanism can win with N benchmarks?
 *
 * Paper claims: enumerating *every* benchmark subset shows that for
 * any selection of up to 23 benchmarks there is more than one
 * possible winner; weak-on-average mechanisms win surprisingly large
 * selections (FVC up to 12 benchmarks, Markov up to 9 thanks to
 * gzip/ammp) — cherry-picking can crown almost anything.
 */

#include <iostream>

#include "common.hh"
#include "core/subset_winners.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Table 6: subset winners",
        "for N <= ~23 benchmarks more than one mechanism can be made "
        "the winner by selection");

    RunConfig cfg;
    const MatrixResult matrix =
        loadOrRun(engine(), "default_matrix", mechanismSet(), benchmarkSet(),
                  cfg);

    // Speedup matrix (Base included with speedup 1.0 everywhere).
    std::vector<std::vector<double>> speedup(
        matrix.mechanisms.size(),
        std::vector<double>(matrix.benchmarks.size(), 1.0));
    for (std::size_t m = 0; m < matrix.mechanisms.size(); ++m)
        for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b)
            speedup[m][b] = matrix.speedup(m, b);

    std::cout << "Enumerating all 2^" << matrix.benchmarks.size()
              << " - 1 subsets (Gray-code sweep)...\n";
    const auto can_win = subsetWinners(speedup);

    Table t("Table 6: can mechanism M win an N-benchmark selection?");
    std::vector<std::string> header = {"N"};
    for (const auto &m : matrix.mechanisms)
        header.push_back(m);
    t.header(header);
    for (std::size_t n = 1; n < can_win.size(); ++n) {
        std::vector<std::string> row = {std::to_string(n)};
        for (std::size_t m = 0; m < matrix.mechanisms.size(); ++m)
            row.push_back(can_win[n][m] ? "x" : ".");
        t.row(row);
    }
    t.print(std::cout);

    // Largest N at which more than one winner exists.
    std::size_t last_multi = 0;
    for (std::size_t n = 1; n < can_win.size(); ++n) {
        unsigned winners = 0;
        for (const bool w : can_win[n])
            winners += w ? 1 : 0;
        if (winners > 1)
            last_multi = n;
    }
    std::cout << "\nMore than one possible winner up to N = "
              << last_multi << " (paper: 23 of 26).\n";
    return 0;
}
