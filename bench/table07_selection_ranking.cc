/**
 * @file
 * Table 7 — Influence of benchmark selection on ranking.
 *
 * Paper claims: under the DBCP article's selection DBCP jumps from
 * rank 9 to rank 3, while GHB actually performs *better* on all 26
 * benchmarks than on its own article's selection, where SP overtakes
 * it.
 */

#include <iostream>

#include "common.hh"
#include "core/selections.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Table 7: article benchmark selections",
        "rankings under the full suite vs the DBCP/GHB article "
        "selections disagree");

    RunConfig cfg;
    const MatrixResult matrix =
        loadOrRun(engine(), "default_matrix", mechanismSet(), benchmarkSet(),
                  cfg);

    const auto dbcp_sel = indicesOf(matrix, dbcpSelection());
    const auto ghb_sel = indicesOf(matrix, ghbSelection());

    const auto rank_all = rankMechanisms(matrix);
    const auto rank_dbcp = rankMechanisms(matrix, dbcp_sel);
    const auto rank_ghb = rankMechanisms(matrix, ghb_sel);

    Table t("Table 7: rank per benchmark selection");
    t.header({"mechanism", "26 benchmarks", "DBCP selection",
              "GHB selection"});
    for (const auto &name : matrix.mechanisms)
        t.row({name, std::to_string(rankOf(rank_all, name)),
               std::to_string(rankOf(rank_dbcp, name)),
               std::to_string(rankOf(rank_ghb, name))});
    t.print(std::cout);

    std::cout << "\nDBCP: rank " << rankOf(rank_all, "DBCP")
              << " on the full suite vs " << rankOf(rank_dbcp, "DBCP")
              << " on its own selection (paper: 9 -> 3).\n";
    std::cout << "GHB vs SP on GHB's selection: GHB "
              << rankOf(rank_ghb, "GHB") << ", SP "
              << rankOf(rank_ghb, "SP")
              << " (paper: SP overtakes GHB there).\n";
    return 0;
}
