/**
 * @file
 * Figure 4 — Average IPC speedup of all mechanisms, 26 benchmarks.
 *
 * Paper claims:
 *  - GHB (2004) is the best performer, SP (1992!) second, TK third;
 *  - plain old TP performs "quite well";
 *  - FVC looks worse under IPC than under its article's miss-ratio
 *    metric; CDP is poor on average but helps twolf (1.07) and
 *    equake (1.11) while sinking mcf (0.75);
 *  - progress over 1990-2004 has been anything but regular.
 */

#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 4: average IPC speedup ranking",
        "GHB best, SP second, TK strong, TP surprisingly good; CDP "
        "poor on average yet helps pointer codes");

    RunConfig cfg;
    const MatrixResult matrix =
        loadOrRun(engine(), "default_matrix", mechanismSet(), benchmarkSet(),
                  cfg);

    printRanking("Average speedup over all benchmarks (Figure 4)",
                 matrix);

    // The per-benchmark cases the paper singles out.
    Table cases("Paper case studies");
    cases.header({"benchmark", "mechanism", "speedup", "paper"});
    struct CaseStudy
    {
        const char *bench;
        const char *mech;
        const char *paper;
    };
    const CaseStudy studies[] = {
        {"twolf", "CDP", "1.07 (pointer structures helped)"},
        {"equake", "CDP", "1.11 (pointer structures helped)"},
        {"mcf", "CDP", "0.75 (useless prefetch flood)"},
        {"ammp", "CDP", "<1 (next pointer 88B down, missed)"},
        {"gzip", "Markov", "best mechanism on gzip"},
        {"ammp", "Markov", "best mechanism on ammp"},
    };
    for (const auto &s : studies) {
        bool have = false;
        for (const auto &b : matrix.benchmarks)
            if (b == s.bench)
                have = true;
        if (!have)
            continue;
        const std::size_t m = matrix.mechIndex(s.mech);
        const std::size_t b = matrix.benchIndex(s.bench);
        cases.row({s.bench, s.mech, Table::num(matrix.speedup(m, b), 3),
                   s.paper});
    }
    cases.print(std::cout);

    // Full speedup matrix for reference.
    Table full("Speedup per benchmark (rows) and mechanism (cols)");
    std::vector<std::string> header = {"benchmark"};
    for (std::size_t m = 1; m < matrix.mechanisms.size(); ++m)
        header.push_back(matrix.mechanisms[m]);
    full.header(header);
    for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b) {
        std::vector<std::string> row = {matrix.benchmarks[b]};
        for (std::size_t m = 1; m < matrix.mechanisms.size(); ++m)
            row.push_back(Table::num(matrix.speedup(m, b), 3));
        full.row(row);
    }
    full.print(std::cout);
    return 0;
}
