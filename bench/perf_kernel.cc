/**
 * @file
 * Simulator-kernel micro-benchmarks (engineering health, not a paper
 * figure): throughput of the cache model, DRAM model, trace
 * generator and the full simulation loop, via google-benchmark.
 *
 * The binary records the perf trajectory: unless the caller passes
 * --benchmark_out, results are written as JSON to BENCH_kernel.json
 * (override the path with MICROLIB_BENCH_OUT). Allocation-sensitive
 * benchmarks report an `allocs_per_iter` counter measured through an
 * instrumented global operator new, so "the miss path never
 * heap-allocates" is an asserted number, not a code-review claim.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/baseline_config.hh"
#include "core/registry.hh"
#include "core/scheduler.hh"
#include "cpu/lockstep.hh"
#include "cpu/ooo_core.hh"
#include "mem/const_memory.hh"
#include "mem/hierarchy.hh"
#include "sim/random.hh"
#include "trace/generator.hh"
#include "trace/spec_suite.hh"
#include "trace/trace_arena.hh"
#include "trace/window.hh"

using namespace microlib;

// ---------------------------------------------------------------------
// Allocation instrumentation: every path through global operator new
// bumps a thread-local counter. Benchmarks snapshot the counter around
// their measurement loop to report allocations per iteration.

namespace
{
thread_local std::uint64_t t_alloc_count = 0;

void *
countedAlloc(std::size_t size)
{
    ++t_alloc_count;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++t_alloc_count;
    if (void *p = std::aligned_alloc(align, ((size + align - 1) / align) * align))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams p;
    p.name = "bm";
    p.size = 32 * 1024;
    p.line = 32;
    p.assoc = 1;
    Cache cache(p, nullptr, nullptr);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        MemRequest req;
        req.addr = rng.nextBounded(1 << 20) * 8;
        req.kind = AccessKind::DemandRead;
        req.when = ++t;
        benchmark::DoNotOptimize(cache.access(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_CacheInstall(benchmark::State &state)
{
    // Every access conflicts in one set of a 4-way cache: miss,
    // evict a dirty victim, write it back, install — the complete
    // miss path. The allocs_per_iter counter must read 0.000: the
    // occupancy-mask victim(), the hoisted writeback request and the
    // fixed MSHR/port schedules leave nothing to heap-allocate.
    CacheParams p;
    p.name = "bm_install";
    p.size = 32 * 1024;
    p.line = 32;
    p.assoc = 4;
    ConstMemory mem(70);
    Cache cache(p, &mem, nullptr);
    const std::uint64_t set_stride = p.line * cache.sets();

    MemRequest req;
    req.kind = AccessKind::DemandWrite; // dirty installs -> writebacks
    std::uint64_t i = 0;
    Cycle t = 0;
    // Mark the counter at iteration boundaries so the delta covers
    // exactly the measured accesses, not the harness's own loop
    // bookkeeping (which allocates at teardown).
    std::uint64_t start_allocs = 0, end_allocs = 0;
    std::uint64_t counted_iters = 0;
    bool first = true;
    for (auto _ : state) {
        if (first) {
            start_allocs = end_allocs = t_alloc_count;
            first = false;
        } else {
            end_allocs = t_alloc_count;
            ++counted_iters;
        }
        req.addr = (i++ % 16) * set_stride; // 16 tags, 4 ways: all miss
        req.when = (t += 100);
        benchmark::DoNotOptimize(cache.access(req));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["allocs_per_iter"] =
        counted_iters ? static_cast<double>(end_allocs - start_allocs) /
                            static_cast<double>(counted_iters)
                      : 0.0;
}
BENCHMARK(BM_CacheInstall);

/** Minimal client: one virtual hop, the cost under measurement. */
struct CountingClient final : public HierarchyClient
{
    std::uint64_t events = 0;

    void
    cacheAccess(CacheLevel, const MemRequest &, bool, bool) override
    {
        ++events;
    }
};

void
BM_HookDispatch(benchmark::State &state)
{
    // Pure hit stream through the L1 demand path. Arg(0) runs with no
    // client bound (the shim's null check folds to nothing); Arg(1)
    // binds a client, adding the single devirtualized-shim-to-client
    // call per access that replaced the seed's two-deep virtual chain.
    CacheParams p;
    p.name = "bm_hooks";
    p.size = 32 * 1024;
    p.line = 32;
    p.assoc = 1;
    Cache cache(p, nullptr, nullptr);
    CountingClient client;
    if (state.range(0))
        cache.bindClient(&client, CacheLevel::L1D, nullptr);

    // Warm every line once so the measured loop only hits.
    MemRequest req;
    req.kind = AccessKind::DemandRead;
    for (std::uint64_t a = 0; a < p.size; a += p.line) {
        req.addr = a;
        cache.access(req);
    }
    std::uint64_t i = 0;
    Cycle t = 0;
    for (auto _ : state) {
        req.addr = (i++ % 1024) * p.line;
        req.when = (t += 4);
        benchmark::DoNotOptimize(cache.access(req));
    }
    state.SetItemsProcessed(state.iterations());
    if (state.range(0))
        benchmark::DoNotOptimize(client.events);
}
BENCHMARK(BM_HookDispatch)->Arg(0)->Arg(1);

void
BM_SdramAccess(benchmark::State &state)
{
    SdramParams p;
    Bus fsb(BusParams{"bm_fsb", 64, 5});
    Sdram dram(p, &fsb);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        MemRequest req;
        req.addr = rng.nextBounded(1 << 22) * 64;
        req.kind = AccessKind::DemandRead;
        req.when = (t += 50);
        benchmark::DoNotOptimize(dram.access(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SdramAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    SpecGenerator gen(specProgram("swim"));
    TraceRecord rec;
    for (auto _ : state) {
        gen.next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSimulation(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);
    const BaselineConfig cfg = makeBaseline();
    for (auto _ : state) {
        Hierarchy hier(cfg.hier, trace.image);
        OoOCore core(cfg.core);
        benchmark::DoNotOptimize(core.run(trace.view(), hier));
    }
    state.SetItemsProcessed(state.iterations() * window.length);
}
BENCHMARK(BM_FullSimulation);

// --- AoS seed loop vs the SoA block loop, same trace, same host. ---
//
// BM_TraceAoSRun drives the preserved record-at-a-time reference loop
// over the AoS records; BM_TraceViewRun drives the block-based SoA
// hot path over the prebuilt TraceView. items_per_second is
// instructions simulated per second; the ratio of the two is the
// hot-path speedup and both land in BENCH_kernel.json, so the perf
// trajectory records it per commit.

void
BM_TraceAoSRun(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);
    const BaselineConfig cfg = makeBaseline();
    for (auto _ : state) {
        Hierarchy hier(cfg.hier, trace.image);
        OoOCore core(cfg.core);
        benchmark::DoNotOptimize(
            core.runReference(trace.records, hier));
    }
    state.SetItemsProcessed(state.iterations() * window.length);
}
BENCHMARK(BM_TraceAoSRun);

void
BM_TraceViewRun(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);
    const BaselineConfig cfg = makeBaseline();
    bool counted = false;
    for (auto _ : state) {
        Hierarchy hier(cfg.hier, trace.image);
        OoOCore core(cfg.core);
        // run_allocs counts heap activity of one full 200k-record
        // run() call (hierarchy/core construction excluded): the SoA
        // loop and the miss path beneath it should report 0.
        const std::uint64_t before = t_alloc_count;
        benchmark::DoNotOptimize(core.run(trace.view(), hier));
        if (!counted) {
            state.counters["run_allocs"] =
                static_cast<double>(t_alloc_count - before);
            counted = true;
        }
    }
    state.SetItemsProcessed(state.iterations() * window.length);
}
BENCHMARK(BM_TraceViewRun);

// --- Lockstep multi-variant execution: V cores, one trace pass. ---
//
// BM_LockstepVariants/V advances V independent baseline cores over
// the same 200k-record trace in one LockstepGroup::run() pass — one
// block loop, V state machines per block. items_per_second counts
// instructions across all V members, so dividing by BM_TraceViewRun's
// items_per_second gives the lockstep throughput gain over V
// independent passes (the locality win of touching each trace block
// once while it is hot in cache). V=1 is the degenerate group; the
// sweep path uses it only when a group has a single pending variant.

void
BM_LockstepVariants(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);
    const BaselineConfig cfg = makeBaseline();
    const auto variants = static_cast<std::size_t>(state.range(0));
    bool counted = false;
    for (auto _ : state) {
        // deque, not vector: Hierarchy is pinned (caches hold
        // pointers into it), and deque growth never relocates.
        std::deque<Hierarchy> hiers;
        std::deque<OoOCore> cores;
        LockstepGroup group;
        for (std::size_t v = 0; v < variants; ++v) {
            hiers.emplace_back(cfg.hier, trace.image);
            cores.emplace_back(cfg.core);
            group.add(cores.back(), hiers.back());
        }
        // run_allocs counts heap activity of one full lockstep pass
        // (setup excluded): the block loop must stay allocation-free
        // for any group size — CI asserts this reads 0.
        const std::uint64_t before = t_alloc_count;
        group.run(trace.view());
        if (!counted) {
            state.counters["run_allocs"] =
                static_cast<double>(t_alloc_count - before);
            counted = true;
        }
        benchmark::DoNotOptimize(group.result(variants - 1));
    }
    state.SetItemsProcessed(state.iterations() * window.length *
                            variants);
}
BENCHMARK(BM_LockstepVariants)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Trace arena: cold generation vs warm mmap'd load. ---
//
// BM_TraceArenaColdWarm/0 materializes a 200k-record window from
// scratch every iteration (the cold path every process used to pay);
// /1 loads the same window from a pre-published arena file — open,
// mmap, validate checksum, rebuild the image, borrow the columns.
// items_per_second of /1 over /0 is the warm-start speedup CI tracks
// (it must stay >= 5x). The warm case also reports run_allocs of one
// full simulated run over the *mapped* columns: the borrowed-span
// hot path must stay allocation-free exactly like the owned one.

void
BM_TraceArenaColdWarm(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const std::string key = "bench-arena-key";
    const bool warm = state.range(0) != 0;
    const BaselineConfig cfg = makeBaseline();
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "microlib_bench_arena")
            .string();

    if (warm) {
        std::filesystem::remove_all(dir);
        TraceArena setup(dir);
        setup.publish(key, materialize(specProgram("crafty"), window));
    }
    TraceArena arena(dir);

    bool counted = false;
    for (auto _ : state) {
        if (warm) {
            auto trace = arena.tryLoad(key);
            if (!trace) {
                state.SkipWithError("arena load failed");
                break;
            }
            benchmark::DoNotOptimize(trace->view().pc);
            if (!counted) {
                counted = true;
                state.PauseTiming();
                Hierarchy hier(cfg.hier, trace->image);
                OoOCore core(cfg.core);
                const std::uint64_t before = t_alloc_count;
                benchmark::DoNotOptimize(
                    core.run(trace->view(), hier));
                state.counters["run_allocs"] =
                    static_cast<double>(t_alloc_count - before);
                state.ResumeTiming();
            }
        } else {
            const MaterializedTrace trace =
                materialize(specProgram("crafty"), window);
            benchmark::DoNotOptimize(trace.view().pc);
        }
    }
    state.SetItemsProcessed(state.iterations() * window.length);
}
BENCHMARK(BM_TraceArenaColdWarm)->Arg(0)->Arg(1);

// --- Matrix scheduling: per-benchmark barrier vs the engine. ---
//
// The two benchmarks below sweep the same small matrix. The first
// reproduces the pre-engine runMatrix(): materialize one benchmark,
// spawn a thread team over the mechanisms, join (a full barrier),
// repeat. The second uses the ExperimentEngine's single work queue
// and persistent pool. On a multi-core host the barrier version
// leaves workers idle at the tail of every benchmark; the engine
// version does not.

const std::vector<std::string> matrix_mechs = {"Base", "TP", "SP",
                                               "GHB"};
const std::vector<std::string> matrix_benchs = {"swim", "mcf",
                                                "crafty", "gzip"};

RunConfig
matrixConfig()
{
    RunConfig cfg;
    cfg.selection = TraceSelection::Arbitrary;
    cfg.scale.arbitrary_skip = 0;
    cfg.scale.arbitrary_length = 100'000;
    return cfg;
}

/** The old runMatrix() loop: fresh team + barrier per benchmark. */
MatrixResult
runMatrixBarrier(const std::vector<std::string> &mechanisms,
                 const std::vector<std::string> &benchmarks,
                 const RunConfig &cfg, unsigned threads)
{
    MatrixResult res;
    res.mechanisms = mechanisms;
    res.benchmarks = benchmarks;
    res.ipc.assign(mechanisms.size(),
                   std::vector<double>(benchmarks.size(), 0.0));
    res.outputs.assign(mechanisms.size(),
                       std::vector<RunOutput>(benchmarks.size()));
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const MaterializedTrace trace =
            materializeFor(benchmarks[b], cfg);
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t m =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (m >= mechanisms.size())
                    return;
                RunOutput out = runOne(trace, mechanisms[m], cfg);
                res.ipc[m][b] = out.core.ipc;
                res.outputs[m][b] = std::move(out);
            }
        };
        std::vector<std::thread> team;
        for (unsigned t = 1; t < threads; ++t)
            team.emplace_back(worker);
        worker();
        for (auto &t : team)
            t.join();
    }
    return res;
}

void
BM_MatrixBarrier(benchmark::State &state)
{
    const RunConfig cfg = matrixConfig();
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(runMatrixBarrier(
            matrix_mechs, matrix_benchs, cfg, threads));
    state.SetItemsProcessed(state.iterations() * matrix_mechs.size() *
                            matrix_benchs.size());
}
BENCHMARK(BM_MatrixBarrier)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_MatrixEngine(benchmark::State &state)
{
    const RunConfig cfg = matrixConfig();
    EngineOptions opts;
    opts.threads = static_cast<unsigned>(state.range(0));
    opts.keep_traces = false; // same memory profile as the barrier
    ExperimentEngine engine(opts);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.run(matrix_mechs, matrix_benchs, cfg));
    state.SetItemsProcessed(state.iterations() * matrix_mechs.size() *
                            matrix_benchs.size());
}
BENCHMARK(BM_MatrixEngine)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Not BENCHMARK_MAIN(): unless the caller chose an output file, the
// run is recorded to BENCH_kernel.json (JSON) so every invocation —
// local or CI — appends a point to the tracked perf trajectory.
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        // Exact flag only: --benchmark_out_format alone must not
        // suppress the default output file.
        if (arg == "--benchmark_out" ||
            arg.rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    }
    std::string out_flag, fmt_flag;
    if (!has_out) {
        const char *path = std::getenv("MICROLIB_BENCH_OUT");
        out_flag = std::string("--benchmark_out=") +
                   (path ? path : "BENCH_kernel.json");
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    // The stock library_build_type context key reflects how
    // *libbenchmark* was compiled (the distro package ships without
    // NDEBUG, so it always says "debug"). Numbers depend on how
    // *this* binary was compiled, so stamp that under a distinct
    // name: emitting a duplicate library_build_type made the JSON
    // ambiguous (duplicate keys, parser-dependent winner). CI rejects
    // a BENCH_kernel.json whose microlib_build_type is not "release".
#ifdef NDEBUG
    benchmark::AddCustomContext("microlib_build_type", "release");
#else
    benchmark::AddCustomContext("microlib_build_type", "debug");
#endif
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
