/**
 * @file
 * Simulator-kernel micro-benchmarks (engineering health, not a paper
 * figure): throughput of the cache model, DRAM model, trace
 * generator and the full simulation loop, via google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/baseline_config.hh"
#include "core/registry.hh"
#include "core/scheduler.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "sim/random.hh"
#include "trace/generator.hh"
#include "trace/spec_suite.hh"
#include "trace/window.hh"

using namespace microlib;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams p;
    p.name = "bm";
    p.size = 32 * 1024;
    p.line = 32;
    p.assoc = 1;
    Cache cache(p, nullptr, nullptr);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        MemRequest req;
        req.addr = rng.nextBounded(1 << 20) * 8;
        req.kind = AccessKind::DemandRead;
        req.when = ++t;
        benchmark::DoNotOptimize(cache.access(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_SdramAccess(benchmark::State &state)
{
    SdramParams p;
    Bus fsb(BusParams{"bm_fsb", 64, 5});
    Sdram dram(p, &fsb);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        MemRequest req;
        req.addr = rng.nextBounded(1 << 22) * 64;
        req.kind = AccessKind::DemandRead;
        req.when = (t += 50);
        benchmark::DoNotOptimize(dram.access(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SdramAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    SpecGenerator gen(specProgram("swim"));
    TraceRecord rec;
    for (auto _ : state) {
        gen.next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSimulation(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);
    const BaselineConfig cfg = makeBaseline();
    for (auto _ : state) {
        Hierarchy hier(cfg.hier, trace.image);
        OoOCore core(cfg.core);
        benchmark::DoNotOptimize(core.run(trace.records, hier));
    }
    state.SetItemsProcessed(state.iterations() * window.length);
}
BENCHMARK(BM_FullSimulation);

// --- Matrix scheduling: per-benchmark barrier vs the engine. ---
//
// The two benchmarks below sweep the same small matrix. The first
// reproduces the pre-engine runMatrix(): materialize one benchmark,
// spawn a thread team over the mechanisms, join (a full barrier),
// repeat. The second uses the ExperimentEngine's single work queue
// and persistent pool. On a multi-core host the barrier version
// leaves workers idle at the tail of every benchmark; the engine
// version does not.

const std::vector<std::string> matrix_mechs = {"Base", "TP", "SP",
                                               "GHB"};
const std::vector<std::string> matrix_benchs = {"swim", "mcf",
                                                "crafty", "gzip"};

RunConfig
matrixConfig()
{
    RunConfig cfg;
    cfg.selection = TraceSelection::Arbitrary;
    cfg.scale.arbitrary_skip = 0;
    cfg.scale.arbitrary_length = 100'000;
    return cfg;
}

/** The old runMatrix() loop: fresh team + barrier per benchmark. */
MatrixResult
runMatrixBarrier(const std::vector<std::string> &mechanisms,
                 const std::vector<std::string> &benchmarks,
                 const RunConfig &cfg, unsigned threads)
{
    MatrixResult res;
    res.mechanisms = mechanisms;
    res.benchmarks = benchmarks;
    res.ipc.assign(mechanisms.size(),
                   std::vector<double>(benchmarks.size(), 0.0));
    res.outputs.assign(mechanisms.size(),
                       std::vector<RunOutput>(benchmarks.size()));
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const MaterializedTrace trace =
            materializeFor(benchmarks[b], cfg);
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t m =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (m >= mechanisms.size())
                    return;
                RunOutput out = runOne(trace, mechanisms[m], cfg);
                res.ipc[m][b] = out.core.ipc;
                res.outputs[m][b] = std::move(out);
            }
        };
        std::vector<std::thread> team;
        for (unsigned t = 1; t < threads; ++t)
            team.emplace_back(worker);
        worker();
        for (auto &t : team)
            t.join();
    }
    return res;
}

void
BM_MatrixBarrier(benchmark::State &state)
{
    const RunConfig cfg = matrixConfig();
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(runMatrixBarrier(
            matrix_mechs, matrix_benchs, cfg, threads));
    state.SetItemsProcessed(state.iterations() * matrix_mechs.size() *
                            matrix_benchs.size());
}
BENCHMARK(BM_MatrixBarrier)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_MatrixEngine(benchmark::State &state)
{
    const RunConfig cfg = matrixConfig();
    EngineOptions opts;
    opts.threads = static_cast<unsigned>(state.range(0));
    opts.keep_traces = false; // same memory profile as the barrier
    ExperimentEngine engine(opts);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.run(matrix_mechs, matrix_benchs, cfg));
    state.SetItemsProcessed(state.iterations() * matrix_mechs.size() *
                            matrix_benchs.size());
}
BENCHMARK(BM_MatrixEngine)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
