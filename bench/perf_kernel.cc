/**
 * @file
 * Simulator-kernel micro-benchmarks (engineering health, not a paper
 * figure): throughput of the cache model, DRAM model, trace
 * generator and the full simulation loop, via google-benchmark.
 */

#include <benchmark/benchmark.h>

#include "core/baseline_config.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "sim/random.hh"
#include "trace/generator.hh"
#include "trace/spec_suite.hh"
#include "trace/window.hh"

using namespace microlib;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams p;
    p.name = "bm";
    p.size = 32 * 1024;
    p.line = 32;
    p.assoc = 1;
    Cache cache(p, nullptr, nullptr);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        MemRequest req;
        req.addr = rng.nextBounded(1 << 20) * 8;
        req.kind = AccessKind::DemandRead;
        req.when = ++t;
        benchmark::DoNotOptimize(cache.access(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_SdramAccess(benchmark::State &state)
{
    SdramParams p;
    Bus fsb(BusParams{"bm_fsb", 64, 5});
    Sdram dram(p, &fsb);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        MemRequest req;
        req.addr = rng.nextBounded(1 << 22) * 64;
        req.kind = AccessKind::DemandRead;
        req.when = (t += 50);
        benchmark::DoNotOptimize(dram.access(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SdramAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    SpecGenerator gen(specProgram("swim"));
    TraceRecord rec;
    for (auto _ : state) {
        gen.next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSimulation(benchmark::State &state)
{
    const TraceWindow window{0, 200'000};
    const MaterializedTrace trace =
        materialize(specProgram("crafty"), window);
    const BaselineConfig cfg = makeBaseline();
    for (auto _ : state) {
        Hierarchy hier(cfg.hier, trace.image);
        OoOCore core(cfg.core);
        benchmark::DoNotOptimize(core.run(trace.records, hier));
    }
    state.SetItemsProcessed(state.iterations() * window.length);
}
BENCHMARK(BM_FullSimulation);

} // namespace

BENCHMARK_MAIN();
