/**
 * @file
 * Figure 5 — Power and cost (area) ratios per mechanism.
 *
 * Paper claims:
 *  - Markov and DBCP are very expensive (megabyte tables);
 *  - TP, SP and GHB are nearly free in area;
 *  - GHB is nonetheless power-hungry: each miss can trigger up to 4
 *    requests and repeated table walks;
 *  - factoring cost and power, SP is the best overall trade-off,
 *    with TK and TP close.
 */

#include <iostream>

#include "common.hh"
#include "cost/mechanism_cost.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 5: power and cost ratios",
        "Markov/DBCP huge area; TP/SP/GHB tiny; GHB power-hungry "
        "from activity; SP the best overall trade-off");

    RunConfig cfg;
    const MatrixResult matrix =
        loadOrRun(engine(), "default_matrix", mechanismSet(), benchmarkSet(),
                  cfg);
    const std::size_t base_m = matrix.mechIndex("Base");

    Table t("Area and power ratios (relative to base cache hierarchy)");
    t.header({"mechanism", "area ratio", "power ratio",
              "avg speedup"});

    for (std::size_t m = 0; m < matrix.mechanisms.size(); ++m) {
        if (m == base_m)
            continue;
        // Aggregate energy over all benchmarks; hardware specs are
        // identical per benchmark, so rebuild them from a bound
        // mechanism instance once.
        double area_ratio = 0.0;
        double power_num = 0.0, power_den = 0.0;
        for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b) {
            RunOutput mech_run = matrix.outputs[m][b];
            const RunOutput &base_run = matrix.outputs[base_m][b];
            if (mech_run.hardware.empty()) {
                // Runs resumed from the result store do not carry
                // hardware specs (see result_store.hh): rebuild.
                auto mech =
                    makeMechanism(matrix.mechanisms[m], cfg.mech);
                MaterializedTrace dummy; // hierarchy only needs params
                Hierarchy hier(cfg.system.hier, nullptr);
                mech->bind(hier);
                mech_run.hardware = mech->hardware();
            }
            const CostReport rep =
                computeCost(mech_run, base_run, cfg.system);
            area_ratio = rep.area_ratio; // identical across benchmarks
            power_num += rep.power_ratio;
            power_den += 1.0;
        }
        t.row({matrix.mechanisms[m], Table::num(area_ratio, 4),
               Table::num(power_num / power_den, 3),
               Table::num(matrix.avgSpeedup(m), 4)});
    }
    t.print(std::cout);

    std::cout << "\nPaper: Markov/DBCP area-dominant; GHB cheap in "
                 "area but power-greedy; SP/TP efficient.\n";
    return 0;
}
