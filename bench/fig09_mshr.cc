/**
 * @file
 * Figure 9 — Effect of cache model accuracy (finite vs infinite
 * MSHR).
 *
 * Paper claims: the miss address file size has a limited but
 * sometimes peculiar effect — several mechanisms perform *better*
 * with a finite MSHR (TCP loses to TK only with the finite one,
 * because a full MSHR stalls the cache, leaving the bus idle for the
 * L1-side TK to use), and it can change the ranking.
 */

#include <iostream>

#include "common.hh"

using namespace microlib;
using namespace microlib::bench;

int
main()
{
    printExperimentBanner(
        std::cout, "Figure 9: finite vs infinite MSHR",
        "an idealized (infinite) miss address file shifts speedups "
        "and can invert rankings (TCP vs TK)");

    const auto mechs = mechanismSet();
    const auto benchs = benchmarkSet();

    RunConfig finite; // Table 1 default: 8 MSHRs x 4 reads

    RunConfig infinite;
    infinite.system.hier.l1d.finite_mshr = false;
    infinite.system.hier.l1i.finite_mshr = false;
    infinite.system.hier.l2.finite_mshr = false;

    const MatrixResult m_fin =
        loadOrRun(engine(), "default_matrix", mechs, benchs, finite);
    const MatrixResult m_inf =
        loadOrRun(engine(), "infinite_mshr_matrix", mechs, benchs, infinite);

    Table t("Average speedup: finite vs infinite MSHR");
    t.header({"mechanism", "finite", "infinite", "delta %"});
    for (std::size_t m = 0; m < mechs.size(); ++m) {
        if (mechs[m] == "Base")
            continue;
        const double f = m_fin.avgSpeedup(m);
        const double i = m_inf.avgSpeedup(m);
        t.row({mechs[m], Table::num(f, 4), Table::num(i, 4),
               Table::num(100.0 * (f - i) / i, 2)});
    }
    t.print(std::cout);

    const auto rank_f = rankMechanisms(m_fin);
    const auto rank_i = rankMechanisms(m_inf);
    Table flips("Rank: finite vs infinite MSHR");
    flips.header({"mechanism", "finite", "infinite"});
    for (const auto &name : mechs)
        flips.row({name, std::to_string(rankOf(rank_f, name)),
                   std::to_string(rankOf(rank_i, name))});
    flips.print(std::cout);

    std::cout << "\nPaper focus: TCP outperforms TK with an infinite "
                 "MSHR but not with a finite one. Here: TK rank "
              << rankOf(rank_f, "TK") << " vs TCP rank "
              << rankOf(rank_f, "TCP") << " (finite); TK "
              << rankOf(rank_i, "TK") << " vs TCP "
              << rankOf(rank_i, "TCP") << " (infinite).\n";
    return 0;
}
