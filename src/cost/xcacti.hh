/**
 * @file
 * Analytical SRAM access energy model (the XCACTI stand-in).
 *
 * The paper evaluates power with XCACTI; Figure 5 reports the
 * *relative power increase* of each mechanism over the base cache
 * hierarchy. Dynamic energy per access scales roughly with the
 * square root of the array size (bitline/wordline lengths), with
 * associativity and port overheads. Off-chip (DRAM) power is
 * excluded, as in the paper (its footnote 4).
 */

#ifndef MICROLIB_COST_XCACTI_HH
#define MICROLIB_COST_XCACTI_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Dynamic energy per access, nJ. */
double accessEnergyNj(const SramSpec &spec);

/** Energy for a cache access given geometry. */
double cacheAccessEnergyNj(std::uint64_t size_bytes, unsigned assoc,
                           unsigned ports);

} // namespace microlib

#endif // MICROLIB_COST_XCACTI_HH
