#include "cost/cacti.hh"

#include <cmath>

#include "sim/logging.hh"

namespace microlib
{

namespace
{

/** 130 nm 6T SRAM cell area, mm^2 per bit (CACTI-era ballpark). */
constexpr double sram_cell_mm2_per_bit = 2.0e-6;

/** CAM cells (fully associative tags) are roughly 2x larger. */
constexpr double cam_factor = 2.0;

double
portFactor(unsigned ports)
{
    // Each extra port adds a wordline and bitline pair: area grows
    // close to quadratically in the port count for small counts.
    const double p = static_cast<double>(ports);
    return 0.5 + 0.5 * p * p / (1.0 + 0.3 * (p - 1.0));
}

double
assocFactor(unsigned assoc)
{
    if (assoc == 0)
        return cam_factor; // fully associative
    // Comparators and multiplexing overhead per way.
    return 1.0 + 0.08 * std::log2(static_cast<double>(assoc));
}

} // namespace

double
sramAreaMm2(const SramSpec &spec)
{
    if (spec.bytes == 0)
        return 0.0;
    const double bits = static_cast<double>(spec.bytes) * 8.0;
    return bits * sram_cell_mm2_per_bit * assocFactor(spec.assoc) *
           portFactor(spec.ports);
}

double
totalAreaMm2(const std::vector<SramSpec> &specs)
{
    double sum = 0.0;
    for (const auto &s : specs)
        sum += sramAreaMm2(s);
    return sum;
}

double
cacheAreaMm2(std::uint64_t size_bytes, std::uint64_t line_bytes,
             unsigned assoc, unsigned ports, std::uint64_t addr_bits)
{
    if (line_bytes == 0)
        fatal("cacheAreaMm2: zero line size");
    // Data array + tag array (tag, valid, dirty per line).
    const std::uint64_t lines = size_bytes / line_bytes;
    const std::uint64_t tag_bits_per_line =
        addr_bits - floorLog2(line_bytes) + 2;
    SramSpec data{"data", size_bytes, assoc == 0 ? 1u : assoc, ports};
    SramSpec tags{"tags", lines * tag_bits_per_line / 8,
                  assoc == 0 ? 1u : assoc, ports};
    return sramAreaMm2(data) + sramAreaMm2(tags);
}

} // namespace microlib
