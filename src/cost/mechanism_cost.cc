#include "cost/mechanism_cost.hh"

#include "cost/cacti.hh"
#include "cost/xcacti.hh"

namespace microlib
{

namespace
{

/** On-chip dynamic energy of a run, nJ. */
double
runEnergyNj(const RunOutput &run, const BaselineConfig &system)
{
    const auto &l1 = system.hier.l1d;
    const auto &l2 = system.hier.l2;

    const double e_l1 =
        cacheAccessEnergyNj(l1.size, l1.assoc, l1.ports);
    const double e_l2 =
        cacheAccessEnergyNj(l2.size, l2.assoc, l2.ports);

    double energy = 0.0;
    energy += e_l1 * (run.stat("l1d.demand_accesses") +
                      run.stat("l1d.side_fills"));
    energy += e_l2 * (run.stat("l2.demand_accesses") +
                      run.stat("l2.prefetch_accesses") +
                      run.stat("l2.writebacks"));

    // Mechanism structures: per-access energy x activity.
    if (!run.hardware.empty()) {
        double e_mech = 0.0;
        for (const auto &hw : run.hardware)
            e_mech += accessEnergyNj(hw);
        const std::string prefix = "mech." + run.mechanism;
        const double activity = run.stat(prefix + ".table_reads") +
                                run.stat(prefix + ".table_writes");
        energy += e_mech * activity;

        // Prefetch traffic costs additional L1/L2 array energy on
        // fills even when it does not show as demand accesses.
        energy += e_l2 * run.stat(prefix + ".prefetches_issued");
    }
    return energy;
}

} // namespace

CostReport
computeCost(const RunOutput &mech_run, const RunOutput &base_run,
            const BaselineConfig &system)
{
    CostReport rep;

    const auto &l1 = system.hier.l1d;
    const auto &l2 = system.hier.l2;
    rep.base_area_mm2 =
        cacheAreaMm2(l1.size, l1.line, l1.assoc, l1.ports) +
        cacheAreaMm2(l2.size, l2.line, l2.assoc, l2.ports);
    rep.mechanism_area_mm2 = totalAreaMm2(mech_run.hardware);
    rep.area_ratio = rep.mechanism_area_mm2 / rep.base_area_mm2;

    const double base_energy = runEnergyNj(base_run, system);
    const double mech_energy = runEnergyNj(mech_run, system);
    rep.power_ratio =
        base_energy > 0.0 ? mech_energy / base_energy : 1.0;
    return rep;
}

} // namespace microlib
