/**
 * @file
 * Per-mechanism cost and power ratios (paper Figure 5).
 *
 * Cost: mechanism structure area relative to the base cache
 * hierarchy area (L1D + L2 arrays). Power: total on-chip dynamic
 * energy with the mechanism relative to the baseline run's energy —
 * this is where cheap-but-chatty GHB loses and table-heavy
 * Markov/DBCP pay twice (area-driven access energy plus activity).
 */

#ifndef MICROLIB_COST_MECHANISM_COST_HH
#define MICROLIB_COST_MECHANISM_COST_HH

#include "core/experiment.hh"

namespace microlib
{

/** Cost/power summary for one mechanism. */
struct CostReport
{
    double mechanism_area_mm2 = 0.0;
    double base_area_mm2 = 0.0;
    double area_ratio = 0.0;   ///< mechanism / base cache area
    double power_ratio = 1.0;  ///< run energy / baseline run energy
};

/**
 * @param mech_run run of the mechanism (provides hardware + activity)
 * @param base_run baseline run on the same trace (energy reference)
 * @param system system parameters (cache geometries)
 */
CostReport computeCost(const RunOutput &mech_run,
                       const RunOutput &base_run,
                       const BaselineConfig &system);

} // namespace microlib

#endif // MICROLIB_COST_MECHANISM_COST_HH
