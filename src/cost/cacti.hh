/**
 * @file
 * Analytical SRAM area model (the CACTI 3.2 stand-in).
 *
 * The paper evaluates mechanism cost with CACTI 3.2 and reports area
 * *ratios* relative to the base cache (Figure 5). CACTI itself is not
 * available offline, so this model reproduces the first-order scaling
 * CACTI exhibits: area grows linearly in bits, with multiplicative
 * overheads for associativity (comparators, extra tag width), port
 * count (wordlines/bitlines scale roughly quadratically in ports) and
 * full associativity (CAM cells). Constants are calibrated to a
 * 130 nm process, but only ratios matter for the reproduced figure.
 */

#ifndef MICROLIB_COST_CACTI_HH
#define MICROLIB_COST_CACTI_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Area in mm^2 of one SRAM/CAM structure. */
double sramAreaMm2(const SramSpec &spec);

/** Combined area of a structure list. */
double totalAreaMm2(const std::vector<SramSpec> &specs);

/** Area of a cache data+tag array given its geometry. */
double cacheAreaMm2(std::uint64_t size_bytes, std::uint64_t line_bytes,
                    unsigned assoc, unsigned ports,
                    std::uint64_t addr_bits = 32);

} // namespace microlib

#endif // MICROLIB_COST_CACTI_HH
