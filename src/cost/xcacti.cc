#include "cost/xcacti.hh"

#include <cmath>

namespace microlib
{

namespace
{

/** Calibration: ~0.5 nJ for a 32 KB direct-mapped single-port read
 *  (130 nm ballpark). */
constexpr double base_energy_nj = 0.5;
constexpr double base_bytes = 32.0 * 1024.0;

} // namespace

double
accessEnergyNj(const SramSpec &spec)
{
    if (spec.bytes == 0)
        return 0.0;
    const double size_factor =
        std::sqrt(static_cast<double>(spec.bytes) / base_bytes);
    // Fully associative structures probe every tag: energy scales
    // with the entry count rather than sqrt(size); approximate with
    // an extra factor.
    const double assoc_factor =
        spec.assoc == 0
            ? 2.5
            : 1.0 + 0.15 * std::log2(static_cast<double>(spec.assoc));
    const double port_factor = 1.0 + 0.2 * (spec.ports - 1.0);
    return base_energy_nj * size_factor * assoc_factor * port_factor;
}

double
cacheAccessEnergyNj(std::uint64_t size_bytes, unsigned assoc,
                    unsigned ports)
{
    SramSpec s{"cache", size_bytes, assoc, ports};
    return accessEnergyNj(s);
}

} // namespace microlib
