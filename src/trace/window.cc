#include "trace/window.hh"

#include "trace/trace_arena.hh"

namespace microlib
{

std::size_t
MaterializedTrace::footprintMappedBytes() const
{
    return mapping ? mapping->size() : 0;
}

MaterializedTrace
materialize(const SpecProgram &prog, const TraceWindow &window)
{
    SpecGenerator gen(prog);
    gen.skip(window.skip);

    MaterializedTrace out;
    out.benchmark = prog.name;
    out.window = window;
    out.records.resize(window.length);
    for (auto &rec : out.records)
        gen.next(rec);
    // Transpose once here so every consumer of the cached trace
    // shares one SoA build instead of paying per run.
    out.soa.build(out.records);

    // Snapshot the image by moving it out of the generator's reach:
    // materialize() owns the generator, so copying is unnecessary —
    // rebuild a shared image from the generator's final state.
    auto image = std::make_shared<MemoryImage>(gen.image());
    out.image = std::move(image);
    return out;
}

} // namespace microlib
