#include "trace/trace_view.hh"

namespace microlib
{

void
TraceSoA::build(const Trace &records)
{
    _borrowed = TraceView{};
    const std::size_t n = records.size();
    _pc.resize(n);
    _addr.resize(n);
    _value.resize(n);
    _op.resize(n);
    _dep1.resize(n);
    _dep2.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = records[i];
        _pc[i] = r.pc;
        _addr[i] = r.addr;
        _value[i] = r.value;
        _op[i] = r.op;
        _dep1[i] = r.dep1;
        _dep2[i] = r.dep2;
    }
}

void
TraceSoA::borrow(const TraceView &v)
{
    _pc.clear();
    _pc.shrink_to_fit();
    _addr.clear();
    _addr.shrink_to_fit();
    _value.clear();
    _value.shrink_to_fit();
    _op.clear();
    _op.shrink_to_fit();
    _dep1.clear();
    _dep1.shrink_to_fit();
    _dep2.clear();
    _dep2.shrink_to_fit();
    _borrowed = v;
}

TraceView
TraceSoA::view() const
{
    if (borrowed())
        return _borrowed;
    TraceView v;
    v.pc = _pc.data();
    v.addr = _addr.data();
    v.value = _value.data();
    v.op = _op.data();
    v.dep1 = _dep1.data();
    v.dep2 = _dep2.data();
    v.n = _op.size();
    return v;
}

} // namespace microlib
