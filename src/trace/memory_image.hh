/**
 * @file
 * Functional memory image.
 *
 * MicroLib's OoOSysC model "actually performs all computations" so its
 * caches can see real data values; this class provides the equivalent
 * for our trace-driven pipeline. Workload generators build their data
 * structures (linked lists, tables, arrays) in the image; loads read
 * real values, stores update them, and the hierarchy hands mechanisms
 * the true cache-line contents on refill (Content-Directed Prefetching
 * scans those words for pointers, the Frequent Value Cache compresses
 * them).
 *
 * Storage is sparse (4 KB pages, word granularity). Reads of untouched
 * words return a deterministic per-address hash so behaviour is
 * reproducible without initializing the full footprint.
 */

#ifndef MICROLIB_TRACE_MEMORY_IMAGE_HH
#define MICROLIB_TRACE_MEMORY_IMAGE_HH

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace microlib
{

/** Sparse word-granular memory with deterministic default contents. */
class MemoryImage
{
  public:
    static constexpr std::uint64_t page_bytes = 4096;
    static constexpr std::uint64_t words_per_page = page_bytes / 8;

    /** Read the 64-bit word containing @p addr (addr need not be
     *  aligned; it is truncated to the enclosing word). */
    Word read(Addr addr) const;

    /** Write the 64-bit word containing @p addr. */
    void write(Addr addr, Word value);

    /** True iff the word containing @p addr has been written. */
    bool touched(Addr addr) const;

    /** Copy the @p line_bytes-sized line containing @p addr into
     *  @p out (out must hold line_bytes / 8 words). */
    void readLine(Addr addr, std::uint64_t line_bytes,
                  std::vector<Word> &out) const;

    /** Number of allocated pages (footprint tracking for tests). */
    std::size_t allocatedPages() const { return _pages.size(); }

    /** Deterministic content of an untouched word. */
    static Word defaultValue(Addr word_addr);

    /**
     * Visit every allocated page in ascending page-index order as
     * (page_index, words[words_per_page], mask[words_per_page/64]).
     * The deterministic order is what makes image serialization
     * byte-stable (the trace arena writes pages through this).
     */
    void forEachPage(
        const std::function<void(Addr, const Word *,
                                 const std::uint64_t *)> &fn) const;

    /**
     * Install a whole page at @p page_index from raw words + written
     * mask — the deserialization inverse of forEachPage(). Replaces
     * any existing page.
     */
    void restorePage(Addr page_index, const Word *words,
                     const std::uint64_t *mask);

  private:
    struct Page
    {
        std::array<Word, words_per_page> words;
        std::array<std::uint64_t, words_per_page / 64> written_mask;
    };

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, Page> _pages;
};

} // namespace microlib

#endif // MICROLIB_TRACE_MEMORY_IMAGE_HH
