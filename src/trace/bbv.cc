#include "trace/bbv.hh"

#include <cmath>

#include "sim/logging.hh"

namespace microlib
{

BbvProfile
collectBbv(const SpecProgram &prog, std::uint64_t total_instructions,
           std::uint64_t interval_length)
{
    if (interval_length == 0 || total_instructions < interval_length)
        fatal("BBV profile needs at least one full interval");

    BbvProfile profile;
    profile.interval_length = interval_length;

    SpecGenerator gen(prog);
    TraceRecord rec;

    const std::uint64_t intervals = total_instructions / interval_length;
    std::vector<std::uint64_t> counts(bbv_dims);

    for (std::uint64_t iv = 0; iv < intervals; ++iv) {
        std::fill(counts.begin(), counts.end(), 0);
        for (std::uint64_t i = 0; i < interval_length; ++i) {
            gen.next(rec);
            ++counts[rec.bb % bbv_dims];
        }
        std::vector<float> vec(bbv_dims);
        for (std::size_t d = 0; d < bbv_dims; ++d)
            vec[d] = static_cast<float>(counts[d]) /
                     static_cast<float>(interval_length);
        profile.vectors.push_back(std::move(vec));
    }
    return profile;
}

double
bbvDistance(const std::vector<float> &a, const std::vector<float> &b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

} // namespace microlib
