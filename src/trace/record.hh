/**
 * @file
 * Instruction trace records.
 *
 * The workload generators emit a stream of TraceRecord, one per
 * dynamic instruction, carrying everything the timing models and the
 * data-cache mechanisms consume: op class, PC, effective address,
 * the *data value* transferred (needed by the Frequent Value Cache and
 * Content-Directed Prefetching), dependence distances, and a basic
 * block id for SimPoint's BBV profiling.
 */

#ifndef MICROLIB_TRACE_RECORD_HH
#define MICROLIB_TRACE_RECORD_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace microlib
{

/** Functional-unit class of an instruction (cf. sim-outorder). */
enum class OpClass : std::uint8_t
{
    IntAlu,    ///< integer ALU op (also branches' address arithmetic)
    IntMult,   ///< integer multiply / divide
    FpAlu,     ///< floating point add/compare
    FpMult,    ///< floating point multiply / divide / sqrt
    Load,      ///< memory read
    Store,     ///< memory write
    Branch,    ///< control transfer (uses an IntAlu unit)
};

/** Number of distinct OpClass values. */
constexpr std::size_t num_op_classes = 7;

/** One dynamic instruction. Packed: the run matrix materializes
 *  millions of these per benchmark. */
struct TraceRecord
{
    std::uint32_t pc = 0;       ///< instruction address (code space)
    std::uint32_t addr = 0;     ///< effective address for Load/Store
    Word value = 0;             ///< data value read/written
    std::uint16_t bb = 0;       ///< basic block id (BBV profiling)
    OpClass op = OpClass::IntAlu;
    std::uint8_t dep1 = 0;      ///< distance to first input producer
    std::uint8_t dep2 = 0;      ///< distance to second input producer

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
};

static_assert(sizeof(TraceRecord) <= 24, "TraceRecord should stay packed");

/** A materialized instruction trace (one benchmark window). */
using Trace = std::vector<TraceRecord>;

} // namespace microlib

#endif // MICROLIB_TRACE_RECORD_HH
