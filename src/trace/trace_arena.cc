#include "trace/trace_arena.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "sim/fingerprint.hh"
#include "sim/logging.hh"
#include "trace/memory_image.hh"

namespace microlib
{

namespace
{

constexpr std::uint64_t arena_magic = 0x4e45524154524c4dull; // "MLTRAREN"

/** Bytes of one serialized image page: index + words + written mask. */
constexpr std::size_t page_entry_bytes =
    sizeof(std::uint64_t) + MemoryImage::page_bytes +
    (MemoryImage::words_per_page / 64) * sizeof(std::uint64_t);

/** Fixed little-endian file header. The checksum covers every byte
 *  AFTER the header (identity strings, padding, columns, pages), so
 *  a proper prefix of a valid file can never validate. */
struct ArenaHeader
{
    std::uint64_t magic = arena_magic;
    std::uint32_t schema = TraceArena::schema_version;
    std::uint32_t key_len = 0;
    std::uint32_t bench_len = 0;
    std::uint32_t reserved = 0;
    std::uint64_t n = 0;     ///< trace records (SoA column length)
    std::uint64_t pages = 0; ///< serialized image pages
    std::uint64_t window_skip = 0;
    std::uint64_t window_length = 0;
    std::uint64_t file_bytes = 0; ///< total size, header included
    std::uint64_t checksum = 0; ///< checksumBytes over [sizeof(hdr), end)
};
static_assert(sizeof(ArenaHeader) == 72,
              "arena header layout is part of the file format");

constexpr std::size_t
align64(std::size_t off)
{
    return (off + 63) & ~std::size_t(63);
}

/** Column/page offsets for given identity + counts. Every column
 *  starts 64-byte aligned from the file base (mmap bases are page
 *  aligned, so mapped column pointers are 64-byte aligned too). */
struct Layout
{
    std::size_t pc = 0;
    std::size_t addr = 0;
    std::size_t value = 0;
    std::size_t op = 0;
    std::size_t dep1 = 0;
    std::size_t dep2 = 0;
    std::size_t pages = 0;
    std::size_t total = 0;
};

Layout
layoutFor(std::size_t key_len, std::size_t bench_len, std::size_t n,
          std::size_t pages)
{
    Layout l;
    l.pc = align64(sizeof(ArenaHeader) + key_len + bench_len);
    l.addr = align64(l.pc + n * sizeof(std::uint32_t));
    l.value = align64(l.addr + n * sizeof(std::uint32_t));
    l.op = align64(l.value + n * sizeof(Word));
    l.dep1 = align64(l.op + n * sizeof(OpClass));
    l.dep2 = align64(l.dep1 + n * sizeof(std::uint8_t));
    l.pages = align64(l.dep2 + n * sizeof(std::uint8_t));
    l.total = l.pages + pages * page_entry_bytes;
    return l;
}

/**
 * Payload checksum: four independent FNV-style lanes over 8-byte
 * words, folded at the end, byte-wise FNV-1a for the tail. The lanes
 * break the serial xor-multiply dependency chain, so validating a
 * multi-megabyte trace costs a fraction of a millisecond instead of
 * dominating the warm-load path. Format-defining: readers and
 * writers must agree bit-for-bit (schema_version guards any change).
 */
std::uint64_t
checksumBytes(const std::uint8_t *data, std::size_t size)
{
    constexpr std::uint64_t prime = 0x100000001b3ull;
    std::uint64_t lane[4] = {0xcbf29ce484222325ull,
                             0x84222325cbf29ce4ull,
                             0x9ce484222325cbf2ull,
                             0x2325cbf29ce48422ull};
    std::size_t i = 0;
    for (; i + 32 <= size; i += 32) {
        std::uint64_t w[4];
        std::memcpy(w, data + i, sizeof(w));
        lane[0] = (lane[0] ^ w[0]) * prime;
        lane[1] = (lane[1] ^ w[1]) * prime;
        lane[2] = (lane[2] ^ w[2]) * prime;
        lane[3] = (lane[3] ^ w[3]) * prime;
    }
    std::uint64_t h = lane[0];
    h = (h * prime) ^ lane[1];
    h = (h * prime) ^ lane[2];
    h = (h * prime) ^ lane[3];
    h *= prime;
    for (; i < size; ++i) {
        h ^= data[i];
        h *= prime;
    }
    return h;
}

/**
 * Validate the mapped file against @p key: magic, schema, geometry
 * (declared sizes must reproduce the actual file size exactly),
 * stored key identity, and the full-payload checksum. On success
 * @p out points at the file's header.
 */
bool
validate(const MappedFile &mf, const std::string &key,
         const ArenaHeader *&out)
{
    if (mf.size() < sizeof(ArenaHeader))
        return false;
    ArenaHeader hdr;
    std::memcpy(&hdr, mf.data(), sizeof(hdr)); // alignment-safe copy
    if (hdr.magic != arena_magic ||
        hdr.schema != TraceArena::schema_version)
        return false;
    if (hdr.key_len != key.size())
        return false;
    const Layout l =
        layoutFor(hdr.key_len, hdr.bench_len,
                  static_cast<std::size_t>(hdr.n),
                  static_cast<std::size_t>(hdr.pages));
    if (hdr.file_bytes != mf.size() || l.total != mf.size())
        return false;
    if (hdr.n != hdr.window_length)
        return false;
    if (std::memcmp(mf.data() + sizeof(ArenaHeader), key.data(),
                    key.size()) != 0)
        return false;
    if (checksumBytes(mf.data() + sizeof(ArenaHeader),
                   mf.size() - sizeof(ArenaHeader)) != hdr.checksum)
        return false;
    out = reinterpret_cast<const ArenaHeader *>(mf.data());
    return true;
}

void
appendBytes(std::vector<std::uint8_t> &buf, const void *data,
            std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf.insert(buf.end(), p, p + size);
}

void
padTo(std::vector<std::uint8_t> &buf, std::size_t off)
{
    buf.resize(off, 0);
}

} // namespace

std::shared_ptr<const MappedFile>
MappedFile::map(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (base == MAP_FAILED)
        return nullptr;
    return std::shared_ptr<const MappedFile>(new MappedFile(
        static_cast<const std::uint8_t *>(base), size));
}

MappedFile::~MappedFile()
{
    if (_data)
        ::munmap(const_cast<std::uint8_t *>(_data), _size);
}

TraceArena::TraceArena(std::string dir) : _dir(std::move(dir))
{
    if (_dir.empty())
        fatal("TraceArena needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec)
        fatal("TraceArena: cannot create ", _dir, ": ", ec.message());
}

std::string
TraceArena::pathFor(const std::string &key) const
{
    Fingerprint fp;
    fp.mix(key);
    return _dir + "/" + fp.hex() + ".mltrace";
}

std::optional<MaterializedTrace>
TraceArena::tryLoad(const std::string &key)
{
    const std::string path = pathFor(key);
    auto mf = MappedFile::map(path);
    if (!mf) {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.misses;
        return std::nullopt;
    }
    const ArenaHeader *hdr = nullptr;
    if (!validate(*mf, key, hdr)) {
        // Torn write, bit rot, another schema, or a hash-colliding
        // foreign key: all equally "not our trace". The caller
        // regenerates (and republishes over this file).
        warn("trace arena: rejecting invalid ", path,
             " (will regenerate)");
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.rejected;
        return std::nullopt;
    }

    const Layout l =
        layoutFor(hdr->key_len, hdr->bench_len,
                  static_cast<std::size_t>(hdr->n),
                  static_cast<std::size_t>(hdr->pages));
    const std::uint8_t *base = mf->data();

    MaterializedTrace t;
    t.benchmark.assign(reinterpret_cast<const char *>(
                           base + sizeof(ArenaHeader) + hdr->key_len),
                       hdr->bench_len);
    t.window.skip = hdr->window_skip;
    t.window.length = hdr->window_length;

    TraceView v;
    v.pc = reinterpret_cast<const std::uint32_t *>(base + l.pc);
    v.addr = reinterpret_cast<const std::uint32_t *>(base + l.addr);
    v.value = reinterpret_cast<const Word *>(base + l.value);
    v.op = reinterpret_cast<const OpClass *>(base + l.op);
    v.dep1 = base + l.dep1;
    v.dep2 = base + l.dep2;
    v.n = static_cast<std::size_t>(hdr->n);
    t.soa.borrow(v);

    // The image is rebuilt owned (its sparse-map structure is not
    // mappable); it is small next to the columns and charged to the
    // byte budget as owned bytes like any other image.
    auto image = std::make_shared<MemoryImage>();
    const std::uint8_t *p = base + l.pages;
    for (std::uint64_t i = 0; i < hdr->pages; ++i) {
        std::uint64_t page_index = 0;
        std::memcpy(&page_index, p, sizeof(page_index));
        const auto *words =
            reinterpret_cast<const Word *>(p + sizeof(std::uint64_t));
        const auto *mask = reinterpret_cast<const std::uint64_t *>(
            p + sizeof(std::uint64_t) + MemoryImage::page_bytes);
        image->restorePage(page_index, words, mask);
        p += page_entry_bytes;
    }
    t.image = std::move(image);
    t.mapping = std::move(mf);

    {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.hits;
    }
    return t;
}

bool
TraceArena::publish(const std::string &key,
                    const MaterializedTrace &trace)
{
    const std::string path = pathFor(key);

    // First writer wins: if a valid file is already in place (a
    // sibling worker or an earlier run got here first), keep it —
    // its readers may be mid-map, and the payload is a deterministic
    // function of the key anyway.
    if (auto existing = MappedFile::map(path)) {
        const ArenaHeader *hdr = nullptr;
        if (validate(*existing, key, hdr))
            return true;
    }

    const TraceView v = trace.view();
    const std::size_t n = v.n;
    const std::size_t pages =
        trace.image ? trace.image->allocatedPages() : 0;
    const Layout l =
        layoutFor(key.size(), trace.benchmark.size(), n, pages);

    std::vector<std::uint8_t> buf;
    buf.reserve(l.total);
    ArenaHeader hdr;
    hdr.key_len = static_cast<std::uint32_t>(key.size());
    hdr.bench_len = static_cast<std::uint32_t>(trace.benchmark.size());
    hdr.n = n;
    hdr.pages = pages;
    hdr.window_skip = trace.window.skip;
    hdr.window_length = trace.window.length;
    hdr.file_bytes = l.total;
    appendBytes(buf, &hdr, sizeof(hdr)); // checksum patched below
    appendBytes(buf, key.data(), key.size());
    appendBytes(buf, trace.benchmark.data(), trace.benchmark.size());
    padTo(buf, l.pc);
    appendBytes(buf, v.pc, n * sizeof(std::uint32_t));
    padTo(buf, l.addr);
    appendBytes(buf, v.addr, n * sizeof(std::uint32_t));
    padTo(buf, l.value);
    appendBytes(buf, v.value, n * sizeof(Word));
    padTo(buf, l.op);
    appendBytes(buf, v.op, n * sizeof(OpClass));
    padTo(buf, l.dep1);
    appendBytes(buf, v.dep1, n * sizeof(std::uint8_t));
    padTo(buf, l.dep2);
    appendBytes(buf, v.dep2, n * sizeof(std::uint8_t));
    padTo(buf, l.pages);
    if (trace.image) {
        trace.image->forEachPage([&](Addr page_index,
                                     const Word *words,
                                     const std::uint64_t *mask) {
            std::uint64_t idx = page_index;
            appendBytes(buf, &idx, sizeof(idx));
            appendBytes(buf, words, MemoryImage::page_bytes);
            appendBytes(buf, mask,
                        (MemoryImage::words_per_page / 64) *
                            sizeof(std::uint64_t));
        });
    }
    if (buf.size() != l.total) {
        warn("trace arena: layout mismatch while serializing ", path);
        return false;
    }
    const std::uint64_t ck = checksumBytes(buf.data() + sizeof(hdr),
                                        buf.size() - sizeof(hdr));
    std::memcpy(buf.data() + offsetof(ArenaHeader, checksum), &ck,
                sizeof(ck));

    // tmp + atomic rename: readers only ever see complete files.
    // The tmp name is per-process + per-call, so concurrent writers
    // never clobber each other's partial output.
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(seq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(reinterpret_cast<const char *>(buf.data()),
                       static_cast<std::streamsize>(buf.size()))) {
            warn("trace arena: cannot write ", tmp);
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("trace arena: cannot publish ", path);
        std::remove(tmp.c_str());
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.published;
    }
    return true;
}

TraceArenaStats
TraceArena::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

} // namespace microlib
