/**
 * @file
 * Access-pattern kernels: the primitive memory behaviours from which
 * the 26 SPEC CPU2000 stand-in workloads are composed.
 *
 * Each kernel owns a region of the address space, optionally builds a
 * data structure there (linked lists, index tables, transition
 * graphs), and then emits an endless stream of memory references.
 * A reference carries a *slot* — the static load/store site it came
 * from — so the generator can give each site a stable PC (stride
 * prefetchers and the GHB key on PCs), and a *serial_dep* flag for
 * pointer-chasing loads whose address depends on the previous load's
 * value (this serialization is what makes mcf-like codes slow).
 */

#ifndef MICROLIB_TRACE_KERNELS_HH
#define MICROLIB_TRACE_KERNELS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"
#include "trace/memory_image.hh"

namespace microlib
{

/** What the values stored in a kernel's region look like. */
enum class ValueMode : std::uint8_t
{
    Garbage,   ///< deterministic hash values (never pointer-like)
    Frequent,  ///< drawn from a small set of frequent values (FVC food)
    Pointer,   ///< in-region addresses (CDP food)
};

/** One memory reference emitted by a kernel. */
struct MemRef
{
    Addr addr = 0;
    bool store = false;
    Word store_value = 0;      ///< value to write when store == true
    std::uint8_t slot = 0;     ///< static reference site within kernel
    bool serial_dep = false;   ///< address depended on previous load
    /**
     * Dependence chain the serial_dep refers to: the address depends
     * on the previous load carrying the same key, not the previous
     * load globally. Kernels with several independent pointer chains
     * (PointerChaseKernel::Params::chains) key each chain separately,
     * so the chains overlap in the machine — memory-level parallelism
     * by construction. Key 0 (the default) reproduces the classic
     * "depends on the most recent load" behaviour bit-for-bit.
     */
    std::uint8_t dep_key = 0;
};

/** Shared bounds of the synthetic address space. */
constexpr Addr heap_base = 0x10000000;
constexpr Addr heap_limit = 0x90000000;

/** True iff @p v looks like a pointer into the synthetic heap. */
inline bool
looksLikeHeapPointer(Word v)
{
    return v >= heap_base && v < heap_limit && (v & 7) == 0;
}

/** Pick a frequent value; index 0..6 map to the FVC's seven values. */
Word frequentValue(unsigned idx);

/** Abstract pattern kernel. */
class PatternKernel
{
  public:
    virtual ~PatternKernel() = default;

    /** Build data structures in the image (called once per reset). */
    virtual void setup(MemoryImage &img, Rng &rng);

    /** Emit the next reference. */
    virtual MemRef next(MemoryImage &img, Rng &rng) = 0;

    /** Number of static reference sites this kernel uses. */
    virtual unsigned slots() const = 0;

    /** Kernel kind, for diagnostics. */
    virtual const char *kind() const = 0;
};

/**
 * Sequential stream: walks a region with a fixed stride, wrapping at
 * the end. Models array sweeps (swim, lucas, applu inner loops).
 */
class StreamKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t bytes = 1 << 20;
        std::int64_t stride = 8;
        double write_frac = 0.0;
        ValueMode values = ValueMode::Garbage;
    };

    explicit StreamKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override { return 2; }
    const char *kind() const override { return "stream"; }

  private:
    Params _p;
    std::uint64_t _pos = 0;
};

/**
 * Multiple concurrent strided streams over distinct arrays, emitted
 * round-robin with an optional write stream. Models stencil codes
 * (mgrid, applu, fma3d): several input arrays plus an output array.
 */
class MultiStrideKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t array_bytes = 1 << 20;
        std::vector<std::int64_t> strides = {8, 8, 8};
        bool has_write_stream = true;
        ValueMode values = ValueMode::Garbage;
    };

    explicit MultiStrideKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override
    {
        return static_cast<unsigned>(_p.strides.size()) +
               (_p.has_write_stream ? 1 : 0);
    }
    const char *kind() const override { return "multistride"; }

  private:
    Params _p;
    std::vector<std::uint64_t> _pos;
    unsigned _turn = 0;
};

/**
 * Pointer chase over linked lists built in the image. The next
 * pointer lives at @c next_offset inside each node (88 bytes for the
 * ammp pathology: one line past the head of a 64-byte-line fetch).
 * Payload fields around the node are also touched.
 *
 * @c chains splits the nodes into that many independent cycles,
 * followed round-robin: each chain's link load still serializes on
 * its own previous load, but the chains overlap in the machine, so
 * chains == 1 is the pure memory-latency-bound case (every miss
 * exposed, zero memory-level parallelism) and larger counts dial MLP
 * back in — the knob the pchase workload's phases are built from.
 */
class PointerChaseKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t node_bytes = 64;
        std::uint64_t node_count = 4096;
        std::uint64_t next_offset = 0;
        double shuffle = 1.0;       ///< 0 = sequential layout, 1 = shuffled
        double payload_touches = 1.0; ///< avg extra payload refs per node
        double write_frac = 0.1;    ///< fraction of payload refs that store
        ValueMode payload_values = ValueMode::Garbage;
        /** Independent cycles, walked round-robin; at most 7 (each
         *  chain owns one of the generator's dependence keys). */
        unsigned chains = 1;
    };

    explicit PointerChaseKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override { return 3; }
    const char *kind() const override { return "ptrchase"; }

  private:
    Params _p;
    std::vector<Addr> _heads; ///< per-chain current node
    unsigned _turn = 0;       ///< chain whose link is followed next
    Addr _payload_node = 0;   ///< node the payload refs touch
    unsigned _payload_left = 0;

    Addr nodeAddr(std::uint64_t idx) const
    {
        return _p.base + idx * _p.node_bytes;
    }
};

/**
 * First-order Markov walk over a set of line-sized locations: each
 * state has a small successor set with skewed probabilities. Models
 * repetitive-but-branching reference sequences (gzip windows) that
 * Markov prefetchers learn and stride prefetchers do not.
 */
class MarkovChainKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t states = 1024;
        std::uint64_t state_bytes = 32;
        unsigned fanout = 2;
        double primary_prob = 0.8; ///< probability of the first successor
        double write_frac = 0.05;
        ValueMode values = ValueMode::Frequent;
    };

    explicit MarkovChainKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override { return 1; }
    const char *kind() const override { return "markov"; }

  private:
    Params _p;
    std::vector<std::uint32_t> _succ; ///< states x fanout successor ids
    std::uint64_t _state = 0;
};

/**
 * Uniform random word accesses over a region. Models hash/table codes
 * with little locality beyond what fits in cache (parts of gap, vpr).
 */
class RandomKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t bytes = 1 << 20;
        double write_frac = 0.2;
        ValueMode values = ValueMode::Garbage;
    };

    explicit RandomKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override { return 2; }
    const char *kind() const override { return "random"; }

  private:
    Params _p;
};

/**
 * Hot/cold mix: most references hit a small hot region, the rest a
 * large cold one. Models cache-resident integer codes (crafty, eon,
 * perlbmk) whose misses are rare but not absent.
 */
class HotColdKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t hot_bytes = 16 << 10;
        std::uint64_t cold_bytes = 8 << 20;
        double hot_frac = 0.95;
        double write_frac = 0.3;
        ValueMode values = ValueMode::Frequent;
    };

    explicit HotColdKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override { return 2; }
    const char *kind() const override { return "hotcold"; }

  private:
    Params _p;
    std::uint64_t _hot_pos = 0;
};

/**
 * Gather: an index array is streamed sequentially and each index
 * fetches a word from a data table (a[b[i]]); the data load's address
 * depends on the index load (serial_dep). Models art's codebook
 * lookups and gap's table-driven loops.
 */
class GatherKernel : public PatternKernel
{
  public:
    struct Params
    {
        Addr base = heap_base;
        std::uint64_t index_entries = 1 << 16;
        std::uint64_t table_bytes = 4 << 20;
        double write_frac = 0.05;   ///< read-modify-write of table entries
        bool clustered = false;     ///< indices cluster (some locality)
        ValueMode values = ValueMode::Garbage;
    };

    explicit GatherKernel(const Params &p) : _p(p) {}

    void setup(MemoryImage &img, Rng &rng) override;
    MemRef next(MemoryImage &img, Rng &rng) override;
    unsigned slots() const override { return 3; }
    const char *kind() const override { return "gather"; }

  private:
    Params _p;
    std::uint64_t _pos = 0;
    bool _pending_data = false;
    Addr _pending_addr = 0;

    Addr indexBase() const { return _p.base; }
    Addr tableBase() const
    {
        // Pad so index and table streams do not alias in the
        // direct-mapped L1 (see MultiStrideKernel::next).
        return _p.base + alignUp(_p.index_entries * 8, 4096) + 4160;
    }
};

} // namespace microlib

#endif // MICROLIB_TRACE_KERNELS_HH
