/**
 * @file
 * Structure-of-arrays trace windows.
 *
 * The core's per-instruction loop reads four to six fields of every
 * dynamic instruction; walking the AoS `std::vector<TraceRecord>`
 * drags the fields most models never touch (basic-block ids, data
 * values) through the cache with them. TraceSoA transposes a
 * materialized window once — at trace-cache fill time — into dense
 * parallel arrays, and TraceView is the non-owning span bundle the
 * hot loop streams over: sequential, prefetch-friendly, one array
 * per consumed field.
 */

#ifndef MICROLIB_TRACE_TRACE_VIEW_HH
#define MICROLIB_TRACE_TRACE_VIEW_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace microlib
{

/**
 * Non-owning parallel-span view over a trace window. All pointers
 * address arrays of size() elements owned by a TraceSoA (or any
 * other storage outliving the view).
 */
struct TraceView
{
    const std::uint32_t *pc = nullptr;
    const std::uint32_t *addr = nullptr;
    /** Data values: unread by the core loop (it never touches the
     *  array, so it costs no cache traffic), carried for
     *  value-sensitive consumers (FVC/CDP-style scans). */
    const Word *value = nullptr;
    const OpClass *op = nullptr;
    const std::uint8_t *dep1 = nullptr;
    const std::uint8_t *dep2 = nullptr;
    std::size_t n = 0;

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }
};

/** SoA storage for one trace window, built once per cached trace and
 *  shared by every run consuming it. Two modes: *owning* (build()
 *  fills the member vectors — the generate path) and *borrowing*
 *  (borrow() points the view at columns owned by someone else, e.g.
 *  a read-only mmap of a trace-arena file — see trace_arena.hh). A
 *  borrowing SoA holds no heap memory for the columns; whoever owns
 *  the spans must outlive it. */
class TraceSoA
{
  public:
    TraceSoA() = default;
    explicit TraceSoA(const Trace &records) { build(records); }

    /** (Re)build the parallel arrays from @p records (owning mode;
     *  drops any borrowed spans). */
    void build(const Trace &records);

    /** Point the view at externally owned column spans (borrowing
     *  mode; releases any owned arrays). @p v's pointers must stay
     *  valid for the SoA's lifetime. */
    void borrow(const TraceView &v);

    /** Whether view() borrows externally owned spans. */
    bool borrowed() const { return _borrowed.pc != nullptr; }

    /** View over the current arrays; invalidated by build(). */
    TraceView view() const;

    std::size_t size() const { return view().n; }
    bool empty() const { return size() == 0; }

    /** Heap bytes *owned* by the parallel arrays (trace-cache byte
     *  budget accounting). Zero in borrowing mode — the bytes behind
     *  a borrowed view belong to the mapping (OS page cache), not
     *  this process's heap. */
    std::size_t
    footprintBytes() const
    {
        return _pc.capacity() * sizeof(std::uint32_t) +
               _addr.capacity() * sizeof(std::uint32_t) +
               _value.capacity() * sizeof(Word) +
               _op.capacity() * sizeof(OpClass) +
               _dep1.capacity() * sizeof(std::uint8_t) +
               _dep2.capacity() * sizeof(std::uint8_t);
    }

    /** Bytes the borrowed column spans address (0 in owning mode). */
    std::size_t
    footprintMappedBytes() const
    {
        if (!borrowed())
            return 0;
        return _borrowed.n *
               (sizeof(std::uint32_t) * 2 + sizeof(Word) +
                sizeof(OpClass) + sizeof(std::uint8_t) * 2);
    }

  private:
    std::vector<std::uint32_t> _pc;
    std::vector<std::uint32_t> _addr;
    std::vector<Word> _value;
    std::vector<OpClass> _op;
    std::vector<std::uint8_t> _dep1;
    std::vector<std::uint8_t> _dep2;
    /** Borrowed spans; pc != nullptr marks borrowing mode. */
    TraceView _borrowed;
};

} // namespace microlib

#endif // MICROLIB_TRACE_TRACE_VIEW_HH
