/**
 * @file
 * Structure-of-arrays trace windows.
 *
 * The core's per-instruction loop reads four to six fields of every
 * dynamic instruction; walking the AoS `std::vector<TraceRecord>`
 * drags the fields most models never touch (basic-block ids, data
 * values) through the cache with them. TraceSoA transposes a
 * materialized window once — at trace-cache fill time — into dense
 * parallel arrays, and TraceView is the non-owning span bundle the
 * hot loop streams over: sequential, prefetch-friendly, one array
 * per consumed field.
 */

#ifndef MICROLIB_TRACE_TRACE_VIEW_HH
#define MICROLIB_TRACE_TRACE_VIEW_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace microlib
{

/**
 * Non-owning parallel-span view over a trace window. All pointers
 * address arrays of size() elements owned by a TraceSoA (or any
 * other storage outliving the view).
 */
struct TraceView
{
    const std::uint32_t *pc = nullptr;
    const std::uint32_t *addr = nullptr;
    /** Data values: unread by the core loop (it never touches the
     *  array, so it costs no cache traffic), carried for
     *  value-sensitive consumers (FVC/CDP-style scans). */
    const Word *value = nullptr;
    const OpClass *op = nullptr;
    const std::uint8_t *dep1 = nullptr;
    const std::uint8_t *dep2 = nullptr;
    std::size_t n = 0;

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }
};

/** Owning SoA storage for one trace window, built once per cached
 *  trace and shared by every run consuming it. */
class TraceSoA
{
  public:
    TraceSoA() = default;
    explicit TraceSoA(const Trace &records) { build(records); }

    /** (Re)build the parallel arrays from @p records. */
    void build(const Trace &records);

    /** View over the current arrays; invalidated by build(). */
    TraceView view() const;

    std::size_t size() const { return _op.size(); }
    bool empty() const { return _op.empty(); }

    /** Heap bytes held by the parallel arrays (trace-cache byte
     *  budget accounting). */
    std::size_t
    footprintBytes() const
    {
        return _pc.capacity() * sizeof(std::uint32_t) +
               _addr.capacity() * sizeof(std::uint32_t) +
               _value.capacity() * sizeof(Word) +
               _op.capacity() * sizeof(OpClass) +
               _dep1.capacity() * sizeof(std::uint8_t) +
               _dep2.capacity() * sizeof(std::uint8_t);
    }

  private:
    std::vector<std::uint32_t> _pc;
    std::vector<std::uint32_t> _addr;
    std::vector<Word> _value;
    std::vector<OpClass> _op;
    std::vector<std::uint8_t> _dep1;
    std::vector<std::uint8_t> _dep2;
};

} // namespace microlib

#endif // MICROLIB_TRACE_TRACE_VIEW_HH
