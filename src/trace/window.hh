/**
 * @file
 * Trace windows: materializing a (skip, length) slice of a synthetic
 * benchmark into memory.
 *
 * The experiment engine materializes each benchmark window once and
 * reuses it across all mechanisms, so mechanism comparisons see
 * bit-identical input (the paper's whole point).
 */

#ifndef MICROLIB_TRACE_WINDOW_HH
#define MICROLIB_TRACE_WINDOW_HH

#include <memory>

#include "trace/generator.hh"
#include "trace/record.hh"
#include "trace/trace_view.hh"

namespace microlib
{

class MappedFile;

/** A slice of a benchmark's dynamic instruction stream. */
struct TraceWindow
{
    std::uint64_t skip = 0;
    std::uint64_t length = 0;
};

/** A materialized window together with the memory image that backs
 *  value-sensitive mechanisms (CDP, FVC). A *generated* trace
 *  carries both the AoS records and their SoA transposition (the
 *  SoA is built exactly once, when the trace is materialized into
 *  the cache, and every run over the window streams the same
 *  arrays). A trace *mapped* from the trace arena (trace_arena.hh)
 *  instead borrows its SoA columns straight out of a read-only mmap
 *  — `mapping` keeps the file mapped, `records` stays empty (the
 *  simulation hot path reads only view() and the image; callers
 *  that need the AoS reference loop materialize() their own copy). */
struct MaterializedTrace
{
    Trace records;
    TraceSoA soa;
    std::shared_ptr<const MemoryImage> image;
    std::string benchmark;
    TraceWindow window;
    /** Arena mapping backing borrowed SoA spans; null for generated
     *  traces. Dropping the last reference munmaps. */
    std::shared_ptr<const MappedFile> mapping;

    /** Span bundle for the simulation hot loop. */
    TraceView view() const { return soa.view(); }

    /** Whether the SoA columns live in an arena mmap rather than
     *  this process's heap. */
    bool mapped() const { return mapping != nullptr; }

    /**
     * Estimated *heap-owned* resident bytes: AoS records + owned SoA
     * arrays + the memory image's allocated pages. This — not the
     * mapped bytes — is what the trace cache charges against its
     * byte budget (MICROLIB_TRACE_BUDGET_MB): the OS page cache owns
     * a mapping's bytes and reclaims them under pressure on its own,
     * so a mapped trace costs the budget only its image and
     * bookkeeping. An estimate is fine — the budget bounds memory,
     * it does not account it to the byte.
     */
    std::size_t
    footprintOwnedBytes() const
    {
        std::size_t bytes = sizeof(*this);
        bytes += records.capacity() * sizeof(TraceRecord);
        bytes += soa.footprintBytes();
        if (image)
            bytes += image->allocatedPages() *
                     (MemoryImage::page_bytes + 64);
        return bytes;
    }

    /** Bytes addressed through the arena mapping (0 when not
     *  mapped). Defined in window.cc (needs MappedFile's size). */
    std::size_t footprintMappedBytes() const;

    /** Total resident estimate, owned + mapped. */
    std::size_t
    footprintBytes() const
    {
        return footprintOwnedBytes() + footprintMappedBytes();
    }
};

/**
 * Materialize @p window of @p prog. The generator is reset first, so
 * the result is a pure function of (program, window).
 */
MaterializedTrace materialize(const SpecProgram &prog,
                              const TraceWindow &window);

} // namespace microlib

#endif // MICROLIB_TRACE_WINDOW_HH
