/**
 * @file
 * Trace windows: materializing a (skip, length) slice of a synthetic
 * benchmark into memory.
 *
 * The experiment engine materializes each benchmark window once and
 * reuses it across all mechanisms, so mechanism comparisons see
 * bit-identical input (the paper's whole point).
 */

#ifndef MICROLIB_TRACE_WINDOW_HH
#define MICROLIB_TRACE_WINDOW_HH

#include <memory>

#include "trace/generator.hh"
#include "trace/record.hh"
#include "trace/trace_view.hh"

namespace microlib
{

/** A slice of a benchmark's dynamic instruction stream. */
struct TraceWindow
{
    std::uint64_t skip = 0;
    std::uint64_t length = 0;
};

/** A materialized window together with the memory image that backs
 *  value-sensitive mechanisms (CDP, FVC). Carries both the AoS
 *  records and their SoA transposition: the SoA is built exactly
 *  once, when the trace is materialized into the cache, and every
 *  run over the window streams the same arrays. */
struct MaterializedTrace
{
    Trace records;
    TraceSoA soa;
    std::shared_ptr<const MemoryImage> image;
    std::string benchmark;
    TraceWindow window;

    /** Span bundle for the simulation hot loop. */
    TraceView view() const { return soa.view(); }

    /**
     * Estimated resident bytes: AoS records + SoA arrays + the
     * memory image's allocated pages. The trace cache charges this
     * against its byte budget (MICROLIB_TRACE_BUDGET_MB); an
     * estimate is fine — the budget bounds memory, it does not
     * account it to the byte.
     */
    std::size_t
    footprintBytes() const
    {
        std::size_t bytes = sizeof(*this);
        bytes += records.capacity() * sizeof(TraceRecord);
        bytes += soa.footprintBytes();
        if (image)
            bytes += image->allocatedPages() *
                     (MemoryImage::page_bytes + 64);
        return bytes;
    }
};

/**
 * Materialize @p window of @p prog. The generator is reset first, so
 * the result is a pure function of (program, window).
 */
MaterializedTrace materialize(const SpecProgram &prog,
                              const TraceWindow &window);

} // namespace microlib

#endif // MICROLIB_TRACE_WINDOW_HH
