/**
 * @file
 * The 26 SPEC CPU2000 stand-in workloads.
 *
 * The paper evaluates on SPEC CPU2000 compiled for Alpha; those
 * binaries and traces are not available here, so each benchmark is
 * replaced by a synthetic program whose *memory behaviour* matches the
 * published characteristics that the studied mechanisms key on:
 * footprint, stride structure, pointer chasing, phase behaviour,
 * value locality and code footprint. See DESIGN.md §5 for the per-
 * benchmark rationale and the experiments that depend on it (e.g.
 * ammp's 88-byte next-pointer offset that defeats CDP, gzip's
 * Markov-friendly repetitiveness, lucas's row-conflicting streams).
 */

#ifndef MICROLIB_TRACE_SPEC_SUITE_HH
#define MICROLIB_TRACE_SPEC_SUITE_HH

#include <string>
#include <vector>

#include "trace/generator.hh"

namespace microlib
{

/** All 26 benchmark names in the paper's Table 4 order. */
const std::vector<std::string> &specBenchmarkNames();

/** Program description for benchmark @p name — one of the 26 SPEC
 *  stand-ins or an extra workload (fatal if unknown). */
const SpecProgram &specProgram(const std::string &name);

/** All 26 programs, in Table 4 order. */
const std::vector<SpecProgram> &specSuite();

/**
 * Extra synthetic workloads beyond the paper's Table 4 — scenarios
 * the configuration-axis sweeps need that SPEC 2000 does not cover.
 * Currently: "pchase", a memory-latency-bound pointer chase (a
 * single serialized chain with zero memory-level parallelism for
 * most of each phase pass, then a four-chain phase that dials MLP
 * back in). Resolved by specProgram() like any other name, but kept
 * out of specBenchmarkNames() so the paper-figure harnesses still
 * run exactly the Table 4 suite.
 */
const std::vector<std::string> &extraBenchmarkNames();

/** True for the 14 floating-point benchmarks. */
bool isFpBenchmark(const std::string &name);

} // namespace microlib

#endif // MICROLIB_TRACE_SPEC_SUITE_HH
