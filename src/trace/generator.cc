#include "trace/generator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

SpecGenerator::SpecGenerator(const SpecProgram &prog) : _prog(prog),
    _rng(prog.seed)
{
    if (_prog.kernels.empty() || _prog.segments.empty())
        fatal("program '", _prog.name, "' has no kernels or segments");
    if (_prog.loop_from >= _prog.segments.size())
        fatal("program '", _prog.name, "': loop_from out of range");
    for (const auto &seg : _prog.segments)
        if (seg.kernel >= _prog.kernels.size())
            fatal("program '", _prog.name, "': segment kernel index");
    reset();
}

void
SpecGenerator::reset()
{
    _rng = Rng(_prog.seed);
    _image = std::make_unique<MemoryImage>();
    _kernels.clear();
    for (const auto &make : _prog.kernels) {
        _kernels.push_back(make());
        _kernels.back()->setup(*_image, _rng);
    }
    _segment = 0;
    _segment_left = _prog.segments[0].instructions;
    _emitted = 0;
    _last_load.fill(0);
    _block_counter = 0;
    _stack_pos = 0;
    _block.clear();
    _block_pos = 0;
}

void
SpecGenerator::advanceSegment()
{
    _segment = _segment + 1;
    ++_segment_visits;
    if (_segment >= _prog.segments.size())
        _segment = _prog.loop_from;
    _segment_left = _prog.segments[_segment].instructions;
}

OpClass
SpecGenerator::pickComputeOp()
{
    if (_rng.chance(_prog.fp_frac))
        return _rng.chance(0.3) ? OpClass::FpMult : OpClass::FpAlu;
    return _rng.chance(0.05) ? OpClass::IntMult : OpClass::IntAlu;
}

std::uint8_t
SpecGenerator::depDistance()
{
    const std::uint64_t d = _rng.nextGeometric(_prog.dep_mean);
    return static_cast<std::uint8_t>(std::min<std::uint64_t>(d, 255));
}

void
SpecGenerator::buildBlock()
{
    _block.clear();
    _block_pos = 0;
    ++_block_counter;

    const unsigned kernel_idx = _prog.segments[_segment].kernel;
    PatternKernel &kernel = *_kernels[kernel_idx];

    // Most references go to the stack/locals region (high locality);
    // the phase kernel supplies the characteristic miss traffic.
    MemRef ref;
    bool is_stack = _rng.chance(_prog.stack_frac);
    if (is_stack) {
        ref.addr = stack_base + _stack_pos;
        // Small forward/backward wobble around a slowly advancing
        // frame pointer: intense line reuse, as real locals show.
        _stack_pos = (_stack_pos + 8 * _rng.nextBounded(3)) %
                     _prog.stack_bytes;
        ref.slot = 7; // dedicated static site
        if (_rng.chance(0.35)) {
            ref.store = true;
            // Locals mix small constants with addresses and floats.
            if (_rng.chance(0.6))
                ref.store_value = frequentValue(
                    static_cast<unsigned>(_rng.nextBounded(7)));
            else
                ref.store_value =
                    MemoryImage::defaultValue(ref.addr) ^ _rng.next();
        }
    } else {
        ref = kernel.next(*_image, _rng);
    }

    // Static code identity of this block: kernel site x code spread.
    // The spread copy changes per phase visit, not per block, so a
    // site keeps one PC for long stretches (PC-indexed mechanisms
    // rely on that) while programs like gcc still touch a large
    // instruction footprint over time.
    const unsigned spread =
        static_cast<unsigned>(_segment_visits % _prog.code_spread);
    const std::uint32_t block_id =
        static_cast<std::uint32_t>(kernel_idx * 256 + ref.slot * 37 +
                                   spread * 11);
    const std::uint32_t pc_base =
        static_cast<std::uint32_t>(code_base) + block_id * 128;
    // Basic-block identity excludes the spread copy: a phase's BBV
    // signature must be stable across visits or SimPoint cannot
    // recognize recurring phases.
    const std::uint16_t bb = static_cast<std::uint16_t>(
        (kernel_idx * 131 + ref.slot * 17) & 0x03ff);

    // Number of compute instructions accompanying one memory access,
    // drawn so that the long-run memory-instruction fraction matches
    // the program's mem_ratio.
    const double mean_compute =
        (1.0 - _prog.mem_ratio) / _prog.mem_ratio;
    const unsigned n_compute = static_cast<unsigned>(
        std::min<std::uint64_t>(_rng.nextGeometric(mean_compute + 0.01),
                                48));

    std::uint32_t pc = pc_base;
    const std::uint64_t mem_index_in_block = n_compute / 2;
    bool emitted_mem = false;

    for (unsigned i = 0; i <= n_compute; ++i) {
        TraceRecord rec;
        rec.pc = pc;
        pc += 4;
        rec.bb = bb;
        const std::uint64_t global_idx = _emitted + _block.size();

        if (!emitted_mem && i == mem_index_in_block) {
            emitted_mem = true;
            rec.op = ref.store ? OpClass::Store : OpClass::Load;
            // Stable PC for the static reference site: PC-indexed
            // mechanisms (SP, GHB, DBCP) must see one PC per site,
            // independent of how much compute preceded it.
            rec.pc = pc_base + 124;
            rec.addr = static_cast<std::uint32_t>(ref.addr);
            if (ref.store) {
                rec.value = ref.store_value;
                _image->write(ref.addr, ref.store_value);
            } else {
                rec.value = _image->read(ref.addr);
            }
            const std::size_t dep_key =
                ref.dep_key % _last_load.size();
            if (ref.serial_dep && _last_load[dep_key] < global_idx) {
                // Pointer chase: the address depends on the previous
                // load's value (of the same dependence chain — see
                // MemRef::dep_key) — the defining serialization of
                // mcf-like codes.
                const std::uint64_t dist =
                    global_idx - _last_load[dep_key];
                rec.dep1 = static_cast<std::uint8_t>(
                    std::min<std::uint64_t>(dist, 255));
            } else if (ref.store) {
                // The stored value comes from recent computation.
                rec.dep1 = depDistance();
            } else {
                // Streaming/indexed loads: addresses come from cheap
                // induction chains that never stall, so the load
                // itself has no blocking input — memory-level
                // parallelism is bounded by the window and MSHRs,
                // not by accidental load-to-load chains.
                rec.dep1 = 0;
            }
            if (!ref.store)
                _last_load[dep_key] = global_idx;
        } else {
            rec.op = pickComputeOp();
            // Consumers often use the most recent load's result.
            if (emitted_mem && i == mem_index_in_block + 1 &&
                _rng.chance(0.5)) {
                rec.dep1 = 1;
            } else {
                rec.dep1 = depDistance();
            }
            if (_rng.chance(0.4))
                rec.dep2 = depDistance();
        }
        _block.push_back(rec);
    }

    if (_rng.chance(_prog.branch_frac)) {
        TraceRecord br;
        br.op = OpClass::Branch;
        br.pc = pc;
        br.bb = bb;
        br.dep1 = 1;
        _block.push_back(br);
    }
}

void
SpecGenerator::next(TraceRecord &rec)
{
    if (_block_pos >= _block.size())
        buildBlock();
    rec = _block[_block_pos++];
    ++_emitted;
    if (_segment_left > 0 && --_segment_left == 0)
        advanceSegment();
}

void
SpecGenerator::skip(std::uint64_t n)
{
    TraceRecord scratch;
    for (std::uint64_t i = 0; i < n; ++i)
        next(scratch);
}

} // namespace microlib
