#include "trace/kernels.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace microlib
{

Word
frequentValue(unsigned idx)
{
    // The seven values the FVC article observes dominating SPEC data:
    // zero, small positive/negative integers, and powers of two.
    static constexpr Word values[7] = {
        0, 1, static_cast<Word>(-1), 2, 4, 8, 255,
    };
    return values[idx % 7];
}

namespace
{

/** Value to store according to a kernel's ValueMode. */
Word
storeValue(ValueMode mode, Addr addr, Rng &rng)
{
    switch (mode) {
      case ValueMode::Frequent:
        // Roughly half the stored words come from the frequent set —
        // the value-locality level the FVC article reports; whole
        // lines of frequent values are then uncommon but real.
        if (rng.chance(0.55))
            return frequentValue(static_cast<unsigned>(rng.nextBounded(7)));
        return MemoryImage::defaultValue(addr) ^ rng.next();
      case ValueMode::Pointer:
        // Pointer-rich structures still hold mostly scalars: about a
        // third of the words are pointers (mcf's 128-byte node holds
        // a handful), the rest integers. Content-directed prefetching
        // keys on exactly this density.
        if (rng.chance(0.35))
            return heap_base + (rng.nextBounded(1 << 20) * 8);
        return frequentValue(static_cast<unsigned>(rng.nextBounded(7)));
      case ValueMode::Garbage:
      default:
        return MemoryImage::defaultValue(addr) ^ 0x5a5a5a5a;
    }
}

/** Seed a region with mode-consistent initial contents, sparsely:
 *  one word per 64-byte chunk is enough for the value-sensitive
 *  mechanisms to see representative data without paying full-footprint
 *  initialization cost. */
void
seedRegion(MemoryImage &img, Addr base, std::uint64_t bytes,
           ValueMode mode, Rng &rng)
{
    if (mode == ValueMode::Garbage)
        return; // defaultValue() already provides garbage
    for (Addr a = base; a < base + bytes; a += 64)
        img.write(a, storeValue(mode, a, rng));
}

} // namespace

void
PatternKernel::setup(MemoryImage &img, Rng &rng)
{
    (void)img;
    (void)rng;
}

// ---------------------------------------------------------------- Stream

void
StreamKernel::setup(MemoryImage &img, Rng &rng)
{
    _pos = 0;
    seedRegion(img, _p.base, std::min<std::uint64_t>(_p.bytes, 1 << 20),
               _p.values, rng);
}

MemRef
StreamKernel::next(MemoryImage &img, Rng &rng)
{
    (void)img;
    MemRef ref;
    ref.addr = _p.base + _pos;
    const std::uint64_t step =
        static_cast<std::uint64_t>(_p.stride < 0 ? -_p.stride : _p.stride);
    _pos += step;
    if (_pos + 8 > _p.bytes)
        _pos = 0;
    if (rng.chance(_p.write_frac)) {
        ref.store = true;
        ref.store_value = storeValue(_p.values, ref.addr, rng);
        ref.slot = 1;
    }
    return ref;
}

// ----------------------------------------------------------- MultiStride

void
MultiStrideKernel::setup(MemoryImage &img, Rng &rng)
{
    if (_p.strides.empty())
        fatal("MultiStrideKernel needs at least one stride");
    _pos.assign(slots(), 0);
    _turn = 0;
    seedRegion(img, _p.base,
               std::min<std::uint64_t>(_p.array_bytes, 1 << 20), _p.values,
               rng);
}

MemRef
MultiStrideKernel::next(MemoryImage &img, Rng &rng)
{
    (void)img;
    (void)rng;
    MemRef ref;
    const unsigned n_read = static_cast<unsigned>(_p.strides.size());
    const unsigned s = _turn;
    _turn = (_turn + 1) % slots();

    // Arrays are padded apart (as real allocators and Fortran common
    // blocks do); without this, multi-megabyte arrays all alias to
    // the same direct-mapped set and every access conflicts.
    const Addr array_base = _p.base + s * (_p.array_bytes + 4160);

    ref.slot = static_cast<std::uint8_t>(s);
    if (s < n_read) {
        const std::uint64_t step = static_cast<std::uint64_t>(
            _p.strides[s] < 0 ? -_p.strides[s] : _p.strides[s]);
        ref.addr = array_base + _pos[s];
        _pos[s] += step;
        if (_pos[s] + 8 > _p.array_bytes)
            _pos[s] = 0;
    } else {
        // Output stream: unit stride over its own array.
        ref.addr = array_base + _pos[s];
        ref.store = true;
        ref.store_value = storeValue(_p.values, ref.addr, rng);
        _pos[s] += 8;
        if (_pos[s] + 8 > _p.array_bytes)
            _pos[s] = 0;
    }
    return ref;
}

// ---------------------------------------------------------- PointerChase

void
PointerChaseKernel::setup(MemoryImage &img, Rng &rng)
{
    if (_p.next_offset + 8 > _p.node_bytes)
        fatal("PointerChaseKernel: next_offset outside node");
    const unsigned nchains = _p.chains ? _p.chains : 1;
    if (_p.node_count < nchains)
        fatal("PointerChaseKernel: ", nchains, " chain(s) over ",
              _p.node_count, " node(s)");
    // Each chain needs its own dependence key, and key 0 is reserved
    // for ordinary loads; the generator tracks 8 keys total. More
    // chains would silently alias into one serial chain — refuse.
    if (nchains > 7)
        fatal("PointerChaseKernel: at most 7 chains (per-chain "
              "dependence keys), got ", nchains);

    // Build a permutation over all nodes, then slice the visitation
    // order into `chains` independent cycles: every node's next
    // pointer leads to the following node of its slice, the last
    // wrapping to the slice head. One chain is the classic single
    // big cycle.
    std::vector<std::uint32_t> order(_p.node_count);
    std::iota(order.begin(), order.end(), 0);
    // Fisher-Yates, partially applied according to the shuffle knob.
    const std::size_t limit =
        static_cast<std::size_t>(_p.shuffle * _p.node_count);
    for (std::size_t i = 0; i < limit && i + 1 < order.size(); ++i) {
        const std::size_t j = i + rng.nextBounded(order.size() - i);
        std::swap(order[i], order[j]);
    }

    _heads.assign(nchains, 0);
    for (unsigned c = 0; c < nchains; ++c) {
        const std::size_t begin = c * order.size() / nchains;
        const std::size_t end = (c + 1) * order.size() / nchains;
        for (std::size_t i = begin; i < end; ++i) {
            const Addr node = nodeAddr(order[i]);
            const Addr next =
                nodeAddr(order[i + 1 < end ? i + 1 : begin]);
            img.write(node + _p.next_offset, next);
            // First payload word, mode-consistent.
            if (_p.node_bytes >= 16) {
                const Addr payload =
                    node + (_p.next_offset == 0 ? 8 : 0);
                img.write(payload,
                          storeValue(_p.payload_values, payload, rng));
            }
        }
        _heads[c] = nodeAddr(order[begin]);
    }
    _turn = 0;
    _payload_node = _heads[0];
    _payload_left = 0;
}

MemRef
PointerChaseKernel::next(MemoryImage &img, Rng &rng)
{
    MemRef ref;
    if (_payload_left > 0) {
        // Touch payload fields of the node just reached.
        --_payload_left;
        const std::uint64_t words = _p.node_bytes / 8;
        const Addr a = _payload_node + 8 * rng.nextBounded(words);
        ref.addr = a;
        ref.slot = 1;
        if (a != _payload_node + _p.next_offset &&
            rng.chance(_p.write_frac)) {
            ref.store = true;
            ref.store_value = storeValue(_p.payload_values, a, rng);
            ref.slot = 2;
        }
        return ref;
    }

    // Follow the next pointer of the chain whose turn it is: a load
    // serially dependent on that chain's previous link load.
    const Addr link = _heads[_turn] + _p.next_offset;
    ref.addr = link;
    ref.slot = 0;
    ref.serial_dep = true;
    // Multi-chain walks serialize per chain, not globally: keys 1..7
    // keep each chain's link loads in their own dependence chain
    // (setup() capped the chain count) while the single-chain case
    // stays on the classic key 0.
    if (_heads.size() > 1)
        ref.dep_key = static_cast<std::uint8_t>(1 + _turn);
    const Word next = img.read(link);
    if (looksLikeHeapPointer(next))
        _heads[_turn] = next;
    else
        _heads[_turn] = nodeAddr(0); // corrupted by a payload write:
                                     // restart
    _payload_node = _heads[_turn];
    _payload_left = static_cast<unsigned>(
        rng.nextGeometric(_p.payload_touches + 0.01) - 1);
    _turn = (_turn + 1) % static_cast<unsigned>(_heads.size());
    return ref;
}

// ----------------------------------------------------------- MarkovChain

void
MarkovChainKernel::setup(MemoryImage &img, Rng &rng)
{
    _succ.assign(_p.states * _p.fanout, 0);
    for (std::uint64_t s = 0; s < _p.states; ++s)
        for (unsigned f = 0; f < _p.fanout; ++f)
            _succ[s * _p.fanout + f] =
                static_cast<std::uint32_t>(rng.nextBounded(_p.states));
    _state = 0;
    seedRegion(img, _p.base, _p.states * _p.state_bytes, _p.values, rng);
}

MemRef
MarkovChainKernel::next(MemoryImage &img, Rng &rng)
{
    (void)img;
    MemRef ref;
    ref.addr = _p.base + _state * _p.state_bytes +
               8 * rng.nextBounded(_p.state_bytes / 8);
    ref.slot = 0;
    // The next reference depends on processing this one (LZ77 match
    // chains): the access sequence is serialized, which is what makes
    // correlation prefetching — not wider windows — the cure.
    ref.serial_dep = true;
    if (rng.chance(_p.write_frac)) {
        ref.store = true;
        ref.store_value = storeValue(_p.values, ref.addr, rng);
    }

    unsigned pick = 0;
    if (!rng.chance(_p.primary_prob))
        pick = 1 + static_cast<unsigned>(rng.nextBounded(_p.fanout - 1));
    _state = _succ[_state * _p.fanout + pick % _p.fanout];
    return ref;
}

// ---------------------------------------------------------------- Random

void
RandomKernel::setup(MemoryImage &img, Rng &rng)
{
    seedRegion(img, _p.base, std::min<std::uint64_t>(_p.bytes, 1 << 20),
               _p.values, rng);
}

MemRef
RandomKernel::next(MemoryImage &img, Rng &rng)
{
    (void)img;
    MemRef ref;
    ref.addr = _p.base + 8 * rng.nextBounded(_p.bytes / 8);
    if (rng.chance(_p.write_frac)) {
        ref.store = true;
        ref.store_value = storeValue(_p.values, ref.addr, rng);
        ref.slot = 1;
    }
    return ref;
}

// --------------------------------------------------------------- HotCold

void
HotColdKernel::setup(MemoryImage &img, Rng &rng)
{
    _hot_pos = 0;
    seedRegion(img, _p.base, _p.hot_bytes, _p.values, rng);
}

MemRef
HotColdKernel::next(MemoryImage &img, Rng &rng)
{
    (void)img;
    MemRef ref;
    if (rng.chance(_p.hot_frac)) {
        // Mostly-sequential walk of the hot region with small jumps.
        ref.addr = _p.base + _hot_pos;
        _hot_pos = (_hot_pos + 8 + 8 * rng.nextBounded(4)) % _p.hot_bytes;
        ref.slot = 0;
    } else {
        ref.addr = _p.base + _p.hot_bytes +
                   8 * rng.nextBounded(_p.cold_bytes / 8);
        ref.slot = 1;
    }
    if (rng.chance(_p.write_frac)) {
        ref.store = true;
        ref.store_value = storeValue(_p.values, ref.addr, rng);
    }
    return ref;
}

// ---------------------------------------------------------------- Gather

void
GatherKernel::setup(MemoryImage &img, Rng &rng)
{
    const std::uint64_t table_words = _p.table_bytes / 8;
    for (std::uint64_t i = 0; i < _p.index_entries; ++i) {
        std::uint64_t idx;
        if (_p.clustered) {
            // Runs of nearby indices: locality the L2 can exploit.
            const std::uint64_t cluster =
                rng.nextBounded(table_words / 64) * 64;
            idx = cluster + rng.nextBounded(64);
        } else {
            idx = rng.nextBounded(table_words);
        }
        img.write(indexBase() + i * 8, idx);
    }
    seedRegion(img, tableBase(),
               std::min<std::uint64_t>(_p.table_bytes, 1 << 20), _p.values,
               rng);
    _pos = 0;
    _pending_data = false;
}

MemRef
GatherKernel::next(MemoryImage &img, Rng &rng)
{
    MemRef ref;
    if (_pending_data) {
        _pending_data = false;
        ref.addr = _pending_addr;
        ref.slot = 1;
        ref.serial_dep = true; // a[b[i]]: depends on the index load
        if (rng.chance(_p.write_frac)) {
            ref.store = true;
            ref.store_value = storeValue(_p.values, ref.addr, rng);
            ref.slot = 2;
        }
        return ref;
    }

    const Addr idx_addr = indexBase() + _pos * 8;
    _pos = (_pos + 1) % _p.index_entries;
    ref.addr = idx_addr;
    ref.slot = 0;

    const Word idx = img.read(idx_addr) % (_p.table_bytes / 8);
    _pending_addr = tableBase() + idx * 8;
    _pending_data = true;
    return ref;
}

} // namespace microlib
