#include "trace/spec_suite.hh"

#include <map>

#include "sim/logging.hh"

namespace microlib
{

namespace
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/** Convenience builders for kernel factories. */
auto
stream(Addr base, std::uint64_t bytes, std::int64_t stride,
       double write_frac = 0.0, ValueMode vm = ValueMode::Garbage)
{
    StreamKernel::Params p;
    p.base = base;
    p.bytes = bytes;
    p.stride = stride;
    p.write_frac = write_frac;
    p.values = vm;
    return [p] { return std::unique_ptr<PatternKernel>(
        new StreamKernel(p)); };
}

auto
multi(Addr base, std::uint64_t array_bytes,
      std::vector<std::int64_t> strides, bool write_stream = true,
      ValueMode vm = ValueMode::Garbage)
{
    MultiStrideKernel::Params p;
    p.base = base;
    p.array_bytes = array_bytes;
    p.strides = std::move(strides);
    p.has_write_stream = write_stream;
    p.values = vm;
    return [p] { return std::unique_ptr<PatternKernel>(
        new MultiStrideKernel(p)); };
}

auto
chase(Addr base, std::uint64_t node_bytes, std::uint64_t node_count,
      std::uint64_t next_offset, double shuffle, double payload_touches,
      ValueMode payload_vm = ValueMode::Garbage, double write_frac = 0.1,
      unsigned chains = 1)
{
    PointerChaseKernel::Params p;
    p.base = base;
    p.node_bytes = node_bytes;
    p.node_count = node_count;
    p.next_offset = next_offset;
    p.shuffle = shuffle;
    p.payload_touches = payload_touches;
    p.payload_values = payload_vm;
    p.write_frac = write_frac;
    p.chains = chains;
    return [p] { return std::unique_ptr<PatternKernel>(
        new PointerChaseKernel(p)); };
}

auto
markov(Addr base, std::uint64_t states, std::uint64_t state_bytes,
       unsigned fanout, double primary, ValueMode vm = ValueMode::Frequent)
{
    MarkovChainKernel::Params p;
    p.base = base;
    p.states = states;
    p.state_bytes = state_bytes;
    p.fanout = fanout;
    p.primary_prob = primary;
    p.values = vm;
    return [p] { return std::unique_ptr<PatternKernel>(
        new MarkovChainKernel(p)); };
}

auto
randomK(Addr base, std::uint64_t bytes, double write_frac = 0.2,
        ValueMode vm = ValueMode::Garbage)
{
    RandomKernel::Params p;
    p.base = base;
    p.bytes = bytes;
    p.write_frac = write_frac;
    p.values = vm;
    return [p] { return std::unique_ptr<PatternKernel>(
        new RandomKernel(p)); };
}

auto
hotcold(Addr base, std::uint64_t hot, std::uint64_t cold,
        double hot_frac, double write_frac = 0.3,
        ValueMode vm = ValueMode::Frequent)
{
    HotColdKernel::Params p;
    p.base = base;
    p.hot_bytes = hot;
    p.cold_bytes = cold;
    p.hot_frac = hot_frac;
    p.write_frac = write_frac;
    p.values = vm;
    return [p] { return std::unique_ptr<PatternKernel>(
        new HotColdKernel(p)); };
}

auto
gather(Addr base, std::uint64_t index_entries, std::uint64_t table_bytes,
       bool clustered, double write_frac = 0.05,
       ValueMode vm = ValueMode::Garbage)
{
    GatherKernel::Params p;
    p.base = base;
    p.index_entries = index_entries;
    p.table_bytes = table_bytes;
    p.clustered = clustered;
    p.write_frac = write_frac;
    p.values = vm;
    return [p] { return std::unique_ptr<PatternKernel>(
        new GatherKernel(p)); };
}

/** Shorthand for a segment list looping from index @p loop_from. */
SpecProgram
base(const std::string &name, std::uint64_t seed, double mem_ratio,
     double fp_frac)
{
    SpecProgram p;
    p.name = name;
    p.seed = seed;
    p.mem_ratio = mem_ratio;
    p.fp_frac = fp_frac;
    p.nominal_length = 16'000'000;
    return p;
}

std::vector<SpecProgram>
buildSuite()
{
    std::vector<SpecProgram> suite;
    const Addr B = heap_base;

    // Footprints are sized for the 1:250 trace scale (DESIGN.md §6):
    // large enough that the aggregate working set dwarfs the 1 MB L2,
    // small enough that arrays and pointer cycles are revisited a few
    // times inside a 2 M-instruction window — history-based
    // mechanisms (Markov, DBCP, TK, TCP) need those revisits exactly
    // as they need them across a full SPEC run.

    // ----------------------------------------------------------- ammp
    // Molecular dynamics over linked structs; the next pointer sits
    // 88 bytes into a 128-byte node, one line past what a 64 B-line
    // CDP prefetch brings in (the paper's CDP failure case). The
    // 3 MB chase cycle repeats ~3x per window, so miss sequences
    // recur and Markov-style correlation wins here (paper: Markov
    // outperforms all others on ammp).
    {
        auto p = base("ammp", 101, 0.34, 0.55);
        p.stack_frac = 0.45;
        p.kernels = {
            chase(B, 128, 24 * 1024, 88, 1.0, 0.6, ValueMode::Pointer),
            stream(B + 64 * MiB, 1 * MiB, 8, 0.2),
        };
        p.segments = {{0, 1'500'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // ---------------------------------------------------------- applu
    // Implicit CFD solver: several strided array sweeps plus a write
    // stream; classic stride-prefetcher food, memory bound.
    {
        auto p = base("applu", 102, 0.38, 0.65);
        p.stack_frac = 0.40;
        p.kernels = {
            multi(B, 768 * KiB, {8, 8, 40, 8}),
            multi(B + 64 * MiB, 512 * KiB, {8, 8}),
        };
        p.segments = {{0, 2'000'000}, {1, 500'000}};
        suite.push_back(std::move(p));
    }

    // ----------------------------------------------------------- apsi
    // Meteorology code: mixed-stride sweeps with phase alternation;
    // high mechanism sensitivity in the paper.
    {
        auto p = base("apsi", 103, 0.36, 0.6);
        p.stack_frac = 0.42;
        p.kernels = {
            multi(B, 768 * KiB, {8, 24, 8}),
            multi(B + 64 * MiB, 1 * MiB, {96, 8}),
            stream(B + 128 * MiB, 512 * KiB, 8, 0.4),
        };
        p.segments = {{0, 900'000}, {1, 700'000}, {2, 400'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------------ art
    // Neural-net image recognition: repeated sweeps of an index array
    // gathering from an L2-straddling codebook; very sensitive to
    // prefetching and to the TCP buffer pathology (Fig. 10).
    {
        auto p = base("art", 104, 0.42, 0.5);
        p.stack_frac = 0.45;
        p.kernels = {
            gather(B, 1 << 15, 1536 * KiB, true, 0.05),
            stream(B + 32 * MiB, 512 * KiB, 8, 0.1),
        };
        p.segments = {{0, 1'200'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // --------------------------------------------------------- equake
    // Earthquake FEM: sparse-matrix pointer structure walked in a
    // repeatable order plus dense vectors; the pointer loads make it
    // one of the benchmarks CDP actually helps (paper: 1.11).
    {
        auto p = base("equake", 105, 0.40, 0.6);
        p.stack_frac = 0.45;
        p.kernels = {
            chase(B, 64, 48 * 1024, 0, 0.4, 1.0, ValueMode::Garbage),
            multi(B + 64 * MiB, 768 * KiB, {8, 8}),
        };
        p.segments = {{0, 1'000'000}, {1, 600'000}};
        suite.push_back(std::move(p));
    }

    // -------------------------------------------------------- facerec
    // Face recognition: 2D correlation sweeps (unit + row strides).
    {
        auto p = base("facerec", 106, 0.35, 0.65);
        p.stack_frac = 0.45;
        p.kernels = {
            multi(B, 1 * MiB, {8, 1024}),
            hotcold(B + 64 * MiB, 256 * KiB, 2 * MiB, 0.9, 0.1),
        };
        p.segments = {{0, 1'400'000}, {1, 400'000}};
        suite.push_back(std::move(p));
    }

    // ---------------------------------------------------------- fma3d
    // Crash simulation: many arrays with mixed strides, strong write
    // traffic; highly sensitive to data-cache optimizations.
    {
        auto p = base("fma3d", 107, 0.37, 0.6);
        p.stack_frac = 0.42;
        p.kernels = {
            multi(B, 1 * MiB, {8, 8, 56, 8}, true),
            stream(B + 64 * MiB, 1 * MiB, 8, 0.5),
        };
        p.segments = {{0, 1'600'000}, {1, 400'000}};
        suite.push_back(std::move(p));
    }

    // --------------------------------------------------------- galgel
    // Fluid dynamics (Galerkin): blocked dense algebra, mostly cache
    // resident with periodic spills.
    {
        auto p = base("galgel", 108, 0.33, 0.7);
        p.stack_frac = 0.6;
        p.kernels = {
            hotcold(B, 512 * KiB, 4 * MiB, 0.93, 0.2),
            multi(B + 64 * MiB, 512 * KiB, {8, 8}),
        };
        p.segments = {{0, 1'200'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // ---------------------------------------------------------- lucas
    // Lucas-Lehmer FFT: huge power-of-two strides that hammer the
    // same SDRAM rows/banks — the paper's worst-case DRAM latency
    // benchmark (389-cycle average) and the one where GHB's extra
    // traffic turns a speedup into a 0.76 slowdown.
    {
        auto p = base("lucas", 109, 0.40, 0.7);
        p.stack_frac = 0.35;
        p.kernels = {
            multi(B, 8 * MiB, {8192, 8192 + 64, 8}, true),
            // Bit-reversal reordering phase: row-granular pseudo-
            // random traffic that defeats every row buffer and backs
            // up the controller queue — the source of lucas's
            // pathological average latency.
            randomK(B + 64 * MiB, 16 * MiB, 0.3),
        };
        p.segments = {{0, 1'200'000}, {1, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ----------------------------------------------------------- mesa
    // Software OpenGL: compute bound, small hot data.
    {
        auto p = base("mesa", 110, 0.24, 0.5);
        p.stack_frac = 0.72;
        p.kernels = {
            hotcold(B, 192 * KiB, 2 * MiB, 0.97, 0.3),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ---------------------------------------------------------- mgrid
    // Multigrid solver: textbook stencil streams at several scales;
    // among the most prefetch-sensitive codes in the suite.
    {
        auto p = base("mgrid", 111, 0.41, 0.7);
        p.stack_frac = 0.40;
        p.kernels = {
            multi(B, 1 * MiB, {8, 8, 2048, 2048}, true),
            multi(B + 64 * MiB, 768 * KiB, {8, 512}, true),
        };
        p.segments = {{0, 1'800'000}, {1, 600'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------- sixtrack
    // Particle tracking: compute bound, cache resident.
    {
        auto p = base("sixtrack", 112, 0.22, 0.65);
        p.stack_frac = 0.72;
        p.kernels = {
            hotcold(B, 384 * KiB, 1 * MiB, 0.98, 0.2),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ----------------------------------------------------------- swim
    // Shallow-water stencil: three big arrays swept with unit and
    // row strides plus a write stream; memory bound, prefetch heaven.
    {
        auto p = base("swim", 113, 0.44, 0.7);
        p.stack_frac = 0.40;
        p.kernels = {
            multi(B, 1536 * KiB, {8, 8, 3072}, true),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // -------------------------------------------------------- wupwise
    // Lattice QCD dense algebra: blocked, cache friendly — the
    // paper's lowest-sensitivity FP benchmark.
    {
        auto p = base("wupwise", 114, 0.30, 0.7);
        p.stack_frac = 0.75;
        p.kernels = {
            hotcold(B, 640 * KiB, 2 * MiB, 0.985, 0.25),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ---------------------------------------------------------- bzip2
    // Block-sorting compressor: working set mostly inside L2.
    {
        auto p = base("bzip2", 115, 0.32, 0.0);
        p.stack_frac = 0.72;
        p.kernels = {
            hotcold(B, 700 * KiB, 3 * MiB, 0.975, 0.35),
            stream(B + 32 * MiB, 512 * KiB, 8, 0.5,
                   ValueMode::Frequent),
        };
        p.segments = {{0, 1'200'000}, {1, 200'000}};
        suite.push_back(std::move(p));
    }

    // --------------------------------------------------------- crafty
    // Chess search: hash tables + small hot state; low sensitivity.
    {
        auto p = base("crafty", 116, 0.28, 0.0);
        p.stack_frac = 0.78;
        p.kernels = {
            hotcold(B, 256 * KiB, 2 * MiB, 0.985, 0.3),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------------ eon
    // Ray tracer (C++): small scene data, compute bound.
    {
        auto p = base("eon", 117, 0.26, 0.1);
        p.stack_frac = 0.78;
        p.kernels = {
            hotcold(B, 200 * KiB, 1 * MiB, 0.99, 0.25),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------------ gap
    // Group theory interpreter: large table-driven workloads with
    // clustered gathers; high sensitivity in the paper.
    {
        auto p = base("gap", 118, 0.38, 0.0);
        p.stack_frac = 0.50;
        p.kernels = {
            gather(B, 1 << 16, 6 * MiB, true, 0.15),
            hotcold(B + 64 * MiB, 128 * KiB, 1 * MiB, 0.9, 0.3),
        };
        p.segments = {{0, 1'400'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------------ gcc
    // Compiler: many short phases over many data structures and a
    // large instruction footprint (code_spread models it).
    {
        auto p = base("gcc", 119, 0.33, 0.0);
        p.stack_frac = 0.55;
        p.code_spread = 96;
        p.branch_frac = 0.3;
        p.kernels = {
            chase(B, 64, 24 * 1024, 8, 0.8, 1.0, ValueMode::Pointer),
            hotcold(B + 32 * MiB, 256 * KiB, 4 * MiB, 0.9, 0.3),
            stream(B + 64 * MiB, 512 * KiB, 8, 0.4,
                   ValueMode::Frequent),
            randomK(B + 96 * MiB, 2 * MiB, 0.2),
        };
        p.segments = {{0, 400'000}, {1, 500'000}, {2, 300'000},
                      {3, 300'000}, {1, 400'000}};
        suite.push_back(std::move(p));
    }

    // ----------------------------------------------------------- gzip
    // LZ77 compressor: sliding-window references repeat with high
    // probability — exactly the first-order correlation a Markov
    // prefetcher learns (the paper: Markov wins on gzip).
    {
        auto p = base("gzip", 120, 0.36, 0.0);
        p.stack_frac = 0.55;
        p.kernels = {
            // 256 KB of window states: L2-resident (the paper reports
            // gzip's DRAM latency as the lowest of the suite), so the
            // serialized L1 misses are what correlation prefetching
            // into the L1-side buffer accelerates.
            markov(B, 4096, 64, 2, 0.85, ValueMode::Frequent),
            hotcold(B + 16 * MiB, 128 * KiB, 512 * KiB, 0.95, 0.4),
        };
        p.segments = {{0, 1'200'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------------ mcf
    // Single-source shortest paths over a huge node graph: the
    // pointer-chasing nightmare. The 32 MB graph never repeats
    // inside a window, and node payloads are full of pointers that
    // are *not* followed next, so content-directed prefetching
    // floods the bus with useless lines (paper: CDP 0.75 slowdown).
    {
        auto p = base("mcf", 121, 0.42, 0.0);
        p.stack_frac = 0.40;
        p.kernels = {
            chase(B, 128, 256 * 1024, 0, 0.6, 2.5,
                  ValueMode::Pointer, 0.15),
            stream(B + 64 * MiB, 1 * MiB, 8, 0.2),
        };
        p.segments = {{0, 1'700'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // --------------------------------------------------------- parser
    // Dictionary/linkage parser: medium pointer structures plus a
    // hot dictionary.
    {
        auto p = base("parser", 122, 0.35, 0.0);
        p.stack_frac = 0.55;
        p.kernels = {
            chase(B, 64, 48 * 1024, 0, 0.7, 1.2,
                  ValueMode::Frequent),
            hotcold(B + 32 * MiB, 384 * KiB, 2 * MiB, 0.92, 0.3),
        };
        p.segments = {{0, 800'000}, {1, 800'000}};
        suite.push_back(std::move(p));
    }

    // -------------------------------------------------------- perlbmk
    // Perl interpreter: hot interpreter loop, low miss rate.
    {
        auto p = base("perlbmk", 123, 0.30, 0.0);
        p.stack_frac = 0.78;
        p.code_spread = 32;
        p.kernels = {
            hotcold(B, 300 * KiB, 2 * MiB, 0.985, 0.35),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ---------------------------------------------------------- twolf
    // Place & route: pointer-based netlist walked in a stable order;
    // the 2 MB cycle repeats several times per window — the paper's
    // other CDP beneficiary (1.07).
    {
        auto p = base("twolf", 124, 0.37, 0.0);
        p.stack_frac = 0.55;
        p.kernels = {
            chase(B, 64, 32 * 1024, 0, 0.5, 1.5, ValueMode::Garbage),
            randomK(B + 32 * MiB, 1 * MiB, 0.25),
        };
        p.segments = {{0, 1'300'000}, {1, 300'000}};
        suite.push_back(std::move(p));
    }

    // --------------------------------------------------------- vortex
    // Object database: resident B-trees; low sensitivity.
    {
        auto p = base("vortex", 125, 0.31, 0.0);
        p.stack_frac = 0.75;
        p.kernels = {
            hotcold(B, 512 * KiB, 3 * MiB, 0.98, 0.3),
        };
        p.segments = {{0, 1'000'000}};
        suite.push_back(std::move(p));
    }

    // ------------------------------------------------------------ vpr
    // FPGA place & route: pointer structures plus randomized swaps.
    {
        auto p = base("vpr", 126, 0.36, 0.0);
        p.stack_frac = 0.55;
        p.kernels = {
            chase(B, 64, 24 * 1024, 0, 0.9, 1.0, ValueMode::Garbage),
            randomK(B + 16 * MiB, 1536 * KiB, 0.3),
            hotcold(B + 64 * MiB, 192 * KiB, 1 * MiB, 0.9, 0.3),
        };
        p.segments = {{0, 600'000}, {1, 500'000}, {2, 400'000}};
        suite.push_back(std::move(p));
    }

    return suite;
}

/**
 * Extra workloads beyond Table 4 (see spec_suite.hh). pchase is the
 * memory-latency-bound scenario: a 6 MB shuffled pointer cycle whose
 * serialized link loads expose every miss (chains = 1, zero MLP) for
 * the bulk of each pass, followed by a shorter four-chain phase where
 * independent chains overlap in the machine. Latency-reducing
 * configuration changes (L2 size, SDRAM timings, constant-latency
 * memory) move it far more than bandwidth ones — the scenario the
 * config-axis sensitivity sweeps need.
 */
std::vector<SpecProgram>
buildExtras()
{
    std::vector<SpecProgram> extras;
    const Addr B = heap_base;
    {
        auto p = base("pchase", 201, 0.40, 0.0);
        p.stack_frac = 0.25;
        p.kernels = {
            // Single chain: 96k x 64 B nodes = 6 MB, fully shuffled,
            // few payload touches — almost every reference is the
            // serially dependent link load.
            chase(B, 64, 96 * 1024, 0, 1.0, 0.2, ValueMode::Pointer,
                  0.05),
            // Four independent chains over a second region: same
            // footprint per chain, but the chains overlap in the
            // machine (MemRef::dep_key), so this phase recovers MLP.
            chase(B + 64 * MiB, 64, 96 * 1024, 0, 1.0, 0.2,
                  ValueMode::Pointer, 0.05, 4),
        };
        p.segments = {{0, 1'400'000}, {1, 400'000}};
        extras.push_back(std::move(p));
    }
    return extras;
}

const std::vector<std::string> fp_names = {
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d",
    "galgel", "lucas", "mesa", "mgrid", "sixtrack", "swim", "wupwise",
};

const std::vector<SpecProgram> &
extraSuite()
{
    static const std::vector<SpecProgram> extras = buildExtras();
    return extras;
}

} // namespace

const std::vector<SpecProgram> &
specSuite()
{
    static const std::vector<SpecProgram> suite = buildSuite();
    return suite;
}

const std::vector<std::string> &
specBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &p : specSuite())
            out.push_back(p.name);
        return out;
    }();
    return names;
}

const SpecProgram &
specProgram(const std::string &name)
{
    for (const auto &p : specSuite())
        if (p.name == name)
            return p;
    for (const auto &p : extraSuite())
        if (p.name == name)
            return p;
    fatal("unknown benchmark: ", name);
}

const std::vector<std::string> &
extraBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &p : extraSuite())
            out.push_back(p.name);
        return out;
    }();
    return names;
}

bool
isFpBenchmark(const std::string &name)
{
    for (const auto &n : fp_names)
        if (n == name)
            return true;
    return false;
}

} // namespace microlib
