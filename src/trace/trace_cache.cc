#include "trace/trace_cache.hh"

#include <chrono>

#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib
{

void
TraceCache::touchLocked(const std::string &key)
{
    auto it = _resident.find(key);
    if (it != _resident.end())
        it->second.last_use = ++_use_clock;
}

void
TraceCache::enforceBudgetLocked()
{
    if (!_budget_bytes)
        return;
    while (_resident_bytes > _budget_bytes) {
        // LRU over ready, unpinned entries only. Linear scan: the
        // cache holds at most a few dozen benchmark windows and
        // eviction is off the simulation path.
        auto victim = _resident.end();
        for (auto it = _resident.begin(); it != _resident.end();
             ++it) {
            auto pin = _pins.find(it->first);
            if (pin != _pins.end() && pin->second > 0)
                continue;
            if (victim == _resident.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (victim == _resident.end())
            return; // everything left is pinned: budget must yield
        _resident_bytes -= victim->second.bytes;
        _traces.erase(victim->first);
        _resident.erase(victim);
    }
}

TraceCache::Claim
TraceCache::claim(const std::string &key, Future &out)
{
    std::unique_lock<std::mutex> lock(_mu);
    auto it = _traces.find(key);
    if (it != _traces.end()) {
        out = it->second;
        const bool done =
            out.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready;
        if (done)
            touchLocked(key);
        return done ? Claim::Ready : Claim::Pending;
    }
    std::promise<TracePtr> promise;
    out = promise.get_future().share();
    _traces.emplace(key, out);
    _inflight.emplace(key, std::move(promise));
    return Claim::Owner;
}

TraceCache::TracePtr
TraceCache::fulfill(const std::string &key, MaterializedTrace trace)
{
    // Charge only heap-owned bytes: a mapped trace's columns belong
    // to the OS page cache, which reclaims them under pressure
    // without our help. Evicting a mapped entry therefore just drops
    // the mapping (munmap via the last shared_ptr release).
    const std::size_t bytes = trace.footprintOwnedBytes();
    TracePtr ptr =
        std::make_shared<const MaterializedTrace>(std::move(trace));
    std::promise<TracePtr> promise;
    {
        std::unique_lock<std::mutex> lock(_mu);
        auto it = _inflight.find(key);
        if (it == _inflight.end())
            panic("fulfill() without claim() for trace key ", key);
        promise = std::move(it->second);
        _inflight.erase(it);
        _resident[key] = {bytes, ++_use_clock};
        _resident_bytes += bytes;
        enforceBudgetLocked();
    }
    promise.set_value(ptr);
    return ptr;
}

void
TraceCache::fail(const std::string &key, std::exception_ptr err)
{
    std::promise<TracePtr> promise;
    {
        std::unique_lock<std::mutex> lock(_mu);
        auto it = _inflight.find(key);
        if (it == _inflight.end())
            panic("fail() without claim() for trace key ", key);
        promise = std::move(it->second);
        _inflight.erase(it);
        _traces.erase(key); // let a later caller retry
    }
    promise.set_exception(err);
}

bool
TraceCache::ready(const std::string &key) const
{
    std::unique_lock<std::mutex> lock(_mu);
    auto it = _traces.find(key);
    return it != _traces.end() &&
           it->second.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
}

TraceCache::TracePtr
TraceCache::wait(const std::string &key) const
{
    Future fut;
    {
        std::unique_lock<std::mutex> lock(_mu);
        auto it = _traces.find(key);
        if (it == _traces.end())
            panic("wait() on unclaimed trace key ", key);
        fut = it->second;
        const_cast<TraceCache *>(this)->touchLocked(key);
    }
    return fut.get();
}

TraceCache::TracePtr
TraceCache::get(const std::string &key, const Materializer &make)
{
    Future fut;
    switch (claim(key, fut)) {
      case Claim::Ready:
      case Claim::Pending:
        return fut.get();
      case Claim::Owner:
        break;
    }
    try {
        fulfill(key, make());
    } catch (...) {
        fail(key, std::current_exception());
        throw;
    }
    return fut.get();
}

void
TraceCache::evict(const std::string &key)
{
    std::unique_lock<std::mutex> lock(_mu);
    if (_inflight.count(key))
        panic("evict() of in-flight trace key ", key);
    _traces.erase(key);
    auto it = _resident.find(key);
    if (it != _resident.end()) {
        _resident_bytes -= it->second.bytes;
        _resident.erase(it);
    }
}

void
TraceCache::clear()
{
    std::unique_lock<std::mutex> lock(_mu);
    if (!_inflight.empty())
        panic("clear() with in-flight trace materializations");
    _traces.clear();
    _resident.clear();
    _resident_bytes = 0;
}

void
TraceCache::setByteBudget(std::size_t bytes)
{
    std::unique_lock<std::mutex> lock(_mu);
    _budget_bytes = bytes;
    enforceBudgetLocked();
}

std::size_t
TraceCache::byteBudget() const
{
    std::unique_lock<std::mutex> lock(_mu);
    return _budget_bytes;
}

std::size_t
TraceCache::residentBytes() const
{
    std::unique_lock<std::mutex> lock(_mu);
    return _resident_bytes;
}

void
TraceCache::pin(const std::string &key)
{
    std::unique_lock<std::mutex> lock(_mu);
    ++_pins[key];
}

void
TraceCache::unpin(const std::string &key)
{
    std::unique_lock<std::mutex> lock(_mu);
    auto it = _pins.find(key);
    if (it == _pins.end())
        panic("unpin() without pin() for trace key ", key);
    if (--it->second == 0) {
        _pins.erase(it);
        // The key just became an eviction candidate.
        enforceBudgetLocked();
    }
}

std::size_t
TraceCache::traceCount() const
{
    std::unique_lock<std::mutex> lock(_mu);
    return _traces.size();
}

void
TraceCache::setArena(std::shared_ptr<TraceArena> arena)
{
    std::unique_lock<std::mutex> lock(_mu);
    _arena = std::move(arena);
}

std::shared_ptr<TraceArena>
TraceCache::arena() const
{
    std::unique_lock<std::mutex> lock(_mu);
    return _arena;
}

SimPointChoice
TraceCache::simPoint(const std::string &benchmark,
                     std::uint64_t interval, unsigned k)
{
    std::string key = benchmark;
    key += '\0';
    key += std::to_string(interval);
    key += '\0';
    key += std::to_string(k);

    std::shared_future<SimPointChoice> fut;
    bool owner = false;
    std::promise<SimPointChoice> promise;
    {
        std::unique_lock<std::mutex> lock(_sp_mu);
        auto it = _simpoints.find(key);
        if (it != _simpoints.end()) {
            fut = it->second;
        } else {
            fut = promise.get_future().share();
            _simpoints.emplace(key, fut);
            owner = true;
        }
    }
    // findSimPoint profiles the whole benchmark: far too slow to run
    // under the lock, and running it twice would waste minutes.
    if (owner) {
        try {
            promise.set_value(findSimPoint(specProgram(benchmark),
                                           interval, k));
        } catch (...) {
            {
                std::unique_lock<std::mutex> lock(_sp_mu);
                _simpoints.erase(key); // let a later caller retry
            }
            promise.set_exception(std::current_exception());
        }
    }
    return fut.get();
}

std::size_t
TraceCache::simPointCount() const
{
    std::unique_lock<std::mutex> lock(_sp_mu);
    return _simpoints.size();
}

TraceCache &
TraceCache::process()
{
    static TraceCache cache;
    return cache;
}

} // namespace microlib
