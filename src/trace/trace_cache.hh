/**
 * @file
 * Thread-safe cache of materialized trace windows and SimPoint
 * choices.
 *
 * The first thread to need a trace becomes its *owner* and
 * materializes it exactly once; every other thread observes a
 * std::shared_future for the entry and can either wait on it or go
 * run unrelated work first (the experiment scheduler does the
 * latter). Entries are keyed by an opaque string that must encode
 * everything the trace depends on — benchmark plus the resolved
 * window — so two configurations with identical windows share one
 * materialization.
 *
 * Tier-2 backing (optional): setArena() attaches a persistent
 * on-disk TraceArena (trace_arena.hh). The cache itself never reads
 * or writes the arena — owners do (see
 * ExperimentEngine::materializeInto): they probe the arena before
 * materializing and publish after, then fulfill() the cache with the
 * resulting trace, mapped or generated. fulfill() charges only a
 * trace's *owned* heap bytes against the byte budget; a mapped
 * trace's column bytes live in the OS page cache, so evicting it
 * merely unmaps — the file stays warm for the next claim.
 *
 * This subsumes the old process-wide `simpoint_cache` map in
 * experiment.cc, which was written from multiple worker threads with
 * no synchronization at all.
 *
 * Byte budget (off by default): setByteBudget() caps the resident
 * bytes of *ready* traces. When an insertion or an unpin pushes the
 * total over the budget, least-recently-used entries are evicted —
 * but only entries that are not pinned. The experiment engine pins
 * each benchmark's key while the remaining TaskPlan still references
 * it and unpins on the benchmark's last pending run, so budget
 * eviction can only touch traces no pending task needs: full-suite
 * sweeps on small hosts trade re-materialization time for memory,
 * never correctness. In-flight entries are never evicted, and
 * holders of a shared_ptr keep evicted traces alive regardless.
 */

#ifndef MICROLIB_TRACE_TRACE_CACHE_HH
#define MICROLIB_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "trace/simpoint.hh"
#include "trace/window.hh"

namespace microlib
{

class TraceArena;

/** Concurrent trace store with single-materialization semantics. */
class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const MaterializedTrace>;
    using Future = std::shared_future<TracePtr>;
    using Materializer = std::function<MaterializedTrace()>;

    /** Outcome of claim(): what the caller should do next. */
    enum class Claim
    {
        Owner,   ///< caller must materialize and fulfill() (or fail())
        Ready,   ///< the future already holds the trace
        Pending, ///< another thread is materializing; wait or defer
    };

    /**
     * Look up @p key; if absent, the caller becomes the owner of a
     * fresh entry and MUST later call fulfill() or fail() for it.
     * @p out always receives the entry's future.
     */
    Claim claim(const std::string &key, Future &out);

    /** Publish the owner's materialized trace for @p key and return
     *  it. Owners use the returned pointer (or their claim()-time
     *  future) rather than re-looking the key up: under a byte
     *  budget the entry may be evicted as soon as it lands. */
    TracePtr fulfill(const std::string &key, MaterializedTrace trace);

    /** Propagate a materialization failure to all waiters of @p key. */
    void fail(const std::string &key, std::exception_ptr err);

    /** True when @p key holds a trace that can be read without
     *  blocking. */
    bool ready(const std::string &key) const;

    /** Block until @p key's trace is available (fatal if the key was
     *  never claimed). */
    TracePtr wait(const std::string &key) const;

    /**
     * Blocking convenience: return the cached trace for @p key, the
     * first caller materializing it via @p make. Concurrent callers
     * for the same key run @p make exactly once.
     */
    TracePtr get(const std::string &key, const Materializer &make);

    /** Drop @p key (no-op when absent). In-flight waiters keep their
     *  shared_future alive; only the cache's reference is released. */
    void evict(const std::string &key);

    /**
     * Cap resident ready-trace bytes at @p bytes (0 = unlimited,
     * the default). Enforced immediately and on every fulfill() and
     * final unpin(). Pinned and in-flight entries never count as
     * eviction candidates (they do count toward residency).
     */
    void setByteBudget(std::size_t bytes);

    /** The current budget (0 = unlimited). */
    std::size_t byteBudget() const;

    /** Estimated resident bytes of all ready traces. */
    std::size_t residentBytes() const;

    /**
     * Protect @p key from budget eviction. Pins are counted and may
     * precede the entry's claim/fulfill (the engine pins every
     * benchmark of a plan up front). Each pin() must be balanced by
     * one unpin().
     */
    void pin(const std::string &key);

    /** Drop one pin of @p key; at zero the entry becomes an eviction
     *  candidate and the budget is re-enforced. */
    void unpin(const std::string &key);

    /** Drop every trace entry (SimPoint choices are kept: they are a
     *  few dozen bytes each and expensive to recompute). */
    void clear();

    /** Number of trace entries, ready or in flight. */
    std::size_t traceCount() const;

    /** Attach (or detach, with null) the persistent tier-2 arena.
     *  The cache only stores the handle; owners probe/publish it. */
    void setArena(std::shared_ptr<TraceArena> arena);

    /** The attached arena, or null. */
    std::shared_ptr<TraceArena> arena() const;

    /**
     * SimPoint choice for (@p benchmark, @p interval, @p k), computed
     * once per process and cached. Mutex-guarded: safe to call from
     * any worker thread, unlike the old bare map.
     */
    SimPointChoice simPoint(const std::string &benchmark,
                            std::uint64_t interval, unsigned k);

    /** Number of cached SimPoint choices. */
    std::size_t simPointCount() const;

    /** The process-wide instance backing materializeFor(). */
    static TraceCache &process();

  private:
    /** Budget metadata for one ready trace. */
    struct Residency
    {
        std::size_t bytes = 0;
        std::uint64_t last_use = 0; ///< LRU stamp (_use_clock)
    };

    /** Bump @p key's LRU stamp. Caller holds _mu. */
    void touchLocked(const std::string &key);

    /** Evict LRU unpinned ready entries until the budget holds.
     *  Caller holds _mu. */
    void enforceBudgetLocked();

    mutable std::mutex _mu;
    std::unordered_map<std::string, Future> _traces;
    /** Promises for entries still being materialized by their owner. */
    std::unordered_map<std::string, std::promise<TracePtr>> _inflight;
    /** Bytes + LRU stamp per ready trace. */
    std::unordered_map<std::string, Residency> _resident;
    /** Pin counts (keys may be pinned before they exist). */
    std::unordered_map<std::string, std::size_t> _pins;
    std::size_t _budget_bytes = 0;   ///< 0 = unlimited
    std::size_t _resident_bytes = 0; ///< sum over _resident
    std::uint64_t _use_clock = 0;    ///< monotonic LRU counter
    /** Optional persistent tier-2 backing (may be shared across
     *  engines and, via a common directory, across processes). */
    std::shared_ptr<TraceArena> _arena;

    mutable std::mutex _sp_mu;
    /** Keyed by benchmark\0interval\0k. */
    std::unordered_map<std::string, std::shared_future<SimPointChoice>>
        _simpoints;
};

} // namespace microlib

#endif // MICROLIB_TRACE_TRACE_CACHE_HH
