/**
 * @file
 * Synthetic benchmark programs and the trace generator.
 *
 * A SpecProgram describes one SPEC CPU2000 stand-in: a set of pattern
 * kernels, a segment script (which kernel runs for how many
 * instructions, with a loop-back point so initialization phases run
 * once), and scalar knobs for instruction mix, dependence structure
 * and code footprint. SpecGenerator turns a program into an infinite,
 * deterministic stream of TraceRecords backed by a functional
 * MemoryImage.
 */

#ifndef MICROLIB_TRACE_GENERATOR_HH
#define MICROLIB_TRACE_GENERATOR_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "trace/kernels.hh"
#include "trace/memory_image.hh"
#include "trace/record.hh"

namespace microlib
{

/** Base of the synthetic code segment (instruction PCs). */
constexpr Addr code_base = 0x00400000;

/** Base of the stack/locals region (below the heap, see
 *  SpecProgram::stack_frac). */
constexpr Addr stack_base = 0x08000000;

/** One phase of a program: run kernel @c kernel for @c instructions. */
struct Segment
{
    unsigned kernel;
    std::uint64_t instructions;
};

/** Full description of a synthetic benchmark. */
struct SpecProgram
{
    std::string name;
    std::uint64_t seed = 1;

    /** Fraction of dynamic instructions that are loads/stores. */
    double mem_ratio = 0.3;
    /**
     * Fraction of memory references that hit the "stack": a small
     * high-locality region of locals, spills and temporaries. Real
     * programs direct most references there, which is what keeps
     * SPEC L1 miss rates in the single digits; the pattern kernels
     * provide the *miss* behaviour on top.
     */
    double stack_frac = 0.55;
    /** Stack region size (fits comfortably in the L1). */
    std::uint64_t stack_bytes = 8 * 1024;
    /** Fraction of compute instructions that are floating point. */
    double fp_frac = 0.0;
    /** Probability that a block ends with a branch instruction. */
    double branch_frac = 0.15;
    /** Mean register dependence distance of compute instructions. */
    double dep_mean = 3.0;
    /** Number of distinct static code copies (I-footprint knob;
     *  large values emulate gcc-like instruction working sets). */
    unsigned code_spread = 4;

    /** Nominal full-run length in instructions (BBV profiling and
     *  trace-selection experiments run over this length). */
    std::uint64_t nominal_length = 16'000'000;

    /** Kernel factories; instantiated fresh on each reset. */
    std::vector<std::function<std::unique_ptr<PatternKernel>()>> kernels;

    /** Phase script; after the last segment, execution loops back to
     *  segment @c loop_from. */
    std::vector<Segment> segments;
    unsigned loop_from = 0;
};

/**
 * Deterministic trace generator for one SpecProgram.
 *
 * The generator emits small basic blocks: a run of compute
 * instructions, one memory reference produced by the active kernel,
 * and an optional closing branch. Reference sites map to stable PCs
 * so PC-indexed mechanisms (stride prefetching, GHB) see the static
 * load sites they expect.
 */
class SpecGenerator
{
  public:
    explicit SpecGenerator(const SpecProgram &prog);

    /** Restart from instruction zero; rebuilds the memory image. */
    void reset();

    /** Produce the next instruction. */
    void next(TraceRecord &rec);

    /** Skip @p n instructions (still generated, for determinism). */
    void skip(std::uint64_t n);

    const SpecProgram &program() const { return _prog; }
    const MemoryImage &image() const { return *_image; }
    std::uint64_t emitted() const { return _emitted; }

  private:
    const SpecProgram _prog;
    Rng _rng;
    std::unique_ptr<MemoryImage> _image;
    std::vector<std::unique_ptr<PatternKernel>> _kernels;

    std::size_t _segment = 0;
    std::uint64_t _segment_left = 0;
    std::uint64_t _emitted = 0;
    /** Index of the last emitted load per dependence key
     *  (MemRef::dep_key); key 0 is every ordinary load. */
    std::array<std::uint64_t, 8> _last_load{};
    std::uint64_t _block_counter = 0;
    std::uint64_t _stack_pos = 0;   ///< rolling stack walk position
    std::uint64_t _segment_visits = 0; ///< phase instances so far

    /** Pending block records not yet handed out. */
    std::vector<TraceRecord> _block;
    std::size_t _block_pos = 0;

    void buildBlock();
    void advanceSegment();
    OpClass pickComputeOp();
    std::uint8_t depDistance();
};

} // namespace microlib

#endif // MICROLIB_TRACE_GENERATOR_HH
