#include "trace/memory_image.hh"

#include <algorithm>
#include <cstring>

namespace microlib
{

void
MemoryImage::forEachPage(
    const std::function<void(Addr, const Word *,
                             const std::uint64_t *)> &fn) const
{
    std::vector<Addr> keys;
    keys.reserve(_pages.size());
    for (const auto &kv : _pages)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (const Addr key : keys) {
        const Page &page = _pages.at(key);
        fn(key, page.words.data(), page.written_mask.data());
    }
}

void
MemoryImage::restorePage(Addr page_index, const Word *words,
                         const std::uint64_t *mask)
{
    Page &page = _pages[page_index];
    std::memcpy(page.words.data(), words,
                words_per_page * sizeof(Word));
    std::memcpy(page.written_mask.data(), mask,
                (words_per_page / 64) * sizeof(std::uint64_t));
}

Word
MemoryImage::defaultValue(Addr word_addr)
{
    // splitmix64-style finalizer: deterministic "garbage" values that
    // never look like in-image pointers (top byte forced non-heap).
    std::uint64_t z = word_addr + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z | 0xff00000000000000ull;
}

MemoryImage::Page &
MemoryImage::pageFor(Addr addr)
{
    const Addr key = addr / page_bytes;
    auto it = _pages.find(key);
    if (it == _pages.end()) {
        it = _pages.emplace(key, Page()).first;
        it->second.written_mask.fill(0);
    }
    return it->second;
}

const MemoryImage::Page *
MemoryImage::pageForConst(Addr addr) const
{
    auto it = _pages.find(addr / page_bytes);
    return it == _pages.end() ? nullptr : &it->second;
}

Word
MemoryImage::read(Addr addr) const
{
    const Addr word_addr = addr & ~Addr(7);
    const Page *page = pageForConst(addr);
    if (!page)
        return defaultValue(word_addr);
    const std::size_t idx = (addr % page_bytes) / 8;
    if (!(page->written_mask[idx / 64] & (1ull << (idx % 64))))
        return defaultValue(word_addr);
    return page->words[idx];
}

void
MemoryImage::write(Addr addr, Word value)
{
    Page &page = pageFor(addr);
    const std::size_t idx = (addr % page_bytes) / 8;
    page.words[idx] = value;
    page.written_mask[idx / 64] |= 1ull << (idx % 64);
}

bool
MemoryImage::touched(Addr addr) const
{
    const Page *page = pageForConst(addr);
    if (!page)
        return false;
    const std::size_t idx = (addr % page_bytes) / 8;
    return page->written_mask[idx / 64] & (1ull << (idx % 64));
}

void
MemoryImage::readLine(Addr addr, std::uint64_t line_bytes,
                      std::vector<Word> &out) const
{
    const Addr base = alignDown(addr, line_bytes);
    out.resize(line_bytes / 8);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = read(base + i * 8);
}

} // namespace microlib
