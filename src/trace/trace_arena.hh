/**
 * @file
 * Persistent mmap'd trace arena: materialize each window once,
 * zero-copy share across workers, shards, and runs.
 *
 * A materialized trace is a pure function of its host-stable cache
 * key (benchmark + canonical window description — see traceCacheKey
 * in core/task_plan.hh), so it belongs in a persistent store exactly
 * as fingerprinted results belong in the ResultStore. The arena is
 * that store: one file per window under a shared directory, holding
 * the column-aligned SoA payload plus the sparse memory image. A hit
 * is mmap'd read-only and *borrowed* by the returned
 * MaterializedTrace — the hot-loop TraceView points straight into
 * the mapping, every process sharing the directory shares one page
 * cache copy, and nothing is deserialized but the image pages.
 *
 * File format (docs/TRACE_ARENA.md):
 *
 *   [ArenaHeader]                  fixed-size, little-endian
 *   [key bytes][benchmark bytes]   identity (keys embed NULs: length-
 *                                  prefixed, never NUL-terminated)
 *   ...zero padding to a 64-byte boundary...
 *   [pc u32[n]]  [addr u32[n]]  [value u64[n]]      each column
 *   [op u8[n]]   [dep1 u8[n]]  [dep2 u8[n]]         64-byte aligned
 *   [image pages: {page_index u64, words u64[512], mask u64[8]}...]
 *                                  sorted by page index
 *
 * Integrity: a four-lane word-wise FNV-style checksum over
 * everything after the header (see checksumBytes in trace_arena.cc
 * — lanes keep validation off the warm path's critical millisecond),
 * verified on every load; a truncated, bit-flipped, foreign-schema
 * or wrong-key file is rejected (tryLoad returns null) and the
 * caller transparently regenerates. Invalidation is a schema-version
 * bump: readers ignore files of any other version.
 *
 * Publishing is write-to-tmp + atomic rename, so concurrent writers
 * race harmlessly: publish() re-probes the target first (first
 * writer wins), and because the payload is a deterministic function
 * of the key, a lost race still leaves one valid file. Readers never
 * observe a partial file.
 */

#ifndef MICROLIB_TRACE_TRACE_ARENA_HH
#define MICROLIB_TRACE_TRACE_ARENA_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "trace/window.hh"

namespace microlib
{

/** RAII read-only mmap of one arena file. MaterializedTrace holds a
 *  shared_ptr to keep the borrowed column spans alive; the last
 *  release munmaps (a budget "eviction" of a mapped trace frees
 *  address space only — the OS page cache owns the bytes). */
class MappedFile
{
  public:
    /** Map @p path read-only; null on any failure (open/stat/mmap).
     */
    static std::shared_ptr<const MappedFile>
    map(const std::string &path);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::uint8_t *data() const { return _data; }
    std::size_t size() const { return _size; }

  private:
    MappedFile(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
    }

    const std::uint8_t *_data = nullptr;
    std::size_t _size = 0;
};

/** Arena telemetry (per-TraceArena instance, cumulative). */
struct TraceArenaStats
{
    std::size_t hits = 0;      ///< tryLoad() returned a mapped trace
    std::size_t misses = 0;    ///< no file for the key
    std::size_t rejected = 0;  ///< file present but failed validation
    std::size_t published = 0; ///< publish() wrote a new file
};

/** On-disk store of materialized trace windows, keyed by the
 *  host-stable trace-cache key. Thread-safe; the directory may be
 *  shared by any number of concurrent processes. */
class TraceArena
{
  public:
    /** Format version: bump on ANY layout or semantic change (that
     *  is the entire invalidation story — old files are simply
     *  ignored and regenerated). */
    static constexpr std::uint32_t schema_version = 1;

    /** Open (create if needed) the arena at @p dir. */
    explicit TraceArena(std::string dir);

    const std::string &dir() const { return _dir; }

    /** The file a given key lives at: <dir>/<fnv64(key)>.mltrace.
     *  Keys embed NUL bytes, so the name is the key's hash; the full
     *  key is stored (and verified) inside the file. */
    std::string pathFor(const std::string &key) const;

    /**
     * Probe the arena for @p key. On a hit, returns a
     * MaterializedTrace whose SoA columns are borrowed spans into a
     * read-only mapping of the file (the trace keeps the mapping
     * alive) and whose memory image is rebuilt from the stored
     * pages. Returns nullopt on a miss or on any validation failure
     * — wrong magic/schema/key, size mismatch, checksum mismatch —
     * in which case the caller should regenerate (and republish).
     */
    std::optional<MaterializedTrace>
    tryLoad(const std::string &key);

    /**
     * Serialize @p trace and publish it under @p key via tmp +
     * atomic rename. First writer wins: if a valid file for the key
     * already exists, nothing is written. Returns false (with a
     * warning) on I/O failure — the arena is an accelerator, never a
     * correctness dependency, so callers proceed with their owned
     * trace.
     */
    bool publish(const std::string &key,
                 const MaterializedTrace &trace);

    TraceArenaStats stats() const;

  private:
    std::string _dir;
    mutable std::mutex _mu; ///< guards _stats only
    TraceArenaStats _stats;
};

} // namespace microlib

#endif // MICROLIB_TRACE_TRACE_ARENA_HH
