/**
 * @file
 * Basic Block Vector (BBV) profiling, per Sherwood et al. (the
 * SimPoint methodology the paper uses for trace selection).
 *
 * The nominal full run of a benchmark is split into fixed-size
 * instruction intervals; for each interval we count executed
 * instructions per basic block and L1-normalize, yielding one vector
 * per interval. SimPoint then clusters these vectors.
 */

#ifndef MICROLIB_TRACE_BBV_HH
#define MICROLIB_TRACE_BBV_HH

#include <cstdint>
#include <vector>

#include "trace/generator.hh"

namespace microlib
{

/** Dimensionality of BBVs (basic block ids are folded into this). */
constexpr std::size_t bbv_dims = 1024;

/** One profile: interval length plus one normalized vector/interval. */
struct BbvProfile
{
    std::uint64_t interval_length = 0;
    std::vector<std::vector<float>> vectors;
};

/**
 * Run @p prog for @p total_instructions and collect BBVs.
 *
 * @param prog benchmark description
 * @param total_instructions profiled run length
 * @param interval_length instructions per interval
 */
BbvProfile collectBbv(const SpecProgram &prog,
                      std::uint64_t total_instructions,
                      std::uint64_t interval_length);

/** Euclidean distance between two BBVs. */
double bbvDistance(const std::vector<float> &a,
                   const std::vector<float> &b);

} // namespace microlib

#endif // MICROLIB_TRACE_BBV_HH
