#include "trace/simpoint.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace microlib
{

KMeansResult
kMeans(const std::vector<std::vector<float>> &vectors, unsigned k,
       unsigned max_iters, std::uint64_t seed)
{
    KMeansResult res;
    const std::size_t n = vectors.size();
    if (n == 0)
        fatal("kMeans: no input vectors");
    k = static_cast<unsigned>(std::min<std::size_t>(k, n));

    // k-means++ style seeding: first centroid is point 0 (deterministic),
    // each further centroid is the point with maximal distance to its
    // nearest chosen centroid, tie-broken by index.
    Rng rng(seed);
    std::vector<std::size_t> centers;
    centers.push_back(rng.nextBounded(n));
    std::vector<double> best_dist(n, std::numeric_limits<double>::max());
    while (centers.size() < k) {
        for (std::size_t i = 0; i < n; ++i)
            best_dist[i] = std::min(
                best_dist[i], bbvDistance(vectors[i],
                                          vectors[centers.back()]));
        std::size_t far = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (best_dist[i] > best_dist[far])
                far = i;
        centers.push_back(far);
    }
    for (auto c : centers)
        res.centroids.push_back(vectors[c]);

    res.assignment.assign(n, 0);
    for (unsigned iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        // Assignment step.
        for (std::size_t i = 0; i < n; ++i) {
            int best = 0;
            double bd = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < res.centroids.size(); ++c) {
                const double d = bbvDistance(vectors[i], res.centroids[c]);
                if (d < bd) {
                    bd = d;
                    best = static_cast<int>(c);
                }
            }
            if (res.assignment[i] != best) {
                res.assignment[i] = best;
                changed = true;
            }
        }
        // Update step.
        const std::size_t dims = vectors[0].size();
        std::vector<std::vector<double>> sums(
            res.centroids.size(), std::vector<double>(dims, 0.0));
        std::vector<std::uint64_t> counts(res.centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[res.assignment[i]];
            for (std::size_t d = 0; d < dims; ++d)
                sums[res.assignment[i]][d] += vectors[i][d];
        }
        for (std::size_t c = 0; c < res.centroids.size(); ++c) {
            if (counts[c] == 0)
                continue; // empty cluster keeps its old centroid
            for (std::size_t d = 0; d < dims; ++d)
                res.centroids[c][d] =
                    static_cast<float>(sums[c][d] / counts[c]);
        }
        if (!changed)
            break;
    }

    res.cluster_sizes.assign(res.centroids.size(), 0);
    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ++res.cluster_sizes[res.assignment[i]];
        const double d =
            bbvDistance(vectors[i], res.centroids[res.assignment[i]]);
        res.inertia += d * d;
    }
    return res;
}

SimPointChoice
findSimPoint(const SpecProgram &prog, std::uint64_t interval_length,
             unsigned k)
{
    const BbvProfile profile =
        collectBbv(prog, prog.nominal_length, interval_length);
    const KMeansResult km = kMeans(profile.vectors, k);

    // Most populated cluster.
    std::size_t big = 0;
    for (std::size_t c = 1; c < km.cluster_sizes.size(); ++c)
        if (km.cluster_sizes[c] > km.cluster_sizes[big])
            big = c;

    // Interval closest to that cluster's centroid.
    std::size_t best_iv = 0;
    double bd = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < profile.vectors.size(); ++i) {
        if (km.assignment[i] != static_cast<int>(big))
            continue;
        const double d =
            bbvDistance(profile.vectors[i], km.centroids[big]);
        if (d < bd) {
            bd = d;
            best_iv = i;
        }
    }

    SimPointChoice choice;
    choice.interval_index = best_iv;
    choice.start_instruction = best_iv * interval_length;
    choice.clusters = static_cast<unsigned>(km.centroids.size());
    choice.dominant_weight =
        static_cast<double>(km.cluster_sizes[big]) /
        static_cast<double>(profile.vectors.size());
    return choice;
}

} // namespace microlib
