/**
 * @file
 * SimPoint trace selection (Sherwood et al., ASPLOS 2002).
 *
 * k-means clustering of interval BBVs; the simulation point is the
 * interval closest to the centroid of the most populated cluster.
 * The paper simulates a 500 M-instruction trace starting at the first
 * SimPoint; this reproduction does the same at 1:250 scale.
 */

#ifndef MICROLIB_TRACE_SIMPOINT_HH
#define MICROLIB_TRACE_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "trace/bbv.hh"
#include "trace/generator.hh"

namespace microlib
{

/** Result of k-means over BBVs. */
struct KMeansResult
{
    std::vector<int> assignment;           ///< interval -> cluster
    std::vector<std::vector<float>> centroids;
    std::vector<std::uint64_t> cluster_sizes;
    double inertia = 0.0;                  ///< sum of squared distances
};

/**
 * Lloyd's k-means with deterministic k-means++-style seeding.
 *
 * @param vectors input points
 * @param k cluster count (clamped to vectors.size())
 * @param max_iters iteration cap
 * @param seed RNG seed for the seeding step
 */
KMeansResult kMeans(const std::vector<std::vector<float>> &vectors,
                    unsigned k, unsigned max_iters = 50,
                    std::uint64_t seed = 42);

/** SimPoint choice for one benchmark. */
struct SimPointChoice
{
    std::uint64_t start_instruction = 0;   ///< where the trace begins
    std::uint64_t interval_index = 0;
    unsigned clusters = 0;
    double dominant_weight = 0.0;          ///< share of the chosen cluster
};

/**
 * Profile @p prog over its nominal length and select the SimPoint.
 *
 * @param prog benchmark
 * @param interval_length profiling interval (instructions)
 * @param k cluster count
 */
SimPointChoice findSimPoint(const SpecProgram &prog,
                            std::uint64_t interval_length,
                            unsigned k = 4);

} // namespace microlib

#endif // MICROLIB_TRACE_SIMPOINT_HH
