/**
 * @file
 * CDPSP — CDP + Stride Prefetching combination (Cooksey et al. 2002),
 * at the L2.
 *
 * The CDP article proposes pairing the pointer prefetcher with a
 * conventional stride engine so regular traffic is covered too;
 * Table 3 gives each engine its own request queue (SP: 1, CDP: 128).
 * The paper notes the combination "can be appropriate for a larger
 * range of benchmarks" (Table 6).
 */

#ifndef MICROLIB_MECHANISMS_CDP_SP_HH
#define MICROLIB_MECHANISMS_CDP_SP_HH

#include "mechanisms/cdp.hh"
#include "mechanisms/stride_prefetch.hh"

namespace microlib
{

/** Combined content-directed + stride prefetcher. */
class CdpSp : public CacheMechanism
{
  public:
    CdpSp(const MechanismConfig &cfg);

    void bind(Hierarchy &hier) override;

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;
    bool wantsLineContent(CacheLevel lvl) const override;
    void lineContent(CacheLevel lvl, Addr line,
                     const std::vector<Word> &words, AccessKind cause,
                     Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;
    void registerStats(StatSet &stats) const override;

  private:
    StridePrefetch _sp;
    Cdp _cdp;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_CDP_SP_HH
