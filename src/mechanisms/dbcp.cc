#include "mechanisms/dbcp.hh"

namespace microlib
{

Dbcp::Dbcp(const MechanismConfig &cfg) : Dbcp(cfg, Params())
{
}

Dbcp::Dbcp(const MechanismConfig &cfg, const Params &p)
    : CacheMechanism("DBCP", cfg), _p(p), _fixed(!cfg.second_guess),
      _effective_entries(_fixed ? p.table_entries : p.table_entries / 2),
      _queue(p.request_queue),
      _corr(_effective_entries)
{
}

void
Dbcp::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    const auto &l1 = hier.params().l1d;
    _l1_sets = l1.size / (l1.line * l1.assoc);
    _frames.assign(l1.size / l1.line, FrameState{});
    _pending.assign(_l1_sets, PendingDeath{});
    _buffer = std::make_unique<LineBuffer>(_p.buffer_lines, l1.line);
}

std::uint64_t
Dbcp::frameIndex(Addr line) const
{
    // Direct-mapped L1 in the baseline: frame == set. With higher
    // associativity we track one signature per set, an acceptable
    // approximation documented in DESIGN.md.
    return (line / hier()->params().l1d.line) % _frames.size();
}

std::uint32_t
Dbcp::updateSignature(std::uint32_t sig, Addr pc) const
{
    std::uint32_t enc = static_cast<std::uint32_t>(pc >> 2);
    if (_fixed) {
        // The article omitted this pre-hash; without it, nearby PCs
        // alias heavily in the correlation table (the reverse-
        // engineering error the authors helped the paper fix).
        enc *= 0x9e3779b9u;
        enc ^= enc >> 16;
    }
    return (sig << 1) ^ enc;
}

std::uint64_t
Dbcp::corrKey(Addr line, std::uint32_t sig) const
{
    return ((line >> 5) * 0x9e3779b97f4a7c15ull) ^ sig;
}

Dbcp::CorrEntry *
Dbcp::findCorr(std::uint64_t key)
{
    const std::uint64_t sets = _effective_entries / _p.table_assoc;
    const std::uint64_t set = key % sets;
    for (unsigned w = 0; w < _p.table_assoc; ++w) {
        CorrEntry &e = _corr[set * _p.table_assoc + w];
        if (e.key == key)
            return &e;
    }
    return nullptr;
}

Dbcp::CorrEntry &
Dbcp::allocCorr(std::uint64_t key)
{
    const std::uint64_t sets = _effective_entries / _p.table_assoc;
    const std::uint64_t set = key % sets;
    CorrEntry *victim = &_corr[set * _p.table_assoc];
    for (unsigned w = 0; w < _p.table_assoc; ++w) {
        CorrEntry &e = _corr[set * _p.table_assoc + w];
        if (e.key == key)
            return e;
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    victim->key = key;
    victim->confidence = 0;
    victim->successor = 0;
    return *victim;
}

void
Dbcp::learn(Addr dead_line, std::uint32_t sig, Addr successor)
{
    const std::uint64_t key = corrKey(dead_line, sig);
    CorrEntry &e = allocCorr(key);
    ++table_writes;
    const auto succ_id = static_cast<std::uint32_t>(successor >> 5);
    if (e.successor == succ_id) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        if (e.confidence > 0 && _fixed) {
            // Stale signature: decay instead of thrashing (the
            // second documented omission in the article).
            --e.confidence;
        } else {
            e.successor = succ_id;
            e.confidence = 1;
        }
    }
    e.stamp = ++_tick;
}

void
Dbcp::maybePredict(Addr line, std::uint32_t sig, Cycle now)
{
    const std::uint64_t key = corrKey(line, sig);
    ++table_reads;
    CorrEntry *e = findCorr(key);
    if (!e || e->confidence < 2)
        return;
    e->stamp = ++_tick;
    const Addr target = static_cast<Addr>(e->successor) << 5;
    issueBufferFetch(_queue, *_buffer, target, now);
}

void
Dbcp::cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                  bool first_use)
{
    (void)first_use;
    if (lvl != CacheLevel::L1D)
        return;
    if (!hit) {
        // The first access of the new generation contributes to its
        // signature too; the refill hook picks it up.
        _last_miss_pc = req.pc;
        return;
    }
    const Addr line = l1LineAddr(req.addr);
    FrameState &f = _frames[frameIndex(line)];
    if (f.line != line) {
        // The frame changed under us (side fill path): restart.
        f.line = line;
        f.signature = 0;
    }
    f.signature = updateSignature(f.signature, req.pc);
    maybePredict(line, f.signature, req.when);
}

void
Dbcp::cacheEvict(CacheLevel lvl, Addr line, bool dirty, Cycle now)
{
    (void)dirty;
    (void)now;
    if (lvl != CacheLevel::L1D)
        return;
    FrameState &f = _frames[frameIndex(line)];
    PendingDeath &pd = _pending[(line / hier()->params().l1d.line) %
                                _l1_sets];
    pd.line = line;
    pd.signature = (f.line == line) ? f.signature : 0;
    pd.valid = true;
}

void
Dbcp::cacheRefill(CacheLevel lvl, Addr line, AccessKind cause,
                  Cycle now)
{
    (void)cause;
    (void)now;
    if (lvl != CacheLevel::L1D)
        return;
    const std::uint64_t set =
        (line / hier()->params().l1d.line) % _l1_sets;
    PendingDeath &pd = _pending[set];
    if (pd.valid && pd.line != line) {
        learn(pd.line, pd.signature, line);
        pd.valid = false;
    }
    FrameState &f = _frames[frameIndex(line)];
    f.line = line;
    // Generations of lines that are only ever missed (pointer
    // chains) still get a one-PC signature and an immediate death
    // check — without this, miss-dominated lines never predict.
    f.signature = updateSignature(0, _last_miss_pc);
    maybePredict(line, f.signature, now);
}

bool
Dbcp::cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                     Cycle &extra_latency)
{
    if (lvl != CacheLevel::L1D || !_buffer)
        return false;
    if (_buffer->probeAndTake(line, now, extra_latency)) {
        ++side_hits;
        return true;
    }
    return false;
}

std::vector<SramSpec>
Dbcp::hardware() const
{
    // Correlation entry: key tag ~4 B + successor 4 B + conf: ~8 B.
    return {
        {"dbcp.correlation_table",
         static_cast<std::uint64_t>(_effective_entries) * 8,
         _p.table_assoc, 1},
        {"dbcp.history", _p.history_entries * 8, 1, 1},
        {"dbcp.buffer",
         _p.buffer_lines * (hier() ? hier()->params().l1d.line : 32),
         0, 1},
    };
}

void
Dbcp::describe(ParamTable &t) const
{
    t.section("Dead-Block Correlating Prefetcher");
    t.add("History entries", _p.history_entries);
    t.add("Correlation entries", _effective_entries);
    t.add("Correlation assoc", _p.table_assoc);
    t.add("Request Queue Size", _p.request_queue);
    t.add("Variant", _fixed ? "fixed" : "initial (second-guessed)");
}

} // namespace microlib
