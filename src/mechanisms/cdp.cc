#include "mechanisms/cdp.hh"

#include "trace/kernels.hh"

namespace microlib
{

Cdp::Cdp(const MechanismConfig &cfg) : Cdp(cfg, Params())
{
}

Cdp::Cdp(const MechanismConfig &cfg, const Params &p)
    : CacheMechanism("CDP", cfg), _p(p), _queue(p.request_queue)
{
}

bool
Cdp::candidate(Word w)
{
    // The hardware filter compares the value's upper bits with the
    // base of the data segment; our synthetic heap plays that role.
    return looksLikeHeapPointer(w);
}

bool
Cdp::wantsLineContent(CacheLevel lvl) const
{
    return lvl == CacheLevel::L2;
}

void
Cdp::lineContent(CacheLevel lvl, Addr line,
                 const std::vector<Word> &words, AccessKind cause,
                 Cycle now)
{
    if (lvl != CacheLevel::L2)
        return;

    unsigned depth = 0;
    if (cause == AccessKind::Prefetch) {
        auto it = _depth.find(line);
        depth = it == _depth.end() ? _p.depth_threshold : it->second;
        if (it != _depth.end())
            _depth.erase(it);
        if (depth >= _p.depth_threshold)
            return; // recursion bound reached
    } else if (cause == AccessKind::Writeback) {
        return; // dirty evictions from L1 carry no new reachability
    }

    for (const Word w : words) {
        if (!candidate(w))
            continue;
        ++pointers_found;
        const Addr target = l2LineAddr(static_cast<Addr>(w));
        if (hier()->l2Probe(target))
            continue;
        // Record the depth *before* issuing: the refill callback for
        // the prefetched line runs inside issueL2Prefetch, and the
        // recursive scan must see its depth.
        _depth[target] = depth + 1;
        if (!issueL2Prefetch(_queue, target, 0, now))
            _depth.erase(target);
    }

    // Keep the depth map bounded: drop stale entries en masse.
    if (_depth.size() > 65536)
        _depth.clear();
}

std::vector<SramSpec>
Cdp::hardware() const
{
    // Stateless: just the scanner comparators and the request queue.
    return {
        {"cdp.request_queue", _p.request_queue * 8, 0, 1},
    };
}

void
Cdp::describe(ParamTable &t) const
{
    t.section("Content-Directed Data Prefetching");
    t.add("Prefetch Depth Threshold", _p.depth_threshold);
    t.add("Request Queue Size", _p.request_queue);
}

} // namespace microlib
