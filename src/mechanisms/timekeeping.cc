#include "mechanisms/timekeeping.hh"

namespace microlib
{

Timekeeping::Timekeeping(const MechanismConfig &cfg) : Timekeeping(cfg, Params())
{
}

Timekeeping::Timekeeping(const MechanismConfig &cfg, const Params &p)
    : CacheMechanism("TK", cfg), _p(p), _fixed(!cfg.second_guess),
      _queue(p.request_queue),
      _corr(p.corr_bytes / 8) // 8 B per entry
{
}

void
Timekeeping::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    const auto &l1 = hier.params().l1d;
    _l1_sets = l1.size / (l1.line * l1.assoc);
    _frames.assign(l1.size / l1.line, FrameState{});
    _pending_evict.assign(_l1_sets, invalid_addr);
    _buffer = std::make_unique<LineBuffer>(_p.buffer_lines, l1.line);
}

Cycle
Timekeeping::quantize(Cycle idle) const
{
    if (!_fixed)
        return idle; // second-guess: raw cycle counting
    // Hardware counts in coarse refresh ticks.
    return (idle / _p.refresh) * _p.refresh;
}

Timekeeping::CorrEntry *
Timekeeping::findCorr(Addr line)
{
    // The address correlation table is frame-anchored: table sets map
    // onto groups of L1 frames, and the 8 ways of a set hold the last
    // dying (line -> replacement) pairs observed in that frame group.
    // A cyclically re-walked working set reproduces the same pair one
    // generation later — which is what makes 8 KB of state useful for
    // megabyte footprints.
    const std::uint64_t sets = _corr.size() / _p.corr_assoc;
    const std::uint64_t set = ((line >> 5) % (sets * _p.corr_assoc)) %
                              sets;
    const std::uint64_t key = (line >> 5) * 0x9e3779b97f4a7c15ull;
    for (unsigned w = 0; w < _p.corr_assoc; ++w) {
        CorrEntry &e = _corr[set * _p.corr_assoc + w];
        if (e.key == key)
            return &e;
    }
    return nullptr;
}

void
Timekeeping::learn(Addr dead_line, Addr successor)
{
    const std::uint64_t sets = _corr.size() / _p.corr_assoc;
    const std::uint64_t set =
        ((dead_line >> 5) % (sets * _p.corr_assoc)) % sets;
    const std::uint64_t key =
        (dead_line >> 5) * 0x9e3779b97f4a7c15ull;
    CorrEntry *victim = &_corr[set * _p.corr_assoc];
    for (unsigned w = 0; w < _p.corr_assoc; ++w) {
        CorrEntry &e = _corr[set * _p.corr_assoc + w];
        if (e.key == key) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    victim->key = key;
    victim->successor = static_cast<std::uint32_t>(successor >> 5);
    victim->stamp = ++_tick;
    ++table_writes;
}

void
Timekeeping::sweepSet(std::uint64_t set, Cycle now)
{
    // Check the resident line of this set for death; with the
    // direct-mapped baseline L1, set == frame.
    const std::uint64_t frames_per_set = _frames.size() / _l1_sets;
    for (std::uint64_t i = 0; i < frames_per_set; ++i) {
        FrameState &f = _frames[set * frames_per_set + i];
        if (f.line == invalid_addr)
            continue;
        const Cycle idle =
            now > f.last_access ? quantize(now - f.last_access) : 0;
        if (idle < _p.threshold)
            continue;
        ++table_reads;
        if (CorrEntry *e = findCorr(f.line)) {
            const Addr target = static_cast<Addr>(e->successor) << 5;
            issueBufferFetch(_queue, *_buffer, target, now);
            // One prediction per death: reset the generation clock
            // only when a prediction was actually made.
            f.last_access = now;
        }
    }
}

void
Timekeeping::cacheAccess(CacheLevel lvl, const MemRequest &req,
                         bool hit, bool first_use)
{
    (void)first_use;
    if (lvl != CacheLevel::L1D)
        return;
    const Addr line = l1LineAddr(req.addr);
    const std::uint64_t frame =
        (line / l1LineBytes()) % _frames.size();
    if (hit) {
        FrameState &f = _frames[frame];
        f.line = line;
        f.last_access = req.when;
    }
    // The fixed build checks liveness continuously (each access
    // advances the conceptual clock); the initial build only on
    // misses, which is late.
    if (_fixed || !hit) {
        const std::uint64_t set = (line / l1LineBytes()) % _l1_sets;
        // Sweep a rotating neighbour set too, emulating the
        // background refresh walk.
        sweepSet(set, req.when);
        sweepSet((set + (_tick++ % _l1_sets)) % _l1_sets, req.when);
    }
}

void
Timekeeping::cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                        Cycle now)
{
    (void)dirty;
    (void)now;
    if (lvl != CacheLevel::L1D)
        return;
    _pending_evict[(line / l1LineBytes()) % _l1_sets] = line;
}

void
Timekeeping::cacheRefill(CacheLevel lvl, Addr line, AccessKind cause,
                         Cycle now)
{
    (void)cause;
    if (lvl != CacheLevel::L1D)
        return;
    const std::uint64_t set = (line / l1LineBytes()) % _l1_sets;
    const Addr dead = _pending_evict[set];
    if (dead != invalid_addr && dead != line) {
        learn(dead, line);
        _pending_evict[set] = invalid_addr;
    }
    const std::uint64_t frame =
        (line / l1LineBytes()) % _frames.size();
    _frames[frame].line = line;
    _frames[frame].last_access = now;
}

bool
Timekeeping::cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                            Cycle &extra_latency)
{
    if (lvl != CacheLevel::L1D || !_buffer)
        return false;
    if (_buffer->probeAndTake(line, now, extra_latency)) {
        ++side_hits;
        return true;
    }
    return false;
}

std::vector<SramSpec>
Timekeeping::hardware() const
{
    const std::uint64_t l1_lines =
        hier() ? hier()->params().l1d.size / hier()->params().l1d.line
               : 1024;
    return {
        {"tk.correlation", _p.corr_bytes, _p.corr_assoc, 1},
        {"tk.counters", l1_lines * 2, 1, 1}, // per-line timers
        {"tk.buffer",
         _p.buffer_lines * (hier() ? hier()->params().l1d.line : 32),
         0, 1},
    };
}

void
Timekeeping::describe(ParamTable &t) const
{
    t.section("Timekeeping Prefetcher");
    t.add("Address Correlation",
          std::to_string(_p.corr_bytes / 1024) + "KB, " +
              std::to_string(_p.corr_assoc) + "-way");
    t.add("TK refresh", _p.refresh);
    t.add("TK threshold", _p.threshold);
    t.add("Request Queue Size", _p.request_queue);
    t.add("Variant", _fixed ? "confirmed" : "second-guessed");
}

} // namespace microlib
