/**
 * @file
 * GHB — Global History Buffer prefetching (Nesbit & Smith 2004), at
 * the L2, PC/DC flavour (per-PC miss streams, delta correlation).
 *
 * A 256-entry FIFO holds the global L2 miss address stream; a
 * 256-entry index table maps a load PC to its most recent GHB entry,
 * and entries link backwards per PC. On a miss, the per-PC chain is
 * walked to extract recent deltas; if the two most recent deltas
 * recur earlier in the history, the deltas that followed then are
 * replayed as prefetches (up to degree 4).
 *
 * The paper finds GHB the best performer (Figure 4) but power-hungry
 * despite tiny tables (Figure 5): every miss can trigger up to four
 * requests and repeated table walks — and its extra memory pressure
 * is exactly what the SDRAM model punishes on lucas (Figure 8).
 */

#ifndef MICROLIB_MECHANISMS_GHB_HH
#define MICROLIB_MECHANISMS_GHB_HH

#include "core/mechanism.hh"

namespace microlib
{

/** GHB PC/DC prefetcher. */
class Ghb : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned it_entries = 256;  ///< Table 3
        unsigned ghb_entries = 256; ///< Table 3
        unsigned request_queue = 4; ///< Table 3
        unsigned degree = 4;        ///< prefetches per trigger
        unsigned max_chain = 16;    ///< chain walk bound per miss
    };

    explicit Ghb(const MechanismConfig &cfg);

    Ghb(const MechanismConfig &cfg, const Params &p);

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    Counter chain_walks;

  private:
    struct GhbEntry
    {
        Addr addr = 0;
        std::uint32_t prev = ~0u; ///< previous entry of same PC chain
        std::uint64_t serial = 0; ///< global push serial (validity)
    };

    struct ItEntry
    {
        Addr pc = invalid_addr;
        std::uint32_t head = ~0u;
        std::uint64_t head_serial = 0;
    };

    Params _p;
    RequestQueue _queue;
    std::vector<GhbEntry> _ghb;
    std::vector<ItEntry> _it;
    std::uint64_t _serial = 0; ///< total pushes

    void push(Addr pc, Addr addr, Cycle now);
    bool entryLive(std::uint32_t idx, std::uint64_t serial) const;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_GHB_HH
