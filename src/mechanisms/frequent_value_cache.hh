/**
 * @file
 * FVC — Frequent Value Cache (Zhang, Yang & Gupta 2000), at the L1.
 *
 * A small direct-mapped side cache that stores evicted lines whose
 * words all belong to a small set of frequent program values, in
 * compressed form (3-bit indexes into a 7-entry frequent value table
 * plus the "unknown" code). A miss that hits the FVC is served from
 * the side structure. This is the one mechanism that needs *data
 * values*, which is why the paper's SimpleScalar (address-only) runs
 * required the MicroLib value-accurate models — here, the functional
 * memory image.
 */

#ifndef MICROLIB_MECHANISMS_FREQUENT_VALUE_CACHE_HH
#define MICROLIB_MECHANISMS_FREQUENT_VALUE_CACHE_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Frequent-value compressed side cache. */
class FrequentValueCache : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned lines = 1024;  ///< Table 3
        unsigned values = 7;    ///< + unknown code
    };

    explicit FrequentValueCache(const MechanismConfig &cfg);

    FrequentValueCache(const MechanismConfig &cfg,
                       const Params &p);

    void bind(Hierarchy &hier) override;

    bool cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                        Cycle &extra_latency) override;
    void cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                    Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    /** True iff all the line's words compress (unit-test hook). */
    bool lineCompressible(Addr line) const;

    Counter compressible_evictions;
    Counter incompressible_evictions;

  private:
    Params _p;
    std::unique_ptr<LineBuffer> _buffer;

    bool isFrequent(Word w) const;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_FREQUENT_VALUE_CACHE_HH
