#include "mechanisms/ghb.hh"

#include <vector>

namespace microlib
{

Ghb::Ghb(const MechanismConfig &cfg) : Ghb(cfg, Params())
{
}

Ghb::Ghb(const MechanismConfig &cfg, const Params &p)
    : CacheMechanism("GHB", cfg), _p(p), _queue(p.request_queue),
      _ghb(p.ghb_entries), _it(p.it_entries)
{
}

bool
Ghb::entryLive(std::uint32_t idx, std::uint64_t serial) const
{
    // An entry is live while the FIFO has not wrapped past it; the
    // serial stamp detects stale links.
    if (idx == ~0u || serial == 0)
        return false;
    const GhbEntry &e = _ghb[idx % _ghb.size()];
    return e.serial == serial &&
           _serial - serial <= _ghb.size();
}

void
Ghb::push(Addr pc, Addr addr, Cycle now)
{
    ++_serial;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(_serial % _ghb.size());

    ItEntry &it = _it[(pc >> 2) % _it.size()];
    GhbEntry &e = _ghb[slot];
    e.addr = addr;
    e.serial = _serial;
    e.prev = ~0u;
    ++table_writes;

    std::uint64_t prev_serial = 0;
    if (it.pc == pc && entryLive(it.head, it.head_serial)) {
        e.prev = it.head;
        prev_serial = it.head_serial;
    } else {
        it.pc = pc;
    }
    it.head = slot;
    it.head_serial = _serial;

    // ---- delta correlation over the per-PC chain -------------------
    // Gather recent addresses: a0 (this miss), a1, a2, ... up to the
    // chain bound.
    std::vector<Addr> hist;
    hist.push_back(addr);
    std::uint32_t idx = e.prev;
    std::uint64_t ser = prev_serial;
    while (entryLive(idx, ser) && hist.size() < _p.max_chain) {
        const GhbEntry &prev = _ghb[idx % _ghb.size()];
        hist.push_back(prev.addr);
        ++chain_walks;
        ++table_reads;
        // Follow the chain; the previous entry's serial is inferred
        // from its own stored link stamp.
        const std::uint32_t next_idx = prev.prev;
        std::uint64_t next_ser = 0;
        if (next_idx != ~0u) {
            const GhbEntry &cand = _ghb[next_idx % _ghb.size()];
            next_ser = cand.serial;
            if (next_ser >= prev.serial) // link must point backwards
                break;
        }
        idx = next_idx;
        ser = next_ser;
    }

    if (hist.size() < 4)
        return;

    // Deltas: d[i] = hist[i] - hist[i+1] (most recent first).
    std::vector<std::int64_t> deltas;
    for (std::size_t i = 0; i + 1 < hist.size(); ++i)
        deltas.push_back(static_cast<std::int64_t>(hist[i]) -
                         static_cast<std::int64_t>(hist[i + 1]));

    // Find the most recent earlier occurrence of the pair
    // (deltas[1], deltas[0]).
    for (std::size_t i = 2; i + 1 < deltas.size(); ++i) {
        if (deltas[i] != deltas[0] || deltas[i + 1] != deltas[1])
            continue;
        // Replay the deltas that followed that occurrence:
        // deltas[i-1], deltas[i-2], ... are the next strides.
        Addr target = addr;
        unsigned issued = 0;
        for (std::size_t j = i; j-- > 0 && issued < _p.degree;) {
            target = static_cast<Addr>(
                static_cast<std::int64_t>(target) + deltas[j]);
            if (issueL2Prefetch(_queue, target, pc, now))
                ++issued;
        }
        return;
    }

    // Fallback: constant-stride detection on the two newest deltas.
    if (deltas[0] != 0 && deltas[0] == deltas[1]) {
        Addr target = addr;
        for (unsigned d = 0; d < _p.degree; ++d) {
            target = static_cast<Addr>(
                static_cast<std::int64_t>(target) + deltas[0]);
            issueL2Prefetch(_queue, target, pc, now);
        }
    }
}

void
Ghb::cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                 bool first_use)
{
    (void)first_use;
    if (lvl != CacheLevel::L2 || hit)
        return; // trains on the L2 miss stream
    push(req.pc, l2LineAddr(req.addr), req.when);
}

std::vector<SramSpec>
Ghb::hardware() const
{
    // GHB entry: addr 4 B + link 4 B; IT entry: pc 4 B + head 4 B.
    return {
        {"ghb.buffer", _p.ghb_entries * 8ull, 1, 1},
        {"ghb.index_table", _p.it_entries * 8ull, 1, 1},
        {"ghb.request_queue", _p.request_queue * 8ull, 0, 1},
    };
}

void
Ghb::describe(ParamTable &t) const
{
    t.section("Global History Buffer");
    t.add("IT entries", _p.it_entries);
    t.add("GHB entries", _p.ghb_entries);
    t.add("Request Queue Size", _p.request_queue);
    t.add("Degree", _p.degree);
}

} // namespace microlib
