#include "mechanisms/cdp_sp.hh"

namespace microlib
{

namespace
{

StridePrefetch::Params
spParams()
{
    StridePrefetch::Params p;
    p.pc_entries = 512;  // Table 3: SP PC entries 512
    p.request_queue = 1; // Table 3: Request Queue (SP) 1
    return p;
}

Cdp::Params
cdpParams()
{
    Cdp::Params p;
    p.depth_threshold = 3;  // Table 3
    p.request_queue = 128;  // Table 3: Request Queue (CDP) 128
    return p;
}

} // namespace

CdpSp::CdpSp(const MechanismConfig &cfg)
    : CacheMechanism("CDPSP", cfg), _sp(cfg, spParams()),
      _cdp(cfg, cdpParams())
{
}

void
CdpSp::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    _sp.bind(hier);
    _cdp.bind(hier);
}

void
CdpSp::cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                   bool first_use)
{
    _sp.cacheAccess(lvl, req, hit, first_use);
}

bool
CdpSp::wantsLineContent(CacheLevel lvl) const
{
    return _cdp.wantsLineContent(lvl);
}

void
CdpSp::lineContent(CacheLevel lvl, Addr line,
                   const std::vector<Word> &words, AccessKind cause,
                   Cycle now)
{
    _cdp.lineContent(lvl, line, words, cause, now);
}

std::vector<SramSpec>
CdpSp::hardware() const
{
    auto hw = _sp.hardware();
    const auto cdp_hw = _cdp.hardware();
    hw.insert(hw.end(), cdp_hw.begin(), cdp_hw.end());
    return hw;
}

void
CdpSp::describe(ParamTable &t) const
{
    t.section("CDP + SP");
    t.add("SP PC entries", 512);
    t.add("CDP Prefetch Depth Threshold", 3);
    t.add("Request Queue Size (SP/CDP)", "1/128");
}

void
CdpSp::registerStats(StatSet &stats) const
{
    CacheMechanism::registerStats(stats);
    _sp.registerStats(stats);
    _cdp.registerStats(stats);
}

} // namespace microlib
