#include "mechanisms/frequent_value_cache.hh"

#include "trace/kernels.hh"

namespace microlib
{

FrequentValueCache::FrequentValueCache(const MechanismConfig &cfg) : FrequentValueCache(cfg, Params())
{
}

FrequentValueCache::FrequentValueCache(const MechanismConfig &cfg,
                                       const Params &p)
    : CacheMechanism("FVC", cfg), _p(p)
{
}

void
FrequentValueCache::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    _buffer = std::make_unique<LineBuffer>(_p.lines,
                                           hier.params().l1d.line);
}

bool
FrequentValueCache::isFrequent(Word w) const
{
    for (unsigned i = 0; i < _p.values; ++i)
        if (w == frequentValue(i))
            return true;
    return false;
}

bool
FrequentValueCache::lineCompressible(Addr line) const
{
    const auto words = hier()->readLine(line, CacheLevel::L1D);
    for (const Word w : words)
        if (!isFrequent(w))
            return false;
    return true;
}

bool
FrequentValueCache::cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                                   Cycle &extra_latency)
{
    if (lvl != CacheLevel::L1D || !_buffer)
        return false;
    ++table_reads;
    if (_buffer->probeAndTake(line, now, extra_latency)) {
        // Decompression adds a cycle on top of the buffer access.
        extra_latency += 1;
        ++side_hits;
        return true;
    }
    return false;
}

void
FrequentValueCache::cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                               Cycle now)
{
    (void)dirty;
    if (lvl != CacheLevel::L1D || !_buffer)
        return;
    if (lineCompressible(line)) {
        ++compressible_evictions;
        ++table_writes;
        _buffer->insert(line, now);
    } else {
        ++incompressible_evictions;
    }
}

std::vector<SramSpec>
FrequentValueCache::hardware() const
{
    // Compressed line: words x 3 bits + ~4 B tag; plus the frequent
    // value table itself.
    const std::uint64_t line_bytes =
        hier() ? hier()->params().l1d.line : 32;
    const std::uint64_t words = line_bytes / 8;
    const std::uint64_t entry_bytes = divCeil(words * 3, 8) + 4;
    return {
        {"fvc.array", _p.lines * entry_bytes, 1, 1},
        {"fvc.value_table", _p.values * 8, 0, 1},
    };
}

void
FrequentValueCache::describe(ParamTable &t) const
{
    t.section("Frequent Value Cache");
    t.add("Number of lines", _p.lines);
    t.add("Number of frequent values",
          std::to_string(_p.values) + " + unknown value");
}

} // namespace microlib
