/**
 * @file
 * VC — Victim Cache (Jouppi 1990), attached to the L1.
 *
 * A small fully-associative cache holding recently evicted lines;
 * on an L1 miss that hits the victim cache the line swaps back,
 * converting direct-mapped conflict misses into one-cycle side hits.
 * Table 3: 512 bytes, fully associative (16 lines of 32 B).
 */

#ifndef MICROLIB_MECHANISMS_VICTIM_CACHE_HH
#define MICROLIB_MECHANISMS_VICTIM_CACHE_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Classic victim cache at the L1. */
class VictimCache : public CacheMechanism
{
  public:
    struct Params
    {
        std::uint64_t bytes = 512; ///< Table 3
    };

    explicit VictimCache(const MechanismConfig &cfg);

    VictimCache(const MechanismConfig &cfg, const Params &p);

    void bind(Hierarchy &hier) override;

    bool cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                        Cycle &extra_latency) override;
    void cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                    Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    const LineBuffer &buffer() const { return *_buffer; }

  private:
    Params _p;
    std::unique_ptr<LineBuffer> _buffer;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_VICTIM_CACHE_HH
