#include "mechanisms/tcp.hh"

namespace microlib
{

namespace
{

unsigned
resolveQueue(const MechanismConfig &cfg, const Tcp::Params &p)
{
    if (p.request_queue != 0)
        return p.request_queue;
    // The Figure 10 knob: the article left the buffer size unstated.
    // Confirmed build: 128; second-guessed build: 1.
    if (cfg.second_guess)
        return 1;
    return cfg.tcp_buffer == 0 ? 128 : cfg.tcp_buffer;
}

} // namespace

Tcp::Tcp(const MechanismConfig &cfg) : Tcp(cfg, Params())
{
}

Tcp::Tcp(const MechanismConfig &cfg, const Params &p)
    : CacheMechanism("TCP", cfg), _p(p),
      _queue(resolveQueue(cfg, p)), _tht(p.tht_sets),
      _pht(static_cast<std::size_t>(p.pht_sets) * p.pht_assoc)
{
}

std::uint64_t
Tcp::phtKey(std::uint64_t set, std::uint64_t t1, std::uint64_t t2) const
{
    std::uint64_t k = set;
    k = k * 0x9e3779b97f4a7c15ull + t1;
    k = k * 0x9e3779b97f4a7c15ull + t2;
    k ^= k >> 29;
    return k;
}

void
Tcp::cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                 bool first_use)
{
    (void)first_use;
    if (lvl != CacheLevel::L2 || hit)
        return; // trains on the L2 miss stream

    const auto &l2 = hier()->params().l2;
    const std::uint64_t l2_sets = l2.size / (l2.line * l2.assoc);
    const std::uint64_t set = (req.addr / l2.line) % l2_sets;
    const std::uint64_t tag = (req.addr / l2.line) / l2_sets;

    ThtEntry &h = _tht[set % _p.tht_sets];
    if (h.set_tag != set) {
        // Different L2 set mapped here: start a fresh history.
        h.set_tag = set;
        h.tags[0] = ~0ull;
        h.tags[1] = ~0ull;
    }
    const std::uint64_t t1 = h.tags[0];
    const std::uint64_t t2 = h.tags[1];
    ++table_reads;

    // Learn: the pattern (t2, t1) in this set is followed by `tag`.
    if (t1 != ~0ull && t2 != ~0ull) {
        const std::uint64_t key = phtKey(set, t2, t1);
        const std::uint64_t pht_set = key % _p.pht_sets;
        PhtEntry *victim = &_pht[pht_set * _p.pht_assoc];
        for (unsigned w = 0; w < _p.pht_assoc; ++w) {
            PhtEntry &e = _pht[pht_set * _p.pht_assoc + w];
            if (e.key == key) {
                victim = &e;
                break;
            }
            if (e.stamp < victim->stamp)
                victim = &e;
        }
        victim->key = key;
        victim->next_tag = tag;
        victim->stamp = ++_tick;
        ++table_writes;
    }

    // Shift the history and predict from the new pattern (t1, tag).
    h.tags[1] = t1;
    h.tags[0] = tag;

    if (t1 != ~0ull) {
        const std::uint64_t key = phtKey(set, t1, tag);
        const std::uint64_t pht_set = key % _p.pht_sets;
        for (unsigned w = 0; w < _p.pht_assoc; ++w) {
            PhtEntry &e = _pht[pht_set * _p.pht_assoc + w];
            if (e.key != key)
                continue;
            e.stamp = ++_tick;
            const Addr target =
                (e.next_tag * l2_sets + set) * l2.line;
            if (target != l2LineAddr(req.addr))
                issueL2Prefetch(_queue, target, req.pc, req.when);
            break;
        }
    }
}

std::vector<SramSpec>
Tcp::hardware() const
{
    // THT entry: 2 tags ~ 8 B.
    return {
        {"tcp.tht", static_cast<std::uint64_t>(_p.tht_sets) * 8, 1, 1},
        {"tcp.pht", _p.pht_bytes, _p.pht_assoc, 1},
        {"tcp.request_queue", _queue.capacity() * 8ull, 0, 1},
    };
}

void
Tcp::describe(ParamTable &t) const
{
    t.section("Tag Correlating Prefetching");
    t.add("THT size", std::to_string(_p.tht_sets) +
                          " sets, direct-mapped, 2 previous tags");
    t.add("PHT size", std::to_string(_p.pht_bytes / 1024) + "KB, " +
                          std::to_string(_p.pht_sets) + " set, " +
                          std::to_string(_p.pht_assoc) + " way");
    t.add("Request Queue Size", _queue.capacity());
}

} // namespace microlib
