/**
 * @file
 * Markov — Markov Prefetcher (Joseph & Grunwald 1997), at the L1.
 *
 * Records the observed successors of each miss address (up to four
 * predictions per entry, Table 3) in a 1 MB prediction table; on a
 * miss, prefetches the recorded successors into a small prefetch
 * buffer probed in parallel with the L1. The paper highlights its
 * huge table cost (Figure 5) and its strongly benchmark-dependent
 * performance: best-in-class on gzip/ammp yet poor on average
 * (Table 6 discussion).
 */

#ifndef MICROLIB_MECHANISMS_MARKOV_PREFETCH_HH
#define MICROLIB_MECHANISMS_MARKOV_PREFETCH_HH

#include "core/mechanism.hh"

namespace microlib
{

/** First-order Markov miss-address prefetcher. */
class MarkovPrefetch : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned table_entries = 65536; ///< ~1 MB with 4 predictions
        unsigned predictions = 4;       ///< Table 3
        unsigned request_queue = 16;
        unsigned buffer_lines = 128;    ///< Table 3 prefetch buffer
    };

    explicit MarkovPrefetch(const MechanismConfig &cfg);

    MarkovPrefetch(const MechanismConfig &cfg,
                   const Params &p);

    void bind(Hierarchy &hier) override;

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;
    bool cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                        Cycle &extra_latency) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

  private:
    struct Entry
    {
        Addr tag = invalid_addr;
        std::vector<std::uint32_t> succ;   ///< successor line ids
        std::vector<std::uint64_t> stamps; ///< LRU among successors
    };

    Params _p;
    RequestQueue _queue;
    std::unique_ptr<LineBuffer> _buffer;
    std::vector<Entry> _table;
    Addr _prev_miss = invalid_addr;
    std::uint64_t _tick = 0;

    Entry &entryFor(Addr line);
    void learn(Addr prev_line, Addr line);
    void predict(Addr line, Cycle now);
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_MARKOV_PREFETCH_HH
