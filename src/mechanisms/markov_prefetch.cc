#include "mechanisms/markov_prefetch.hh"

namespace microlib
{

MarkovPrefetch::MarkovPrefetch(const MechanismConfig &cfg) : MarkovPrefetch(cfg, Params())
{
}

MarkovPrefetch::MarkovPrefetch(const MechanismConfig &cfg,
                               const Params &p)
    : CacheMechanism("Markov", cfg), _p(p), _queue(p.request_queue),
      _table(p.table_entries)
{
    for (auto &e : _table) {
        e.succ.assign(_p.predictions, 0);
        e.stamps.assign(_p.predictions, 0);
    }
}

void
MarkovPrefetch::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    _buffer = std::make_unique<LineBuffer>(_p.buffer_lines,
                                           hier.params().l1d.line);
}

MarkovPrefetch::Entry &
MarkovPrefetch::entryFor(Addr line)
{
    // Direct-mapped on the line address. Multiplicative hashing must
    // index with the *high* product bits: line addresses have many
    // trailing zeros, so the low bits of the product collide.
    const std::uint64_t h =
        ((line >> 5) * 0x9e3779b97f4a7c15ull) >> 32;
    return _table[h % _table.size()];
}

void
MarkovPrefetch::learn(Addr prev_line, Addr line)
{
    Entry &e = entryFor(prev_line);
    ++table_writes;
    if (e.tag != prev_line) {
        e.tag = prev_line;
        std::fill(e.succ.begin(), e.succ.end(), 0);
        std::fill(e.stamps.begin(), e.stamps.end(), 0);
    }
    const auto id = static_cast<std::uint32_t>(line >> 5);
    // Already recorded: refresh LRU stamp.
    for (unsigned i = 0; i < _p.predictions; ++i) {
        if (e.stamps[i] != 0 && e.succ[i] == id) {
            e.stamps[i] = ++_tick;
            return;
        }
    }
    // Replace LRU slot.
    unsigned victim = 0;
    for (unsigned i = 1; i < _p.predictions; ++i)
        if (e.stamps[i] < e.stamps[victim])
            victim = i;
    e.succ[victim] = id;
    e.stamps[victim] = ++_tick;
}

void
MarkovPrefetch::predict(Addr line, Cycle now)
{
    Entry &e = entryFor(line);
    ++table_reads;
    if (e.tag != line)
        return;
    for (unsigned i = 0; i < _p.predictions; ++i) {
        if (e.stamps[i] == 0)
            continue;
        const Addr target = static_cast<Addr>(e.succ[i]) << 5;
        issueBufferFetch(_queue, *_buffer, target, now);
    }
}

void
MarkovPrefetch::cacheAccess(CacheLevel lvl, const MemRequest &req,
                            bool hit, bool first_use)
{
    (void)first_use;
    if (lvl != CacheLevel::L1D || hit)
        return;

    const Addr line = l1LineAddr(req.addr);
    if (_prev_miss != invalid_addr && _prev_miss != line)
        learn(_prev_miss, line);
    _prev_miss = line;
    predict(line, req.when);
}

bool
MarkovPrefetch::cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                               Cycle &extra_latency)
{
    if (lvl != CacheLevel::L1D || !_buffer)
        return false;
    if (_buffer->probeAndTake(line, now, extra_latency)) {
        ++side_hits;
        return true;
    }
    return false;
}

std::vector<SramSpec>
MarkovPrefetch::hardware() const
{
    // Entry: tag (4 B) + predictions x 4 B.
    const std::uint64_t entry_bytes = 4 + 4ull * _p.predictions;
    return {
        {"markov.table", _p.table_entries * entry_bytes, 1, 1},
        {"markov.buffer",
         _p.buffer_lines * (hier() ? hier()->params().l1d.line : 32),
         0, 1},
        {"markov.request_queue", _p.request_queue * 8, 0, 1},
    };
}

void
MarkovPrefetch::describe(ParamTable &t) const
{
    t.section("Markov Prefetcher");
    t.add("Prediction Table Entries", _p.table_entries);
    t.add("Predictions per entry", _p.predictions);
    t.add("Request Queue Size", _p.request_queue);
    t.add("Prefetch Buffer Lines", _p.buffer_lines);
}

} // namespace microlib
