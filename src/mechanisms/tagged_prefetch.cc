#include "mechanisms/tagged_prefetch.hh"

namespace microlib
{

TaggedPrefetch::TaggedPrefetch(const MechanismConfig &cfg) : TaggedPrefetch(cfg, Params())
{
}

TaggedPrefetch::TaggedPrefetch(const MechanismConfig &cfg,
                               const Params &p)
    : CacheMechanism("TP", cfg), _p(p), _queue(p.request_queue)
{
}

void
TaggedPrefetch::cacheAccess(CacheLevel lvl, const MemRequest &req,
                            bool hit, bool first_use)
{
    if (lvl != CacheLevel::L2)
        return;

    // Prefetch the next line on a miss, or on the first demand hit
    // to a line a prefetch brought in.
    const bool trigger = !hit || first_use;
    if (!trigger)
        return;

    const Addr next = l2LineAddr(req.addr) + l2LineBytes();
    issueL2Prefetch(_queue, next, req.pc, req.when);
}

std::vector<SramSpec>
TaggedPrefetch::hardware() const
{
    // The per-line tag bit lives in the L2 array; the incremental
    // structures are the tag bits plus the request queue.
    const std::uint64_t l2_lines =
        hier() ? hier()->params().l2.size / hier()->params().l2.line
               : 16384;
    return {
        {"tp.tag_bits", l2_lines / 8, 1, 1},
        {"tp.request_queue", _p.request_queue * 8, 0, 1},
    };
}

void
TaggedPrefetch::describe(ParamTable &t) const
{
    t.section("Tagged Prefetching");
    t.add("Request Queue Size", _p.request_queue);
}

} // namespace microlib
