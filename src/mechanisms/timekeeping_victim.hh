/**
 * @file
 * TKVC — Timekeeping Victim Cache (Hu, Kaxiras & Martonosi 2002), at
 * the L1.
 *
 * A victim cache that admits selectively: timekeeping's reuse-time
 * prediction classifies each evicted line as "will be used again
 * soon" (a premature, conflict-style eviction — keep it) or "dead"
 * (do not pollute the 512-byte victim space). The filter is the idle
 * time of the line at eviction: short idle time means the line was
 * still live.
 */

#ifndef MICROLIB_MECHANISMS_TIMEKEEPING_VICTIM_HH
#define MICROLIB_MECHANISMS_TIMEKEEPING_VICTIM_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Reuse-filtered victim cache. */
class TimekeepingVictim : public CacheMechanism
{
  public:
    struct Params
    {
        std::uint64_t bytes = 512;  ///< Table 3
        Cycle refresh = 512;
        Cycle live_threshold = 1023; ///< idle below this = still live
    };

    explicit TimekeepingVictim(const MechanismConfig &cfg);

    TimekeepingVictim(const MechanismConfig &cfg,
                      const Params &p);

    void bind(Hierarchy &hier) override;

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;
    bool cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                        Cycle &extra_latency) override;
    void cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                    Cycle now) override;
    void cacheRefill(CacheLevel lvl, Addr line, AccessKind cause,
                     Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    Counter admitted;
    Counter filtered;

  private:
    Params _p;
    bool _fixed;
    std::unique_ptr<LineBuffer> _buffer;
    std::vector<Cycle> _last_access; ///< per L1 frame
    std::vector<Addr> _frame_line;

    std::uint64_t frameIndex(Addr line) const;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_TIMEKEEPING_VICTIM_HH
