#include "mechanisms/victim_cache.hh"

namespace microlib
{

VictimCache::VictimCache(const MechanismConfig &cfg) : VictimCache(cfg, Params())
{
}

VictimCache::VictimCache(const MechanismConfig &cfg, const Params &p)
    : CacheMechanism("VC", cfg), _p(p)
{
}

void
VictimCache::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    const unsigned lines = static_cast<unsigned>(
        _p.bytes / hier.params().l1d.line);
    _buffer = std::make_unique<LineBuffer>(lines,
                                           hier.params().l1d.line);
}

bool
VictimCache::cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                            Cycle &extra_latency)
{
    if (lvl != CacheLevel::L1D)
        return false;
    ++table_reads;
    if (_buffer->probeAndTake(line, now, extra_latency)) {
        // Swap: the line returns to the L1; the L1's victim arrives
        // via cacheEvict when the install evicts it.
        ++side_hits;
        return true;
    }
    return false;
}

void
VictimCache::cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                        Cycle now)
{
    (void)dirty;
    if (lvl != CacheLevel::L1D)
        return;
    ++table_writes;
    _buffer->insert(line, now);
}

std::vector<SramSpec>
VictimCache::hardware() const
{
    return {
        {"vc.array", _p.bytes, 0, 1}, // fully associative
    };
}

void
VictimCache::describe(ParamTable &t) const
{
    t.section("Victim Cache");
    t.add("Size", _p.bytes);
    t.add("Associativity", "full");
}

} // namespace microlib
