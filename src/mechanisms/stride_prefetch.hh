/**
 * @file
 * SP — Stride Prefetching (Chen & Baer 1992 / Fu, Patel & Janssens),
 * attached to the L2.
 *
 * A 512-entry PC-indexed reference prediction table tracks the stride
 * of each static load with the classic init/transient/steady state
 * machine; once steady, every access prefetches address + stride.
 * Table 3: 512 PC entries, request queue of 1. The paper's Figure 4
 * finds this 1990s idea the second best performer overall, and
 * Figure 5 the best performance/cost/power trade-off.
 */

#ifndef MICROLIB_MECHANISMS_STRIDE_PREFETCH_HH
#define MICROLIB_MECHANISMS_STRIDE_PREFETCH_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Reference-prediction-table stride prefetcher. */
class StridePrefetch : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned pc_entries = 512; ///< Table 3
        unsigned request_queue = 1;
        unsigned degree = 1;       ///< prefetches per trigger
        /** Prefetch distance in L2 lines: for strides smaller than a
         *  line the target is pushed this many lines ahead so the
         *  prefetch covers a *new* line in time (Chen & Baer's
         *  lookahead PC plays this role in the original design). */
        unsigned lookahead_lines = 2;
    };

    explicit StridePrefetch(const MechanismConfig &cfg);

    StridePrefetch(const MechanismConfig &cfg,
                   const Params &p);

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    /** Expose for unit tests. */
    enum class State : std::uint8_t { Init, Transient, Steady };

  private:
    struct Entry
    {
        Addr pc = invalid_addr;
        Addr last_addr = 0;
        Addr last_prefetch = invalid_addr; ///< line, dedup filter
        std::int64_t stride = 0;
        State state = State::Init;
    };

    Params _p;
    RequestQueue _queue;
    std::vector<Entry> _table;

    Entry &entryFor(Addr pc);
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_STRIDE_PREFETCH_HH
