/**
 * @file
 * TK — Timekeeping prefetcher (Hu, Kaxiras & Martonosi 2002), at the
 * L1.
 *
 * Timekeeping observes per-line generation times: a line that has
 * been idle longer than a threshold (Table 3: 1023 cycles, counted in
 * coarse 512-cycle "refresh" quanta) is predicted dead; an address
 * correlation table (8 KB, 8-way) remembers which line historically
 * replaced it, and that successor is prefetched into a small buffer
 * ahead of the actual miss.
 *
 * Second-guess variant (Figure 2): the article leaves the counting
 * granularity ambiguous — the initial build used the raw threshold
 * without refresh quantization and only checked liveness on misses,
 * making prefetches later and rarer.
 */

#ifndef MICROLIB_MECHANISMS_TIMEKEEPING_HH
#define MICROLIB_MECHANISMS_TIMEKEEPING_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Timekeeping dead-line prefetcher. */
class Timekeeping : public CacheMechanism
{
  public:
    struct Params
    {
        Cycle refresh = 512;       ///< Table 3: counting quantum
        Cycle threshold = 1023;    ///< Table 3: dead after this idle
        std::uint64_t corr_bytes = 8 * 1024; ///< Table 3: 8 KB
        unsigned corr_assoc = 8;
        unsigned request_queue = 128;
        unsigned buffer_lines = 1024; ///< dead L1 frames hold the lines
    };

    explicit Timekeeping(const MechanismConfig &cfg);

    Timekeeping(const MechanismConfig &cfg, const Params &p);

    void bind(Hierarchy &hier) override;

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;
    bool cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                        Cycle &extra_latency) override;
    void cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                    Cycle now) override;
    void cacheRefill(CacheLevel lvl, Addr line, AccessKind cause,
                     Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    /** Idle time quantization (unit-test hook). */
    Cycle quantize(Cycle idle) const;

  private:
    struct CorrEntry
    {
        std::uint64_t key = ~0ull;
        std::uint32_t successor = 0;
        std::uint64_t stamp = 0;
    };

    struct FrameState
    {
        Addr line = invalid_addr;
        Cycle last_access = 0;
    };

    Params _p;
    bool _fixed;
    RequestQueue _queue;
    std::unique_ptr<LineBuffer> _buffer;
    std::vector<CorrEntry> _corr;
    std::vector<FrameState> _frames;
    std::vector<Addr> _pending_evict; ///< per set: dying line
    std::uint64_t _tick = 0;
    std::uint64_t _l1_sets = 1;

    CorrEntry *findCorr(Addr line);
    void learn(Addr dead_line, Addr successor);
    void sweepSet(std::uint64_t set, Cycle now);
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_TIMEKEEPING_HH
