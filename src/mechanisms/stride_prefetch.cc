#include "mechanisms/stride_prefetch.hh"

namespace microlib
{

StridePrefetch::StridePrefetch(const MechanismConfig &cfg) : StridePrefetch(cfg, Params())
{
}

StridePrefetch::StridePrefetch(const MechanismConfig &cfg,
                               const Params &p)
    : CacheMechanism("SP", cfg), _p(p), _queue(p.request_queue),
      _table(p.pc_entries)
{
}

StridePrefetch::Entry &
StridePrefetch::entryFor(Addr pc)
{
    // Direct-mapped on the word-granular PC.
    return _table[(pc >> 2) % _table.size()];
}

void
StridePrefetch::cacheAccess(CacheLevel lvl, const MemRequest &req,
                            bool hit, bool first_use)
{
    (void)hit;
    (void)first_use;
    // Train on the full L1 reference stream (the RPT sits beside the
    // load/store unit); prefetch into the L2.
    if (lvl != CacheLevel::L1D)
        return;

    ++table_reads;
    Entry &e = entryFor(req.pc);

    if (e.pc != req.pc) {
        // Replace: fresh entry in Init.
        e.pc = req.pc;
        e.last_addr = req.addr;
        e.stride = 0;
        e.state = State::Init;
        ++table_writes;
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(req.addr) -
        static_cast<std::int64_t>(e.last_addr);

    switch (e.state) {
      case State::Init:
        e.stride = stride;
        e.state = State::Transient;
        break;
      case State::Transient:
        e.state = (stride == e.stride && stride != 0) ? State::Steady
                                                      : State::Init;
        e.stride = stride;
        break;
      case State::Steady:
        if (stride != e.stride)
            e.state = State::Init;
        e.stride = stride;
        break;
    }
    e.last_addr = req.addr;
    ++table_writes;

    if (e.state == State::Steady && e.stride != 0) {
        // Push the target at least lookahead_lines L2 lines ahead so
        // small strides still cover new lines in time.
        const std::int64_t line =
            static_cast<std::int64_t>(l2LineBytes());
        const std::int64_t mag =
            e.stride < 0 ? -e.stride : e.stride;
        const std::int64_t k = std::max<std::int64_t>(
            1, (line * _p.lookahead_lines + mag - 1) / mag);
        for (unsigned d = 0; d < _p.degree; ++d) {
            const Addr target = static_cast<Addr>(
                static_cast<std::int64_t>(req.addr) +
                e.stride * (k + static_cast<std::int64_t>(d)));
            const Addr target_line = l2LineAddr(target);
            if (target_line == e.last_prefetch)
                continue; // already requested this line
            if (issueL2Prefetch(_queue, target, req.pc, req.when))
                e.last_prefetch = target_line;
        }
    }
}

std::vector<SramSpec>
StridePrefetch::hardware() const
{
    // Entry: tag + last addr + stride + state ~ 16 bytes.
    return {
        {"sp.rpt", static_cast<std::uint64_t>(_p.pc_entries) * 16, 1, 1},
        {"sp.request_queue", _p.request_queue * 8, 0, 1},
    };
}

void
StridePrefetch::describe(ParamTable &t) const
{
    t.section("Stride Prefetching");
    t.add("PC entries", _p.pc_entries);
    t.add("Request Queue Size", _p.request_queue);
}

} // namespace microlib
