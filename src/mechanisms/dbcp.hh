/**
 * @file
 * DBCP — Dead-Block Correlating Prefetcher (Lai, Fide & Falsafi 2001),
 * at the L1.
 *
 * Each resident L1 line accumulates a *trace signature* — a hash of
 * the load/store PCs that touched it since its fill. When a line dies
 * (is evicted), the (address, death-signature) pair is correlated
 * with the address that replaced it. Later, when a resident line's
 * live signature reaches a learned death signature, the line is
 * predicted dead and the correlated successor is prefetched into a
 * small buffer.
 *
 * The paper uses DBCP as its reverse-engineering case study
 * (Section 2.2, Figure 3): the authors' first implementation was off
 * by 38% because of three documented mistakes. Both builds are
 * available here via MechanismConfig::second_guess:
 *
 *  - fixed: PC pre-hashing before signature update, full-size
 *    correlation table, confidence decrement on stale signatures;
 *  - initial: raw PC xor (aliasing), half-size table, no decrement.
 */

#ifndef MICROLIB_MECHANISMS_DBCP_HH
#define MICROLIB_MECHANISMS_DBCP_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Dead-block correlating prefetcher. */
class Dbcp : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned history_entries = 1024;  ///< Table 3: 1K (L1 frames)
        unsigned table_entries = 262144;  ///< ~2 MB, 8-way (Table 3)
        unsigned table_assoc = 8;
        unsigned request_queue = 128;
        unsigned buffer_lines = 1024; ///< dead L1 frames hold the lines
    };

    explicit Dbcp(const MechanismConfig &cfg);

    Dbcp(const MechanismConfig &cfg, const Params &p);

    void bind(Hierarchy &hier) override;

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;
    bool cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                        Cycle &extra_latency) override;
    void cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                    Cycle now) override;
    void cacheRefill(CacheLevel lvl, Addr line, AccessKind cause,
                     Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    /** Signature update step (unit-test hook). */
    std::uint32_t updateSignature(std::uint32_t sig, Addr pc) const;

  private:
    struct CorrEntry
    {
        std::uint64_t key = ~0ull;
        std::uint32_t successor = 0; ///< line id (addr >> 5)
        std::uint8_t confidence = 0; ///< 2-bit counter
        std::uint64_t stamp = 0;
    };

    /** Per-L1-frame live state. */
    struct FrameState
    {
        Addr line = invalid_addr;
        std::uint32_t signature = 0;
    };

    /** Eviction waiting for its replacement address. */
    struct PendingDeath
    {
        Addr line = invalid_addr;
        std::uint32_t signature = 0;
        bool valid = false;
    };

    Params _p;
    bool _fixed; ///< !second_guess
    unsigned _effective_entries;
    RequestQueue _queue;
    std::unique_ptr<LineBuffer> _buffer;
    std::vector<CorrEntry> _corr;
    std::vector<FrameState> _frames;
    std::vector<PendingDeath> _pending; ///< per L1 set
    std::uint64_t _tick = 0;
    std::uint64_t _l1_sets = 1;
    Addr _last_miss_pc = 0;

    std::uint64_t frameIndex(Addr line) const;
    std::uint64_t corrKey(Addr line, std::uint32_t sig) const;
    CorrEntry *findCorr(std::uint64_t key);
    CorrEntry &allocCorr(std::uint64_t key);
    void learn(Addr dead_line, std::uint32_t sig, Addr successor);
    void maybePredict(Addr line, std::uint32_t sig, Cycle now);
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_DBCP_HH
