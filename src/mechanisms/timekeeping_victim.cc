#include "mechanisms/timekeeping_victim.hh"

namespace microlib
{

TimekeepingVictim::TimekeepingVictim(const MechanismConfig &cfg) : TimekeepingVictim(cfg, Params())
{
}

TimekeepingVictim::TimekeepingVictim(const MechanismConfig &cfg,
                                     const Params &p)
    : CacheMechanism("TKVC", cfg), _p(p), _fixed(!cfg.second_guess)
{
}

void
TimekeepingVictim::bind(Hierarchy &hier)
{
    CacheMechanism::bind(hier);
    const auto &l1 = hier.params().l1d;
    const unsigned lines = static_cast<unsigned>(_p.bytes / l1.line);
    _buffer = std::make_unique<LineBuffer>(lines, l1.line);
    _last_access.assign(l1.size / l1.line, 0);
    _frame_line.assign(l1.size / l1.line, invalid_addr);
}

std::uint64_t
TimekeepingVictim::frameIndex(Addr line) const
{
    return (line / l1LineBytes()) % _last_access.size();
}

void
TimekeepingVictim::cacheAccess(CacheLevel lvl, const MemRequest &req,
                               bool hit, bool first_use)
{
    (void)first_use;
    if (lvl != CacheLevel::L1D || !hit)
        return;
    const Addr line = l1LineAddr(req.addr);
    const std::uint64_t f = frameIndex(line);
    _last_access[f] = req.when;
    _frame_line[f] = line;
}

void
TimekeepingVictim::cacheRefill(CacheLevel lvl, Addr line,
                               AccessKind cause, Cycle now)
{
    (void)cause;
    if (lvl != CacheLevel::L1D)
        return;
    // A fill starts the line's generation clock — lines that are
    // missed but never hit would otherwise carry no timing at all.
    const std::uint64_t f = frameIndex(line);
    _last_access[f] = now;
    _frame_line[f] = line;
}

void
TimekeepingVictim::cacheEvict(CacheLevel lvl, Addr line, bool dirty,
                              Cycle now)
{
    (void)dirty;
    if (lvl != CacheLevel::L1D || !_buffer)
        return;

    const std::uint64_t f = frameIndex(line);
    Cycle idle = 0;
    if (_frame_line[f] == line && now > _last_access[f])
        idle = now - _last_access[f];
    if (_fixed)
        idle = (idle / _p.refresh) * _p.refresh;

    // A line evicted shortly after use was likely a conflict victim:
    // keep it. Long-idle lines are dead: filter them out.
    if (idle < _p.live_threshold) {
        ++admitted;
        ++table_writes;
        _buffer->insert(line, now);
    } else {
        ++filtered;
    }
}

bool
TimekeepingVictim::cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                                  Cycle &extra_latency)
{
    if (lvl != CacheLevel::L1D || !_buffer)
        return false;
    ++table_reads;
    if (_buffer->probeAndTake(line, now, extra_latency)) {
        ++side_hits;
        return true;
    }
    return false;
}

std::vector<SramSpec>
TimekeepingVictim::hardware() const
{
    const std::uint64_t l1_lines =
        hier() ? hier()->params().l1d.size / hier()->params().l1d.line
               : 1024;
    return {
        {"tkvc.array", _p.bytes, 0, 1},
        {"tkvc.counters", l1_lines * 2, 1, 1},
    };
}

void
TimekeepingVictim::describe(ParamTable &t) const
{
    t.section("Timekeeping Victim Cache");
    t.add("Size", _p.bytes);
    t.add("Associativity", "full");
    t.add("Live threshold", _p.live_threshold);
}

} // namespace microlib
