/**
 * @file
 * CDP — Content-Directed Data Prefetching (Cooksey, Jourdan &
 * Grunwald 2002), at the L2.
 *
 * A stateless prefetcher for pointer-based structures: every line
 * arriving at the L2 is scanned for values that look like virtual
 * addresses; candidates are prefetched immediately, and prefetched
 * lines are scanned recursively up to a depth threshold (Table 3: 3).
 *
 * This mechanism *requires data values*, which SimpleScalar does not
 * carry — the paper needed the MicroLib value-accurate cache models;
 * here the hierarchy forwards true line contents from the functional
 * memory image. The paper's headline results: helps twolf (1.07) and
 * equake (1.11), catastrophically floods the bus on mcf (0.75), and
 * systematically misses ammp's next pointers that sit 88 bytes into a
 * 128-byte node.
 */

#ifndef MICROLIB_MECHANISMS_CDP_HH
#define MICROLIB_MECHANISMS_CDP_HH

#include <unordered_map>

#include "core/mechanism.hh"

namespace microlib
{

/** Content-directed pointer prefetcher. */
class Cdp : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned depth_threshold = 3; ///< Table 3
        unsigned request_queue = 128;
    };

    explicit Cdp(const MechanismConfig &cfg);

    Cdp(const MechanismConfig &cfg, const Params &p);

    bool wantsLineContent(CacheLevel lvl) const override;
    void lineContent(CacheLevel lvl, Addr line,
                     const std::vector<Word> &words, AccessKind cause,
                     Cycle now) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    /** Pointer-likeness filter (unit-test hook). */
    static bool candidate(Word w);

    Counter pointers_found;

  private:
    Params _p;
    RequestQueue _queue;
    std::unordered_map<Addr, unsigned> _depth; ///< prefetched line depth
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_CDP_HH
