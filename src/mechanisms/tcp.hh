/**
 * @file
 * TCP — Tag Correlating Prefetching (Hu, Martonosi & Kaxiras 2003),
 * at the L2.
 *
 * Correlates *tag sequences* per cache set: a Tag History Table
 * (1024 sets, two previous tags each, Table 3) feeds a Pattern
 * History Table (8 KB, 256 sets, 8-way) that maps a (set, tag, tag)
 * pattern to the likely next-missing tag, which is prefetched into
 * the same set.
 *
 * The paper's Figure 10 case study lives here: the article never
 * states how prefetch requests are buffered towards memory. The
 * confirmed build uses a 128-entry prefetch buffer; the
 * second-guessed build uses a single entry — the difference is tiny
 * on crafty/eon and dramatic on lucas/mgrid/art.
 */

#ifndef MICROLIB_MECHANISMS_TCP_HH
#define MICROLIB_MECHANISMS_TCP_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Tag-correlating prefetcher. */
class Tcp : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned tht_sets = 1024;   ///< Table 3, direct-mapped
        unsigned tht_depth = 2;     ///< previous tags kept
        std::uint64_t pht_bytes = 8 * 1024; ///< Table 3
        unsigned pht_sets = 256;
        unsigned pht_assoc = 8;
        /** 0 = take MechanismConfig::tcp_buffer (Figure 10 knob). */
        unsigned request_queue = 0;
    };

    explicit Tcp(const MechanismConfig &cfg);

    Tcp(const MechanismConfig &cfg, const Params &p);

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

    unsigned queueCapacity() const { return _queue.capacity(); }

  private:
    struct ThtEntry
    {
        /** Which L2 set this history belongs to; the THT is smaller
         *  than the L2's set count, so it acts as a direct-mapped
         *  cache of per-set histories (mixing aliased sets' tags
         *  would corrupt every pattern). */
        std::uint64_t set_tag = ~0ull;
        std::uint64_t tags[2] = {~0ull, ~0ull};
    };

    struct PhtEntry
    {
        std::uint64_t key = ~0ull;
        std::uint64_t next_tag = 0;
        std::uint64_t stamp = 0;
    };

    Params _p;
    RequestQueue _queue;
    std::vector<ThtEntry> _tht;
    std::vector<PhtEntry> _pht;
    std::uint64_t _tick = 0;

    std::uint64_t phtKey(std::uint64_t set, std::uint64_t t1,
                         std::uint64_t t2) const;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_TCP_HH
