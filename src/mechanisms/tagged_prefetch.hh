/**
 * @file
 * TP — Tagged Prefetching (Smith 1982), attached to the L2.
 *
 * One of the very first prefetching techniques: prefetch the next
 * sequential line on a miss, and again on the first hit to a
 * prefetched line (the "tag bit"). The tag bit itself is tracked by
 * the cache model (Cache::linePrefetched / first_use); this mechanism
 * adds only the 16-entry request queue of Table 3 — which is why the
 * paper finds TP nearly free in area and power (Figure 5) yet
 * surprisingly competitive in performance (Figure 4).
 */

#ifndef MICROLIB_MECHANISMS_TAGGED_PREFETCH_HH
#define MICROLIB_MECHANISMS_TAGGED_PREFETCH_HH

#include "core/mechanism.hh"

namespace microlib
{

/** Tagged next-line prefetcher at the L2. */
class TaggedPrefetch : public CacheMechanism
{
  public:
    struct Params
    {
        unsigned request_queue = 16; ///< Table 3
    };

    explicit TaggedPrefetch(const MechanismConfig &cfg);

    TaggedPrefetch(const MechanismConfig &cfg,
                   const Params &p);

    void cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                     bool first_use) override;

    std::vector<SramSpec> hardware() const override;
    void describe(ParamTable &t) const override;

  private:
    Params _p;
    RequestQueue _queue;
};

} // namespace microlib

#endif // MICROLIB_MECHANISMS_TAGGED_PREFETCH_HH
