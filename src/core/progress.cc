#include "core/progress.hh"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>

#include "sim/logging.hh"

namespace microlib
{

std::string
ProgressEvent::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

ProgressEvent::ProgressEvent(const std::string &name)
{
    _os << "{\"event\":\"" << escape(name) << '"';
}

ProgressEvent &
ProgressEvent::field(const char *key, const std::string &value)
{
    _os << ",\"" << key << "\":\"" << escape(value) << '"';
    return *this;
}

ProgressEvent &
ProgressEvent::field(const char *key, const char *value)
{
    return field(key, std::string(value));
}

ProgressEvent &
ProgressEvent::field(const char *key, std::uint64_t value)
{
    _os << ",\"" << key << "\":" << value;
    return *this;
}

ProgressEvent &
ProgressEvent::field(const char *key, double value)
{
    // Fixed 3-decimal seconds: progress is telemetry, not results,
    // and a stable format keeps the stream easy to parse by hand.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    _os << ",\"" << key << "\":" << buf;
    return *this;
}

std::string
ProgressEvent::str() const
{
    return _os.str() + "}";
}

ProgressWriter::ProgressWriter(const std::string &path)
{
    if (path.empty())
        return;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    _out.open(path, std::ios::trunc);
    if (!_out)
        warn("progress stream: cannot open ", path,
             "; progress reporting disabled");
}

ProgressWriter::ProgressWriter(int fd) : _fd(fd)
{
}

void
ProgressWriter::write(const ProgressEvent &event)
{
    writeLine(event.str());
}

void
ProgressWriter::writeLine(const std::string &line)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(_mu);
    if (_fd >= 0) {
        // One buffered line per write() so a reader reassembling the
        // stream sees at worst a torn tail, never interleaved lines
        // (the engine's workers share this writer across threads).
        const std::string out = line + '\n';
        std::size_t off = 0;
        while (off < out.size()) {
            const ssize_t n =
                ::write(_fd, out.data() + off, out.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                // Receiver hung up (daemon died): progress becomes
                // a no-op; the worker's own protocol I/O reports the
                // loss of the connection.
                _fd = -1;
                return;
            }
            off += static_cast<std::size_t>(n);
        }
        return;
    }
    _out << line << '\n';
    _out.flush(); // pollers and tail -f see whole lines only
}

} // namespace microlib
