#include "core/progress.hh"

#include <cstdio>
#include <filesystem>

#include "sim/logging.hh"

namespace microlib
{

std::string
ProgressEvent::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

ProgressEvent::ProgressEvent(const std::string &name)
{
    _os << "{\"event\":\"" << escape(name) << '"';
}

ProgressEvent &
ProgressEvent::field(const char *key, const std::string &value)
{
    _os << ",\"" << key << "\":\"" << escape(value) << '"';
    return *this;
}

ProgressEvent &
ProgressEvent::field(const char *key, const char *value)
{
    return field(key, std::string(value));
}

ProgressEvent &
ProgressEvent::field(const char *key, std::uint64_t value)
{
    _os << ",\"" << key << "\":" << value;
    return *this;
}

ProgressEvent &
ProgressEvent::field(const char *key, double value)
{
    // Fixed 3-decimal seconds: progress is telemetry, not results,
    // and a stable format keeps the stream easy to parse by hand.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    _os << ",\"" << key << "\":" << buf;
    return *this;
}

std::string
ProgressEvent::str() const
{
    return _os.str() + "}";
}

ProgressWriter::ProgressWriter(const std::string &path)
{
    if (path.empty())
        return;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    _out.open(path, std::ios::trunc);
    if (!_out)
        warn("progress stream: cannot open ", path,
             "; progress reporting disabled");
}

void
ProgressWriter::write(const ProgressEvent &event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(_mu);
    _out << event.str() << '\n';
    _out.flush(); // pollers and tail -f see whole lines only
}

} // namespace microlib
