/**
 * @file
 * ThreadPoolBackend: the in-process execution backend.
 *
 * Drains a TaskPlan's pending tasks (optionally restricted to one
 * ShardSpec) on the owning engine's persistent worker pool. The
 * scheduling unit is a *lockstep group* — the pending config variants
 * of one (benchmark-window, mechanism), advanced over a single shared
 * trace pass (cpu/lockstep.hh) when EngineOptions::lockstep is on,
 * or a single task each when it is off (the oracle path):
 *
 *  - the first worker to need a benchmark's trace becomes its owner
 *    and materializes it once into the engine's TraceCache;
 *  - workers that hit a trace still being materialized defer that
 *    group and steal unrelated work instead of blocking;
 *  - only when no other work exists does a worker wait on a trace's
 *    shared_future.
 *
 * Results, persistence, progress counters and trace refcounts stay
 * per *task* (per group member): each member is persisted and
 * published into its own pre-assigned slot the moment its group
 * finishes, one `run` progress event per member.
 *
 * Trace refcounts are plan-aware and counted per *trace slot* — the
 * plan's unique (benchmark, window) pairs, so config variants that
 * share a window are counted once. The per-slot pending count comes
 * from the plan (resumed and out-of-shard tasks excluded), so a
 * slot's trace is released — unpinned for byte-budget eviction, and
 * evicted outright when keep_traces is off — the moment its last
 * task *this process will ever run* completes, and a slot with
 * nothing pending is never materialized at all.
 *
 * This is the leaf executor every other backend bottoms out in: a
 * ProcessShardBackend worker is just a fresh engine running this
 * backend over one shard.
 */

#ifndef MICROLIB_CORE_THREAD_POOL_BACKEND_HH
#define MICROLIB_CORE_THREAD_POOL_BACKEND_HH

#include "core/execution_backend.hh"

namespace microlib
{

/** Default backend: one work queue over the engine's thread pool. */
class ThreadPoolBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "thread-pool"; }

    void execute(const TaskPlan &plan, const std::vector<char> &done,
                 const ExecutionContext &ctx, SweepResult &res,
                 RunCounters &counters) override;

  private:
    struct State;

    void drain(State &st);
};

} // namespace microlib

#endif // MICROLIB_CORE_THREAD_POOL_BACKEND_HH
