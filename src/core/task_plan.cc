#include "core/task_plan.hh"

#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "core/result_store.hh"
#include "sim/fingerprint.hh"

namespace microlib
{

std::string
ShardSpec::str() const
{
    std::string s = std::to_string(index);
    s += '/';
    s += std::to_string(count ? count : 1);
    return s;
}

bool
ShardSpec::parse(const std::string &text, ShardSpec &out)
{
    const auto slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    char *end = nullptr;
    const unsigned long long i =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
        return false;
    const unsigned long long n =
        std::strtoull(text.c_str() + slash + 1, &end, 10);
    if (*end != '\0' || n == 0 || i >= n)
        return false;
    out.index = static_cast<std::size_t>(i);
    out.count = static_cast<std::size_t>(n);
    return true;
}

std::string
traceCacheKey(const std::string &benchmark, const RunConfig &cfg)
{
    // benchmark + the shared window description (experiment.cc):
    // the same string the result-store fingerprint mixes in.
    std::string key = benchmark;
    key += '\0';
    key += windowKey(cfg);
    return key;
}

TaskPlan::TaskPlan(const SweepSpec &spec)
    : _spec(spec), _mechanisms(spec.mechanisms()),
      _benchmarks(spec.benchmarks())
{
    // Resolve every variant once: config, fingerprint, display name.
    const std::vector<ConfigVariant> variants = _spec.variants();
    _variant_names.reserve(variants.size());
    _cfgs.reserve(variants.size());
    _config_hashes.reserve(variants.size());
    for (const auto &v : variants) {
        _variant_names.push_back(v.name);
        _cfgs.push_back(_spec.resolve(v));
        _config_hashes.push_back(fingerprintConfig(_cfgs.back()));
    }

    // Trace slots: unique (benchmark, window) pairs. Variants that
    // leave the window untouched map to one slot, so the backends
    // materialize (and refcount) each shared trace exactly once.
    const std::size_t V = _cfgs.size();
    _task_slot.resize(_benchmarks.size() * V);
    std::unordered_map<std::string, std::size_t> slot_of;
    for (std::size_t b = 0; b < _benchmarks.size(); ++b) {
        for (std::size_t v = 0; v < V; ++v) {
            std::string key = traceCacheKey(_benchmarks[b], _cfgs[v]);
            auto it = slot_of.find(key);
            if (it == slot_of.end()) {
                it = slot_of.emplace(key, _slot_keys.size()).first;
                _slot_keys.push_back(std::move(key));
            }
            _task_slot[b * V + v] = it->second;
        }
    }

    // Canonical order: benchmark varies slowest, then variant, then
    // mechanism — one benchmark's tasks (all variants) are contiguous
    // so its trace(s) can be dropped soon after its block drains, and
    // a one-variant plan reduces to the historic b * M + m indices.
    // The flat index IS the slot assignment and the shard unit;
    // nothing about execution may change it.
    _tasks.reserve(_mechanisms.size() * _benchmarks.size() * V);
    for (std::size_t b = 0; b < _benchmarks.size(); ++b)
        for (std::size_t v = 0; v < V; ++v)
            for (std::size_t m = 0; m < _mechanisms.size(); ++m)
                _tasks.push_back(
                    {(b * V + v) * _mechanisms.size() + m, m, b, v});
}

TaskPlan::TaskPlan(std::vector<std::string> mechanisms,
                   std::vector<std::string> benchmarks,
                   const RunConfig &cfg)
    : TaskPlan(SweepSpec::single(std::move(mechanisms),
                                 std::move(benchmarks), cfg))
{
}

ResultKey
TaskPlan::resultKey(std::size_t index) const
{
    const PlanTask &t = _tasks[index];
    return makeResultKey(_benchmarks[t.b], _mechanisms[t.m],
                         _config_hashes[t.v]);
}

SweepResult
TaskPlan::emptyResult() const
{
    SweepResult res;
    res.variants = _variant_names;
    res.matrices.reserve(variantCount());
    for (std::size_t v = 0; v < variantCount(); ++v) {
        MatrixResult m;
        m.mechanisms = _mechanisms;
        m.benchmarks = _benchmarks;
        m.ipc.assign(_mechanisms.size(),
                     std::vector<double>(_benchmarks.size(), 0.0));
        m.outputs.assign(_mechanisms.size(),
                         std::vector<RunOutput>(_benchmarks.size()));
        m.fault.assign(_mechanisms.size(),
                       std::vector<char>(_benchmarks.size(), 0));
        m.buildIndices();
        res.matrices.push_back(std::move(m));
    }
    return res;
}

std::vector<std::size_t>
TaskPlan::shardTasks(const ShardSpec &shard) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (inShard(i, shard))
            out.push_back(i);
    return out;
}

std::vector<std::size_t>
TaskPlan::pendingTasks(const std::vector<char> &done,
                       const ShardSpec &shard) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (!done[i] && inShard(i, shard))
            out.push_back(i);
    return out;
}

std::size_t
TaskPlan::prefill(const ResultStore &store, SweepResult &res,
                  std::vector<char> &done) const
{
    std::size_t filled = 0;
    for (std::size_t i = 0; i < _tasks.size(); ++i) {
        if (done[i])
            continue;
        const std::optional<ResultRecord> rec =
            store.find(resultKey(i));
        if (!rec)
            continue;
        const PlanTask &t = _tasks[i];
        MatrixResult &m = res.matrix(t.v);
        m.ipc[t.m][t.b] = rec->core.ipc;
        m.outputs[t.m][t.b] = toRunOutput(*rec);
        done[i] = 1;
        ++filled;
    }
    return filled;
}

std::vector<std::vector<std::size_t>>
TaskPlan::lockstepGroups(const std::vector<char> &done,
                         const ShardSpec &shard) const
{
    std::vector<std::vector<std::size_t>> groups;
    // Group key: (trace slot, mechanism). Tasks sharing both draw on
    // one materialized trace and differ only in config variant.
    std::unordered_map<std::size_t, std::size_t> group_of;
    const std::size_t M = _mechanisms.size();
    for (std::size_t i = 0; i < _tasks.size(); ++i) {
        if (done[i] || !inShard(i, shard))
            continue;
        const std::size_t key = traceSlot(i) * M + _tasks[i].m;
        auto it = group_of.find(key);
        if (it == group_of.end()) {
            it = group_of.emplace(key, groups.size()).first;
            groups.emplace_back();
        }
        groups[it->second].push_back(i);
    }
    return groups;
}

std::vector<std::size_t>
TaskPlan::pendingPerTraceSlot(const std::vector<char> &done,
                              const ShardSpec &shard) const
{
    std::vector<std::size_t> counts(traceSlotCount(), 0);
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (!done[i] && inShard(i, shard))
            ++counts[traceSlot(i)];
    return counts;
}

std::vector<std::size_t>
TaskPlan::pendingPerBenchmark(const std::vector<char> &done,
                              const ShardSpec &shard) const
{
    std::vector<std::size_t> counts(_benchmarks.size(), 0);
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (!done[i] && inShard(i, shard))
            ++counts[_tasks[i].b];
    return counts;
}

std::string
TaskPlan::describe(std::size_t index, const ShardSpec &shard) const
{
    const PlanTask &t = _tasks[index];
    const ResultKey key = resultKey(index);
    std::ostringstream os;
    os << "task=" << t.index << " shard="
       << (shard.whole() ? 0 : t.index % shard.count) << '/'
       << (shard.whole() ? 1 : shard.count)
       << " bench=" << _benchmarks[t.b]
       << " mech=" << _mechanisms[t.m]
       << " variant=" << _variant_names[t.v]
       << " fp=" << Fingerprint::hexOf(key.config_hash)
       << " seed=" << key.trace_seed;
    return os.str();
}

} // namespace microlib
