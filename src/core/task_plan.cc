#include "core/task_plan.hh"

#include <cstdlib>
#include <sstream>

#include "core/result_store.hh"
#include "sim/fingerprint.hh"

namespace microlib
{

std::string
ShardSpec::str() const
{
    std::string s = std::to_string(index);
    s += '/';
    s += std::to_string(count ? count : 1);
    return s;
}

bool
ShardSpec::parse(const std::string &text, ShardSpec &out)
{
    const auto slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    char *end = nullptr;
    const unsigned long long i =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
        return false;
    const unsigned long long n =
        std::strtoull(text.c_str() + slash + 1, &end, 10);
    if (*end != '\0' || n == 0 || i >= n)
        return false;
    out.index = static_cast<std::size_t>(i);
    out.count = static_cast<std::size_t>(n);
    return true;
}

std::string
traceCacheKey(const std::string &benchmark, const RunConfig &cfg)
{
    // benchmark + the shared window description (experiment.cc):
    // the same string the result-store fingerprint mixes in.
    std::string key = benchmark;
    key += '\0';
    key += windowKey(cfg);
    return key;
}

TaskPlan::TaskPlan(std::vector<std::string> mechanisms,
                   std::vector<std::string> benchmarks,
                   const RunConfig &cfg)
    : _mechanisms(std::move(mechanisms)),
      _benchmarks(std::move(benchmarks)), _cfg(cfg),
      _config_hash(fingerprintConfig(cfg))
{
    _trace_keys.reserve(_benchmarks.size());
    for (const auto &b : _benchmarks)
        _trace_keys.push_back(traceCacheKey(b, _cfg));

    // Canonical order: benchmark varies slowest, so one benchmark's
    // tasks are contiguous and its trace can be dropped soon after
    // its block drains. The flat index IS the slot assignment and
    // the shard unit; nothing about execution may change it.
    _tasks.reserve(_mechanisms.size() * _benchmarks.size());
    for (std::size_t b = 0; b < _benchmarks.size(); ++b)
        for (std::size_t m = 0; m < _mechanisms.size(); ++m)
            _tasks.push_back({b * _mechanisms.size() + m, m, b});
}

ResultKey
TaskPlan::resultKey(std::size_t index) const
{
    const PlanTask &t = _tasks[index];
    return makeResultKey(_benchmarks[t.b], _mechanisms[t.m],
                         _config_hash);
}

MatrixResult
TaskPlan::emptyResult() const
{
    MatrixResult res;
    res.mechanisms = _mechanisms;
    res.benchmarks = _benchmarks;
    res.ipc.assign(_mechanisms.size(),
                   std::vector<double>(_benchmarks.size(), 0.0));
    res.outputs.assign(_mechanisms.size(),
                       std::vector<RunOutput>(_benchmarks.size()));
    res.buildIndices();
    return res;
}

std::vector<std::size_t>
TaskPlan::shardTasks(const ShardSpec &shard) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (inShard(i, shard))
            out.push_back(i);
    return out;
}

std::vector<std::size_t>
TaskPlan::pendingTasks(const std::vector<char> &done,
                       const ShardSpec &shard) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (!done[i] && inShard(i, shard))
            out.push_back(i);
    return out;
}

std::size_t
TaskPlan::prefill(const ResultStore &store, MatrixResult &res,
                  std::vector<char> &done) const
{
    std::size_t filled = 0;
    for (std::size_t i = 0; i < _tasks.size(); ++i) {
        if (done[i])
            continue;
        const std::optional<ResultRecord> rec =
            store.find(resultKey(i));
        if (!rec)
            continue;
        const PlanTask &t = _tasks[i];
        res.ipc[t.m][t.b] = rec->core.ipc;
        res.outputs[t.m][t.b] = toRunOutput(*rec);
        done[i] = 1;
        ++filled;
    }
    return filled;
}

std::vector<std::size_t>
TaskPlan::pendingPerBenchmark(const std::vector<char> &done,
                              const ShardSpec &shard) const
{
    std::vector<std::size_t> counts(_benchmarks.size(), 0);
    for (std::size_t i = 0; i < _tasks.size(); ++i)
        if (!done[i] && inShard(i, shard))
            ++counts[_tasks[i].b];
    return counts;
}

std::string
TaskPlan::describe(std::size_t index, const ShardSpec &shard) const
{
    const PlanTask &t = _tasks[index];
    const ResultKey key = resultKey(index);
    std::ostringstream os;
    os << "task=" << t.index << " shard="
       << (shard.whole() ? 0 : t.index % shard.count) << '/'
       << (shard.whole() ? 1 : shard.count)
       << " bench=" << _benchmarks[t.b]
       << " mech=" << _mechanisms[t.m]
       << " fp=" << Fingerprint::hexOf(key.config_hash)
       << " seed=" << key.trace_seed;
    return os.str();
}

} // namespace microlib
