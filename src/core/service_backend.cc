#include "core/service_backend.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/exit_codes.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "service/net.hh"
#include "service/protocol.hh"
#include "sim/logging.hh"

namespace microlib
{

namespace
{

/** Request/reply over @p sock; throws InfrastructureError when the
 *  daemon is gone — partial service results are worthless to the
 *  caller, but the daemon's store keeps everything for a retry. */
std::string
exchange(LineSocket &sock, const std::string &request,
         const char *what)
{
    std::string reply;
    if (!sock.sendLine(request) || !sock.recvLine(reply))
        throw InfrastructureError(
            std::string("sweep service: connection lost during ") +
            what);
    return reply;
}

std::uint64_t
requireOk(const std::string &reply, const char *what)
{
    std::uint64_t ok = 0;
    if (jsonFindU64(reply, "ok", ok) && ok == 1)
        return ok;
    std::string why;
    jsonFindString(reply, "error", why);
    throw InfrastructureError(std::string("sweep service: ") + what +
                              " refused: " + why);
}

} // namespace

ServiceBackend::ServiceBackend(std::string addr, double poll_s)
    : _addr(std::move(addr)), _poll_s(poll_s)
{
}

void
ServiceBackend::execute(const TaskPlan &plan,
                        const std::vector<char> &done,
                        const ExecutionContext &ctx, SweepResult &res,
                        RunCounters &counters)
{
    // The daemon only ever sees the canonical spec text, so this
    // backend is only sound for plans whose spec round-trips through
    // it. A SweepSpec::single() plan (config set programmatically,
    // not as settings) does not; catch that here rather than let the
    // daemon silently run a different configuration.
    const std::string text = plan.spec().canonicalText();
    {
        SweepSpec reparsed;
        std::string error;
        if (!SweepSpec::parse(text, reparsed, &error))
            throw std::runtime_error(
                "service backend: spec does not round-trip (" +
                error + "); spec-file sweeps only");
        const TaskPlan check(reparsed);
        if (check.size() != plan.size() ||
            check.variantCount() != plan.variantCount())
            throw std::runtime_error(
                "service backend: spec does not round-trip; "
                "spec-file sweeps only");
        for (std::size_t v = 0; v < plan.variantCount(); ++v)
            if (check.configHash(v) != plan.configHash(v))
                throw std::runtime_error(
                    "service backend: spec does not round-trip "
                    "(variant config drift); spec-file sweeps only");
    }

    ignoreSigpipe();
    std::string error;
    const int fd = connectTo(_addr, &error);
    if (fd < 0)
        throw InfrastructureError("sweep service: cannot reach " +
                                  _addr + ": " + error);
    LineSocket sock(fd);

    std::string reply = exchange(
        sock,
        ProtocolMsg("cmd", "submit").field("spec", text).str(),
        "submit");
    requireOk(reply, "submit");
    std::string job_id, state;
    if (!jsonFindString(reply, "job", job_id) ||
        !jsonFindString(reply, "state", state))
        throw InfrastructureError(
            "sweep service: malformed submit reply");
    std::string dedup;
    jsonFindString(reply, "dedup", dedup);
    inform("service backend: job ", job_id, " (", dedup, ", ",
           state, ") at ", _addr);

    while (state != "done") {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(_poll_s));
        reply = exchange(sock,
                         ProtocolMsg("cmd", "status")
                             .field("job", job_id)
                             .str(),
                         "status");
        requireOk(reply, "status");
        if (!jsonFindString(reply, "state", state))
            throw InfrastructureError(
                "sweep service: malformed status reply");
    }

    reply = exchange(sock,
                     ProtocolMsg("cmd", "result")
                         .field("job", job_id)
                         .str(),
                     "result");
    requireOk(reply, "result");
    std::uint64_t record_count = 0;
    jsonFindU64(reply, "records", record_count);
    std::vector<std::size_t> quarantined;
    jsonFindArray(reply, "quarantined", quarantined);

    // Fetched records land in the caller's store when one is
    // attached (persisting the service results for local resume);
    // otherwise in a throwaway. Either way the matrix slots fill
    // through plan.prefill — the exact resume path, hence exact
    // bytes.
    ResultStore fallback;
    ResultStore *fill_store =
        ctx.opts.store ? ctx.opts.store : &fallback;
    std::size_t parsed = 0;
    for (std::uint64_t i = 0; i < record_count; ++i) {
        std::string line;
        if (!sock.recvLine(line))
            throw InfrastructureError(
                "sweep service: connection lost mid-result");
        std::string rec_text;
        if (!jsonFindString(line, "rec", rec_text))
            continue;
        ResultRecord rec;
        if (ResultStore::parseRecord(rec_text, rec)) {
            fill_store->put(rec);
            ++parsed;
        } else {
            ++counters.store_skipped;
        }
    }

    std::vector<char> merged_done = done;
    counters.executed += plan.prefill(*fill_store, res, merged_done);

    // Quarantined tasks have no record: flag their cells and exempt
    // them from the completeness check — same record-wins rule as
    // the process-shard merge (a task whose record landed anywhere
    // is simply done).
    std::sort(quarantined.begin(), quarantined.end());
    for (const std::size_t q : quarantined) {
        if (q >= plan.size() || merged_done[q])
            continue;
        merged_done[q] = 1;
        const PlanTask &t = plan.task(q);
        res.matrix(t.v).fault[t.m][t.b] = 1;
        counters.quarantined.push_back(q);
    }
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (!merged_done[i])
            throw InfrastructureError(
                "sweep service: job " + job_id +
                " reported done but task " + std::to_string(i) +
                " has no record (" + std::to_string(parsed) +
                " records fetched)");
}

} // namespace microlib
