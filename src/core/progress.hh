/**
 * @file
 * Machine-readable sweep progress: one JSON object per line.
 *
 * Long sweeps — especially sharded ones running on other hosts —
 * need to be monitorable without scraping human log output. With
 * EngineOptions::progress_path set, every execution backend appends
 * one JSON line per event to that file (flushed per line, so `tail
 * -f` and remote pollers always see whole records):
 *
 *   {"event":"plan",...}      once per run(): totals, resumed/skipped
 *                             counts, the shard spec
 *   {"event":"heartbeat",...} per task, immediately BEFORE it
 *                             simulates: the flat task index about to
 *                             run (plus bench/mech). The liveness
 *                             signal supervised sharding tails — and
 *                             the blame evidence when the process
 *                             dies or wedges on that task
 *   {"event":"run",...}       per finished task: benchmark, mechanism,
 *                             per-benchmark and overall completed/total
 *                             counters, elapsed seconds, ETA seconds
 *   {"event":"bench",...}     when a benchmark's last pending task of
 *                             this process finishes
 *   {"event":"done",...}      once per run(): final counters,
 *                             quarantined/store_skipped included
 *
 * The supervising parent of a multi-process sweep adds worker
 * lifecycle events to ITS stream: "shard" (worker launched: pid,
 * attempt), "worker_stall" (heartbeat timeout: SIGKILL),
 * "worker_restart" (restart verdict: retries, backoff delay),
 * "quarantine" (a task excluded after repeated strikes) and
 * "shard_exit" (a worker finished).
 *
 * Each shard of a multi-process sweep writes its own stream (the
 * parent derives per-shard paths), so shards are monitored
 * independently. Progress output never feeds back into results: it
 * carries wall-clock times but the determinism contract is untouched.
 * Consumers must tolerate a torn final line — a writer can die
 * mid-write; core/supervisor.hh's ProgressFollower (which only ever
 * consumes completed lines) is the reference reader.
 */

#ifndef MICROLIB_CORE_PROGRESS_HH
#define MICROLIB_CORE_PROGRESS_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

namespace microlib
{

/** Builder for one progress line: {"event":"<name>", fields...}. */
class ProgressEvent
{
  public:
    explicit ProgressEvent(const std::string &name);

    ProgressEvent &field(const char *key, const std::string &value);
    ProgressEvent &field(const char *key, const char *value);
    ProgressEvent &field(const char *key, std::uint64_t value);
    ProgressEvent &field(const char *key, double value);

    /** The complete JSON object, closing brace included. */
    std::string str() const;

    /** JSON string escaping (quotes, backslash, control chars). */
    static std::string escape(const std::string &s);

  private:
    std::ostringstream _os;
};

/** Append-per-line JSONL progress stream; thread-safe, flushed per
 *  event. A default-constructed writer is disabled and write() is a
 *  no-op, so call sites never branch. Sinks to either a file (the
 *  classic tail-able stream) or a caller-owned fd (a service worker
 *  streaming events over its daemon socket — the same lines, the
 *  same whole-lines-only contract, a different transport). */
class ProgressWriter
{
  public:
    ProgressWriter() = default;

    /** Open (truncate) @p path; empty = disabled. Parent directories
     *  are created. */
    explicit ProgressWriter(const std::string &path);

    /** Write lines to @p fd (a connected socket or pipe). The fd is
     *  borrowed, never closed; a failed write disables the writer
     *  (the fd's owner learns of the hangup through its own I/O). */
    explicit ProgressWriter(int fd);

    ProgressWriter(const ProgressWriter &) = delete;
    ProgressWriter &operator=(const ProgressWriter &) = delete;

    bool enabled() const { return _out.is_open() || _fd >= 0; }

    void write(const ProgressEvent &event);

    /** Append one raw, already-formatted JSONL line (no newline).
     *  The daemon relays worker progress lines into its own stream
     *  through this — byte-identical passthrough, no re-encode. */
    void writeLine(const std::string &line);

  private:
    std::mutex _mu;
    std::ofstream _out;
    int _fd = -1;
};

} // namespace microlib

#endif // MICROLIB_CORE_PROGRESS_HH
