/**
 * @file
 * Benchmark selections used by the paper's methodology studies.
 *
 * Table 4 lists which SPEC benchmarks each validated article used;
 * Table 7 re-ranks the mechanisms under the DBCP and GHB article
 * selections; Figure 7 contrasts the six most and six least
 * mechanism-sensitive benchmarks. The DBCP/GHB memberships are
 * reconstructed from the respective articles (the paper's own
 * Table 4 checkmarks; see DESIGN.md §6 on this reconstruction).
 */

#ifndef MICROLIB_CORE_SELECTIONS_HH
#define MICROLIB_CORE_SELECTIONS_HH

#include <string>
#include <vector>

namespace microlib
{

/** The 5-benchmark selection of the DBCP article (Table 4 row 1). */
const std::vector<std::string> &dbcpSelection();

/** The 12-benchmark selection of the GHB article (Table 4 row 3). */
const std::vector<std::string> &ghbSelection();

/** The paper's six high-sensitivity benchmarks (Figure 7). */
const std::vector<std::string> &highSensitivitySelection();

/** The paper's six low-sensitivity benchmarks (Figure 7). */
const std::vector<std::string> &lowSensitivitySelection();

} // namespace microlib

#endif // MICROLIB_CORE_SELECTIONS_HH
