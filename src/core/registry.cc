#include "core/registry.hh"

#include "mechanisms/cdp.hh"
#include "mechanisms/cdp_sp.hh"
#include "mechanisms/dbcp.hh"
#include "mechanisms/frequent_value_cache.hh"
#include "mechanisms/ghb.hh"
#include "mechanisms/markov_prefetch.hh"
#include "mechanisms/stride_prefetch.hh"
#include "mechanisms/tagged_prefetch.hh"
#include "mechanisms/tcp.hh"
#include "mechanisms/timekeeping.hh"
#include "mechanisms/timekeeping_victim.hh"
#include "mechanisms/victim_cache.hh"
#include "sim/logging.hh"

namespace microlib
{

namespace
{

template <typename T>
std::function<std::unique_ptr<CacheMechanism>(const MechanismConfig &)>
maker()
{
    return [](const MechanismConfig &cfg) {
        return std::unique_ptr<CacheMechanism>(new T(cfg));
    };
}

std::vector<MechanismDesc>
buildRegistry()
{
    std::vector<MechanismDesc> reg;

    reg.push_back({"TP", "Tagged Prefetching",
                   "prefetches next cache line on a miss, or on a hit "
                   "on a prefetched line",
                   "Smith, Computing Surveys 1982", 1982,
                   CacheLevel::L2, {}, maker<TaggedPrefetch>()});

    reg.push_back({"VC", "Victim Cache",
                   "small fully associative cache for evicted lines; "
                   "limits conflict misses",
                   "Jouppi, WRL TR 1990", 1990, CacheLevel::L1D, {},
                   maker<VictimCache>()});

    reg.push_back({"SP", "Stride Prefetching",
                   "detects per-load strides and prefetches "
                   "accordingly",
                   "Chen & Baer / Fu, Patel, Janssens, MICRO 1992",
                   1992, CacheLevel::L2, {}, maker<StridePrefetch>()});

    reg.push_back({"Markov", "Markov Prefetcher",
                   "records probable miss-address sequences for "
                   "target address prediction",
                   "Joseph & Grunwald, ISCA 1997", 1997,
                   CacheLevel::L1D, {}, maker<MarkovPrefetch>()});

    reg.push_back({"FVC", "Frequent Value Cache",
                   "victim-style side cache storing frequently used "
                   "values in compressed form",
                   "Zhang, Yang, Gupta, ASPLOS 2000", 2000,
                   CacheLevel::L1D, {}, maker<FrequentValueCache>()});

    reg.push_back({"DBCP", "Dead-Block Correlating Prefetcher",
                   "records access patterns finishing with a miss and "
                   "prefetches when the pattern recurs",
                   "Lai, Fide, Falsafi, ISCA 2001", 2001,
                   CacheLevel::L1D, {"Markov"}, maker<Dbcp>()});

    reg.push_back({"TKVC", "Timekeeping Victim Cache",
                   "decides via reuse prediction whether a victim "
                   "line enters the victim cache",
                   "Hu, Kaxiras, Martonosi, ISCA 2002", 2002,
                   CacheLevel::L1D, {"VC"}, maker<TimekeepingVictim>()});

    reg.push_back({"TK", "Timekeeping Prefetcher",
                   "predicts when a line dies and prefetches its "
                   "recorded replacement in time",
                   "Hu, Kaxiras, Martonosi, ISCA 2002", 2002,
                   CacheLevel::L1D, {"DBCP"}, maker<Timekeeping>()});

    reg.push_back({"CDP", "Content-Directed Data Prefetching",
                   "scans fetched lines for addresses and prefetches "
                   "them immediately",
                   "Cooksey, Jourdan, Grunwald, ASPLOS 2002", 2002,
                   CacheLevel::L2, {"SP"}, maker<Cdp>()});

    reg.push_back({"CDPSP", "CDP + SP",
                   "combination of content-directed and stride "
                   "prefetching as proposed in the CDP article",
                   "Cooksey, Jourdan, Grunwald, ASPLOS 2002", 2002,
                   CacheLevel::L2, {"SP"}, maker<CdpSp>()});

    reg.push_back({"TCP", "Tag Correlating Prefetching",
                   "records per-set tag miss patterns and prefetches "
                   "the most likely next tag",
                   "Hu, Martonosi, Kaxiras, HPCA 2003", 2003,
                   CacheLevel::L2, {"DBCP"}, maker<Tcp>()});

    reg.push_back({"GHB", "Global History Buffer",
                   "records stride patterns in per-PC miss streams "
                   "and prefetches on recurrence",
                   "Nesbit & Smith, HPCA 2004", 2004, CacheLevel::L2,
                   {"SP"}, maker<Ghb>()});

    return reg;
}

} // namespace

const std::vector<MechanismDesc> &
mechanismRegistry()
{
    static const std::vector<MechanismDesc> reg = buildRegistry();
    return reg;
}

const MechanismDesc &
mechanismDesc(const std::string &acronym)
{
    for (const auto &d : mechanismRegistry())
        if (d.acronym == acronym)
            return d;
    fatal("unknown mechanism: ", acronym);
}

std::unique_ptr<CacheMechanism>
makeMechanism(const std::string &acronym, const MechanismConfig &cfg)
{
    if (acronym == "Base")
        return nullptr;
    return mechanismDesc(acronym).make(cfg);
}

const std::vector<std::string> &
allMechanismNames()
{
    // The paper's figure order (Table 6 / Figure 4 column order).
    static const std::vector<std::string> names = {
        "Base", "TP",  "VC",    "SP",  "Markov", "FVC", "DBCP",
        "TKVC", "TK",  "CDP",   "CDPSP", "TCP",  "GHB",
    };
    return names;
}

} // namespace microlib
