/**
 * @file
 * The baseline configuration — the paper's Table 1 — plus the trace
 * windows used by the experiments (scaled 1:250; see DESIGN.md).
 */

#ifndef MICROLIB_CORE_BASELINE_CONFIG_HH
#define MICROLIB_CORE_BASELINE_CONFIG_HH

#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"

namespace microlib
{

/** Full system configuration for one run. */
struct BaselineConfig
{
    CoreParams core;
    HierarchyParams hier;
};

/** Table 1: the scaled-up superscalar + SDRAM baseline. */
BaselineConfig makeBaseline();

/** Baseline with SimpleScalar's constant 70-cycle memory. */
BaselineConfig makeConstantMemoryBaseline(Cycle latency = 70);

/** Baseline with the SDRAM scaled to a ~70-cycle average latency
 *  (Figure 8's third configuration: CAS and friends scaled down). */
BaselineConfig makeScaledSdramBaseline();

/** Baseline with SimpleScalar-like cache models everywhere
 *  (infinite MSHR, no pipeline stalls, free refill ports). */
BaselineConfig makeSimpleScalarCacheBaseline(BaselineConfig base);

/** Render the Table 1 parameter dump. */
ParamTable describeBaseline(const BaselineConfig &cfg);

/** Trace-window scaling for the experiments. */
struct TraceScale
{
    std::uint64_t simpoint_trace = 2'000'000;    ///< paper: 500 M
    std::uint64_t simpoint_interval = 500'000;
    unsigned simpoint_k = 4;
    std::uint64_t arbitrary_skip = 2'000'000;    ///< paper: 1 B
    std::uint64_t arbitrary_length = 4'000'000;  ///< paper: 2 B
};

/** Default scale; setting MICROLIB_QUICK=1 shrinks everything 4x for
 *  smoke runs. */
TraceScale makeTraceScale();

} // namespace microlib

#endif // MICROLIB_CORE_BASELINE_CONFIG_HH
