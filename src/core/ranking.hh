/**
 * @file
 * Speedup/ranking algebra over a result matrix.
 *
 * The paper compares mechanisms through average IPC speedup rankings;
 * this module derives rankings from a MatrixResult for arbitrary
 * benchmark subsets — the building block behind Figures 4, 7 and 8
 * and Tables 6 and 7.
 */

#ifndef MICROLIB_CORE_RANKING_HH
#define MICROLIB_CORE_RANKING_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace microlib
{

/** One ranked mechanism. */
struct RankEntry
{
    std::string mechanism;
    double avg_speedup = 1.0;
    unsigned rank = 0; ///< 1 = best
};

/**
 * The total order every ranking uses: higher average speedup first,
 * exact ties broken by acronym (byte-wise ascending). The tie rule
 * makes "which mechanism wins" a pure function of the (speedup,
 * acronym) pairs — two matrices listing the same mechanisms in
 * different row order rank identically, which cliff detection
 * (core/cliff_finder.hh) depends on: a ranking flip along an axis
 * must mean the results changed, never that the catalog order did.
 */
bool rankBefore(const RankEntry &a, const RankEntry &b);

/**
 * Rank all mechanisms of @p matrix by average speedup over
 * @p subset (benchmark indices; empty = all benchmarks).
 * Entries come back sorted best-first under rankBefore() — a
 * deterministic total order independent of the matrix's row order.
 */
std::vector<RankEntry> rankMechanisms(
    const MatrixResult &matrix,
    const std::vector<std::size_t> &subset = {});

/** Rank (1-based) of @p mechanism inside a rankMechanisms result. */
unsigned rankOf(const std::vector<RankEntry> &ranking,
                const std::string &mechanism);

/**
 * Per-benchmark sensitivity: the spread between the best and worst
 * mechanism speedup on that benchmark (Figure 6's metric).
 */
std::vector<double> benchmarkSensitivity(const MatrixResult &matrix);

} // namespace microlib

#endif // MICROLIB_CORE_RANKING_HH
