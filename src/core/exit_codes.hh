/**
 * @file
 * Process exit codes shared by every MicroLib CLI tool.
 *
 * A sweep that runs to completion can still carry bad news — cells
 * quarantined after repeated worker faults — and a service deployment
 * adds a failure class that has nothing to do with the experiment at
 * all (daemon unreachable, worker schema skew, socket torn down).
 * Callers scripting the tools (CI, cluster schedulers) need to tell
 * these apart without parsing stderr, so the tools agree on one code
 * map and microlib_sweepd reports the same codes in job status:
 *
 *   - exit_ok:             the run completed and every cell is real.
 *   - exit_failure:        the experiment itself is unusable (bad
 *                          benchmark, unloadable trace, fatal()).
 *   - exit_usage:          the command line was malformed.
 *   - exit_quarantined:    the sweep completed but one or more cells
 *                          were quarantined (FAULT sentinels in the
 *                          report); rerunning may or may not help.
 *   - exit_infrastructure: the sweep could not complete for reasons
 *                          outside the experiment — service or worker
 *                          infrastructure (connection refused/lost,
 *                          schema-tuple mismatch, supervisor give-up
 *                          with stores kept for resume). Rerunning
 *                          against healthy infrastructure should
 *                          succeed without recomputation.
 *
 * Backends signal the last class by throwing InfrastructureError;
 * tool mains translate it to exit_infrastructure instead of the
 * generic failure path.
 */

#ifndef MICROLIB_CORE_EXIT_CODES_HH
#define MICROLIB_CORE_EXIT_CODES_HH

#include <stdexcept>
#include <string>

namespace microlib
{

constexpr int exit_ok = 0;
constexpr int exit_failure = 1;
constexpr int exit_usage = 2;
constexpr int exit_quarantined = 3;
constexpr int exit_infrastructure = 4;

/**
 * The run could not complete for reasons outside the experiment:
 * service/worker infrastructure failed, not the simulation. Partial
 * results are preserved (result stores are append-only), so a retry
 * resumes rather than recomputes.
 */
class InfrastructureError : public std::runtime_error
{
  public:
    explicit InfrastructureError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace microlib

#endif // MICROLIB_CORE_EXIT_CODES_HH
