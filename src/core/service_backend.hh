/**
 * @file
 * ServiceBackend: run a sweep by submitting it to microlib_sweepd.
 *
 * The fourth ExecutionBackend (after thread-pool, process-shard and
 * their lockstep variants' shared leaf): instead of simulating
 * anything locally, submit the plan's canonical spec to a sweep
 * daemon, poll until the job completes, then fetch the fingerprinted
 * records and fill the SweepResult slots through the SAME
 * TaskPlan::prefill path a resumed local sweep uses. Hexfloat record
 * serialization round-trips doubles exactly, so the result — and any
 * report rendered from it — is byte-identical to a local
 * ThreadPoolBackend run of the same spec.
 *
 * Dedup is the daemon's: a spec already executed (by anyone)
 * completes without a single new simulation, and per-task records
 * shared with other sweeps are never re-run. The backend cannot know
 * or care which worker ran what.
 *
 * Infrastructure failures — daemon unreachable, connection lost
 * mid-job, refused submit — throw InfrastructureError, which the CLI
 * maps to exit code 4 (core/exit_codes.hh): "retry against healthy
 * infrastructure", as opposed to an experiment failure.
 */

#ifndef MICROLIB_CORE_SERVICE_BACKEND_HH
#define MICROLIB_CORE_SERVICE_BACKEND_HH

#include <string>

#include "core/execution_backend.hh"

namespace microlib
{

/** ExecutionBackend over a microlib_sweepd connection. */
class ServiceBackend : public ExecutionBackend
{
  public:
    /** Submit to the daemon at @p addr (unix:/path or host:port),
     *  polling job status every @p poll_s seconds. */
    explicit ServiceBackend(std::string addr, double poll_s = 0.1);

    const char *name() const override { return "service"; }

    void execute(const TaskPlan &plan, const std::vector<char> &done,
                 const ExecutionContext &ctx, SweepResult &res,
                 RunCounters &counters) override;

  private:
    std::string _addr;
    double _poll_s;
};

} // namespace microlib

#endif // MICROLIB_CORE_SERVICE_BACKEND_HH
