#include "core/baseline_config.hh"

#include <cstdlib>

#include "mem/cache_simple.hh"

namespace microlib
{

BaselineConfig
makeBaseline()
{
    BaselineConfig cfg;

    // Processor core (Table 1): 2 GHz, 128-RUU, 128-LSQ, 8-wide.
    cfg.core.ruu_size = 128;
    cfg.core.lsq_size = 128;
    cfg.core.fetch_width = 8;
    cfg.core.commit_width = 8;
    cfg.core.fu.int_alu = 8;
    cfg.core.fu.int_mult = 3;
    cfg.core.fu.fp_alu = 6;
    cfg.core.fu.fp_mult = 2;
    cfg.core.fu.ls_units = 4;

    // L1 data cache: 32 KB direct-mapped, 32 B lines, 4 ports,
    // 8 MSHRs x 4 reads, 1-cycle latency, write-back,
    // allocate-on-write.
    cfg.hier.l1d.name = "l1d";
    cfg.hier.l1d.size = 32 * 1024;
    cfg.hier.l1d.line = 32;
    cfg.hier.l1d.assoc = 1;
    cfg.hier.l1d.ports = 4;
    cfg.hier.l1d.latency = 1;
    cfg.hier.l1d.mshrs = 8;
    cfg.hier.l1d.reads_per_mshr = 4;

    // L1 instruction cache: 32 KB 4-way LRU, 1-cycle latency.
    cfg.hier.l1i.name = "l1i";
    cfg.hier.l1i.size = 32 * 1024;
    cfg.hier.l1i.line = 32;
    cfg.hier.l1i.assoc = 4;
    cfg.hier.l1i.ports = 1;
    cfg.hier.l1i.latency = 1;
    cfg.hier.l1i.mshrs = 8;
    cfg.hier.l1i.reads_per_mshr = 4;

    // L2 unified: 1 MB 4-way LRU, 64 B lines, 1 port, 12-cycle
    // latency, 8 MSHRs x 4 reads.
    cfg.hier.l2.name = "l2";
    cfg.hier.l2.size = 1024 * 1024;
    cfg.hier.l2.line = 64;
    cfg.hier.l2.assoc = 4;
    cfg.hier.l2.ports = 1;
    cfg.hier.l2.latency = 12;
    cfg.hier.l2.mshrs = 8;
    cfg.hier.l2.reads_per_mshr = 4;

    // L1/L2 bus: 32-byte wide at core frequency.
    cfg.hier.l1l2_bus.name = "l1l2_bus";
    cfg.hier.l1l2_bus.bytes_per_beat = 32;
    cfg.hier.l1l2_bus.cycles_per_beat = 1;

    // Front-side bus: 64 bytes at 400 MHz = 5 CPU cycles per beat.
    cfg.hier.fsb.name = "fsb";
    cfg.hier.fsb.bytes_per_beat = 64;
    cfg.hier.fsb.cycles_per_beat = 5;

    // SDRAM (Table 1 timings, in CPU cycles).
    cfg.hier.memory = MemoryModelKind::Sdram;
    cfg.hier.sdram.name = "dram";
    cfg.hier.sdram.banks = 4;
    cfg.hier.sdram.rows = 8192;
    cfg.hier.sdram.columns = 1024;
    cfg.hier.sdram.ras_to_ras = 20;
    cfg.hier.sdram.ras_active = 80;
    cfg.hier.sdram.ras_to_cas = 30;
    cfg.hier.sdram.cas_latency = 30;
    cfg.hier.sdram.ras_precharge = 30;
    cfg.hier.sdram.ras_cycle = 110;
    cfg.hier.sdram.queue_entries = 32;
    cfg.hier.sdram.line_bytes = 64;

    return cfg;
}

BaselineConfig
makeConstantMemoryBaseline(Cycle latency)
{
    BaselineConfig cfg = makeBaseline();
    cfg.hier.memory = MemoryModelKind::ConstantLatency;
    cfg.hier.const_latency = latency;
    return cfg;
}

BaselineConfig
makeScaledSdramBaseline()
{
    BaselineConfig cfg = makeBaseline();
    // Scale the SDRAM so its average latency lands near the
    // SimpleScalar-like 70 cycles (paper: CAS reduced from 6 to 2
    // memory cycles, i.e. roughly a 1/2.5 scale on the timings).
    cfg.hier.sdram.scaleTimings(0.4);
    return cfg;
}

BaselineConfig
makeSimpleScalarCacheBaseline(BaselineConfig base)
{
    base.hier.l1d = makeSimpleScalarLike(base.hier.l1d);
    base.hier.l1i = makeSimpleScalarLike(base.hier.l1i);
    base.hier.l2 = makeSimpleScalarLike(base.hier.l2);
    return base;
}

ParamTable
describeBaseline(const BaselineConfig &cfg)
{
    ParamTable t;
    t.section("Processor core");
    t.add("Processor Frequency", "2 GHz");
    t.add("Instruction Windows",
          std::to_string(cfg.core.ruu_size) + "-RUU, " +
              std::to_string(cfg.core.lsq_size) + "-LSQ");
    t.add("Fetch, Decode, Issue width",
          std::to_string(cfg.core.fetch_width) +
              " instructions per cycle");
    t.add("Functional units",
          std::to_string(cfg.core.fu.int_alu) + " IntALU, " +
              std::to_string(cfg.core.fu.int_mult) + " IntMult/Div, " +
              std::to_string(cfg.core.fu.fp_alu) + " FPALU, " +
              std::to_string(cfg.core.fu.fp_mult) + " FPMult/Div, " +
              std::to_string(cfg.core.fu.ls_units) +
              " Load/Store Units");
    t.add("Commit width",
          "up to " + std::to_string(cfg.core.commit_width) +
              " instructions per cycle");

    t.section("Memory Hierarchy");
    auto cache_line = [&t](const CacheParams &c) {
        t.add(c.name + " size", c.size);
        t.add(c.name + " assoc", c.assoc);
        t.add(c.name + " line", c.line);
        t.add(c.name + " ports", c.ports);
        t.add(c.name + " MSHRs", c.mshrs);
        t.add(c.name + " latency", c.latency);
    };
    cache_line(cfg.hier.l1d);
    cache_line(cfg.hier.l1i);
    cache_line(cfg.hier.l2);

    t.section("Bus");
    t.add("L1/L2 bus",
          std::to_string(cfg.hier.l1l2_bus.bytes_per_beat) +
              " bytes/beat");
    t.add("FSB", std::to_string(cfg.hier.fsb.bytes_per_beat) +
                     " bytes/beat, " +
                     std::to_string(cfg.hier.fsb.cycles_per_beat) +
                     " cpu cycles/beat");

    if (cfg.hier.memory == MemoryModelKind::Sdram) {
        const auto &d = cfg.hier.sdram;
        t.section("SDRAM");
        t.add("Banks", d.banks);
        t.add("Rows", d.rows);
        t.add("Columns", d.columns);
        t.add("RAS To RAS Delay", d.ras_to_ras);
        t.add("RAS Active Time", d.ras_active);
        t.add("RAS to CAS Delay", d.ras_to_cas);
        t.add("CAS Latency", d.cas_latency);
        t.add("RAS Precharge Time", d.ras_precharge);
        t.add("RAS Cycle Time", d.ras_cycle);
        t.add("Controller Queue", d.queue_entries);
    } else {
        t.section("Memory");
        t.add("Constant latency", cfg.hier.const_latency);
    }
    return t;
}

TraceScale
makeTraceScale()
{
    TraceScale s;
    const char *quick = std::getenv("MICROLIB_QUICK");
    if (quick && quick[0] == '1') {
        s.simpoint_trace /= 4;
        s.simpoint_interval /= 4;
        s.arbitrary_skip /= 4;
        s.arbitrary_length /= 4;
    }
    return s;
}

} // namespace microlib
