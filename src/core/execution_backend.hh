/**
 * @file
 * ExecutionBackend: how a TaskPlan's pending tasks get run.
 *
 * The plan/backend split separates what a sweep IS (TaskPlan: the
 * deterministic, fingerprinted task enumeration) from how it is
 * EXECUTED. The engine builds the plan, pre-fills resumed slots from
 * the result store, and hands the remaining tasks to a backend:
 *
 *  - ThreadPoolBackend (thread_pool_backend.hh): the in-process
 *    drain loop over the engine's persistent worker pool — the
 *    default, and the leaf executor every other backend bottoms out
 *    in.
 *  - ProcessShardBackend (process_shard_backend.hh): partitions the
 *    plan into N shards by stable task index, runs each shard in a
 *    forked worker process with its own append-only store, and
 *    merges the shard stores back into the parent's.
 *
 * Every backend obeys the same contract: execute each task exactly
 * per plan slot, persist through the attached store before
 * publishing, and never let scheduling influence results — the
 * MatrixResult must be bit-identical across backends, worker counts
 * and shard counts.
 */

#ifndef MICROLIB_CORE_EXECUTION_BACKEND_HH
#define MICROLIB_CORE_EXECUTION_BACKEND_HH

#include <cstddef>
#include <vector>

#include "core/task_plan.hh"

namespace microlib
{

class ExperimentEngine;
class ProgressWriter;
struct EngineOptions;

/** What one run() actually did (resume/shard accounting). */
struct RunCounters
{
    std::size_t executed = 0; ///< runs simulated by this call
    std::size_t resumed = 0;  ///< runs restored from the store
    /** Runs left for other shards: pending tasks outside this
     *  process's ShardSpec. A whole-plan run always reports 0. */
    std::size_t skipped = 0;

    /** Store lines skipped as unreadable (torn tails from killed
     *  writers, checksum mismatches) while loading/merging results
     *  this run — durability telemetry, not missing tasks: a skipped
     *  line's task simply re-executes. */
    std::size_t store_skipped = 0;

    /** Flat plan indices quarantined by the supervised process
     *  backend: tasks that repeatedly crashed or wedged their worker
     *  and were excluded so the rest of the sweep could finish. Their
     *  matrix cells stay empty (MatrixResult::fault marks them) and
     *  reports render them as FAULT. Empty everywhere else. */
    std::vector<std::size_t> quarantined;

    std::size_t total() const
    {
        return executed + resumed + skipped + quarantined.size();
    }
};

/** Everything a backend borrows from the engine driving it. */
struct ExecutionContext
{
    ExperimentEngine &engine;   ///< trace cache + worker pool owner
    const EngineOptions &opts;  ///< verbose/store/shard/keep_traces
    ProgressWriter *progress;   ///< may be nullptr (disabled)
};

/** Strategy interface: run a plan's pending tasks. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /** Short identifier for logs/progress ("thread-pool", ...). */
    virtual const char *name() const = 0;

    /**
     * Execute every task of @p plan not marked in @p done (resumed
     * slots), writing each result into its pre-assigned slot of its
     * variant's matrix in @p res and persisting it through
     * ctx.opts.store when attached. @p counters arrives with
     * `resumed` already set; the backend adds `executed` and
     * `skipped`. Throws on the first task failure after all
     * in-flight work has come home.
     */
    virtual void execute(const TaskPlan &plan,
                         const std::vector<char> &done,
                         const ExecutionContext &ctx, SweepResult &res,
                         RunCounters &counters) = 0;
};

} // namespace microlib

#endif // MICROLIB_CORE_EXECUTION_BACKEND_HH
