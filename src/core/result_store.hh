/**
 * @file
 * Versioned, append-only result store.
 *
 * Every completed simulation run is persisted as one self-describing
 * record keyed by a fingerprint of everything that determined its
 * outcome: benchmark, mechanism, a 64-bit hash of the full system
 * configuration (core, caches, buses, SDRAM, trace window, mechanism
 * options), the benchmark's trace-generation seed, and the store
 * schema version. The record carries the complete CoreResult and the
 * full StatSet snapshot, serialized exactly (doubles as hexfloats),
 * so a resumed sweep is bit-identical to an uninterrupted one.
 *
 * The ExperimentEngine writes records as workers finish runs and, on
 * a later run() over the same matrix, skips every task whose
 * fingerprint already has a record — an interrupted sweep resumes
 * instead of restarting. A record whose fingerprint does not match
 * the current configuration is simply never found: stale results are
 * ignored, never silently reused.
 *
 * The file is append-only with no header; each line stands alone.
 * Two stores (e.g. from sharded sweeps on different hosts) merge by
 * concatenating their files. Lines with an unknown schema tag, a
 * parse error, or a per-record FNV checksum mismatch (the trailing
 * `ck=` field catches bit rot and splices, not just torn tails) are
 * skipped on load and counted (unreadable(), surfaced as
 * RunCounters::store_skipped), so a schema bump never corrupts a
 * reader and a record torn by a crash mid-write costs exactly one
 * run. Setting MICROLIB_STORE_FSYNC=1 upgrades the per-put flush to
 * an fsync, trading append throughput for power-loss durability.
 * See docs/RESULT_STORE.md for the on-disk format.
 */

#ifndef MICROLIB_CORE_RESULT_STORE_HH
#define MICROLIB_CORE_RESULT_STORE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/experiment.hh"

namespace microlib
{

/**
 * On-disk record schema version. Bump whenever the line format, the
 * fingerprint field set, or the meaning of any persisted value
 * changes; old records then become unreadable-by-design rather than
 * wrong (the loader skips their lines). See docs/RESULT_STORE.md for
 * the bump policy.
 */
constexpr int result_store_schema = 1;

/** Identity of one persisted run. */
struct ResultKey
{
    std::string benchmark;
    std::string mechanism;
    std::uint64_t config_hash = 0; ///< fingerprintConfig(cfg)
    std::uint64_t trace_seed = 0;  ///< SpecProgram::seed
    int schema = result_store_schema;

    /** Canonical map key: all five fields, unambiguously joined. */
    std::string str() const;

    bool
    operator==(const ResultKey &o) const
    {
        return schema == o.schema && config_hash == o.config_hash &&
               trace_seed == o.trace_seed && benchmark == o.benchmark &&
               mechanism == o.mechanism;
    }
};

/**
 * 64-bit fingerprint of every RunConfig field that can change a
 * result: core parameters, all three caches' geometry/timing/realism
 * flags, both buses, the memory model and SDRAM timings, the trace
 * selection and window scale, and the mechanism options. Benchmark
 * identity and trace seed are deliberately NOT part of this hash —
 * they are separate ResultKey fields, so one sweep's records share
 * one config hash.
 */
std::uint64_t fingerprintConfig(const RunConfig &cfg);

/** The full key for (@p benchmark, @p mechanism) under @p cfg; looks
 *  up the benchmark's generator seed. @p config_hash must be
 *  fingerprintConfig(cfg) — callers keying a whole matrix hash the
 *  config once. */
ResultKey makeResultKey(const std::string &benchmark,
                        const std::string &mechanism,
                        std::uint64_t config_hash);

/** One persisted run: its identity plus everything runOne() reports
 *  (mechanism hardware specs excepted — those are rebuilt from the
 *  registry when needed, as with the old bench TSV cache). */
struct ResultRecord
{
    ResultKey key;
    CoreResult core;
    std::map<std::string, double> stats; ///< full StatSet snapshot
};

/** Rebuild the engine's RunOutput view of a persisted record. */
RunOutput toRunOutput(const ResultRecord &rec);

/** Build the record for a finished run. */
ResultRecord makeRecord(ResultKey key, const RunOutput &out);

/**
 * The store: an in-memory fingerprint -> record index, optionally
 * backed by an append-only file. All operations are thread-safe; the
 * engine's workers put() concurrently. Each put() is flushed, so a
 * killed sweep keeps every completed run.
 */
class ResultStore
{
  public:
    /**
     * Access mode of a file-backed store.
     *
     *  - ReadWrite: puts append to the backing file. The append
     *    stream opens lazily on the first put(), so a store opened
     *    only to be queried never creates or touches its file.
     *  - ReadOnly: a query-only view — find()/size() work, any
     *    mutation (put/merge/compact) is fatal(). Safe to open on a
     *    store another process is actively appending to: this side
     *    holds no write handle at all.
     */
    enum class Mode
    {
        ReadWrite,
        ReadOnly,
    };

    /** In-memory store (tests, throwaway sweeps). */
    ResultStore() = default;

    /** File-backed store: loads existing records from @p path (a
     *  missing file is an empty store). In ReadWrite mode parent
     *  directories are created, but the file itself is only created
     *  when the first put() appends — opening a store to query it
     *  leaves the filesystem untouched. MICROLIB_STORE_FSYNC=1 in the
     *  environment makes every put() fsync the backing file, not just
     *  flush it. */
    explicit ResultStore(const std::string &path,
                         Mode mode = Mode::ReadWrite);

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** The record for @p key, or nullopt. Returned by value: a
     *  reference into the store could be mutated by a concurrent
     *  put() of the same key (last-wins), and the copy is off the
     *  simulation path. */
    std::optional<ResultRecord> find(const ResultKey &key) const;

    /** Insert @p rec (and append it to the backing file, flushed).
     *  A duplicate key overwrites in memory — by the determinism
     *  contract both records hold identical values, and merge-by-
     *  concatenation needs last-wins semantics, not an error. */
    void put(const ResultRecord &rec);

    std::size_t size() const;

    /**
     * Merge-by-concatenation: append every readable record of the
     * store file at @p input_path into this store (and its backing
     * file, when present). Unreadable lines are skipped, exactly as
     * loadFile() skips them. Duplicate keys overwrite — identical by
     * the determinism contract. Returns the number of records read.
     * This is how sharded sweeps combine their per-shard stores; see
     * docs/SHARDING.md.
     */
    std::size_t merge(const std::string &input_path);

    /**
     * Rewrite the backing file to exactly one record per key — the
     * in-memory (last-wins) view — in sorted key order, dropping the
     * duplicate lines that merges and reruns accumulate and any
     * unreadable lines loadFile() skipped. The rewrite goes through
     * a temporary file renamed into place, so a crash mid-compact
     * leaves either the old or the new file, never a torn one. The
     * sorted order makes a compacted store a pure function of its
     * record set: two stores holding the same records compact to
     * byte-identical files, however differently they were built.
     * A memory-only store compacts trivially. Returns the number of
     * records in the compacted store.
     */
    std::size_t compact();

    const std::string &path() const { return _path; }
    Mode mode() const { return _mode; }

    /** Lines skipped as unreadable (unknown schema, torn write,
     *  checksum mismatch) by this store's loads and merges so far —
     *  durability telemetry; each such line's task just re-executes. */
    std::size_t unreadable() const;

    /** Serialize @p rec as one store line (no trailing newline),
     *  trailing `ck=` checksum included. */
    static std::string formatRecord(const ResultRecord &rec);

    /** Parse one store line; false on unknown schema, any parse
     *  error, or a `ck=` checksum mismatch (the caller skips such
     *  lines). Lines without a checksum field — written before the
     *  field existed — still parse. */
    static bool parseRecord(const std::string &line, ResultRecord &rec);

  private:
    void loadFile();
    /** Open the append stream if not already open (lock held);
     *  fatal() in ReadOnly mode. */
    void ensureAppend();

    std::string _path;           ///< empty = memory-only
    Mode _mode = Mode::ReadWrite;
    mutable std::mutex _mu;
    std::FILE *_append = nullptr; ///< append stream (FILE*: fsync needs a fd)
    bool _fsync = false;          ///< MICROLIB_STORE_FSYNC=1
    std::size_t _unreadable = 0;
    std::unordered_map<std::string, ResultRecord> _records;
};

} // namespace microlib

#endif // MICROLIB_CORE_RESULT_STORE_HH
