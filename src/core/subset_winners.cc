#include "core/subset_winners.hh"

#include <bit>

#include "sim/logging.hh"

namespace microlib
{

std::vector<std::vector<bool>>
subsetWinners(const std::vector<std::vector<double>> &speedup)
{
    const std::size_t mechs = speedup.size();
    if (mechs == 0)
        fatal("subsetWinners: no mechanisms");
    const std::size_t benches = speedup[0].size();
    if (benches == 0 || benches > 26)
        fatal("subsetWinners: benchmark count out of range");
    for (const auto &row : speedup)
        if (row.size() != benches)
            fatal("subsetWinners: ragged speedup matrix");

    std::vector<std::vector<bool>> can_win(
        benches + 1, std::vector<bool>(mechs, false));

    // Incremental Gray-code sweep: consecutive codes differ by one
    // benchmark, so per-mechanism sums update in O(mechs).
    std::vector<double> sums(mechs, 0.0);
    unsigned popcount = 0;
    const std::uint64_t total = 1ull << benches;
    std::uint64_t gray = 0;

    for (std::uint64_t i = 1; i < total; ++i) {
        const std::uint64_t next_gray = i ^ (i >> 1);
        const std::uint64_t flipped = gray ^ next_gray;
        const unsigned bit =
            static_cast<unsigned>(std::countr_zero(flipped));
        const bool added = next_gray & flipped;
        gray = next_gray;

        if (added) {
            ++popcount;
            for (std::size_t m = 0; m < mechs; ++m)
                sums[m] += speedup[m][bit];
        } else {
            --popcount;
            for (std::size_t m = 0; m < mechs; ++m)
                sums[m] -= speedup[m][bit];
        }

        // Winner(s) for this subset: max sum (N identical across
        // mechanisms, so sums compare directly).
        double best = sums[0];
        for (std::size_t m = 1; m < mechs; ++m)
            if (sums[m] > best)
                best = sums[m];
        auto &row = can_win[popcount];
        for (std::size_t m = 0; m < mechs; ++m)
            if (sums[m] >= best - 1e-12)
                row[m] = true;
    }
    return can_win;
}

std::vector<std::vector<bool>>
subsetWinnersBruteForce(const std::vector<std::vector<double>> &speedup)
{
    const std::size_t mechs = speedup.size();
    const std::size_t benches = speedup[0].size();
    std::vector<std::vector<bool>> can_win(
        benches + 1, std::vector<bool>(mechs, false));

    for (std::uint64_t mask = 1; mask < (1ull << benches); ++mask) {
        std::vector<double> sums(mechs, 0.0);
        unsigned n = 0;
        for (std::size_t b = 0; b < benches; ++b) {
            if (!(mask & (1ull << b)))
                continue;
            ++n;
            for (std::size_t m = 0; m < mechs; ++m)
                sums[m] += speedup[m][b];
        }
        double best = sums[0];
        for (std::size_t m = 1; m < mechs; ++m)
            if (sums[m] > best)
                best = sums[m];
        for (std::size_t m = 0; m < mechs; ++m)
            if (sums[m] >= best - 1e-12)
                can_win[n][m] = true;
    }
    return can_win;
}

} // namespace microlib
