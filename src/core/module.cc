#include "core/module.hh"

// Module is header-only; this translation unit anchors the component
// in the library.
