/**
 * @file
 * TaskPlan: the deterministic description of a sweep, independent of
 * how (or where) it executes.
 *
 * A sweep is a (benchmark x mechanism) matrix under one RunConfig.
 * The plan enumerates every task of that matrix in one canonical
 * order (benchmark varies slowest, so one benchmark's tasks are
 * contiguous), assigns each task its stable flat index and its
 * pre-assigned MatrixResult slot, and fingerprints it with the same
 * ResultKey the result store uses. Because the enumeration is a pure
 * function of (mechanisms, benchmarks, config), every process that
 * builds the plan — a single-host run, each shard of a multi-process
 * sweep, a cluster launcher printing the task list — agrees on task
 * indices, slots and fingerprints without any communication.
 *
 * That agreement is what makes sharding trivial: shard i of N is
 * simply the tasks whose index is congruent to i mod N, shard stores
 * merge by concatenation, and the merged matrix is bit-identical to a
 * single-process run because every task writes the same slot with the
 * same fingerprinted result no matter which process ran it.
 *
 * The plan also owns the resume logic: prefill() fills every matrix
 * slot whose record already exists in a ResultStore and marks the
 * task done, so execution backends only ever see the missing tasks.
 */

#ifndef MICROLIB_CORE_TASK_PLAN_HH
#define MICROLIB_CORE_TASK_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace microlib
{

class ResultStore;
struct ResultKey;

/** Which slice of a plan a process executes: shard index of count.
 *  The default {0, 1} is the whole plan. */
struct ShardSpec
{
    std::size_t index = 0;
    std::size_t count = 1;

    bool whole() const { return count <= 1; }

    /** "i/N" (the CLI flag syntax). */
    std::string str() const;

    /** Parse "i/N" (0 <= i < N); false on malformed input. */
    static bool parse(const std::string &text, ShardSpec &out);
};

/** One task of the plan: a (mechanism, benchmark) cell with its
 *  stable index — the slot assignment and the shard unit. */
struct PlanTask
{
    std::size_t index = 0; ///< flat index: b * mechanisms + m
    std::size_t m = 0;     ///< row in MatrixResult
    std::size_t b = 0;     ///< column in MatrixResult
};

/** Deterministic, fingerprinted enumeration of one sweep. */
class TaskPlan
{
  public:
    /** Enumerate @p mechanisms x @p benchmarks under @p cfg. The
     *  config is hashed once (fingerprintConfig); per-benchmark trace
     *  keys are precomputed. */
    TaskPlan(std::vector<std::string> mechanisms,
             std::vector<std::string> benchmarks, const RunConfig &cfg);

    const std::vector<std::string> &mechanisms() const
    {
        return _mechanisms;
    }
    const std::vector<std::string> &benchmarks() const
    {
        return _benchmarks;
    }

    /** The plan's own copy of the run configuration. */
    const RunConfig &config() const { return _cfg; }

    /** Total task count (mechanisms x benchmarks). */
    std::size_t size() const { return _tasks.size(); }
    bool empty() const { return _tasks.empty(); }

    const PlanTask &task(std::size_t index) const
    {
        return _tasks[index];
    }

    /** fingerprintConfig(config()), hashed once at construction. */
    std::uint64_t configHash() const { return _config_hash; }

    /** The trace-cache key of benchmark column @p b. */
    const std::string &traceKey(std::size_t b) const
    {
        return _trace_keys[b];
    }

    /** The result-store identity of task @p index. */
    ResultKey resultKey(std::size_t index) const;

    /** A MatrixResult with every slot allocated (and indices built)
     *  for this plan — the frame tasks write into. */
    MatrixResult emptyResult() const;

    /** Stable shard assignment: task @p index belongs to shard
     *  (@p index mod @p shard.count). */
    static bool
    inShard(std::size_t index, const ShardSpec &shard)
    {
        return shard.whole() || index % shard.count == shard.index;
    }

    /** Indices of every task in @p shard, in plan order. Shards
     *  0..N-1 partition the plan: disjoint and exhaustive. */
    std::vector<std::size_t> shardTasks(const ShardSpec &shard) const;

    /** Indices of every task still to execute — not marked in
     *  @p done and inside @p shard — in plan order. The single
     *  source of truth for "what does this process run": backends,
     *  skip accounting and progress reporting must all agree with
     *  it. */
    std::vector<std::size_t>
    pendingTasks(const std::vector<char> &done,
                 const ShardSpec &shard) const;

    /**
     * Resume pre-fill: for every task whose fingerprinted record
     * exists in @p store, copy the record into its MatrixResult slot
     * and set done[index]. @p done must have size() entries; already-
     * done tasks are left alone. Returns the number of tasks filled
     * by this call.
     */
    std::size_t prefill(const ResultStore &store, MatrixResult &res,
                        std::vector<char> &done) const;

    /**
     * Per-benchmark count of tasks still to execute: not marked in
     * @p done and inside @p shard. Execution backends use this as the
     * trace refcount — a benchmark's trace becomes evictable exactly
     * when its count drains to zero, and a benchmark whose count
     * starts at zero is never materialized at all.
     */
    std::vector<std::size_t>
    pendingPerBenchmark(const std::vector<char> &done,
                        const ShardSpec &shard) const;

    /** One human/machine-readable line describing task @p index (the
     *  `microlib_sweep --plan` output format). */
    std::string describe(std::size_t index,
                         const ShardSpec &shard) const;

  private:
    std::vector<std::string> _mechanisms;
    std::vector<std::string> _benchmarks;
    RunConfig _cfg;
    std::uint64_t _config_hash = 0;
    std::vector<std::string> _trace_keys;
    std::vector<PlanTask> _tasks;
};

/**
 * Trace-cache key for (@p benchmark, @p cfg): the benchmark name plus
 * the canonical window description (windowKey), i.e. everything a
 * materialized trace depends on. Shared by the engine, the plan and
 * the result-store fingerprint so "same window" means one thing.
 */
std::string traceCacheKey(const std::string &benchmark,
                          const RunConfig &cfg);

} // namespace microlib

#endif // MICROLIB_CORE_TASK_PLAN_HH
