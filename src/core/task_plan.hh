/**
 * @file
 * TaskPlan: the deterministic description of a sweep, independent of
 * how (or where) it executes.
 *
 * A sweep is described by a SweepSpec: (benchmark x mechanism x
 * config variant), the variants being the expansion of the spec's
 * declared axes (core/sweep_spec.hh). The plan enumerates every task
 * of that cube in one canonical order (benchmark slowest, then
 * variant, then mechanism, so the tasks sharing a benchmark's trace
 * stay contiguous), assigns each task its stable flat index and its
 * pre-assigned SweepResult slot, and fingerprints it with the same
 * ResultKey the result store uses — each variant's key hashes that
 * variant's fully resolved configuration, so variants can never
 * collide. Because the enumeration is a pure function of the spec,
 * every process that builds the plan — a single-host run, each shard
 * of a multi-process sweep, a cluster launcher printing the task
 * list — agrees on task indices, slots and fingerprints without any
 * communication.
 *
 * That agreement is what makes sharding trivial: shard i of N is
 * simply the tasks whose index is congruent to i mod N, shard stores
 * merge by concatenation, and the merged result is bit-identical to a
 * single-process run because every task writes the same slot with the
 * same fingerprinted result no matter which process ran it.
 *
 * Variants that leave the trace window untouched share a benchmark's
 * materialized trace: the plan groups tasks into *trace slots* —
 * unique (benchmark, window) pairs — and execution backends refcount
 * those slots, so a window shared by eight L2-size variants is
 * materialized exactly once and released when the last of them
 * drains.
 *
 * The plan also owns the resume logic: prefill() fills every result
 * slot whose record already exists in a ResultStore and marks the
 * task done, so execution backends only ever see the missing tasks.
 */

#ifndef MICROLIB_CORE_TASK_PLAN_HH
#define MICROLIB_CORE_TASK_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/sweep_spec.hh"

namespace microlib
{

class ResultStore;
struct ResultKey;

/** Which slice of a plan a process executes: shard index of count.
 *  The default {0, 1} is the whole plan. */
struct ShardSpec
{
    std::size_t index = 0;
    std::size_t count = 1;

    bool whole() const { return count <= 1; }

    /** "i/N" (the CLI flag syntax). */
    std::string str() const;

    /** Parse "i/N" (0 <= i < N); false on malformed input. */
    static bool parse(const std::string &text, ShardSpec &out);
};

/** One task of the plan: a (mechanism, benchmark, variant) cell with
 *  its stable index — the slot assignment and the shard unit. */
struct PlanTask
{
    std::size_t index = 0; ///< flat index: (b * variants + v) * mechs + m
    std::size_t m = 0;     ///< row in the variant's MatrixResult
    std::size_t b = 0;     ///< column in the variant's MatrixResult
    std::size_t v = 0;     ///< which MatrixResult (config variant)
};

/** Deterministic, fingerprinted enumeration of one sweep. */
class TaskPlan
{
  public:
    /** Enumerate @p spec: benchmarks x mechanisms x variants. Every
     *  variant's config is resolved and hashed once
     *  (fingerprintConfig); trace slots are precomputed. */
    explicit TaskPlan(const SweepSpec &spec);

    /** Classic one-variant plan: @p mechanisms x @p benchmarks under
     *  @p cfg (wraps SweepSpec::single). Flat indices reduce to the
     *  historic b * mechanisms + m, so stores written by older
     *  sweeps resume unchanged. */
    TaskPlan(std::vector<std::string> mechanisms,
             std::vector<std::string> benchmarks, const RunConfig &cfg);

    const std::vector<std::string> &mechanisms() const
    {
        return _mechanisms;
    }
    const std::vector<std::string> &benchmarks() const
    {
        return _benchmarks;
    }

    /** The spec the plan was built from. */
    const SweepSpec &spec() const { return _spec; }

    /** Number of config variants (>= 1). */
    std::size_t variantCount() const { return _variant_names.size(); }

    /** Display name of variant @p v ("base" for a one-variant plan). */
    const std::string &variantName(std::size_t v) const
    {
        return _variant_names[v];
    }

    /** The resolved run configuration of variant @p v. */
    const RunConfig &config(std::size_t v = 0) const { return _cfgs[v]; }

    /** fingerprintConfig(config(v)), hashed once at construction. */
    std::uint64_t configHash(std::size_t v = 0) const
    {
        return _config_hashes[v];
    }

    /** Total task count (benchmarks x variants x mechanisms). */
    std::size_t size() const { return _tasks.size(); }
    bool empty() const { return _tasks.empty(); }

    const PlanTask &task(std::size_t index) const
    {
        return _tasks[index];
    }

    /** Number of unique (benchmark, trace window) pairs — the unit
     *  of trace materialization and refcounting. */
    std::size_t traceSlotCount() const { return _slot_keys.size(); }

    /** The trace slot task @p index draws its trace from. Variants
     *  sharing a window share the slot. */
    std::size_t traceSlot(std::size_t index) const
    {
        const PlanTask &t = _tasks[index];
        return _task_slot[t.b * variantCount() + t.v];
    }

    /** The trace-cache key of slot @p slot. */
    const std::string &slotKey(std::size_t slot) const
    {
        return _slot_keys[slot];
    }

    /** The result-store identity of task @p index (the variant's
     *  resolved config hash). */
    ResultKey resultKey(std::size_t index) const;

    /** A SweepResult with every variant's matrix allocated (and
     *  indices built) for this plan — the frame tasks write into. */
    SweepResult emptyResult() const;

    /** Stable shard assignment: task @p index belongs to shard
     *  (@p index mod @p shard.count). */
    static bool
    inShard(std::size_t index, const ShardSpec &shard)
    {
        return shard.whole() || index % shard.count == shard.index;
    }

    /** Indices of every task in @p shard, in plan order. Shards
     *  0..N-1 partition the plan: disjoint and exhaustive. */
    std::vector<std::size_t> shardTasks(const ShardSpec &shard) const;

    /** Indices of every task still to execute — not marked in
     *  @p done and inside @p shard — in plan order. The single
     *  source of truth for "what does this process run": backends,
     *  skip accounting and progress reporting must all agree with
     *  it. */
    std::vector<std::size_t>
    pendingTasks(const std::vector<char> &done,
                 const ShardSpec &shard) const;

    /**
     * Resume pre-fill: for every task whose fingerprinted record
     * exists in @p store, copy the record into its SweepResult slot
     * and set done[index]. @p done must have size() entries; already-
     * done tasks are left alone. Returns the number of tasks filled
     * by this call.
     */
    std::size_t prefill(const ResultStore &store, SweepResult &res,
                        std::vector<char> &done) const;

    /**
     * Lockstep units: the pending tasks of @p shard grouped by
     * (trace slot, mechanism), i.e. the config variants of one
     * (benchmark-window, mechanism) cell that share a materialized
     * trace and can be advanced over it in a single lockstep pass
     * (cpu/lockstep.hh). Deterministic and resume/shard-transparent:
     * groups are ordered by their first pending member's plan index,
     * members within a group are in plan (variant) order, and a task
     * that is resumed or out of shard simply never appears — a
     * partially resumed group runs only its missing variants, and
     * the union of all groups is exactly pendingTasks(). A
     * variant whose settings move the window lands in a different
     * slot and therefore in its own group.
     */
    std::vector<std::vector<std::size_t>>
    lockstepGroups(const std::vector<char> &done,
                   const ShardSpec &shard) const;

    /**
     * Per-trace-slot count of tasks still to execute: not marked in
     * @p done and inside @p shard. Execution backends use this as the
     * trace refcount — a slot's trace becomes evictable exactly when
     * its count drains to zero, and a slot whose count starts at zero
     * is never materialized at all. Variants sharing a window are
     * counted in one slot, so a shared trace is materialized once.
     */
    std::vector<std::size_t>
    pendingPerTraceSlot(const std::vector<char> &done,
                        const ShardSpec &shard) const;

    /**
     * Per-benchmark count of tasks still to execute: not marked in
     * @p done and inside @p shard. Progress reporting groups by
     * benchmark (the unit a human watches), whatever the variant.
     */
    std::vector<std::size_t>
    pendingPerBenchmark(const std::vector<char> &done,
                        const ShardSpec &shard) const;

    /** One human/machine-readable line describing task @p index (the
     *  `microlib_sweep --plan` output format). */
    std::string describe(std::size_t index,
                         const ShardSpec &shard) const;

  private:
    SweepSpec _spec;
    std::vector<std::string> _mechanisms;
    std::vector<std::string> _benchmarks;
    std::vector<std::string> _variant_names;
    std::vector<RunConfig> _cfgs;             ///< resolved, per variant
    std::vector<std::uint64_t> _config_hashes; ///< per variant
    std::vector<std::size_t> _task_slot;       ///< [b * V + v] -> slot
    std::vector<std::string> _slot_keys;       ///< trace-cache keys
    std::vector<PlanTask> _tasks;
};

/**
 * Trace-cache key for (@p benchmark, @p cfg): the benchmark name plus
 * the canonical window description (windowKey), i.e. everything a
 * materialized trace depends on. Shared by the engine, the plan and
 * the result-store fingerprint so "same window" means one thing.
 */
std::string traceCacheKey(const std::string &benchmark,
                          const RunConfig &cfg);

} // namespace microlib

#endif // MICROLIB_CORE_TASK_PLAN_HH
