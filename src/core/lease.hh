/**
 * @file
 * LeaseQueue: the pull-scheduling view of a TaskPlan's pending tasks.
 *
 * Sharding (core/task_plan.hh) partitions a plan statically: shard i
 * owns index mod N == i, decided before any worker starts. A sweep
 * *service* cannot pre-partition — workers attach and detach while
 * the job runs — so microlib_sweepd schedules dynamically instead:
 * workers pull short *leases* (contiguous-in-plan-order batches of
 * task indices), execute them, and report back. This class is that
 * scheduler's entire state, kept deliberately process- and
 * clock-free (like SweepSupervisor) so every transition is
 * unit-testable:
 *
 *  - pending tasks are held in plan order, and leases are always the
 *    lowest pending indices — plan order is benchmark-major, so a
 *    lease's tasks share materialized traces the same way a shard's
 *    contiguous runs do;
 *  - a completed task leaves its lease; a dead or stalled owner's
 *    unfinished tasks are *released* back into pending, in plan
 *    order, for other workers to pick up (nothing is lost, nothing
 *    runs twice thanks to result-store dedup);
 *  - a quarantined task leaves the system entirely — the
 *    PR-7 strike policy (SweepSupervisor) decides *when*, this queue
 *    merely enforces the verdict.
 *
 * The queue never invents task indices: it is constructed from the
 * plan's own pendingTasks() output, so daemon, workers and clients
 * agree on what every index means by the TaskPlan determinism
 * contract.
 */

#ifndef MICROLIB_CORE_LEASE_HH
#define MICROLIB_CORE_LEASE_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace microlib
{

/** Dynamic lease scheduler over a fixed set of task indices. */
class LeaseQueue
{
  public:
    LeaseQueue() = default;

    /** Queue exactly @p pending (a TaskPlan::pendingTasks() result);
     *  any previous state is discarded. */
    explicit LeaseQueue(const std::vector<std::size_t> &pending);

    void reset(const std::vector<std::size_t> &pending);

    /**
     * Lease up to @p max of the lowest pending indices to @p owner
     * (a worker identity; one owner may hold several leases' worth).
     * Returns the leased indices in plan order — empty when nothing
     * is pending (tasks may still be leased to others; see done()).
     */
    std::vector<std::size_t> lease(const std::string &owner,
                                   std::size_t max);

    /** Mark @p task finished: it leaves its lease and never
     *  requeues. False if the task was not leased (already completed,
     *  requeued to another owner, or never queued) — the caller
     *  decides whether that is benign (a released task's late
     *  completion) or a protocol error. */
    bool complete(std::size_t task);

    /** Return every task @p owner still holds to the pending queue,
     *  in plan order (the owner died or stalled). Returns the
     *  requeued indices. */
    std::vector<std::size_t> release(const std::string &owner);

    /** Return one leased task to the pending queue (its owner
     *  reported completion without producing its record — a poison
     *  task surviving its worker). False if @p task was not
     *  leased. */
    bool requeue(std::size_t task);

    /**
     * Drop every task marked in @p done from the queue, pending or
     * leased — record-wins absorption: after a store merge lands
     * records, the tasks they complete leave the system no matter
     * who nominally held them (a task misblamed or doubly leased is
     * simply done once its record exists). Returns the number
     * dropped.
     */
    std::size_t markDone(const std::vector<char> &done);

    /** Remove @p task from the system entirely — pending or leased —
     *  executing a quarantine verdict. False if the task was in
     *  neither (already completed or quarantined). */
    bool quarantine(std::size_t task);

    /** The owner currently holding @p task, or nullptr. */
    const std::string *ownerOf(std::size_t task) const;

    std::size_t pendingCount() const { return _pending.size(); }
    std::size_t leasedCount() const { return _leased.size(); }

    /** All work is accounted for: nothing pending, nothing leased.
     *  (Completed + quarantined = everything ever queued.) */
    bool done() const { return _pending.empty() && _leased.empty(); }

    /** Tasks quarantined so far, in verdict order. */
    const std::vector<std::size_t> &quarantined() const
    {
        return _quarantined;
    }

  private:
    std::set<std::size_t> _pending;            ///< plan order
    std::map<std::size_t, std::string> _leased; ///< task -> owner
    std::vector<std::size_t> _quarantined;
};

} // namespace microlib

#endif // MICROLIB_CORE_LEASE_HH
