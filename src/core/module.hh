/**
 * @file
 * MicroLib module base class.
 *
 * MicroLib is "an open library of modular simulator components": every
 * component that can be shared — caches, memory models, mechanisms —
 * presents a uniform surface: a name, a parameter dump (so published
 * experiments are reproducible) and statistics registration. This is
 * the C++ equivalent of the paper's SystemC module discipline.
 */

#ifndef MICROLIB_CORE_MODULE_HH
#define MICROLIB_CORE_MODULE_HH

#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace microlib
{

/** Base class for shareable simulator components. */
class Module
{
  public:
    explicit Module(std::string name) : _name(std::move(name)) {}
    virtual ~Module() = default;

    const std::string &name() const { return _name; }

    /** Contribute this module's parameters to a configuration dump. */
    virtual void describe(ParamTable &table) const { (void)table; }

    /** Register this module's statistics. */
    virtual void registerStats(StatSet &stats) const { (void)stats; }

  private:
    std::string _name;
};

} // namespace microlib

#endif // MICROLIB_CORE_MODULE_HH
