#include "core/result_store.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/fingerprint.hh"
#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib
{

namespace
{

/** Line tag for the current schema; unknown tags are skipped. */
std::string
schemaTag(int schema)
{
    // Built by append, not operator+: GCC 12's -Wrestrict false-
    // positives on "v" + to_string(...) in this TU.
    std::string tag = "v";
    tag += std::to_string(schema);
    return tag;
}

void
mixCache(Fingerprint &fp, const CacheParams &p)
{
    fp.mix(p.name);
    fp.mix(p.size);
    fp.mix(p.line);
    fp.mix(p.assoc);
    fp.mix(p.ports);
    fp.mix(p.latency);
    fp.mix(p.mshrs);
    fp.mix(p.reads_per_mshr);
    fp.mix(p.finite_mshr);
    fp.mix(p.pipeline_stalls);
    fp.mix(p.refill_uses_ports);
    fp.mix(p.port_contention);
}

void
mixBus(Fingerprint &fp, const BusParams &p)
{
    fp.mix(p.name);
    fp.mix(p.bytes_per_beat);
    fp.mix(p.cycles_per_beat);
}

void
mixSdram(Fingerprint &fp, const SdramParams &p)
{
    fp.mix(p.name);
    fp.mix(p.banks);
    fp.mix(p.rows);
    fp.mix(p.columns);
    fp.mix(p.column_bytes);
    fp.mix(p.ras_to_ras);
    fp.mix(p.ras_active);
    fp.mix(p.ras_to_cas);
    fp.mix(p.cas_latency);
    fp.mix(p.ras_precharge);
    fp.mix(p.ras_cycle);
    fp.mix(p.queue_entries);
    fp.mix(p.mapping);
    fp.mix(p.scheduler_rows);
    fp.mix(p.scheduler_window);
    fp.mix(p.line_bytes);
}

void
mixCore(Fingerprint &fp, const CoreParams &p)
{
    fp.mix(p.ruu_size);
    fp.mix(p.lsq_size);
    fp.mix(p.fetch_width);
    fp.mix(p.commit_width);
    fp.mix(p.fu.int_alu);
    fp.mix(p.fu.int_mult);
    fp.mix(p.fu.fp_alu);
    fp.mix(p.fu.fp_mult);
    fp.mix(p.fu.ls_units);
    fp.mix(p.fu.int_alu_latency);
    fp.mix(p.fu.int_mult_latency);
    fp.mix(p.fu.fp_alu_latency);
    fp.mix(p.fu.fp_mult_latency);
    fp.mix(p.fu.agen_latency);
    fp.mix(p.mispredict_rate);
    fp.mix(p.mispredict_penalty);
}

/** Exact double -> text: hexfloat round-trips bit-for-bit. */
std::string
exactDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** Parse a double requiring the WHOLE token to be consumed: a value
 *  truncated by a torn write ("0x1.5" out of "0x1.5555...p-2") is
 *  still a valid strtod prefix, so a plain strtod would silently
 *  accept corrupted tails. */
bool
parseExactDouble(const char *s, double &out)
{
    if (*s == '\0')
        return false;
    char *end = nullptr;
    out = std::strtod(s, &end);
    return end && *end == '\0';
}

/** Consume "prefix=<u64>" from @p is into @p out. */
bool
readU64(std::istringstream &is, const char *prefix, std::uint64_t &out)
{
    std::string tok;
    if (!(is >> tok))
        return false;
    const std::string p = std::string(prefix) + "=";
    if (tok.rfind(p, 0) != 0)
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str() + p.size(), &end, 10);
    return end && *end == '\0' && end != tok.c_str() + p.size();
}

/** Consume "prefix=<name>" (no '=' in the value) from @p is. */
bool
readName(std::istringstream &is, const char *prefix, std::string &out)
{
    std::string tok;
    if (!(is >> tok))
        return false;
    const std::string p = std::string(prefix) + "=";
    if (tok.rfind(p, 0) != 0)
        return false;
    out = tok.substr(p.size());
    return !out.empty();
}

/** FNV fingerprint of a record body — the line text up to (not
 *  including) the " ck=" field. Catches flipped bits and spliced
 *  lines, which the end-of-record terminator alone cannot. */
std::uint64_t
recordChecksum(const std::string &body)
{
    Fingerprint fp;
    fp.mix(body);
    return fp.value();
}

/** Whether MICROLIB_STORE_FSYNC asks for fsync-per-append. */
bool
fsyncRequested()
{
    const char *env = std::getenv("MICROLIB_STORE_FSYNC");
    return env && *env && std::string(env) != "0";
}

} // namespace

std::uint64_t
fingerprintConfig(const RunConfig &cfg)
{
    Fingerprint fp;
    fp.mix(static_cast<std::uint64_t>(result_store_schema));
    mixCore(fp, cfg.system.core);
    mixCache(fp, cfg.system.hier.l1d);
    mixCache(fp, cfg.system.hier.l1i);
    mixCache(fp, cfg.system.hier.l2);
    mixBus(fp, cfg.system.hier.l1l2_bus);
    mixBus(fp, cfg.system.hier.fsb);
    fp.mix(cfg.system.hier.memory);
    fp.mix(cfg.system.hier.const_latency);
    mixSdram(fp, cfg.system.hier.sdram);
    fp.mix(cfg.system.hier.model_icache);
    // The trace window: the same string the trace cache keys on, so
    // the store and the cache cannot disagree about what "the same
    // window" means.
    fp.mix(windowKey(cfg));
    fp.mix(cfg.mech.second_guess);
    fp.mix(cfg.mech.tcp_buffer);
    return fp.value();
}

ResultKey
makeResultKey(const std::string &benchmark, const std::string &mechanism,
              std::uint64_t config_hash)
{
    ResultKey key;
    key.benchmark = benchmark;
    key.mechanism = mechanism;
    key.config_hash = config_hash;
    key.trace_seed = specProgram(benchmark).seed;
    return key;
}

std::string
ResultKey::str() const
{
    std::ostringstream os;
    os << schema << '\0' << config_hash << '\0' << trace_seed << '\0'
       << benchmark << '\0' << mechanism;
    return os.str();
}

RunOutput
toRunOutput(const ResultRecord &rec)
{
    RunOutput out;
    out.benchmark = rec.key.benchmark;
    out.mechanism = rec.key.mechanism;
    out.core = rec.core;
    out.stats = rec.stats;
    return out;
}

ResultRecord
makeRecord(ResultKey key, const RunOutput &out)
{
    ResultRecord rec;
    rec.key = std::move(key);
    rec.core = out.core;
    rec.stats = out.stats;
    return rec;
}

std::string
ResultStore::formatRecord(const ResultRecord &rec)
{
    std::ostringstream os;
    os << schemaTag(rec.key.schema)
       << " fp=" << Fingerprint::hexOf(rec.key.config_hash)
       << " seed=" << rec.key.trace_seed
       << " bench=" << rec.key.benchmark
       << " mech=" << rec.key.mechanism
       << " instr=" << rec.core.instructions
       << " cycles=" << rec.core.cycles
       << " loads=" << rec.core.loads
       << " stores=" << rec.core.stores
       << " branches=" << rec.core.branches
       << " mispred=" << rec.core.mispredicts
       << " ipc=" << exactDouble(rec.core.ipc) << " |";
    for (const auto &kv : rec.stats)
        os << ' ' << kv.first << '=' << exactDouble(kv.second);
    // Checksum before the terminator: a proper prefix of the line
    // must never end in the valid " ." terminator, or torn writes
    // would parse as complete records.
    std::string line = os.str();
    line += " ck=";
    line += Fingerprint::hexOf(recordChecksum(os.str()));
    // End-of-record terminator: any proper prefix of a record (a
    // torn final write) fails to parse instead of resuming with
    // silently missing or truncated stat values.
    line += " .";
    return line;
}

bool
ResultStore::parseRecord(const std::string &line, ResultRecord &rec)
{
    // A checksummed line is "<body> ck=<16hex> ."; verify the
    // checksum, then reduce to the legacy "<body> ." form so one
    // grammar parses both generations of line.
    std::string text = line;
    const auto ckpos = line.rfind(" ck=");
    if (ckpos != std::string::npos) {
        const std::string tail = line.substr(ckpos);
        if (tail.size() != 4 + 16 + 2 ||
            tail.compare(tail.size() - 2, 2, " .") != 0)
            return false; // torn or malformed checksum field
        std::uint64_t want = 0;
        if (!Fingerprint::parseHex(tail.substr(4, 16), want))
            return false;
        if (recordChecksum(line.substr(0, ckpos)) != want)
            return false; // corrupted in place, not just torn
        text = line.substr(0, ckpos) + " .";
    }
    std::istringstream is(text);
    std::string tag;
    if (!(is >> tag) || tag != schemaTag(result_store_schema))
        return false;
    rec.key.schema = result_store_schema;

    std::string fp_hex;
    if (!readName(is, "fp", fp_hex) ||
        !Fingerprint::parseHex(fp_hex, rec.key.config_hash))
        return false;
    if (!readU64(is, "seed", rec.key.trace_seed) ||
        !readName(is, "bench", rec.key.benchmark) ||
        !readName(is, "mech", rec.key.mechanism) ||
        !readU64(is, "instr", rec.core.instructions) ||
        !readU64(is, "cycles", rec.core.cycles) ||
        !readU64(is, "loads", rec.core.loads) ||
        !readU64(is, "stores", rec.core.stores) ||
        !readU64(is, "branches", rec.core.branches) ||
        !readU64(is, "mispred", rec.core.mispredicts))
        return false;

    std::string tok;
    if (!(is >> tok) || tok.rfind("ipc=", 0) != 0 ||
        !parseExactDouble(tok.c_str() + 4, rec.core.ipc))
        return false;

    if (!(is >> tok) || tok != "|")
        return false;

    rec.stats.clear();
    bool terminated = false;
    while (is >> tok) {
        if (tok == ".") {
            terminated = true;
            break;
        }
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        double v = 0.0;
        if (!parseExactDouble(tok.c_str() + eq + 1, v))
            return false;
        rec.stats[tok.substr(0, eq)] = v;
    }
    // No terminator (or trailing junk after it): a torn or spliced
    // line — reject the whole record rather than trust a prefix.
    return terminated && !(is >> tok);
}

ResultStore::ResultStore(const std::string &path, Mode mode)
    : _path(path), _mode(mode), _fsync(fsyncRequested())
{
    if (_mode == Mode::ReadWrite) {
        const std::filesystem::path parent =
            std::filesystem::path(_path).parent_path();
        if (!parent.empty())
            std::filesystem::create_directories(parent);
    }
    loadFile();
    // The append stream opens lazily (ensureAppend) on the first
    // put(): a store opened only to be queried — status tools, the
    // daemon's read-only mode — must not create an empty backing file
    // or hold a write handle on someone else's live store.
}

ResultStore::~ResultStore()
{
    if (_append)
        std::fclose(_append);
}

void
ResultStore::loadFile()
{
    std::ifstream in(_path);
    if (!in)
        return; // first use: empty store
    std::string line;
    std::size_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ResultRecord rec;
        if (parseRecord(line, rec))
            _records[rec.key.str()] = std::move(rec);
        else
            ++skipped; // unknown schema, torn line or bad checksum
    }
    if (skipped) {
        _unreadable += skipped;
        warn("result store ", _path, ": skipped ", skipped,
             " unreadable record(s) (older schema, torn write or "
             "checksum mismatch)");
    }
}

std::size_t
ResultStore::unreadable() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _unreadable;
}

std::optional<ResultRecord>
ResultStore::find(const ResultKey &key) const
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _records.find(key.str());
    if (it == _records.end())
        return std::nullopt;
    return it->second;
}

void
ResultStore::ensureAppend()
{
    if (_mode == Mode::ReadOnly)
        fatal("result store ", _path, ": write to a read-only store");
    if (_append || _path.empty())
        return;
    _append = std::fopen(_path.c_str(), "a");
    if (!_append)
        fatal("result store: cannot open ", _path, " for append");
}

void
ResultStore::put(const ResultRecord &rec)
{
    std::lock_guard<std::mutex> lock(_mu);
    if (!_path.empty()) {
        ensureAppend();
        const std::string line = formatRecord(rec) + '\n';
        std::fwrite(line.data(), 1, line.size(), _append);
        std::fflush(_append); // a killed sweep keeps this run
        if (_fsync)
            ::fsync(fileno(_append)); // ...and so does a killed host
    }
    _records[rec.key.str()] = rec;
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _records.size();
}

std::size_t
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(_mu);
    if (_path.empty())
        return _records.size(); // memory-only: already one per key
    if (_mode == Mode::ReadOnly)
        fatal("result store ", _path, ": compact of a read-only store");

    // Sorted key order: the compacted file is a pure function of the
    // record set, so differently-assembled stores with equal records
    // compact byte-identically (and diff cleanly).
    std::vector<const std::string *> keys;
    keys.reserve(_records.size());
    for (const auto &kv : _records)
        keys.push_back(&kv.first);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b)
              { return *a < *b; });

    const std::string tmp = _path + ".compact.tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("result store compact: cannot write ", tmp);
        for (const std::string *k : keys)
            out << formatRecord(_records.at(*k)) << '\n';
        out.flush();
        if (!out)
            fatal("result store compact: write to ", tmp, " failed");
    }

    // Swap the compacted file in atomically, then reopen the append
    // stream on it: later put() calls extend the compacted file.
    if (_append)
        std::fclose(_append);
    _append = nullptr;
    std::error_code ec;
    std::filesystem::rename(tmp, _path, ec);
    if (ec)
        fatal("result store compact: cannot replace ", _path, ": ",
              ec.message());
    _append = std::fopen(_path.c_str(), "a");
    if (!_append)
        fatal("result store compact: cannot reopen ", _path);
    return _records.size();
}

std::size_t
ResultStore::merge(const std::string &input_path)
{
    if (_mode == Mode::ReadOnly)
        fatal("result store ", _path, ": merge into a read-only store");
    // Merging a store into itself would never terminate: put()
    // appends to the backing file while getline() is still reading
    // it, so every record read lands another one ahead of the
    // cursor.
    if (!_path.empty()) {
        std::error_code ec;
        if (input_path == _path ||
            std::filesystem::equivalent(input_path, _path, ec)) {
            warn("result store merge: refusing to merge ", input_path,
                 " into itself");
            return 0;
        }
    }
    std::ifstream in(input_path);
    if (!in) {
        warn("result store merge: cannot read ", input_path);
        return 0;
    }
    std::string line;
    std::size_t merged = 0;
    std::size_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ResultRecord rec;
        if (!parseRecord(line, rec)) {
            ++skipped;
            continue;
        }
        put(rec);
        ++merged;
    }
    if (skipped) {
        {
            std::lock_guard<std::mutex> lock(_mu);
            _unreadable += skipped;
        }
        warn("result store merge from ", input_path, ": skipped ",
             skipped, " unreadable record(s)");
    }
    return merged;
}

} // namespace microlib
