/**
 * @file
 * CliffFinder: search-driven sensitivity studies.
 *
 * Grid sweeps (core/sweep_spec.hh) show mechanism rankings at the
 * points you thought to enumerate; the interesting object is the
 * *boundary* — the configuration cliff where the speedup ranking of
 * two mechanisms inverts. CliffFinder locates that boundary by
 * search instead of enumeration: given a base SweepSpec, two
 * mechanisms and a numeric axis of the settable-parameter registry,
 * it evaluates the axis endpoints and bisects — respecting the key's
 * legal granularity (power-of-two sizes and associativities, integer
 * widths) — until it holds the tightest adjacent pair of legal
 * values whose rankings differ.
 *
 * Every probe is an ordinary single-variant sweep built by
 * SweepSpec::axisSlice and driven through ExperimentEngine::run, so
 * the whole machinery the sweep stack already has applies unchanged:
 * the ResultStore dedupes probes by config fingerprint (a repeated
 * or resumed search executes only the runs it has never seen),
 * probes can fan out over the supervised ProcessShardBackend (a
 * crashing probe quarantines its poison task without killing the
 * search — the probe is reported FAULTED and the other axes keep
 * searching), and every result is bit-identical across thread and
 * shard counts.
 *
 * Rankings use rankBefore (core/ranking.hh): higher mean speedup vs
 * "Base" first, exact ties broken by acronym — a total order, so a
 * flip can only come from the results changing, never from catalog
 * order. "Base" is added to each probe's mechanism list when the
 * compared pair doesn't include it, since speedups are relative to
 * it.
 *
 * A discovered cliff is emitted as a minimal *flip witness*: a
 * canonical 2-variant x (pair + Base) `.sweep` file whose two
 * variants are the bracket's two sides — replaying it with
 * microlib_sweep reproduces the flip bit-identically — plus a JSON
 * summary (axis, bracket, per-side speedups, probe count). The
 * multi-axis driver findAll() scans every searchable axis a spec
 * declares and aggregates the results into a cliff report table.
 * See docs/CLIFF_FINDER.md.
 */

#ifndef MICROLIB_CORE_CLIFF_FINDER_HH
#define MICROLIB_CORE_CLIFF_FINDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep_spec.hh"
#include "sim/report.hh"

namespace microlib
{

class ExperimentEngine;

/** One evaluated point of an axis search. */
struct CliffProbe
{
    std::uint64_t value = 0;  ///< the axis value probed
    double speedup_a = 1.0;   ///< mean speedup vs Base, mechanism A
    double speedup_b = 1.0;   ///< mean speedup vs Base, mechanism B
    bool a_wins = false;      ///< rankBefore(A, B) at this point
    bool faulted = false;     ///< probe quarantined a task: no ranking
    /** Set by bisectCliff once the point actually ran: a search that
     *  faults on its first probe leaves `hi` unevaluated, and reports
     *  render it as "-" rather than a fake result. */
    bool evaluated = false;
};

/** Outcome of one axis search. */
enum class CliffStatus
{
    Flip,    ///< bracket holds the tightest adjacent ranking flip
    NoFlip,  ///< endpoints agree: no flip between them to bisect to
    Faulted, ///< a probe faulted; the bracket is wherever search stopped
};

/** Lowercase status name ("flip" / "noflip" / "faulted"). */
const char *cliffStatusName(CliffStatus status);

/** Result of searching one axis for one mechanism pair. */
struct CliffResult
{
    std::string axis;   ///< registry key searched
    std::string mech_a; ///< first mechanism of the compared pair
    std::string mech_b; ///< second mechanism of the compared pair
    CliffStatus status = CliffStatus::NoFlip;
    /** Final bracket: for Flip the adjacent pair with lo.a_wins !=
     *  hi.a_wins; for NoFlip the two endpoints; for Faulted the
     *  bracket when the search stopped. */
    CliffProbe lo, hi;
    /** Every probe, in evaluation order (endpoints first). */
    std::vector<CliffProbe> probes;
    std::size_t executed = 0; ///< tasks simulated across all probes
    std::size_t resumed = 0;  ///< tasks restored from the store
    std::string witness_path; ///< written witness .sweep ("" if none)
};

/**
 * The legal value strictly between @p lo and @p hi on @p scale that
 * bisection probes next, or 0 when (lo, hi) are already adjacent
 * (Linear: hi <= lo + 1; Pow2: hi <= 2 * lo). Pow2 takes the
 * log-space midpoint, rounded down; both values must be powers of
 * two. Requires lo < hi.
 */
std::uint64_t axisMidpoint(AxisScale scale, std::uint64_t lo,
                           std::uint64_t hi);

/**
 * Upper bound on the number of probes bisectCliff() evaluates for
 * the endpoint pair (@p lo, @p hi): the two endpoints plus
 * ceil(log2(steps)) bisection iterations, where steps is the number
 * of legal increments between them.
 */
std::size_t bisectionBound(AxisScale scale, std::uint64_t lo,
                           std::uint64_t hi);

/** Evaluates one axis value; the search core's only dependency on
 *  the simulator (tests drive it with closed-form models). */
using CliffProber = std::function<CliffProbe(std::uint64_t value)>;

/**
 * The pure search core: evaluate @p lo and @p hi, and if their
 * rankings differ, bisect on @p scale until the bracket is adjacent.
 * The invariant throughout is lo.a_wins != hi.a_wins, so the final
 * bracket is a genuine flip. Engine-free and deterministic: the
 * probe sequence is a pure function of (scale, lo, hi, winners).
 */
CliffResult bisectCliff(AxisScale scale, std::uint64_t lo,
                        std::uint64_t hi, const CliffProber &probe);

/** CliffFinder construction knobs. */
struct CliffFinderOptions
{
    /** Directory for witness .sweep + .json artifacts (created if
     *  missing); empty = don't write artifacts. */
    std::string witness_dir;

    /** Log each probe as it is evaluated. */
    bool verbose = false;
};

/**
 * Engine-backed cliff search over the axes of a base SweepSpec. The
 * endpoints of an axis search are the smallest and largest values
 * the spec declares for that axis; other axes are pinned at their
 * first declared value (SweepSpec::axisSlice), so a multi-axis spec
 * yields one independent 1-D search per axis.
 */
class CliffFinder
{
  public:
    /** @p engine drives every probe (its store/backend/supervision
     *  options apply); @p base is the sweep being studied. */
    CliffFinder(ExperimentEngine &engine, SweepSpec base,
                CliffFinderOptions opts = {});

    /**
     * Whether @p axis_key can be searched in the base spec: declared
     * as an axis, registered with a numeric scale, at least two
     * distinct values, every value legal on the scale (powers of two
     * on a Pow2 axis). False + *error with the reason.
     */
    bool searchable(const std::string &axis_key,
                    std::string *error = nullptr) const;

    /** Every declared axis searchable() accepts, in declaration
     *  order — the --all-axes work list. */
    std::vector<std::string> searchableAxes() const;

    /**
     * Search @p axis_key for the ranking flip of @p mech_a vs
     * @p mech_b (fatal if !searchable(); callers validate first).
     * Emits witness artifacts per options. Probes run sequentially
     * through the engine; each probe's tasks land in the engine's
     * result store, so repeating a search against a warm store
     * executes zero new tasks.
     */
    CliffResult find(const std::string &mech_a,
                     const std::string &mech_b,
                     const std::string &axis_key);

    /** find() over every searchableAxes() entry, in order. */
    std::vector<CliffResult> findAll(const std::string &mech_a,
                                     const std::string &mech_b);

    /**
     * The canonical flip-witness spec of @p r: the base spec sliced
     * to (Base +) the compared pair with the searched axis holding
     * exactly the bracket's two values. Valid for any status (the
     * NoFlip witness is the endpoint pair); find() only writes it
     * for Flip.
     */
    SweepSpec witnessSpec(const CliffResult &r) const;

    /**
     * The cliff report: one row per search — status, bracket,
     * per-side speedups, probe count. Deterministic (fixed precision,
     * no timestamps), so fresh and resumed searches render the same
     * bytes.
     */
    static Table report(const std::vector<CliffResult> &results);

  private:
    CliffProbe probePoint(const std::string &axis_key,
                          std::uint64_t value, CliffResult &r);
    void writeWitness(CliffResult &r);

    ExperimentEngine &_engine;
    SweepSpec _base;
    CliffFinderOptions _opts;
};

} // namespace microlib

#endif // MICROLIB_CORE_CLIFF_FINDER_HH
