#include "core/ranking.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

bool
rankBefore(const RankEntry &a, const RankEntry &b)
{
    if (a.avg_speedup != b.avg_speedup)
        return a.avg_speedup > b.avg_speedup;
    return a.mechanism < b.mechanism;
}

std::vector<RankEntry>
rankMechanisms(const MatrixResult &matrix,
               const std::vector<std::size_t> &subset)
{
    std::vector<RankEntry> entries;
    for (std::size_t m = 0; m < matrix.mechanisms.size(); ++m) {
        RankEntry e;
        e.mechanism = matrix.mechanisms[m];
        e.avg_speedup = matrix.avgSpeedup(m, subset);
        entries.push_back(e);
    }
    std::sort(entries.begin(), entries.end(), rankBefore);
    for (std::size_t i = 0; i < entries.size(); ++i)
        entries[i].rank = static_cast<unsigned>(i + 1);
    return entries;
}

unsigned
rankOf(const std::vector<RankEntry> &ranking,
       const std::string &mechanism)
{
    for (const auto &e : ranking)
        if (e.mechanism == mechanism)
            return e.rank;
    fatal("mechanism not in ranking: ", mechanism);
}

std::vector<double>
benchmarkSensitivity(const MatrixResult &matrix)
{
    std::vector<double> sens(matrix.benchmarks.size(), 0.0);
    for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b) {
        double lo = 1e9, hi = -1e9;
        for (std::size_t m = 0; m < matrix.mechanisms.size(); ++m) {
            const double s = matrix.speedup(m, b);
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        sens[b] = hi - lo;
    }
    return sens;
}

} // namespace microlib
