/**
 * @file
 * Sweep supervision: the parent-side policy that keeps a multi-
 * process sweep alive through worker crashes, hangs and poison tasks.
 *
 * The supervised ProcessShardBackend no longer blocks in waitpid()
 * and gives up on the first casualty; it polls, and this module owns
 * everything the poll loop decides with:
 *
 *  - ProgressFollower tails a worker's JSONL progress stream
 *    incrementally: any newly completed line is liveness, and the
 *    last `heartbeat` event names the flat task index the worker was
 *    about to run — the task a crash or stall is blamed on. The
 *    follower only ever consumes whole lines, so a line torn by a
 *    dying writer is simply not yet visible (and a restarted worker
 *    truncating its stream rewinds the follower).
 *
 *  - SweepSupervisor turns a worker death or stall into a Verdict:
 *    restart after an exponentially backed-off delay, quarantine the
 *    blamed task first (K strikes — across restarts — and the task
 *    is excluded from the restarted worker's plan instead of sinking
 *    the sweep), or give up once the worker's retry budget is spent.
 *    Quarantining resets the worker's retry budget: the budget
 *    guards against a sick host, not against a poison task that has
 *    just been removed.
 *
 * The policy is deliberately process-free — no fork, no kill, no
 * clocks it doesn't receive — so every decision path is unit-testable
 * without spawning a single worker (tests/test_supervision.cc).
 */

#ifndef MICROLIB_CORE_SUPERVISOR_HH
#define MICROLIB_CORE_SUPERVISOR_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace microlib
{

/** Supervision knobs (EngineOptions carries these; see
 *  docs/FAULT_TOLERANCE.md). */
struct SupervisionPolicy
{
    /** Seconds without progress-stream growth before a worker is
     *  declared stalled and SIGKILLed; <= 0 disables stall
     *  detection (crash supervision still applies). */
    double heartbeat_timeout = 0.0;

    /** Restarts allowed per worker before the sweep fails; 0 is the
     *  old fail-fast behavior. Reset when a quarantine removes the
     *  task that was killing the worker. */
    std::size_t max_worker_retries = 2;

    /** Failures blamed on the same task before it is quarantined
     *  (excluded from the plan) instead of retried; 0 disables
     *  quarantine. */
    std::size_t quarantine_strikes = 3;

    /** First restart delay in seconds; doubles per consecutive
     *  retry of the same worker, capped at backoff_max_s. */
    double backoff_initial_s = 0.25;
    double backoff_max_s = 8.0;
};

/**
 * Incremental, torn-line-tolerant reader of one worker's JSONL
 * progress stream. poll() consumes any newly *completed* lines (a
 * trailing line without its newline stays unread until the writer
 * finishes it — or forever, if the writer died mid-write) and
 * remembers the task index of the last `heartbeat` event seen.
 */
class ProgressFollower
{
  public:
    ProgressFollower() = default;
    explicit ProgressFollower(std::string path);

    /** Read any newly completed lines. Returns true if at least one
     *  complete line (or a stream truncation — a restarted worker
     *  reopening its stream) was observed: the liveness signal. */
    bool poll();

    /** The task index of the last heartbeat event, if any. */
    bool lastHeartbeatTask(std::size_t &task) const;

    /** Forget stream position and blame state (worker restarted;
     *  its writer truncates the file). */
    void rewind();

    /**
     * Extract the "task" field of a heartbeat progress line; false
     * for any other (or torn) line. Exposed for tests and other
     * stream consumers.
     */
    static bool parseHeartbeat(const std::string &line,
                               std::size_t &task);

  private:
    std::string _path;
    std::streamoff _offset = 0;
    bool _has_task = false;
    std::size_t _task = 0;
};

/**
 * ProgressFollower's stream-transport sibling: the same whole-lines-
 * only JSONL reassembly, fed from a pipe or socket instead of a file.
 * A read() from a stream can return any byte split — half a line, a
 * line and a half — so the follower buffers raw chunks and surfaces
 * only completed lines, remembering the last heartbeat's task index
 * exactly like the file follower. The daemon runs one per worker
 * connection; EOF on the fd (read() == 0 via feedFd) is the worker-
 * death signal, and whatever sits unterminated in the buffer then is
 * a torn line: never surfaced, never counted as liveness.
 */
class ProgressStreamFollower
{
  public:
    /** Buffer @p n raw bytes; any lines they complete become
     *  takeLines() output and update the heartbeat blame state. */
    void feed(const char *data, std::size_t n);

    void feed(const std::string &chunk)
    {
        feed(chunk.data(), chunk.size());
    }

    /** One read() from @p fd into the buffer. Returns read()'s
     *  result: bytes consumed (> 0), 0 on EOF (worker hung up), or
     *  -1 with errno (EAGAIN on a drained non-blocking fd). */
    int feedFd(int fd);

    /** Lines completed since the last call, in arrival order,
     *  newlines stripped; clears the internal queue. */
    std::vector<std::string> takeLines();

    /** Whether any completed lines are queued (cheaper than
     *  takeLines().empty() — no move). */
    bool hasLines() const { return !_lines.empty(); }

    /** The task index of the last heartbeat event, if any. */
    bool lastHeartbeatTask(std::size_t &task) const;

    /** Bytes buffered but not yet terminated by a newline — after
     *  EOF, the torn tail's length. */
    std::size_t pending() const { return _buf.size(); }

    /** Forget buffered bytes, queued lines and blame state. */
    void reset();

  private:
    std::string _buf;
    std::vector<std::string> _lines;
    bool _has_task = false;
    std::size_t _task = 0;
};

/** How a worker came to need supervision. */
struct WorkerFailure
{
    std::size_t worker = 0;  ///< stable worker slot (shard index)
    bool stalled = false;    ///< heartbeat timeout (vs death)
    bool has_task = false;   ///< a heartbeat named the task in flight
    std::size_t task = 0;    ///< blamed flat task index
    std::string detail;      ///< human text: signal / exit status
};

/** What the poll loop must do about a failure. */
struct SupervisionVerdict
{
    enum class Action
    {
        Restart, ///< relaunch the worker after delay_s
        GiveUp,  ///< retry budget spent: fail the sweep
    };

    Action action = Action::Restart;
    double delay_s = 0.0;          ///< backoff before the relaunch
    bool quarantined = false;      ///< this failure quarantined `task`
    std::size_t task = 0;          ///< the quarantined task, if so
    std::string why;               ///< one-line explanation for logs
};

/** Strike/retry/quarantine bookkeeping for one sweep execution. */
class SweepSupervisor
{
  public:
    explicit SweepSupervisor(SupervisionPolicy policy)
        : _policy(policy)
    {
    }

    const SupervisionPolicy &policy() const { return _policy; }

    /** Decide what to do about @p failure (see file comment for the
     *  policy). Records the strike and the retry. */
    SupervisionVerdict decide(const WorkerFailure &failure);

    /** Flat task indices quarantined so far, in decision order. */
    const std::vector<std::size_t> &quarantined() const
    {
        return _quarantined;
    }

    bool isQuarantined(std::size_t task) const;

    /** Strikes recorded against @p task so far. */
    std::size_t strikes(std::size_t task) const;

    /** Restarts burned by worker @p worker (quarantines reset it). */
    std::size_t retries(std::size_t worker) const;

  private:
    SupervisionPolicy _policy;
    std::map<std::size_t, std::size_t> _strikes;  ///< task -> count
    std::map<std::size_t, std::size_t> _retries;  ///< worker -> count
    std::vector<std::size_t> _quarantined;
};

} // namespace microlib

#endif // MICROLIB_CORE_SUPERVISOR_HH
