/**
 * @file
 * ProcessShardBackend: multi-process sharded execution.
 *
 * Partitions the plan's pending tasks into N shards by stable task
 * index (task i belongs to shard i mod N), forks one worker process
 * per non-empty shard, and merges the results back:
 *
 *  - each worker is a fresh ExperimentEngine (own thread pool, own
 *    trace cache) running ThreadPoolBackend over exactly its shard;
 *  - each worker appends to its OWN result store
 *    (`<store>.shard<i>of<N>`), so workers never contend on a file
 *    and a killed worker's store resumes its shard on the next run;
 *  - the parent SUPERVISES the workers (core/supervisor.hh, see
 *    docs/FAULT_TOLERANCE.md): it polls instead of blocking in
 *    waitpid, tails each worker's JSONL progress stream for
 *    heartbeat liveness, SIGKILLs a worker that stops heartbeating
 *    past EngineOptions::heartbeat_timeout, restarts dead/stalled
 *    workers with exponential backoff up to
 *    EngineOptions::max_worker_retries (the restarted worker resumes
 *    from its shard store, so only missing tasks re-execute), and
 *    quarantines a task that keeps killing its worker after
 *    EngineOptions::quarantine_strikes failures — the rest of the
 *    sweep completes, the cell is flagged in MatrixResult::fault and
 *    listed in RunCounters::quarantined;
 *  - once every shard finishes, the parent merges the shard stores
 *    into the attached store by record concatenation and fills the
 *    matrix from the merged records.
 *
 * Because every record round-trips bit-exactly (hexfloat text) and
 * every task's slot is pre-assigned by the plan, the merged
 * SweepResult is byte-identical to a single-process run of the same
 * plan — whatever the variant count; sharding is a wall-clock
 * strategy, never a results change.
 *
 * The same partitioning runs across hosts with no fork at all: each
 * host runs `microlib_sweep --shard i/N --store <own store>` and the
 * stores are merged afterwards (`--merge`). This backend is the
 * single-host convenience form of that workflow. Requires a
 * file-backed ResultStore on the engine (fatal otherwise).
 */

#ifndef MICROLIB_CORE_PROCESS_SHARD_BACKEND_HH
#define MICROLIB_CORE_PROCESS_SHARD_BACKEND_HH

#include <string>

#include "core/execution_backend.hh"

namespace microlib
{

/** ProcessShardBackend construction knobs. */
struct ProcessShardOptions
{
    /** Worker process count (plan shard count). */
    std::size_t shards = 2;

    /** EngineOptions::threads inside each worker (0 = 1: shards are
     *  the parallelism axis, so workers default to serial). */
    unsigned threads_per_shard = 0;

    /** Keep the per-shard store files after a successful merge
     *  (they are always kept when a worker fails, so the next run
     *  resumes the shard). */
    bool keep_shard_stores = false;
};

/** Forked shard workers, one append-only store per shard. */
class ProcessShardBackend : public ExecutionBackend
{
  public:
    explicit ProcessShardBackend(ProcessShardOptions opts = {});

    const char *name() const override { return "process-shard"; }

    void execute(const TaskPlan &plan, const std::vector<char> &done,
                 const ExecutionContext &ctx, SweepResult &res,
                 RunCounters &counters) override;

    /** The store path shard @p index of @p count appends to, derived
     *  from the parent store path @p base. */
    static std::string shardStorePath(const std::string &base,
                                      std::size_t index,
                                      std::size_t count);

  private:
    ProcessShardOptions _opts;
};

} // namespace microlib

#endif // MICROLIB_CORE_PROCESS_SHARD_BACKEND_HH
