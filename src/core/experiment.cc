#include "core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "sim/logging.hh"
#include "trace/simpoint.hh"
#include "trace/spec_suite.hh"

namespace microlib
{

double
RunOutput::stat(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? 0.0 : it->second;
}

namespace
{

/** Process-wide SimPoint cache: keyed by (benchmark, interval). */
std::map<std::pair<std::string, std::uint64_t>, SimPointChoice>
    simpoint_cache;

SimPointChoice
simPointFor(const std::string &benchmark, const TraceScale &scale)
{
    const auto key = std::make_pair(benchmark, scale.simpoint_interval);
    auto it = simpoint_cache.find(key);
    if (it != simpoint_cache.end())
        return it->second;
    const SimPointChoice choice = findSimPoint(
        specProgram(benchmark), scale.simpoint_interval,
        scale.simpoint_k);
    simpoint_cache.emplace(key, choice);
    return choice;
}

} // namespace

MaterializedTrace
materializeFor(const std::string &benchmark, const RunConfig &cfg)
{
    TraceWindow window;
    if (cfg.selection == TraceSelection::SimPoint) {
        const SimPointChoice sp = simPointFor(benchmark, cfg.scale);
        window.skip = sp.start_instruction;
        window.length = cfg.scale.simpoint_trace;
    } else {
        window.skip = cfg.scale.arbitrary_skip;
        window.length = cfg.scale.arbitrary_length;
    }
    return materialize(specProgram(benchmark), window);
}

RunOutput
runOne(const MaterializedTrace &trace, const std::string &mechanism,
       const RunConfig &cfg)
{
    RunOutput out;
    out.benchmark = trace.benchmark;
    out.mechanism = mechanism;

    Hierarchy hier(cfg.system.hier, trace.image);
    std::unique_ptr<CacheMechanism> mech =
        makeMechanism(mechanism, cfg.mech);

    StatSet stats;
    hier.registerStats(stats);
    if (mech) {
        mech->bind(hier);
        mech->registerStats(stats);
        hier.setClient(mech.get());
        out.hardware = mech->hardware();
    }

    OoOCore core(cfg.system.core);
    out.core = core.run(trace.records, hier);

    for (const auto &name : stats.names())
        out.stats[name] = stats.get(name);
    return out;
}

std::size_t
MatrixResult::mechIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < mechanisms.size(); ++i)
        if (mechanisms[i] == name)
            return i;
    fatal("mechanism not in matrix: ", name);
}

std::size_t
MatrixResult::benchIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        if (benchmarks[i] == name)
            return i;
    fatal("benchmark not in matrix: ", name);
}

double
MatrixResult::speedup(std::size_t m, std::size_t b) const
{
    const std::size_t base = mechIndex("Base");
    const double base_ipc = ipc[base][b];
    if (base_ipc <= 0.0)
        return 1.0;
    return ipc[m][b] / base_ipc;
}

double
MatrixResult::avgSpeedup(std::size_t m,
                         const std::vector<std::size_t> &subset) const
{
    std::vector<std::size_t> idx = subset;
    if (idx.empty()) {
        idx.resize(benchmarks.size());
        for (std::size_t b = 0; b < benchmarks.size(); ++b)
            idx[b] = b;
    }
    double sum = 0.0;
    for (const std::size_t b : idx)
        sum += speedup(m, b);
    return idx.empty() ? 1.0 : sum / static_cast<double>(idx.size());
}

MatrixResult
runMatrix(const std::vector<std::string> &mechanisms,
          const std::vector<std::string> &benchmarks,
          const RunConfig &cfg, bool verbose)
{
    MatrixResult res;
    res.mechanisms = mechanisms;
    res.benchmarks = benchmarks;
    res.ipc.assign(mechanisms.size(),
                   std::vector<double>(benchmarks.size(), 0.0));
    res.outputs.assign(mechanisms.size(),
                       std::vector<RunOutput>(benchmarks.size()));

    unsigned threads = std::thread::hardware_concurrency();
    if (const char *env = std::getenv("MICROLIB_THREADS"))
        threads = static_cast<unsigned>(std::atoi(env));
    if (threads == 0)
        threads = 1;

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const MaterializedTrace trace =
            materializeFor(benchmarks[b], cfg);

        // Mechanism runs over one trace are independent (each owns
        // its hierarchy and core; the trace and image are shared
        // read-only), so they parallelize trivially.
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            while (true) {
                const std::size_t m =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (m >= mechanisms.size())
                    return;
                RunOutput out = runOne(trace, mechanisms[m], cfg);
                res.ipc[m][b] = out.core.ipc;
                res.outputs[m][b] = std::move(out);
            }
        };
        std::vector<std::thread> pool;
        for (unsigned t = 1; t < threads; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &t : pool)
            t.join();

        if (verbose)
            for (std::size_t m = 0; m < mechanisms.size(); ++m)
                inform(benchmarks[b], " / ", mechanisms[m], ": IPC ",
                       res.ipc[m][b]);
    }
    return res;
}

} // namespace microlib
