#include "core/experiment.hh"

#include <algorithm>

#include "core/scheduler.hh"
#include "cpu/lockstep.hh"
#include "sim/logging.hh"
#include "trace/spec_suite.hh"
#include "trace/trace_cache.hh"

namespace microlib
{

double
RunOutput::stat(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? 0.0 : it->second;
}

std::string
windowKey(const RunConfig &cfg)
{
    std::string key;
    if (cfg.selection == TraceSelection::SimPoint) {
        key += "sp";
        key += '\0';
        key += std::to_string(cfg.scale.simpoint_interval);
        key += '\0';
        key += std::to_string(cfg.scale.simpoint_k);
        key += '\0';
        key += std::to_string(cfg.scale.simpoint_trace);
    } else {
        key += "arb";
        key += '\0';
        key += std::to_string(cfg.scale.arbitrary_skip);
        key += '\0';
        key += std::to_string(cfg.scale.arbitrary_length);
    }
    return key;
}

MaterializedTrace
materializeFor(const std::string &benchmark, const RunConfig &cfg)
{
    TraceWindow window;
    if (cfg.selection == TraceSelection::SimPoint) {
        // Mutex-guarded process-wide cache: the old bare map here
        // raced when runMatrix() workers materialized concurrently.
        const SimPointChoice sp = TraceCache::process().simPoint(
            benchmark, cfg.scale.simpoint_interval,
            cfg.scale.simpoint_k);
        window.skip = sp.start_instruction;
        window.length = cfg.scale.simpoint_trace;
    } else {
        window.skip = cfg.scale.arbitrary_skip;
        window.length = cfg.scale.arbitrary_length;
    }
    return materialize(specProgram(benchmark), window);
}

RunOutput
runOne(const MaterializedTrace &trace, const std::string &mechanism,
       const RunConfig &cfg)
{
    RunOutput out;
    out.benchmark = trace.benchmark;
    out.mechanism = mechanism;

    Hierarchy hier(cfg.system.hier, trace.image);
    std::unique_ptr<CacheMechanism> mech =
        makeMechanism(mechanism, cfg.mech);

    StatSet stats;
    hier.registerStats(stats);
    if (mech) {
        mech->bind(hier);
        mech->registerStats(stats);
        hier.setClient(mech.get());
        out.hardware = mech->hardware();
    }

    OoOCore core(cfg.system.core);
    out.core = core.run(trace.view(), hier);

    stats.snapshot(out.stats);
    return out;
}

std::vector<RunOutput>
runLockstep(const MaterializedTrace &trace,
            const std::string &mechanism,
            const std::vector<const RunConfig *> &cfgs)
{
    const std::size_t V = cfgs.size();
    std::vector<RunOutput> outs(V);
    // Per-member model state, set up exactly as runOne() does it so
    // the two paths cannot diverge: hierarchy, mechanism, stats
    // registration, then the core.
    std::vector<std::unique_ptr<Hierarchy>> hiers(V);
    std::vector<std::unique_ptr<CacheMechanism>> mechs(V);
    std::vector<std::unique_ptr<OoOCore>> cores(V);
    std::vector<StatSet> stats(V);
    LockstepGroup group;
    for (std::size_t v = 0; v < V; ++v) {
        const RunConfig &cfg = *cfgs[v];
        RunOutput &out = outs[v];
        out.benchmark = trace.benchmark;
        out.mechanism = mechanism;

        hiers[v] =
            std::make_unique<Hierarchy>(cfg.system.hier, trace.image);
        mechs[v] = makeMechanism(mechanism, cfg.mech);
        hiers[v]->registerStats(stats[v]);
        if (mechs[v]) {
            mechs[v]->bind(*hiers[v]);
            mechs[v]->registerStats(stats[v]);
            hiers[v]->setClient(mechs[v].get());
            out.hardware = mechs[v]->hardware();
        }
        cores[v] = std::make_unique<OoOCore>(cfg.system.core);
        group.add(*cores[v], *hiers[v]);
    }

    group.run(trace.view());

    for (std::size_t v = 0; v < V; ++v) {
        outs[v].core = group.result(v);
        stats[v].snapshot(outs[v].stats);
    }
    return outs;
}

void
MatrixResult::buildIndices()
{
    _mech_index.clear();
    _mech_index.reserve(mechanisms.size());
    for (std::size_t i = 0; i < mechanisms.size(); ++i)
        _mech_index.emplace(mechanisms[i], i);
    _bench_index.clear();
    _bench_index.reserve(benchmarks.size());
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        _bench_index.emplace(benchmarks[i], i);
}

std::size_t
MatrixResult::mechIndex(const std::string &name) const
{
    if (!_mech_index.empty()) {
        auto it = _mech_index.find(name);
        if (it != _mech_index.end())
            return it->second;
    } else {
        // Hand-assembled result without buildIndices(): stay correct.
        auto it = std::find(mechanisms.begin(), mechanisms.end(), name);
        if (it != mechanisms.end())
            return static_cast<std::size_t>(it - mechanisms.begin());
    }
    fatal("mechanism not in matrix: ", name);
}

std::size_t
MatrixResult::benchIndex(const std::string &name) const
{
    if (!_bench_index.empty()) {
        auto it = _bench_index.find(name);
        if (it != _bench_index.end())
            return it->second;
    } else {
        auto it = std::find(benchmarks.begin(), benchmarks.end(), name);
        if (it != benchmarks.end())
            return static_cast<std::size_t>(it - benchmarks.begin());
    }
    fatal("benchmark not in matrix: ", name);
}

double
MatrixResult::speedup(std::size_t m, std::size_t b) const
{
    const std::size_t base = mechIndex("Base");
    const double base_ipc = ipc[base][b];
    if (base_ipc <= 0.0)
        return 1.0;
    return ipc[m][b] / base_ipc;
}

double
MatrixResult::avgSpeedup(std::size_t m,
                         const std::vector<std::size_t> &subset) const
{
    std::vector<std::size_t> idx = subset;
    if (idx.empty()) {
        idx.resize(benchmarks.size());
        for (std::size_t b = 0; b < benchmarks.size(); ++b)
            idx[b] = b;
    }
    double sum = 0.0;
    for (const std::size_t b : idx)
        sum += speedup(m, b);
    return idx.empty() ? 1.0 : sum / static_cast<double>(idx.size());
}

MatrixResult
runMatrix(const std::vector<std::string> &mechanisms,
          const std::vector<std::string> &benchmarks,
          const RunConfig &cfg, bool verbose)
{
    EngineOptions opts;
    opts.verbose = verbose;
    opts.keep_traces = false; // one-shot: the old memory profile
    ExperimentEngine engine(opts);
    return engine.run(mechanisms, benchmarks, cfg);
}

} // namespace microlib
