#include "core/lease.hh"

namespace microlib
{

LeaseQueue::LeaseQueue(const std::vector<std::size_t> &pending)
{
    reset(pending);
}

void
LeaseQueue::reset(const std::vector<std::size_t> &pending)
{
    _pending.clear();
    _leased.clear();
    _quarantined.clear();
    _pending.insert(pending.begin(), pending.end());
}

std::vector<std::size_t>
LeaseQueue::lease(const std::string &owner, std::size_t max)
{
    std::vector<std::size_t> out;
    while (out.size() < max && !_pending.empty()) {
        const auto it = _pending.begin(); // lowest index: plan order
        out.push_back(*it);
        _leased.emplace(*it, owner);
        _pending.erase(it);
    }
    return out;
}

bool
LeaseQueue::complete(std::size_t task)
{
    return _leased.erase(task) > 0;
}

std::vector<std::size_t>
LeaseQueue::release(const std::string &owner)
{
    std::vector<std::size_t> requeued;
    for (auto it = _leased.begin(); it != _leased.end();) {
        if (it->second == owner) {
            requeued.push_back(it->first);
            _pending.insert(it->first);
            it = _leased.erase(it);
        } else {
            ++it;
        }
    }
    // _leased iterates in key order, so requeued is already in plan
    // order.
    return requeued;
}

bool
LeaseQueue::requeue(std::size_t task)
{
    if (_leased.erase(task) == 0)
        return false;
    _pending.insert(task);
    return true;
}

std::size_t
LeaseQueue::markDone(const std::vector<char> &done)
{
    std::size_t dropped = 0;
    for (auto it = _pending.begin(); it != _pending.end();) {
        if (*it < done.size() && done[*it]) {
            it = _pending.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    for (auto it = _leased.begin(); it != _leased.end();) {
        if (it->first < done.size() && done[it->first]) {
            it = _leased.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

bool
LeaseQueue::quarantine(std::size_t task)
{
    const bool was_pending = _pending.erase(task) > 0;
    const bool was_leased = _leased.erase(task) > 0;
    if (!was_pending && !was_leased)
        return false;
    _quarantined.push_back(task);
    return true;
}

const std::string *
LeaseQueue::ownerOf(std::size_t task) const
{
    const auto it = _leased.find(task);
    return it == _leased.end() ? nullptr : &it->second;
}

} // namespace microlib
