#include "core/supervisor.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>

namespace microlib
{

ProgressFollower::ProgressFollower(std::string path)
    : _path(std::move(path))
{
}

void
ProgressFollower::rewind()
{
    _offset = 0;
    _has_task = false;
    _task = 0;
}

bool
ProgressFollower::parseHeartbeat(const std::string &line,
                                 std::size_t &task)
{
    if (line.find("\"event\":\"heartbeat\"") == std::string::npos)
        return false;
    const std::string key = "\"task\":";
    const auto at = line.find(key);
    if (at == std::string::npos)
        return false;
    const char *digits = line.c_str() + at + key.size();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(digits, &end, 10);
    if (end == digits)
        return false;
    task = static_cast<std::size_t>(v);
    return true;
}

bool
ProgressFollower::poll()
{
    if (_path.empty())
        return false;

    struct stat st;
    if (::stat(_path.c_str(), &st) != 0)
        return false;
    if (st.st_size < _offset) {
        // Shrunk: a restarted worker reopened (truncated) its
        // stream. Start over; the reopen itself is liveness.
        rewind();
        return true;
    }
    if (st.st_size == _offset)
        return false;

    std::ifstream in(_path);
    if (!in)
        return false;
    in.seekg(_offset);

    bool advanced = false;
    std::string line;
    while (std::getline(in, line)) {
        if (in.eof() && !line.empty()) {
            // No trailing newline: a line still being written (or
            // torn by a dying writer). Leave it for the next poll —
            // or never; a torn tail must not count as liveness.
            break;
        }
        _offset += static_cast<std::streamoff>(line.size()) + 1;
        advanced = true;
        std::size_t task;
        if (parseHeartbeat(line, task)) {
            _has_task = true;
            _task = task;
        }
    }
    return advanced;
}

bool
ProgressFollower::lastHeartbeatTask(std::size_t &task) const
{
    if (!_has_task)
        return false;
    task = _task;
    return true;
}

void
ProgressStreamFollower::feed(const char *data, std::size_t n)
{
    _buf.append(data, n);
    // Surface every completed line; the unterminated tail stays
    // buffered (it may be half a line — the next chunk finishes it,
    // or EOF orphans it).
    std::size_t start = 0;
    for (;;) {
        const auto nl = _buf.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = _buf.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;
        std::size_t task;
        if (ProgressFollower::parseHeartbeat(line, task)) {
            _has_task = true;
            _task = task;
        }
        _lines.push_back(std::move(line));
    }
    if (start > 0)
        _buf.erase(0, start);
}

int
ProgressStreamFollower::feedFd(int fd)
{
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0)
        feed(chunk, static_cast<std::size_t>(n));
    return static_cast<int>(n);
}

std::vector<std::string>
ProgressStreamFollower::takeLines()
{
    std::vector<std::string> out;
    out.swap(_lines);
    return out;
}

bool
ProgressStreamFollower::lastHeartbeatTask(std::size_t &task) const
{
    if (!_has_task)
        return false;
    task = _task;
    return true;
}

void
ProgressStreamFollower::reset()
{
    _buf.clear();
    _lines.clear();
    _has_task = false;
    _task = 0;
}

SupervisionVerdict
SweepSupervisor::decide(const WorkerFailure &failure)
{
    SupervisionVerdict verdict;
    const char *how = failure.stalled ? "stalled" : "died";

    // Strikes come before the retry budget: if this failure tips the
    // blamed task into quarantine, the restart is free — the thing
    // that was killing the worker is gone, so the host-health budget
    // should not be charged for it (and is reset outright, so a
    // worker that burned retries on a poison task gets its full
    // budget back for the rest of the plan).
    if (failure.has_task && _policy.quarantine_strikes > 0 &&
        !isQuarantined(failure.task)) {
        const std::size_t strikes = ++_strikes[failure.task];
        if (strikes >= _policy.quarantine_strikes) {
            _quarantined.push_back(failure.task);
            _retries[failure.worker] = 0;
            verdict.action = SupervisionVerdict::Action::Restart;
            verdict.quarantined = true;
            verdict.task = failure.task;
            verdict.delay_s = 0.0;
            verdict.why = "worker " + std::to_string(failure.worker) +
                          " " + how + " (" + failure.detail +
                          "); task " + std::to_string(failure.task) +
                          " quarantined after " +
                          std::to_string(strikes) + " strikes";
            return verdict;
        }
    }

    const std::size_t retries = ++_retries[failure.worker];
    if (retries > _policy.max_worker_retries) {
        verdict.action = SupervisionVerdict::Action::GiveUp;
        verdict.why = "worker " + std::to_string(failure.worker) +
                      " " + how + " (" + failure.detail + "); retry " +
                      "budget of " +
                      std::to_string(_policy.max_worker_retries) +
                      " exhausted";
        return verdict;
    }

    double delay = _policy.backoff_initial_s;
    for (std::size_t i = 1; i < retries; ++i)
        delay *= 2.0;
    if (delay > _policy.backoff_max_s)
        delay = _policy.backoff_max_s;

    verdict.action = SupervisionVerdict::Action::Restart;
    verdict.delay_s = delay;
    verdict.why = "worker " + std::to_string(failure.worker) + " " +
                  how + " (" + failure.detail + "); restart " +
                  std::to_string(retries) + "/" +
                  std::to_string(_policy.max_worker_retries);
    return verdict;
}

bool
SweepSupervisor::isQuarantined(std::size_t task) const
{
    for (const std::size_t q : _quarantined)
        if (q == task)
            return true;
    return false;
}

std::size_t
SweepSupervisor::strikes(std::size_t task) const
{
    const auto it = _strikes.find(task);
    return it == _strikes.end() ? 0 : it->second;
}

std::size_t
SweepSupervisor::retries(std::size_t worker) const
{
    const auto it = _retries.find(worker);
    return it == _retries.end() ? 0 : it->second;
}

} // namespace microlib
