#include "core/cliff_finder.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/ranking.hh"
#include "core/scheduler.hh"
#include "sim/config.hh"
#include "sim/fingerprint.hh"
#include "sim/logging.hh"

namespace microlib
{

namespace
{

/** log2 of a power of two. */
unsigned
log2Exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v) - 1);
}

/** The probe mechanism list: "Base" (speedups are relative to it)
 *  followed by the compared pair, duplicates dropped. */
std::vector<std::string>
probeMechanisms(const std::string &a, const std::string &b)
{
    std::vector<std::string> mechs{"Base"};
    if (a != "Base")
        mechs.push_back(a);
    if (b != "Base" && b != a)
        mechs.push_back(b);
    return mechs;
}

/** "hier.l2.size" -> "hier-l2-size": a filename-safe axis key. */
std::string
sanitizeKey(const std::string &key)
{
    std::string out = key;
    std::replace(out.begin(), out.end(), '.', '-');
    return out;
}

const char *
scaleName(AxisScale scale)
{
    switch (scale) {
    case AxisScale::Linear:
        return "linear";
    case AxisScale::Pow2:
        return "pow2";
    case AxisScale::None:
        break;
    }
    return "none";
}

/** Shortest round-trip double text ("%.17g"): byte-stable for
 *  bit-identical inputs, which every probe result is. */
std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** One probe as a JSON object (fixed key order). */
std::string
jsonProbe(const CliffProbe &p, const std::string &a,
          const std::string &b)
{
    if (!p.evaluated)
        return "null";
    std::string out = "{\"value\": " + std::to_string(p.value);
    if (p.faulted) {
        out += ", \"winner\": \"FAULT\"}";
        return out;
    }
    out += ", \"speedup_a\": " + jsonDouble(p.speedup_a);
    out += ", \"speedup_b\": " + jsonDouble(p.speedup_b);
    out += ", \"winner\": \"" + (p.a_wins ? a : b) + "\"}";
    return out;
}

} // namespace

const char *
cliffStatusName(CliffStatus status)
{
    switch (status) {
    case CliffStatus::Flip:
        return "flip";
    case CliffStatus::NoFlip:
        return "noflip";
    case CliffStatus::Faulted:
        return "faulted";
    }
    return "?";
}

std::uint64_t
axisMidpoint(AxisScale scale, std::uint64_t lo, std::uint64_t hi)
{
    if (lo >= hi)
        panic("axisMidpoint: lo ", lo, " >= hi ", hi);
    switch (scale) {
    case AxisScale::Linear:
        if (hi - lo <= 1)
            return 0;
        return lo + (hi - lo) / 2;
    case AxisScale::Pow2: {
        const unsigned llo = log2Exact(lo), lhi = log2Exact(hi);
        if (lhi - llo <= 1)
            return 0;
        return std::uint64_t{1} << ((llo + lhi) / 2);
    }
    case AxisScale::None:
        break;
    }
    panic("axisMidpoint: axis is not searchable");
}

std::size_t
bisectionBound(AxisScale scale, std::uint64_t lo, std::uint64_t hi)
{
    std::uint64_t steps = 0;
    switch (scale) {
    case AxisScale::Linear:
        steps = hi - lo;
        break;
    case AxisScale::Pow2:
        steps = log2Exact(hi) - log2Exact(lo);
        break;
    case AxisScale::None:
        panic("bisectionBound: axis is not searchable");
    }
    // Each iteration leaves at most ceil(steps / 2) legal increments
    // in the bracket, so ceil(log2(steps)) iterations reach an
    // adjacent pair; plus the two endpoint probes.
    const std::size_t iters =
        steps <= 1 ? 0 : static_cast<std::size_t>(
                             std::bit_width(steps - 1));
    return 2 + iters;
}

CliffResult
bisectCliff(AxisScale scale, std::uint64_t lo, std::uint64_t hi,
            const CliffProber &probe)
{
    if (lo >= hi)
        panic("bisectCliff: lo ", lo, " >= hi ", hi);
    CliffResult r;
    r.lo = probe(lo);
    r.lo.evaluated = true;
    r.probes.push_back(r.lo);
    if (r.lo.faulted) {
        r.status = CliffStatus::Faulted;
        return r;
    }
    r.hi = probe(hi);
    r.hi.evaluated = true;
    r.probes.push_back(r.hi);
    if (r.hi.faulted) {
        r.status = CliffStatus::Faulted;
        return r;
    }
    if (r.lo.a_wins == r.hi.a_wins) {
        r.status = CliffStatus::NoFlip;
        return r;
    }
    // Invariant: lo.a_wins != hi.a_wins. Each midpoint probe
    // replaces the endpoint it agrees with, so the invariant holds
    // until the bracket is adjacent — a genuine flip.
    while (const std::uint64_t mid =
               axisMidpoint(scale, r.lo.value, r.hi.value)) {
        CliffProbe p = probe(mid);
        p.evaluated = true;
        r.probes.push_back(p);
        if (p.faulted) {
            r.status = CliffStatus::Faulted;
            return r;
        }
        (p.a_wins == r.lo.a_wins ? r.lo : r.hi) = p;
    }
    r.status = CliffStatus::Flip;
    return r;
}

CliffFinder::CliffFinder(ExperimentEngine &engine, SweepSpec base,
                         CliffFinderOptions opts)
    : _engine(engine), _base(std::move(base)), _opts(std::move(opts))
{
}

bool
CliffFinder::searchable(const std::string &axis_key,
                        std::string *error) const
{
    auto failWith = [&](const std::string &msg) {
        if (error)
            *error = "axis '" + axis_key + "': " + msg;
        return false;
    };
    const AxisDecl *decl = nullptr;
    for (const auto &a : _base.axes())
        if (a.key == axis_key)
            decl = &a;
    if (!decl)
        return failWith("not declared in the spec (the declared "
                        "values are the search endpoints)");
    const AxisParam *param = findAxisParam(axis_key);
    if (!param)
        return failWith("not in the parameter registry");
    if (param->scale == AxisScale::None)
        return failWith("not numeric: cannot bisect");
    std::uint64_t lo = 0, hi = 0;
    bool first = true;
    for (const auto &v : decl->values) {
        std::uint64_t n = 0;
        if (!parseScaledU64(v, n))
            return failWith("value '" + v + "' is not a number");
        if (param->scale == AxisScale::Pow2 &&
            !std::has_single_bit(n))
            return failWith("value '" + v +
                            "' is not a power of two");
        lo = first ? n : std::min(lo, n);
        hi = first ? n : std::max(hi, n);
        first = false;
    }
    if (lo == hi)
        return failWith("needs two distinct values as endpoints");
    return true;
}

std::vector<std::string>
CliffFinder::searchableAxes() const
{
    std::vector<std::string> out;
    for (const auto &a : _base.axes())
        if (searchable(a.key))
            out.push_back(a.key);
    return out;
}

CliffProbe
CliffFinder::probePoint(const std::string &axis_key,
                        std::uint64_t value, CliffResult &r)
{
    SweepSpec slice;
    std::string error;
    if (!_base.axisSlice(probeMechanisms(r.mech_a, r.mech_b), axis_key,
                         {std::to_string(value)}, slice, &error))
        fatal("cliff probe ", axis_key, "=", value, ": ", error);

    const SweepResult res = _engine.run(slice);
    const RunCounters counts = _engine.lastRun();
    r.executed += counts.executed;
    r.resumed += counts.resumed;

    CliffProbe p;
    p.value = value;
    const MatrixResult &m = res.matrices.front();
    for (std::size_t mi = 0; mi < m.mechanisms.size() && !p.faulted;
         ++mi)
        for (std::size_t b = 0; b < m.benchmarks.size(); ++b)
            if (m.faulted(mi, b))
                p.faulted = true;
    if (!p.faulted) {
        p.speedup_a = m.avgSpeedup(m.mechIndex(r.mech_a));
        p.speedup_b = m.avgSpeedup(m.mechIndex(r.mech_b));
        p.a_wins = rankBefore({r.mech_a, p.speedup_a, 0},
                              {r.mech_b, p.speedup_b, 0});
    }
    if (_opts.verbose)
        inform("cliff probe ", axis_key, "=", value, ": ",
               p.faulted
                   ? "FAULT"
                   : (r.mech_a + " " + Table::num(p.speedup_a) +
                      " vs " + r.mech_b + " " +
                      Table::num(p.speedup_b) + " -> " +
                      (p.a_wins ? r.mech_a : r.mech_b)),
               " (executed ", counts.executed, ", resumed ",
               counts.resumed, ")");
    return p;
}

CliffResult
CliffFinder::find(const std::string &mech_a, const std::string &mech_b,
                  const std::string &axis_key)
{
    std::string error;
    if (!searchable(axis_key, &error))
        fatal("cliff search: ", error);
    const AxisParam *param = findAxisParam(axis_key);

    std::uint64_t lo = 0, hi = 0;
    bool first = true;
    for (const auto &a : _base.axes()) {
        if (a.key != axis_key)
            continue;
        for (const auto &v : a.values) {
            std::uint64_t n = 0;
            parseScaledU64(v, n);
            lo = first ? n : std::min(lo, n);
            hi = first ? n : std::max(hi, n);
            first = false;
        }
    }

    CliffResult shell;
    shell.axis = axis_key;
    shell.mech_a = mech_a;
    shell.mech_b = mech_b;
    CliffResult r = bisectCliff(
        param->scale, lo, hi, [&](std::uint64_t value) {
            return probePoint(axis_key, value, shell);
        });
    r.axis = shell.axis;
    r.mech_a = shell.mech_a;
    r.mech_b = shell.mech_b;
    r.executed = shell.executed;
    r.resumed = shell.resumed;

    if (!_opts.witness_dir.empty())
        writeWitness(r);
    return r;
}

std::vector<CliffResult>
CliffFinder::findAll(const std::string &mech_a,
                     const std::string &mech_b)
{
    std::vector<CliffResult> out;
    for (const auto &axis : searchableAxes())
        out.push_back(find(mech_a, mech_b, axis));
    return out;
}

SweepSpec
CliffFinder::witnessSpec(const CliffResult &r) const
{
    SweepSpec witness;
    std::string error;
    if (!_base.axisSlice(probeMechanisms(r.mech_a, r.mech_b), r.axis,
                         {std::to_string(r.lo.value),
                          std::to_string(r.hi.value)},
                         witness, &error))
        fatal("cliff witness ", r.axis, ": ", error);
    return witness;
}

void
CliffFinder::writeWitness(CliffResult &r)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(_opts.witness_dir, ec);
    if (ec)
        fatal("cannot create witness dir ", _opts.witness_dir, ": ",
              ec.message());

    const std::string stem = "cliff__" + sanitizeKey(r.axis) + "__" +
                             r.mech_a + "_vs_" + r.mech_b;
    const AxisParam *param = findAxisParam(r.axis);

    // The .sweep witness only exists for a genuine flip: a minimal
    // 2-variant spec whose replay reproduces the ranking inversion.
    std::string sweep_name;
    std::uint64_t witness_hash = 0;
    if (r.status == CliffStatus::Flip) {
        const SweepSpec witness = witnessSpec(r);
        witness_hash = witness.hash();
        sweep_name = stem + ".sweep";
        const fs::path path = fs::path(_opts.witness_dir) / sweep_name;
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot write witness ", path.string());
        out << witness.canonicalText();
        r.witness_path = path.string();
    }

    // The JSON summary is written for every search (noflip and
    // faulted included), so a witness directory is a complete,
    // byte-diffable record of what a search concluded.
    const fs::path jpath =
        fs::path(_opts.witness_dir) / (stem + ".json");
    std::ofstream j(jpath, std::ios::trunc);
    if (!j)
        fatal("cannot write witness summary ", jpath.string());
    j << "{\n";
    j << "  \"axis\": \"" << r.axis << "\",\n";
    j << "  \"scale\": \"" << scaleName(param->scale) << "\",\n";
    j << "  \"mech_a\": \"" << r.mech_a << "\",\n";
    j << "  \"mech_b\": \"" << r.mech_b << "\",\n";
    j << "  \"status\": \"" << cliffStatusName(r.status) << "\",\n";
    j << "  \"lo\": " << jsonProbe(r.lo, r.mech_a, r.mech_b) << ",\n";
    j << "  \"hi\": " << jsonProbe(r.hi, r.mech_a, r.mech_b) << ",\n";
    j << "  \"probes\": " << r.probes.size() << ",\n";
    if (sweep_name.empty()) {
        j << "  \"witness_sweep\": null\n";
    } else {
        j << "  \"witness_sweep\": \"" << sweep_name << "\",\n";
        j << "  \"witness_hash\": \""
          << Fingerprint::hexOf(witness_hash) << "\"\n";
    }
    j << "}\n";
}

Table
CliffFinder::report(const std::vector<CliffResult> &results)
{
    std::string pair;
    if (!results.empty())
        pair = ": " + results.front().mech_a + " vs " +
               results.front().mech_b;
    Table t("cliff report" + pair);
    t.header({"axis", "status", "bracket", "A@lo", "B@lo", "A@hi",
              "B@hi", "probes"});
    for (const auto &r : results) {
        std::vector<std::string> cells;
        cells.push_back(r.axis);
        cells.push_back(cliffStatusName(r.status));
        std::string bracket =
            r.lo.evaluated ? std::to_string(r.lo.value) : "-";
        bracket += "..";
        bracket += r.hi.evaluated ? std::to_string(r.hi.value) : "-";
        cells.push_back(std::move(bracket));
        for (const CliffProbe *p : {&r.lo, &r.hi}) {
            if (!p->evaluated) {
                cells.push_back("-");
                cells.push_back("-");
            } else if (p->faulted) {
                cells.push_back("FAULT");
                cells.push_back("FAULT");
            } else {
                cells.push_back(Table::num(p->speedup_a));
                cells.push_back(Table::num(p->speedup_b));
            }
        }
        cells.push_back(std::to_string(r.probes.size()));
        t.row(std::move(cells));
    }
    return t;
}

} // namespace microlib
