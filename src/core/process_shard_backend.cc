#include "core/process_shard_backend.hh"

#include <errno.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/exit_codes.hh"
#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/supervisor.hh"
#include "core/thread_pool_backend.hh"
#include "sim/logging.hh"

namespace microlib
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Worker body, run between fork() and _exit(): execute shard
 *  @p shard of @p plan into its own store. Never returns. */
[[noreturn]] void
runShardWorker(const TaskPlan &plan, const std::vector<char> &done,
               const ExecutionContext &parent_ctx,
               const ShardSpec &shard, const std::string &store_path,
               const std::string &progress_path,
               const std::string &fault_state, unsigned threads)
{
    try {
        // Per-worker fault-injection firing state, derived by the
        // parent when MICROLIB_FAULT is armed without an explicit
        // state file: "first N encounters" must count across this
        // worker's restarts, or crash@t:1 would re-fire forever.
        if (!fault_state.empty())
            setenv("MICROLIB_FAULT_STATE", fault_state.c_str(), 1);

        // Fresh engine: own thread pool, own trace cache. The
        // parent's pool threads do not exist in this process; its
        // engine is never touched again (no destructors run either —
        // see the _exit below).
        ResultStore store(store_path);
        EngineOptions opts;
        opts.threads = threads;
        opts.keep_traces = parent_ctx.opts.keep_traces;
        opts.verbose = parent_ctx.opts.verbose;
        opts.trace_budget_bytes = parent_ctx.opts.trace_budget_bytes;
        opts.lockstep = parent_ctx.opts.lockstep;
        // All shard workers share the parent's arena directory: the
        // first worker to need a window publishes it, every sibling
        // (and every later run) mmaps that one copy.
        opts.trace_dir = parent_ctx.opts.trace_dir;
        opts.store = &store;
        opts.shard = shard;
        opts.progress_path = progress_path;
        ExperimentEngine engine(opts);
        ProgressWriter progress(opts.progress_path);
        const ExecutionContext ctx{
            engine, opts, progress.enabled() ? &progress : nullptr};

        // The parent's resume mask rides through fork(): tasks whose
        // record the parent store already held — and tasks the parent
        // has quarantined — are never re-run here. On top of that,
        // resume from this shard's own store: a previously killed
        // worker left exactly those records.
        SweepResult res = plan.emptyResult();
        std::vector<char> worker_done = done;
        RunCounters counters;
        counters.resumed =
            plan.prefill(store, res, worker_done);

        if (progress.enabled())
            progress.write(ProgressEvent("plan")
                               .field("backend", "process-shard/worker")
                               .field("shard", shard.str())
                               .field("total", plan.size())
                               .field("resumed", counters.resumed));

        ThreadPoolBackend leaf;
        leaf.execute(plan, worker_done, ctx, res, counters);

        if (progress.enabled())
            progress.write(ProgressEvent("done")
                               .field("backend", "process-shard/worker")
                               .field("shard", shard.str())
                               .field("executed", counters.executed)
                               .field("resumed", counters.resumed)
                               .field("skipped", counters.skipped));
        std::fflush(stdout);
        std::fflush(stderr);
        _exit(0);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "shard worker %zu: %s\n",
                     static_cast<std::size_t>(shard.index), e.what());
        std::fflush(stderr);
        _exit(1);
    } catch (...) {
        std::fprintf(stderr, "shard worker %zu: unknown error\n",
                     static_cast<std::size_t>(shard.index));
        std::fflush(stderr);
        _exit(1);
    }
}

/** Unique pending-task records already sitting in the store file at
 *  @p path — a killed worker's leftovers, which the restarted worker
 *  will *resume* rather than execute. Counted so the parent's
 *  RunCounters stay truthful: executed means simulated this call. */
std::size_t
countPendingRecords(const std::string &path,
                    const std::set<std::string> &pending_keys)
{
    std::ifstream in(path);
    if (!in)
        return 0;
    std::set<std::string> seen;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ResultRecord rec;
        if (!ResultStore::parseRecord(line, rec))
            continue;
        std::string key = rec.key.str();
        if (pending_keys.count(key))
            seen.insert(std::move(key));
    }
    return seen.size();
}

/** One supervised shard worker (possibly across several process
 *  incarnations: the shard, its files and its follower are stable;
 *  the pid changes on restart). */
struct Worker
{
    pid_t pid = -1;
    ShardSpec shard;
    std::string store_path;
    std::string progress_path;
    bool derived_progress = false; ///< we invented the path: clean up
    std::string fault_state;       ///< derived firing-state file ("")
    ProgressFollower follower;
    Clock::time_point last_activity{};
    Clock::time_point restart_at{}; ///< when pid < 0: relaunch gate
    bool finished = false;
};

/** EINTR-proof waitpid. Returns the waitpid result with EINTR
 *  retried: an interrupted wait is not a shard failure. */
pid_t
waitFor(pid_t pid, int *status, int flags)
{
    pid_t r;
    do {
        r = waitpid(pid, status, flags);
    } while (r < 0 && errno == EINTR);
    return r;
}

} // namespace

ProcessShardBackend::ProcessShardBackend(ProcessShardOptions opts)
    : _opts(opts)
{
    if (_opts.shards == 0)
        fatal("ProcessShardOptions::shards must be >= 1");
}

std::string
ProcessShardBackend::shardStorePath(const std::string &base,
                                    std::size_t index,
                                    std::size_t count)
{
    std::string path = base;
    path += ".shard";
    path += std::to_string(index);
    path += "of";
    path += std::to_string(count);
    return path;
}

void
ProcessShardBackend::execute(const TaskPlan &plan,
                             const std::vector<char> &done,
                             const ExecutionContext &ctx,
                             SweepResult &res, RunCounters &counters)
{
    ResultStore *store = ctx.opts.store;
    if (!store || store->path().empty())
        fatal("ProcessShardBackend needs a file-backed result store "
              "(EngineOptions::store): shard workers hand results "
              "back through per-shard store files");
    if (!ctx.opts.shard.whole())
        fatal("ProcessShardBackend partitions the whole plan itself; "
              "combine --shard with the thread-pool backend instead");

    counters.skipped = 0; // this backend executes everything pending
    const std::vector<std::size_t> pending =
        plan.pendingTasks(done, ShardSpec{});
    if (pending.empty())
        return;

    const std::size_t nshards = _opts.shards;
    const unsigned worker_threads =
        _opts.threads_per_shard ? _opts.threads_per_shard : 1;

    // Keys of every task a worker might run, for the resume
    // accounting below.
    std::set<std::string> pending_keys;
    for (std::size_t i : pending)
        pending_keys.insert(plan.resultKey(i).str());

    SupervisionPolicy policy;
    policy.heartbeat_timeout = ctx.opts.heartbeat_timeout;
    policy.max_worker_retries = ctx.opts.max_worker_retries;
    policy.quarantine_strikes = ctx.opts.quarantine_strikes;
    policy.backoff_initial_s = ctx.opts.worker_backoff_s;
    SweepSupervisor supervisor(policy);

    // The mask restarted workers are launched with: the caller's
    // resume mask plus every task quarantined so far, so a restarted
    // worker never re-runs the task that has been killing it.
    std::vector<char> live_done = done;

    // Fault injection needs per-worker firing state to count "first
    // N encounters" across restarts; derive one next to each shard
    // store when the user armed a plan without naming a state file.
    const bool derive_fault_state =
        std::getenv("MICROLIB_FAULT") != nullptr &&
        std::getenv("MICROLIB_FAULT_STATE") == nullptr;

    std::vector<Worker> workers;
    std::size_t worker_resumed = 0;
    for (std::size_t i = 0; i < nshards; ++i) {
        const ShardSpec shard{i, nshards};
        // A shard with nothing pending (all resumed, or the plan is
        // smaller than the shard count) gets no process.
        const bool has_work =
            std::any_of(pending.begin(), pending.end(),
                        [&](std::size_t t)
                        { return TaskPlan::inShard(t, shard); });
        if (!has_work)
            continue;

        Worker w;
        w.shard = shard;
        w.store_path = shardStorePath(store->path(), i, nshards);
        // Supervision needs the heartbeat stream even when the
        // caller asked for no progress output; derive a path from
        // the shard store and clean it up on success.
        if (!ctx.opts.progress_path.empty()) {
            w.progress_path = ctx.opts.progress_path + ".shard" +
                              std::to_string(shard.index);
        } else {
            w.progress_path = w.store_path + ".progress";
            w.derived_progress = true;
        }
        if (derive_fault_state)
            w.fault_state = w.store_path + ".faultstate";
        // Records a previous (killed) worker left behind will be
        // resumed by the restarted worker, not re-executed; count
        // them now, before the child starts appending. Restarts
        // within THIS call need no recount: whatever an incarnation
        // persisted was simulated by this call, so it stays
        // `executed` even when a successor resumes it.
        worker_resumed +=
            countPendingRecords(w.store_path, pending_keys);
        workers.push_back(std::move(w));
    }

    auto launch = [&](Worker &w, std::size_t attempt) {
        // Parent-side buffered output must not be replayed by every
        // child's own writes later; flush before the address space
        // is duplicated.
        std::fflush(stdout);
        std::fflush(stderr);
        w.pid = fork();
        if (w.pid < 0)
            fatal("ProcessShardBackend: fork() failed for shard ",
                  w.shard.str());
        if (w.pid == 0)
            runShardWorker(plan, live_done, ctx, w.shard,
                           w.store_path, w.progress_path,
                           w.fault_state,
                           worker_threads); // never returns
        // The new incarnation truncates its progress stream on open;
        // follow it from the top.
        w.follower = ProgressFollower(w.progress_path);
        w.last_activity = Clock::now();
        if (ctx.progress)
            ctx.progress->write(
                ProgressEvent("shard")
                    .field("shard", w.shard.str())
                    .field("pid", static_cast<std::uint64_t>(w.pid))
                    .field("attempt",
                           static_cast<std::uint64_t>(attempt))
                    .field("store", w.store_path));
    };
    for (Worker &w : workers)
        launch(w, 0);

    // Supervision loop: poll every worker for death (WNOHANG reap),
    // stall (no progress-stream growth within the heartbeat timeout)
    // and due restarts, until all shards finish or the supervisor
    // gives up. Failures never leave siblings running unsupervised:
    // GiveUp kills and reaps every live worker before throwing.
    std::string give_up;
    auto onFailure = [&](Worker &w, bool stalled,
                         std::string detail) {
        // Drain the stream one last time: the heartbeat written just
        // before the fatal task is the blame evidence.
        w.follower.poll();
        WorkerFailure f;
        f.worker = w.shard.index;
        f.stalled = stalled;
        f.detail = std::move(detail);
        f.has_task = w.follower.lastHeartbeatTask(f.task);
        const SupervisionVerdict verdict = supervisor.decide(f);
        warn("ProcessShardBackend: ", verdict.why);
        if (verdict.quarantined) {
            live_done[verdict.task] = 1;
            if (ctx.progress)
                ctx.progress->write(
                    ProgressEvent("quarantine")
                        .field("task", verdict.task)
                        .field("shard", w.shard.str())
                        .field("desc",
                               plan.describe(verdict.task,
                                             ShardSpec{0, nshards})));
        }
        if (verdict.action == SupervisionVerdict::Action::GiveUp) {
            give_up = verdict.why;
            return;
        }
        w.pid = -1;
        w.restart_at =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(verdict.delay_s));
        if (ctx.progress)
            ctx.progress->write(
                ProgressEvent("worker_restart")
                    .field("shard", w.shard.str())
                    .field("stalled",
                           static_cast<std::uint64_t>(stalled ? 1 : 0))
                    .field("retries", supervisor.retries(f.worker))
                    .field("delay_s", verdict.delay_s));
    };

    std::size_t active = workers.size();
    while (active > 0 && give_up.empty()) {
        bool any_event = false;
        for (Worker &w : workers) {
            if (w.finished || !give_up.empty())
                continue;
            if (w.pid < 0) {
                // Waiting out its restart backoff.
                if (Clock::now() >= w.restart_at) {
                    launch(w, supervisor.retries(w.shard.index));
                    any_event = true;
                }
                continue;
            }

            int status = 0;
            const pid_t r = waitFor(w.pid, &status, WNOHANG);
            if (r < 0) {
                give_up = "shard " + w.shard.str() +
                          ": waitpid failed (errno " +
                          std::to_string(errno) + ")";
                break;
            }
            if (r == w.pid) {
                const bool ok =
                    WIFEXITED(status) && WEXITSTATUS(status) == 0;
                if (ctx.progress)
                    ctx.progress->write(
                        ProgressEvent("shard_exit")
                            .field("shard", w.shard.str())
                            .field("ok", static_cast<std::uint64_t>(
                                             ok ? 1 : 0)));
                if (ok) {
                    w.finished = true;
                    --active;
                } else {
                    onFailure(w, false,
                              WIFSIGNALED(status)
                                  ? "killed by signal " +
                                        std::to_string(WTERMSIG(status))
                                  : "exit status " +
                                        std::to_string(
                                            WEXITSTATUS(status)));
                }
                any_event = true;
                continue;
            }

            // Alive. Stream growth (any complete line) is liveness;
            // silence past the timeout means wedged — SIGKILL and
            // let the supervisor decide about the restart.
            if (w.follower.poll()) {
                w.last_activity = Clock::now();
                any_event = true;
            } else if (policy.heartbeat_timeout > 0 &&
                       secondsSince(w.last_activity) >
                           policy.heartbeat_timeout) {
                kill(w.pid, SIGKILL);
                waitFor(w.pid, &status, 0);
                if (ctx.progress)
                    ctx.progress->write(
                        ProgressEvent("worker_stall")
                            .field("shard", w.shard.str())
                            .field("timeout_s",
                                   policy.heartbeat_timeout));
                onFailure(w, true,
                          "no heartbeat for " +
                              std::to_string(
                                  policy.heartbeat_timeout) +
                              "s");
                any_event = true;
            }
        }
        if (!any_event && active > 0 && give_up.empty())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(15));
    }

    if (!give_up.empty()) {
        for (Worker &w : workers) {
            if (w.finished || w.pid < 0)
                continue;
            kill(w.pid, SIGKILL);
            int status = 0;
            waitFor(w.pid, &status, 0);
        }
        // Shard stores are deliberately kept: the next run resumes
        // exactly the missing tasks of the failed shard(s). This is
        // an infrastructure failure (exit 4), not an experiment
        // failure — retrying against a healthy machine resumes.
        throw InfrastructureError("ProcessShardBackend: " + give_up +
                                  " (shard stores kept for resume)");
    }

    // All workers succeeded: merge shard stores by concatenation
    // into the parent store, then fill the matrix from the merged
    // records — the same resume path a restarted sweep takes.
    for (const Worker &w : workers)
        store->merge(w.store_path);
    std::vector<char> merged_done = done;
    const std::size_t filled = plan.prefill(*store, res, merged_done);
    // Truthful accounting: of the records just merged, the ones a
    // killed worker had already persisted before THIS call were
    // resumed inside its first restarted incarnation, not simulated.
    counters.executed = filled - worker_resumed;
    counters.resumed += worker_resumed;
    // Quarantined tasks have no record: flag their cells and exempt
    // them from the completeness check. (A task misblamed after its
    // record landed is simply done — the record wins.)
    std::vector<std::size_t> quarantined = supervisor.quarantined();
    std::sort(quarantined.begin(), quarantined.end());
    for (const std::size_t q : quarantined) {
        if (merged_done[q])
            continue;
        merged_done[q] = 1;
        const PlanTask &t = plan.task(q);
        res.matrix(t.v).fault[t.m][t.b] = 1;
        counters.quarantined.push_back(q);
    }
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (!merged_done[i])
            throw std::runtime_error(
                "ProcessShardBackend: shard worker exited cleanly "
                "but produced no record for " +
                plan.describe(i, ShardSpec{0, nshards}));

    if (!_opts.keep_shard_stores) {
        for (const Worker &w : workers) {
            std::remove(w.store_path.c_str());
            if (w.derived_progress)
                std::remove(w.progress_path.c_str());
            if (!w.fault_state.empty())
                std::remove(w.fault_state.c_str());
        }
    }
}

} // namespace microlib
