#include "core/process_shard_backend.hh"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>

#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/thread_pool_backend.hh"
#include "sim/logging.hh"

namespace microlib
{

namespace
{

/** Worker body, run between fork() and _exit(): execute shard
 *  @p shard of @p plan into its own store. Never returns. */
[[noreturn]] void
runShardWorker(const TaskPlan &plan, const std::vector<char> &done,
               const ExecutionContext &parent_ctx,
               const ShardSpec &shard, const std::string &store_path,
               unsigned threads)
{
    try {
        // Fresh engine: own thread pool, own trace cache. The
        // parent's pool threads do not exist in this process; its
        // engine is never touched again (no destructors run either —
        // see the _exit below).
        ResultStore store(store_path);
        EngineOptions opts;
        opts.threads = threads;
        opts.keep_traces = parent_ctx.opts.keep_traces;
        opts.verbose = parent_ctx.opts.verbose;
        opts.trace_budget_bytes = parent_ctx.opts.trace_budget_bytes;
        opts.lockstep = parent_ctx.opts.lockstep;
        opts.store = &store;
        opts.shard = shard;
        if (!parent_ctx.opts.progress_path.empty())
            opts.progress_path = parent_ctx.opts.progress_path +
                                 ".shard" + std::to_string(shard.index);
        ExperimentEngine engine(opts);
        ProgressWriter progress(opts.progress_path);
        const ExecutionContext ctx{
            engine, opts, progress.enabled() ? &progress : nullptr};

        // The parent's resume mask rides through fork(): tasks whose
        // record the parent store already held are never re-run
        // here. On top of that, resume from this shard's own store —
        // a previously killed worker left exactly those records.
        SweepResult res = plan.emptyResult();
        std::vector<char> worker_done = done;
        RunCounters counters;
        counters.resumed =
            plan.prefill(store, res, worker_done);

        if (progress.enabled())
            progress.write(ProgressEvent("plan")
                               .field("backend", "process-shard/worker")
                               .field("shard", shard.str())
                               .field("total", plan.size())
                               .field("resumed", counters.resumed));

        ThreadPoolBackend leaf;
        leaf.execute(plan, worker_done, ctx, res, counters);

        if (progress.enabled())
            progress.write(ProgressEvent("done")
                               .field("backend", "process-shard/worker")
                               .field("shard", shard.str())
                               .field("executed", counters.executed)
                               .field("resumed", counters.resumed)
                               .field("skipped", counters.skipped));
        std::fflush(stdout);
        std::fflush(stderr);
        _exit(0);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "shard worker %zu: %s\n",
                     static_cast<std::size_t>(shard.index), e.what());
        std::fflush(stderr);
        _exit(1);
    } catch (...) {
        std::fprintf(stderr, "shard worker %zu: unknown error\n",
                     static_cast<std::size_t>(shard.index));
        std::fflush(stderr);
        _exit(1);
    }
}

/** Unique pending-task records already sitting in the store file at
 *  @p path — a killed worker's leftovers, which the restarted worker
 *  will *resume* rather than execute. Counted so the parent's
 *  RunCounters stay truthful: executed means simulated this call. */
std::size_t
countPendingRecords(const std::string &path,
                    const std::set<std::string> &pending_keys)
{
    std::ifstream in(path);
    if (!in)
        return 0;
    std::set<std::string> seen;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ResultRecord rec;
        if (!ResultStore::parseRecord(line, rec))
            continue;
        std::string key = rec.key.str();
        if (pending_keys.count(key))
            seen.insert(std::move(key));
    }
    return seen.size();
}

} // namespace

ProcessShardBackend::ProcessShardBackend(ProcessShardOptions opts)
    : _opts(opts)
{
    if (_opts.shards == 0)
        fatal("ProcessShardOptions::shards must be >= 1");
}

std::string
ProcessShardBackend::shardStorePath(const std::string &base,
                                    std::size_t index,
                                    std::size_t count)
{
    std::string path = base;
    path += ".shard";
    path += std::to_string(index);
    path += "of";
    path += std::to_string(count);
    return path;
}

void
ProcessShardBackend::execute(const TaskPlan &plan,
                             const std::vector<char> &done,
                             const ExecutionContext &ctx,
                             SweepResult &res, RunCounters &counters)
{
    ResultStore *store = ctx.opts.store;
    if (!store || store->path().empty())
        fatal("ProcessShardBackend needs a file-backed result store "
              "(EngineOptions::store): shard workers hand results "
              "back through per-shard store files");
    if (!ctx.opts.shard.whole())
        fatal("ProcessShardBackend partitions the whole plan itself; "
              "combine --shard with the thread-pool backend instead");

    counters.skipped = 0; // this backend executes everything pending
    const std::vector<std::size_t> pending =
        plan.pendingTasks(done, ShardSpec{});
    if (pending.empty())
        return;

    const std::size_t nshards = _opts.shards;
    const unsigned worker_threads =
        _opts.threads_per_shard ? _opts.threads_per_shard : 1;

    // Parent-side buffered output must not be replayed by every
    // child's own writes later; flush before the address space is
    // duplicated.
    std::fflush(stdout);
    std::fflush(stderr);

    // Keys of every task a worker might run, for the resume
    // accounting below.
    std::set<std::string> pending_keys;
    for (std::size_t i : pending)
        pending_keys.insert(plan.resultKey(i).str());

    struct Worker
    {
        pid_t pid = -1;
        ShardSpec shard;
        std::string store_path;
    };
    std::vector<Worker> workers;
    std::size_t worker_resumed = 0;
    for (std::size_t i = 0; i < nshards; ++i) {
        const ShardSpec shard{i, nshards};
        // A shard with nothing pending (all resumed, or the plan is
        // smaller than the shard count) gets no process.
        const bool has_work =
            std::any_of(pending.begin(), pending.end(),
                        [&](std::size_t t)
                        { return TaskPlan::inShard(t, shard); });
        if (!has_work)
            continue;

        Worker w;
        w.shard = shard;
        w.store_path =
            shardStorePath(store->path(), i, nshards);
        // Records a previous (killed) worker left behind will be
        // resumed by the restarted worker, not re-executed; count
        // them now, before the child starts appending.
        worker_resumed +=
            countPendingRecords(w.store_path, pending_keys);
        w.pid = fork();
        if (w.pid < 0)
            fatal("ProcessShardBackend: fork() failed for shard ",
                  shard.str());
        if (w.pid == 0)
            runShardWorker(plan, done, ctx, shard, w.store_path,
                           worker_threads); // never returns
        if (ctx.progress)
            ctx.progress->write(
                ProgressEvent("shard")
                    .field("shard", shard.str())
                    .field("pid", static_cast<std::uint64_t>(w.pid))
                    .field("store", w.store_path));
        workers.push_back(std::move(w));
    }

    // Wait for every worker before judging any: a failed shard must
    // not leave siblings running unsupervised.
    std::string failures;
    for (const Worker &w : workers) {
        int status = 0;
        if (waitpid(w.pid, &status, 0) < 0) {
            failures += " shard " + w.shard.str() + ": waitpid failed;";
            continue;
        }
        const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (ctx.progress)
            ctx.progress->write(
                ProgressEvent("shard_exit")
                    .field("shard", w.shard.str())
                    .field("ok", static_cast<std::uint64_t>(ok)));
        if (!ok) {
            failures += " shard " + w.shard.str() + ": ";
            failures += WIFSIGNALED(status)
                            ? "killed by signal " +
                                  std::to_string(WTERMSIG(status))
                            : "exit status " +
                                  std::to_string(WEXITSTATUS(status));
            failures += ';';
        }
    }
    if (!failures.empty()) {
        // Shard stores are deliberately kept: the next run resumes
        // exactly the missing tasks of the failed shard(s).
        throw std::runtime_error("ProcessShardBackend:" + failures);
    }

    // All workers succeeded: merge shard stores by concatenation
    // into the parent store, then fill the matrix from the merged
    // records — the same resume path a restarted sweep takes.
    for (const Worker &w : workers)
        store->merge(w.store_path);
    std::vector<char> merged_done = done;
    const std::size_t filled = plan.prefill(*store, res, merged_done);
    // Truthful accounting: of the records just merged, the ones a
    // killed worker had already persisted were resumed inside the
    // restarted worker, not simulated by this call.
    counters.executed = filled - worker_resumed;
    counters.resumed += worker_resumed;
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (!merged_done[i])
            throw std::runtime_error(
                "ProcessShardBackend: shard worker exited cleanly "
                "but produced no record for " +
                plan.describe(i, ShardSpec{0, nshards}));

    if (!_opts.keep_shard_stores)
        for (const Worker &w : workers)
            std::remove(w.store_path.c_str());
}

} // namespace microlib
