/**
 * @file
 * Exhaustive benchmark-subset winner enumeration (paper Table 6).
 *
 * The paper ranks the mechanisms for *every possible benchmark
 * combination* (all 2^26 - 1 non-empty subsets) and reports, for each
 * subset size N, which mechanisms win at least one N-benchmark
 * selection — showing that with up to 23 benchmarks "cherry-picking"
 * can crown nearly anything. A Gray-code sweep makes the full
 * enumeration incremental: each step flips one benchmark in/out and
 * updates the running speedup sums.
 */

#ifndef MICROLIB_CORE_SUBSET_WINNERS_HH
#define MICROLIB_CORE_SUBSET_WINNERS_HH

#include <cstdint>
#include <vector>

namespace microlib
{

/**
 * @param speedup speedup[mechanism][benchmark]
 * @return can_win[n][mechanism]: true iff the mechanism has the best
 *         average speedup on at least one subset of size n
 *         (index 0 unused; n ranges 1..benchmarks).
 *
 * Ties award all tied mechanisms.
 */
std::vector<std::vector<bool>>
subsetWinners(const std::vector<std::vector<double>> &speedup);

/** Reference brute-force implementation for testing (small inputs). */
std::vector<std::vector<bool>>
subsetWinnersBruteForce(const std::vector<std::vector<double>> &speedup);

} // namespace microlib

#endif // MICROLIB_CORE_SUBSET_WINNERS_HH
