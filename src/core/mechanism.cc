#include "core/mechanism.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

// ---------------------------------------------------------- RequestQueue

RequestQueue::RequestQueue(unsigned capacity) : _capacity(capacity)
{
    if (capacity == 0)
        fatal("RequestQueue needs a non-zero capacity");
    _inflight.reserve(capacity);
}

bool
RequestQueue::hasSlot(Cycle now)
{
    std::erase_if(_inflight, [now](Cycle c) { return c <= now; });
    return _inflight.size() < _capacity;
}

void
RequestQueue::add(Cycle done)
{
    _inflight.push_back(done);
}

std::size_t
RequestQueue::inFlight(Cycle now)
{
    std::erase_if(_inflight, [now](Cycle c) { return c <= now; });
    return _inflight.size();
}

// ------------------------------------------------------------ LineBuffer

LineBuffer::LineBuffer(unsigned lines, std::uint64_t line_bytes)
    : _lines(lines), _line_bytes(line_bytes)
{
    if (lines == 0 || !isPowerOfTwo(line_bytes))
        fatal("LineBuffer: bad geometry");
    _entries.reserve(lines * 2);
}

bool
LineBuffer::probeAndTake(Addr line_addr, Cycle now, Cycle &extra)
{
    const Addr line = alignDown(line_addr, _line_bytes);
    auto it = _entries.find(line);
    if (it == _entries.end())
        return false;
    // One cycle to access the buffer, plus any wait for an in-flight
    // fill to land.
    extra = 1 + (it->second.ready > now ? it->second.ready - now : 0);
    _entries.erase(it);
    return true;
}

void
LineBuffer::insert(Addr line_addr, Cycle ready)
{
    const Addr line = alignDown(line_addr, _line_bytes);

    // Refresh an existing entry instead of duplicating.
    if (auto it = _entries.find(line); it != _entries.end()) {
        it->second.ready = std::min(it->second.ready, ready);
        it->second.stamp = ++_tick;
        return;
    }

    if (_entries.size() >= _lines) {
        // Evict the LRU entry (rare relative to probes, so the
        // linear scan is acceptable).
        auto victim = _entries.begin();
        for (auto it = _entries.begin(); it != _entries.end(); ++it)
            if (it->second.stamp < victim->second.stamp)
                victim = it;
        _entries.erase(victim);
        ++_unused_evictions;
    }
    _entries.emplace(line, Entry{ready, ++_tick});
}

bool
LineBuffer::contains(Addr line_addr) const
{
    return _entries.count(alignDown(line_addr, _line_bytes)) > 0;
}

std::size_t
LineBuffer::occupancy() const
{
    return _entries.size();
}

// -------------------------------------------------------- CacheMechanism

CacheMechanism::CacheMechanism(std::string acronym,
                               const MechanismConfig &cfg)
    : Module(std::move(acronym)), _cfg(cfg)
{
}

void
CacheMechanism::bind(Hierarchy &hier)
{
    _hier = &hier;
}

Addr
CacheMechanism::l1LineAddr(Addr a) const
{
    return alignDown(a, _hier->params().l1d.line);
}

Addr
CacheMechanism::l2LineAddr(Addr a) const
{
    return alignDown(a, _hier->params().l2.line);
}

std::uint64_t
CacheMechanism::l1LineBytes() const
{
    return _hier->params().l1d.line;
}

std::uint64_t
CacheMechanism::l2LineBytes() const
{
    return _hier->params().l2.line;
}

bool
CacheMechanism::issueL2Prefetch(RequestQueue &queue, Addr addr, Addr pc,
                                Cycle now)
{
    const Addr line = l2LineAddr(addr);
    if (_hier->l2Probe(line))
        return false; // already cached: no traffic
    if (!queue.hasSlot(now)) {
        ++prefetches_dropped;
        return false;
    }
    const Cycle done = _hier->prefetchIntoL2(line, pc, now);
    queue.add(done);
    ++prefetches_issued;
    return true;
}

bool
CacheMechanism::issueBufferFetch(RequestQueue &queue, LineBuffer &buffer,
                                 Addr addr, Cycle now)
{
    const Addr line = alignDown(addr, buffer.lineBytes());
    if (_hier->l1Probe(line) || buffer.contains(line))
        return false;
    if (!queue.hasSlot(now)) {
        ++prefetches_dropped;
        return false;
    }
    const Cycle ready = _hier->fetchForL1Buffer(line, now);
    queue.add(ready);
    buffer.insert(line, ready);
    ++prefetches_issued;
    return true;
}

void
CacheMechanism::registerStats(StatSet &stats) const
{
    const std::string n = "mech." + name();
    stats.registerCounter(n + ".table_reads", &table_reads);
    stats.registerCounter(n + ".table_writes", &table_writes);
    stats.registerCounter(n + ".prefetches_issued", &prefetches_issued);
    stats.registerCounter(n + ".prefetches_dropped",
                          &prefetches_dropped);
    stats.registerCounter(n + ".side_hits", &side_hits);
}

} // namespace microlib
