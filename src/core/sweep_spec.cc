#include "core/sweep_spec.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/registry.hh"
#include "sim/config.hh"
#include "sim/fingerprint.hh"
#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib
{

namespace
{

/** Hard ceiling on axis expansion: a typo like "1..1000000" must
 *  fail loudly, not allocate a million matrices. */
constexpr std::size_t max_variants = 4096;

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Shared numeric parse: positive integer with k/M/G suffixes. */
bool
parseCount(const std::string &v, std::uint64_t &out,
           std::string *error, std::uint64_t min_value)
{
    if (!parseScaledU64(v, out) || out < min_value)
        return fail(error, "expected an integer >= " +
                               std::to_string(min_value) +
                               " (k/M/G suffixes allowed), got '" + v +
                               "'");
    return true;
}

AxisParam
u64Param(const char *key, const char *what,
         std::function<std::uint64_t &(RunConfig &)> field,
         std::uint64_t min_value = 1)
{
    AxisParam p;
    p.key = key;
    p.values = "integer (k/M/G suffixes)";
    p.what = what;
    p.apply = [field, min_value](RunConfig &cfg, const std::string &v,
                                 std::string *error) {
        std::uint64_t n = 0;
        if (!parseCount(v, n, error, min_value))
            return false;
        field(cfg) = n;
        return true;
    };
    p.scale = AxisScale::Linear;
    p.search_min = min_value;
    return p;
}

AxisParam
unsignedParam(const char *key, const char *what,
              std::function<unsigned &(RunConfig &)> field,
              std::uint64_t min_value = 1)
{
    AxisParam p;
    p.key = key;
    p.values = "integer (k/M/G suffixes)";
    p.what = what;
    p.apply = [field, min_value](RunConfig &cfg, const std::string &v,
                                 std::string *error) {
        std::uint64_t n = 0;
        if (!parseCount(v, n, error, min_value))
            return false;
        if (n > 0xffffffffull)
            return fail(error, "value '" + v + "' does not fit in 32 bits");
        field(cfg) = static_cast<unsigned>(n);
        return true;
    };
    p.scale = AxisScale::Linear;
    p.search_min = min_value;
    return p;
}

AxisParam
fracParam(const char *key, const char *what,
          std::function<double &(RunConfig &)> field)
{
    AxisParam p;
    p.key = key;
    p.values = "fraction in [0, 1]";
    p.what = what;
    p.apply = [field](RunConfig &cfg, const std::string &v,
                      std::string *error) {
        std::istringstream is(v);
        double d = 0.0;
        char trailing = 0;
        if (!(is >> d) || is >> trailing || d < 0.0 || d > 1.0)
            return fail(error,
                        "expected a fraction in [0, 1], got '" + v + "'");
        field(cfg) = d;
        return true;
    };
    return p;
}

AxisParam
boolParam(const char *key, const char *what,
          std::function<bool &(RunConfig &)> field)
{
    AxisParam p;
    p.key = key;
    p.values = "0|1|false|true|off|on";
    p.what = what;
    p.apply = [field](RunConfig &cfg, const std::string &v,
                      std::string *error) {
        bool b = false;
        if (!parseBoolWord(v, b))
            return fail(error, "expected a boolean, got '" + v + "'");
        field(cfg) = b;
        return true;
    };
    return p;
}

/** The three cache levels share one parameter shape. */
void
addCacheParams(std::vector<AxisParam> &out, const char *level,
               std::function<CacheParams &(RunConfig &)> cache)
{
    const std::string prefix = std::string("hier.") + level + ".";
    const std::string name = level;
    out.push_back(u64Param(
        (prefix + "size").c_str(),
        (name + " capacity in bytes").c_str(),
        [cache](RunConfig &c) -> std::uint64_t & {
            return cache(c).size;
        }));
    // Sizes and associativities are power-of-two quantities: the
    // cache model requires a power-of-two set count, so "the next
    // size" means doubling, not +1 — searches must bisect these in
    // log space.
    out.back().scale = AxisScale::Pow2;
    out.push_back(unsignedParam(
        (prefix + "assoc").c_str(), (name + " associativity").c_str(),
        [cache](RunConfig &c) -> unsigned & { return cache(c).assoc; }));
    out.back().scale = AxisScale::Pow2;
    out.push_back(u64Param(
        (prefix + "latency").c_str(),
        (name + " access latency in cycles").c_str(),
        [cache](RunConfig &c) -> std::uint64_t & {
            return cache(c).latency;
        }));
    out.push_back(unsignedParam(
        (prefix + "mshrs").c_str(), (name + " MSHR count").c_str(),
        [cache](RunConfig &c) -> unsigned & { return cache(c).mshrs; }));
    out.push_back(unsignedParam(
        (prefix + "ports").c_str(), (name + " port count").c_str(),
        [cache](RunConfig &c) -> unsigned & { return cache(c).ports; }));
}

std::vector<AxisParam>
buildRegistry()
{
    std::vector<AxisParam> out;

    // Core (paper Table 1 knobs the sensitivity studies vary).
    out.push_back(unsignedParam(
        "core.rob", "reorder buffer (RUU) entries",
        [](RunConfig &c) -> unsigned & { return c.system.core.ruu_size; }));
    out.push_back(unsignedParam(
        "core.lsq", "load/store queue entries",
        [](RunConfig &c) -> unsigned & { return c.system.core.lsq_size; }));
    out.push_back(unsignedParam(
        "core.fetch_width", "instructions fetched per cycle",
        [](RunConfig &c) -> unsigned & {
            return c.system.core.fetch_width;
        }));
    out.push_back(unsignedParam(
        "core.commit_width", "instructions committed per cycle",
        [](RunConfig &c) -> unsigned & {
            return c.system.core.commit_width;
        }));
    out.push_back(fracParam(
        "core.mispredict_rate", "branch misprediction rate",
        [](RunConfig &c) -> double & {
            return c.system.core.mispredict_rate;
        }));
    out.push_back(u64Param(
        "core.mispredict_penalty", "misprediction recovery cycles",
        [](RunConfig &c) -> std::uint64_t & {
            return c.system.core.mispredict_penalty;
        }));

    // Cache hierarchy.
    addCacheParams(out, "l1d", [](RunConfig &c) -> CacheParams & {
        return c.system.hier.l1d;
    });
    addCacheParams(out, "l1i", [](RunConfig &c) -> CacheParams & {
        return c.system.hier.l1i;
    });
    addCacheParams(out, "l2", [](RunConfig &c) -> CacheParams & {
        return c.system.hier.l2;
    });

    // Memory model (Figure 8: constant-memory vs SDRAM baselines).
    {
        AxisParam p;
        p.key = "hier.memory";
        p.values = "sdram|const";
        p.what = "main-memory model (detailed SDRAM or flat latency)";
        p.apply = [](RunConfig &cfg, const std::string &v,
                     std::string *error) {
            if (v == "sdram")
                cfg.system.hier.memory = MemoryModelKind::Sdram;
            else if (v == "const")
                cfg.system.hier.memory = MemoryModelKind::ConstantLatency;
            else
                return fail(error,
                            "expected 'sdram' or 'const', got '" + v +
                                "'");
            return true;
        };
        out.push_back(std::move(p));
    }
    out.push_back(u64Param(
        "hier.const_latency", "flat memory latency in cycles",
        [](RunConfig &c) -> std::uint64_t & {
            return c.system.hier.const_latency;
        }));
    out.push_back(unsignedParam(
        "hier.sdram.banks", "SDRAM bank count",
        [](RunConfig &c) -> unsigned & {
            return c.system.hier.sdram.banks;
        }));
    out.push_back(u64Param(
        "hier.sdram.cas_latency", "SDRAM CAS latency in cycles",
        [](RunConfig &c) -> std::uint64_t & {
            return c.system.hier.sdram.cas_latency;
        }));
    out.push_back(unsignedParam(
        "hier.sdram.queue", "SDRAM controller queue entries",
        [](RunConfig &c) -> unsigned & {
            return c.system.hier.sdram.queue_entries;
        }));

    // Trace window (Figure 11: selection and scaling studies).
    {
        AxisParam p;
        p.key = "window.selection";
        p.values = "simpoint|arbitrary";
        p.what = "trace window selection mode";
        p.apply = [](RunConfig &cfg, const std::string &v,
                     std::string *error) {
            if (v == "simpoint")
                cfg.selection = TraceSelection::SimPoint;
            else if (v == "arbitrary")
                cfg.selection = TraceSelection::Arbitrary;
            else
                return fail(error,
                            "expected 'simpoint' or 'arbitrary', got '" +
                                v + "'");
            return true;
        };
        out.push_back(std::move(p));
    }
    out.push_back(u64Param(
        "window.trace_length", "SimPoint window length in instructions",
        [](RunConfig &c) -> std::uint64_t & {
            return c.scale.simpoint_trace;
        }));
    out.push_back(u64Param(
        "window.interval", "SimPoint BBV interval in instructions",
        [](RunConfig &c) -> std::uint64_t & {
            return c.scale.simpoint_interval;
        }));
    out.push_back(unsignedParam(
        "window.k", "SimPoint k-means cluster count",
        [](RunConfig &c) -> unsigned & { return c.scale.simpoint_k; }));
    out.push_back(u64Param(
        "window.skip", "arbitrary-selection skip in instructions",
        [](RunConfig &c) -> std::uint64_t & {
            return c.scale.arbitrary_skip;
        },
        0));
    out.push_back(u64Param(
        "window.length", "arbitrary-selection length in instructions",
        [](RunConfig &c) -> std::uint64_t & {
            return c.scale.arbitrary_length;
        }));

    // Mechanism options.
    out.push_back(unsignedParam(
        "mech.tcp_buffer", "TCP prefetch buffer entries",
        [](RunConfig &c) -> unsigned & { return c.mech.tcp_buffer; }));
    out.push_back(boolParam(
        "mech.second_guess", "build mechanisms from the documented "
                             "wrong guesses (Figures 2/3)",
        [](RunConfig &c) -> bool & { return c.mech.second_guess; }));

    return out;
}

/** Every registered key, comma-joined — the "useful error" payload
 *  for an unknown axis key. */
const std::string &
knownKeysLine()
{
    static const std::string line = [] {
        std::string s;
        for (const auto &p : axisRegistry()) {
            if (!s.empty())
                s += ", ";
            s += p.key;
        }
        return s;
    }();
    return line;
}

bool
knownBenchmark(const std::string &name)
{
    for (const auto &b : specBenchmarkNames())
        if (b == name)
            return true;
    for (const auto &b : extraBenchmarkNames())
        if (b == name)
            return true;
    return false;
}

bool
knownMechanism(const std::string &name)
{
    for (const auto &m : allMechanismNames())
        if (m == name)
            return true;
    return false;
}

/** Validate one key=value against the registry on a scratch config,
 *  so a bad spec fails at parse time, not mid-sweep. */
bool
checkSetting(const std::string &key, const std::string &value,
             std::string *error)
{
    const AxisParam *param = findAxisParam(key);
    if (!param)
        return fail(error, "unknown axis key '" + key +
                               "' (known keys: " + knownKeysLine() +
                               ")");
    RunConfig scratch;
    std::string why;
    if (!param->apply(scratch, value, &why))
        return fail(error, key + ": " + why);
    return true;
}

/** Split on any whitespace. */
std::vector<std::string>
tokens(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(std::move(tok));
    return out;
}

} // namespace

const std::vector<AxisParam> &
axisRegistry()
{
    static const std::vector<AxisParam> registry = buildRegistry();
    return registry;
}

const AxisParam *
findAxisParam(const std::string &key)
{
    for (const auto &p : axisRegistry())
        if (p.key == key)
            return &p;
    return nullptr;
}

SweepSpec
SweepSpec::single(std::vector<std::string> mechanisms,
                  std::vector<std::string> benchmarks,
                  const RunConfig &cfg)
{
    SweepSpec spec;
    spec._mechanisms = std::move(mechanisms);
    spec._benchmarks = std::move(benchmarks);
    spec._base_cfg = cfg;
    return spec;
}

bool
SweepSpec::addBase(const std::string &key, const std::string &value,
                   std::string *error)
{
    if (!checkSetting(key, value, error))
        return false;
    _base.push_back({key, value});
    return true;
}

bool
SweepSpec::addAxis(const std::string &key,
                   const std::vector<std::string> &values,
                   std::string *error)
{
    if (values.empty())
        return fail(error, "axis '" + key + "' has no values");
    for (const auto &a : _axes)
        if (a.key == key)
            return fail(error, "duplicate axis '" + key + "'");
    for (const auto &v : values)
        if (!checkSetting(key, v, error))
            return false;
    std::size_t count = values.size();
    for (const auto &a : _axes)
        count *= a.values.size();
    if (count > max_variants)
        return fail(error, "axis '" + key + "' expands the sweep to " +
                               std::to_string(count) +
                               " variants (limit " +
                               std::to_string(max_variants) + ")");
    _axes.push_back({key, values});
    return true;
}

bool
SweepSpec::parse(const std::string &text, SweepSpec &out,
                 std::string *error)
{
    SweepSpec spec;
    std::istringstream is(text);
    std::string raw;
    std::size_t lineno = 0;
    bool saw_header = false;

    auto lineFail = [&](const std::string &msg) {
        return fail(error,
                    "spec line " + std::to_string(lineno) + ": " + msg);
    };

    while (std::getline(is, raw)) {
        ++lineno;
        const auto hash_pos = raw.find('#');
        if (hash_pos != std::string::npos)
            raw.erase(hash_pos);
        const std::vector<std::string> tok = tokens(raw);
        if (tok.empty())
            continue;

        if (!saw_header) {
            if (tok.size() != 2 || tok[0] != "sweep-spec" ||
                tok[1] != "v" + std::to_string(sweep_hash_version))
                return lineFail("expected header 'sweep-spec v1'");
            saw_header = true;
            continue;
        }

        if (tok[0] == "bench") {
            if (tok.size() < 2)
                return lineFail("'bench' needs at least one name");
            for (std::size_t i = 1; i < tok.size(); ++i) {
                if (!knownBenchmark(tok[i]))
                    return lineFail("unknown benchmark '" + tok[i] +
                                    "'");
                spec._benchmarks.push_back(tok[i]);
            }
        } else if (tok[0] == "mech") {
            if (tok.size() < 2)
                return lineFail("'mech' needs at least one name");
            for (std::size_t i = 1; i < tok.size(); ++i) {
                if (!knownMechanism(tok[i]))
                    return lineFail("unknown mechanism '" + tok[i] +
                                    "'");
                spec._mechanisms.push_back(tok[i]);
            }
        } else if (tok[0] == "base") {
            if (tok.size() != 2)
                return lineFail("'base' wants exactly one key=value");
            const auto eq = tok[1].find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= tok[1].size())
                return lineFail("'base' wants key=value, got '" +
                                tok[1] + "'");
            std::string why;
            if (!spec.addBase(tok[1].substr(0, eq),
                              tok[1].substr(eq + 1), &why))
                return lineFail(why);
        } else if (tok[0] == "axis") {
            if (tok.size() < 3)
                return lineFail("'axis' wants a key and at least one "
                                "value");
            std::string why;
            if (!spec.addAxis(
                    tok[1],
                    std::vector<std::string>(tok.begin() + 2, tok.end()),
                    &why))
                return lineFail(why);
        } else {
            return lineFail("unknown directive '" + tok[0] +
                            "' (expected bench/mech/base/axis)");
        }
    }

    if (!saw_header)
        return fail(error, "empty spec: missing 'sweep-spec v1' header");
    if (spec._benchmarks.empty())
        return fail(error, "spec declares no benchmarks ('bench' line)");
    if (spec._mechanisms.empty())
        return fail(error, "spec declares no mechanisms ('mech' line)");

    out = std::move(spec);
    return true;
}

bool
SweepSpec::load(const std::string &path, SweepSpec &out,
                std::string *error)
{
    std::ifstream in(path);
    if (!in)
        return fail(error, "cannot read spec file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    if (!parse(text.str(), out, error)) {
        if (error)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

std::string
SweepSpec::canonicalText() const
{
    std::string out =
        "sweep-spec v" + std::to_string(sweep_hash_version) + "\n";
    out += "bench";
    for (const auto &b : _benchmarks) {
        out += ' ';
        out += b;
    }
    out += "\nmech";
    for (const auto &m : _mechanisms) {
        out += ' ';
        out += m;
    }
    out += '\n';
    for (const auto &s : _base) {
        out += "base ";
        out += s.key;
        out += '=';
        out += s.value;
        out += '\n';
    }
    for (const auto &a : _axes) {
        out += "axis ";
        out += a.key;
        for (const auto &v : a.values) {
            out += ' ';
            out += v;
        }
        out += '\n';
    }
    return out;
}

std::uint64_t
SweepSpec::hash() const
{
    Fingerprint fp;
    fp.mix(canonicalText());
    return fp.value();
}

std::size_t
SweepSpec::variantCount() const
{
    std::size_t count = 1;
    for (const auto &a : _axes)
        count *= a.values.size();
    return count;
}

std::vector<ConfigVariant>
SweepSpec::variants() const
{
    std::vector<ConfigVariant> out;
    const std::size_t total = variantCount();
    out.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        ConfigVariant v;
        // First axis slowest: decompose i with the last axis as the
        // fastest-varying digit, like nested loops in declared order.
        std::size_t rest = i;
        std::vector<std::size_t> digit(_axes.size(), 0);
        for (std::size_t a = _axes.size(); a-- > 0;) {
            digit[a] = rest % _axes[a].values.size();
            rest /= _axes[a].values.size();
        }
        for (std::size_t a = 0; a < _axes.size(); ++a) {
            v.settings.push_back(
                {_axes[a].key, _axes[a].values[digit[a]]});
            if (!v.name.empty())
                v.name += ',';
            v.name += _axes[a].key;
            v.name += '=';
            v.name += _axes[a].values[digit[a]];
        }
        if (v.name.empty())
            v.name = "base";
        out.push_back(std::move(v));
    }
    return out;
}

bool
SweepSpec::axisSlice(const std::vector<std::string> &mechanisms,
                     const std::string &axis_key,
                     const std::vector<std::string> &values,
                     SweepSpec &out, std::string *error) const
{
    if (values.empty())
        return fail(error, "axisSlice: no values for axis '" +
                               axis_key + "'");
    SweepSpec slice;
    slice._benchmarks = _benchmarks;
    slice._mechanisms = mechanisms;
    slice._base_cfg = _base_cfg;
    slice._base = _base;
    for (const auto &a : _axes) {
        if (a.key == axis_key)
            continue;
        if (!slice.addBase(a.key, a.values.front(), error))
            return false;
    }
    if (!slice.addAxis(axis_key, values, error))
        return false;
    out = std::move(slice);
    return true;
}

RunConfig
SweepSpec::resolve(const ConfigVariant &variant) const
{
    RunConfig cfg = _base_cfg;
    auto applyOne = [&](const AxisSetting &s) {
        const AxisParam *param = findAxisParam(s.key);
        if (!param)
            fatal("SweepSpec::resolve: unknown axis key '", s.key, "'");
        std::string why;
        if (!param->apply(cfg, s.value, &why))
            fatal("SweepSpec::resolve: ", s.key, "=", s.value, ": ",
                  why);
    };
    for (const auto &s : _base)
        applyOne(s);
    for (const auto &s : variant.settings)
        applyOne(s);
    return cfg;
}

Table
sensitivityTable(const SweepResult &res)
{
    if (res.matrices.empty())
        return Table("sensitivity (empty sweep)");
    const MatrixResult &first = res.matrices.front();
    const bool vs_base =
        std::find(first.mechanisms.begin(), first.mechanisms.end(),
                  "Base") != first.mechanisms.end();
    const std::size_t base_row =
        vs_base ? first.mechIndex("Base") : 0;

    // Built row by row rather than through crossTable: a cell whose
    // mean draws on any quarantined (benchmark, mechanism) result —
    // the Base row included, for speedups — has no honest number and
    // renders as FAULT instead. Cell text is otherwise identical to
    // the crossTable form (Table::num, default precision), so a
    // fault-free sweep renders byte-identically to before.
    Table t(vs_base ? "config sensitivity: mean speedup vs Base"
                    : "config sensitivity: mean IPC");
    std::vector<std::string> header;
    header.push_back("mechanism");
    header.insert(header.end(), res.variants.begin(),
                  res.variants.end());
    t.header(std::move(header));
    for (std::size_t row = 0; row < first.mechanisms.size(); ++row) {
        std::vector<std::string> cells;
        cells.push_back(first.mechanisms[row]);
        for (std::size_t v = 0; v < res.matrices.size(); ++v) {
            const MatrixResult &m = res.matrices[v];
            bool faulted = false;
            for (std::size_t b = 0; b < m.benchmarks.size(); ++b)
                if (m.faulted(row, b) ||
                    (vs_base && m.faulted(base_row, b)))
                    faulted = true;
            if (faulted) {
                cells.push_back("FAULT");
                continue;
            }
            double value = 0.0;
            if (vs_base) {
                value = m.avgSpeedup(row);
            } else {
                double sum = 0.0;
                for (std::size_t b = 0; b < m.benchmarks.size(); ++b)
                    sum += m.ipc[row][b];
                value = m.benchmarks.empty()
                            ? 0.0
                            : sum / static_cast<double>(
                                        m.benchmarks.size());
            }
            cells.push_back(Table::num(value));
        }
        t.row(std::move(cells));
    }
    return t;
}

} // namespace microlib
