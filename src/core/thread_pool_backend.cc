#include "core/thread_pool_backend.hh"

#include <chrono>
#include <deque>
#include <exception>
#include <mutex>

#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace microlib
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** A group whose trace another worker is still materializing. */
struct DeferredGroup
{
    std::size_t group = 0; ///< index into State::groups
    TraceCache::Future future;
};

} // namespace

/**
 * Shared scheduling state for one execute(). The group list follows
 * the plan's canonical order (first pending member's index), so one
 * benchmark's groups stay contiguous and its trace can be released
 * soon after its block drains. Pipelining across benchmarks still
 * happens: workers that find a trace in flight defer those groups (a
 * mutex-bump per group, no simulation work) and fall through to the
 * next benchmark's block, whose trace they materialize concurrently.
 */
struct ThreadPoolBackend::State
{
    const TaskPlan &plan;
    const ExecutionContext &ctx;
    SweepResult &res;

    /** Scheduling units, each a list of plan task indices sharing
     *  (trace slot, mechanism): the plan's lockstep groups, or one
     *  singleton per pending task when lockstep is off. Their union
     *  is exactly this process's pending tasks, in plan order. */
    std::vector<std::vector<std::size_t>> groups;
    /** Total pending member tasks (progress/ETA stay in task units,
     *  one event per member, whatever the grouping). */
    std::size_t pending_count = 0;
    /** Unfinished pending tasks per trace slot: the plan-aware trace
     *  refcount (resumed and out-of-shard tasks never count, and
     *  variants sharing a window share the slot). */
    std::vector<std::size_t> remaining;
    /** This process's per-benchmark task count and executed-so-far —
     *  progress counters in shard-local units, so a finished shard
     *  reports bench_done == bench_total for every benchmark it
     *  touched. */
    std::vector<std::size_t> bench_total;
    std::vector<std::size_t> bench_done;
    std::size_t resumed = 0;

    Clock::time_point start = Clock::now();

    std::mutex mu;
    std::size_t next = 0;              ///< cursor into `groups`
    std::deque<DeferredGroup> deferred; ///< groups awaiting their trace
    std::size_t done_count = 0;        ///< finished tasks (progress)
    std::exception_ptr error;          ///< first failure, if any

    State(const TaskPlan &p, const std::vector<char> &done_mask,
          const ExecutionContext &c, SweepResult &r,
          std::size_t resumed_count)
        : plan(p), ctx(c), res(r),
          remaining(p.pendingPerTraceSlot(done_mask, c.opts.shard)),
          bench_total(p.pendingPerBenchmark(done_mask, c.opts.shard)),
          bench_done(p.benchmarks().size(), 0), resumed(resumed_count)
    {
        if (c.opts.lockstep) {
            groups = p.lockstepGroups(done_mask, c.opts.shard);
        } else {
            // Oracle path: every task is its own unit — exactly the
            // pre-lockstep per-variant drain loop.
            for (const std::size_t i :
                 p.pendingTasks(done_mask, c.opts.shard))
                groups.push_back({i});
        }
        for (const auto &g : groups)
            pending_count += g.size();
    }
};

void
ThreadPoolBackend::drain(State &st)
{
    ExperimentEngine &engine = st.ctx.engine;
    TraceCache &cache = engine.cache();
    const EngineOptions &opts = st.ctx.opts;

    for (;;) {
        std::size_t gi = 0;
        TraceCache::Future deferred_fut;
        bool have = false;
        bool must_wait = false;
        {
            std::unique_lock<std::mutex> lock(st.mu);
            if (st.error)
                return; // a sibling failed: stop picking up work
            // Deferred groups whose trace has landed come first:
            // their benchmark is fully paid for.
            for (auto it = st.deferred.begin();
                 it != st.deferred.end(); ++it) {
                if (it->future.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                    gi = it->group;
                    deferred_fut = it->future;
                    st.deferred.erase(it);
                    have = true;
                    must_wait = true;
                    break;
                }
            }
            if (!have && st.next < st.groups.size()) {
                gi = st.next++;
                have = true;
            }
            if (!have && !st.deferred.empty()) {
                // Nothing else to steal: block on a pending trace.
                gi = st.deferred.front().group;
                deferred_fut = st.deferred.front().future;
                st.deferred.pop_front();
                have = true;
                must_wait = true;
            }
            if (!have)
                return;
        }

        // Every member of a group shares (benchmark, window, mech):
        // one trace claim, one simulation pass, per-member results.
        const std::vector<std::size_t> &group = st.groups[gi];
        const PlanTask &first = st.plan.task(group.front());
        const std::size_t slot = st.plan.traceSlot(group.front());
        const std::string &key = st.plan.slotKey(slot);
        const std::string &benchmark = st.plan.benchmarks()[first.b];
        const std::string &mechanism = st.plan.mechanisms()[first.m];
        TraceCache::TracePtr trace;
        if (must_wait) {
            // Deferred groups keep the future from their original
            // claim: even if the owner failed and the cache entry
            // was dropped for retry, this surfaces that error
            // instead of panicking on a missing key.
            trace = deferred_fut.get();
        } else {
            TraceCache::Future fut;
            switch (cache.claim(key, fut)) {
              case TraceCache::Claim::Owner: {
                TraceOrigin origin = TraceOrigin::Generated;
                trace = ExperimentEngine::materializeInto(
                    cache, key, benchmark, st.plan.config(first.v),
                    &origin);
                // One event per owner-side materialization: a fully
                // warm arena run contains zero src=gen trace events
                // (the cold-vs-warm CI smoke greps for exactly that).
                if (st.ctx.progress)
                    st.ctx.progress->write(
                        ProgressEvent("trace")
                            .field("bench", benchmark)
                            .field("src",
                                   origin == TraceOrigin::Mapped
                                       ? "arena"
                                       : "gen")
                            .field("elapsed_s",
                                   secondsSince(st.start)));
                break;
              }
              case TraceCache::Claim::Ready:
                trace = fut.get();
                break;
              case TraceCache::Claim::Pending:
                // Someone else is materializing: steal unrelated
                // work instead of idling on the future.
                std::unique_lock<std::mutex> lock(st.mu);
                st.deferred.push_back({gi, std::move(fut)});
                continue;
            }
        }

        // Liveness + fault injection, per member, before any
        // simulation work: the heartbeat names the flat task index
        // about to run (flushed per line), so if this process now
        // dies or wedges — for real or because an armed FaultClause
        // fires at exactly this index — a supervising parent's last
        // heartbeat blames the right task.
        FaultInjector &injector = FaultInjector::instance();
        for (const std::size_t flat : group) {
            if (st.ctx.progress)
                st.ctx.progress->write(
                    ProgressEvent("heartbeat")
                        .field("task", st.plan.task(flat).index)
                        .field("bench", benchmark)
                        .field("mech", mechanism)
                        .field("elapsed_s", secondsSince(st.start)));
            if (injector.armed())
                injector.checkpoint(st.plan.task(flat).index);
        }

        // Simulate: one lockstep pass over the shared trace for a
        // multi-variant group, the classic single run otherwise.
        std::vector<RunOutput> outs;
        if (group.size() == 1) {
            outs.push_back(runOne(*trace, mechanism,
                                  st.plan.config(first.v)));
        } else {
            std::vector<const RunConfig *> cfgs;
            cfgs.reserve(group.size());
            for (const std::size_t flat : group)
                cfgs.push_back(&st.plan.config(st.plan.task(flat).v));
            outs = runLockstep(*trace, mechanism, cfgs);
        }

        // The member variant list, carried by each member's progress
        // event so stream consumers can attribute lockstep batches.
        std::string members;
        if (group.size() > 1) {
            for (const std::size_t flat : group) {
                if (!members.empty())
                    members += ',';
                members += st.plan.variantName(st.plan.task(flat).v);
            }
        }

        for (std::size_t g = 0; g < group.size(); ++g) {
            const std::size_t flat = group[g];
            const PlanTask &task = st.plan.task(flat);
            RunOutput &out = outs[g];
            if (opts.store) {
                // Persist before publishing: a sweep killed after
                // this point resumes past this run. put() flushes, so
                // the record survives even an abrupt exit.
                opts.store->put(
                    makeRecord(st.plan.resultKey(flat), out));
            }
            // Each task owns its (m, b, v) slot exclusively: no lock
            // needed, and the result is identical for any worker
            // count.
            MatrixResult &matrix = st.res.matrix(task.v);
            matrix.ipc[task.m][task.b] = out.core.ipc;
            matrix.outputs[task.m][task.b] = std::move(out);

            std::size_t done_now = 0;
            std::size_t bench_done_now = 0;
            bool last_of_slot = false;
            {
                std::unique_lock<std::mutex> lock(st.mu);
                done_now = ++st.done_count;
                bench_done_now = ++st.bench_done[task.b];
                last_of_slot = --st.remaining[slot] == 0;
            }
            if (last_of_slot) {
                // No pending task references this trace anymore:
                // release it for byte-budget eviction, or drop it
                // outright in one-shot (keep_traces=false) mode.
                cache.unpin(key);
                if (!opts.keep_traces)
                    cache.evict(key);
            }
            if (st.ctx.progress) {
                const double elapsed = secondsSince(st.start);
                const double eta =
                    elapsed *
                    static_cast<double>(st.pending_count - done_now) /
                    static_cast<double>(done_now);
                // All counters are in this process's task units (its
                // shard's pending tasks, one event per member), so a
                // finished shard always reports done == pending and
                // bench_done == bench_total whatever the grouping.
                ProgressEvent ev("run");
                ev.field("bench", benchmark)
                    .field("mech", mechanism)
                    .field("variant", st.plan.variantName(task.v));
                if (!members.empty())
                    ev.field("group", members);
                ev.field("task", task.index)
                    .field("bench_done", bench_done_now)
                    .field("bench_total", st.bench_total[task.b])
                    .field("done", done_now)
                    .field("pending", st.pending_count)
                    .field("resumed", st.resumed)
                    .field("total", st.plan.size())
                    .field("elapsed_s", elapsed)
                    .field("eta_s", eta);
                st.ctx.progress->write(ev);
                if (bench_done_now == st.bench_total[task.b])
                    st.ctx.progress->write(
                        ProgressEvent("bench")
                            .field("bench", benchmark)
                            .field("done", bench_done_now)
                            .field("total", st.bench_total[task.b])
                            .field("elapsed_s", elapsed));
            }
            if (opts.verbose)
                inform("[", done_now + st.resumed, "/",
                       st.plan.size(), "] ", benchmark, " / ",
                       mechanism,
                       st.plan.variantCount() > 1
                           ? " / " + st.plan.variantName(task.v)
                           : "",
                       ": IPC ", matrix.ipc[task.m][task.b]);
        }
    }
}

void
ThreadPoolBackend::execute(const TaskPlan &plan,
                           const std::vector<char> &done,
                           const ExecutionContext &ctx,
                           SweepResult &res, RunCounters &counters)
{
    // (Re)arm fault injection from the environment every execute():
    // a forked shard worker inherits the parent's (possibly inert)
    // singleton, and the worker may also carry a different
    // MICROLIB_FAULT_STATE than its parent did.
    FaultInjector::instance().armFromEnv();

    State st(plan, done, ctx, res, counters.resumed);
    // Skipped-by-shard = pending anywhere minus pending here.
    counters.skipped =
        plan.pendingTasks(done, ShardSpec{}).size() - st.pending_count;

    TraceCache &cache = ctx.engine.cache();
    // Pin every trace slot this process will materialize: the byte
    // budget may evict only traces the remaining plan no longer
    // references. Balanced by unpin in drain() (last task of the
    // slot) or by the sweep below on the error path.
    std::vector<char> pinned(plan.traceSlotCount(), 0);
    for (std::size_t s = 0; s < plan.traceSlotCount(); ++s) {
        if (st.remaining[s] > 0) {
            cache.pin(plan.slotKey(s));
            pinned[s] = 1;
        }
    }

    // Failures are captured, never thrown across the pool: every
    // worker must come home before State leaves scope.
    auto guarded = [this, &st] {
        try {
            drain(st);
        } catch (...) {
            std::unique_lock<std::mutex> lock(st.mu);
            if (!st.error)
                st.error = std::current_exception();
        }
    };
    ThreadPool &pool = ctx.engine.pool();
    for (unsigned t = 0; t < pool.size(); ++t)
        pool.submit(guarded);
    guarded(); // the calling thread is worker zero
    pool.wait();

    // Error path: slots whose tasks never all finished still hold
    // their pin; release them so the cache budget stays honest.
    {
        std::unique_lock<std::mutex> lock(st.mu);
        for (std::size_t s = 0; s < plan.traceSlotCount(); ++s)
            if (pinned[s] && st.remaining[s] > 0)
                cache.unpin(plan.slotKey(s));
    }

    counters.executed = st.done_count;
    if (st.error)
        std::rethrow_exception(st.error);
}

} // namespace microlib
