/**
 * @file
 * Experiment engine: the run matrix behind every figure and table.
 *
 * A run = (benchmark trace window) x (mechanism) x (system config).
 * Each benchmark's trace window is materialized once and shared by
 * all mechanisms, so comparisons see bit-identical inputs — the
 * methodological discipline the paper argues for.
 */

#ifndef MICROLIB_CORE_EXPERIMENT_HH
#define MICROLIB_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/baseline_config.hh"
#include "core/mechanism.hh"
#include "core/registry.hh"
#include "cpu/ooo_core.hh"
#include "trace/window.hh"

namespace microlib
{

/** Which slice of a benchmark is simulated (Figure 11). */
enum class TraceSelection
{
    SimPoint,  ///< BBV + k-means chosen representative window
    Arbitrary, ///< "skip N, simulate M"
};

/** Configuration of one experiment run. */
struct RunConfig
{
    BaselineConfig system = makeBaseline();
    TraceSelection selection = TraceSelection::SimPoint;
    TraceScale scale = makeTraceScale();
    MechanismConfig mech;
};

/** Outcome of one run. */
struct RunOutput
{
    std::string benchmark;
    std::string mechanism;
    CoreResult core;
    std::map<std::string, double> stats; ///< full StatSet snapshot
    std::vector<SramSpec> hardware;      ///< mechanism structures

    double ipc() const { return core.ipc; }
    double stat(const std::string &name) const;
};

/** The trace window for @p benchmark under @p cfg; SimPoint choices
 *  are cached per (benchmark, scale) within the process. */
MaterializedTrace materializeFor(const std::string &benchmark,
                                 const RunConfig &cfg);

/** Run one mechanism over an already materialized trace. */
RunOutput runOne(const MaterializedTrace &trace,
                 const std::string &mechanism, const RunConfig &cfg);

/** IPCs (and outputs) for mechanisms x benchmarks. */
struct MatrixResult
{
    std::vector<std::string> mechanisms;
    std::vector<std::string> benchmarks;
    /** ipc[m][b] indexed like the name vectors. */
    std::vector<std::vector<double>> ipc;
    std::vector<std::vector<RunOutput>> outputs;

    std::size_t mechIndex(const std::string &name) const;
    std::size_t benchIndex(const std::string &name) const;

    /** Speedup of mechanism @p m on benchmark @p b vs "Base". */
    double speedup(std::size_t m, std::size_t b) const;

    /** Arithmetic mean speedup of mechanism @p m over a benchmark
     *  subset (empty = all). */
    double avgSpeedup(std::size_t m,
                      const std::vector<std::size_t> &subset = {}) const;
};

/**
 * Run the full matrix. Benchmarks iterate outermost so each trace is
 * materialized exactly once.
 *
 * @param mechanisms mechanism acronyms; must include "Base" for
 *        speedup computation
 * @param benchmarks benchmark names
 * @param cfg shared run configuration
 * @param verbose print per-run progress
 */
MatrixResult runMatrix(const std::vector<std::string> &mechanisms,
                       const std::vector<std::string> &benchmarks,
                       const RunConfig &cfg, bool verbose = false);

} // namespace microlib

#endif // MICROLIB_CORE_EXPERIMENT_HH
