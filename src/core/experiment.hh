/**
 * @file
 * Experiment engine: the run matrix behind every figure and table.
 *
 * A run = (benchmark trace window) x (mechanism) x (system config).
 * Each benchmark's trace window is materialized once and shared by
 * all mechanisms, so comparisons see bit-identical inputs — the
 * methodological discipline the paper argues for.
 */

#ifndef MICROLIB_CORE_EXPERIMENT_HH
#define MICROLIB_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/baseline_config.hh"
#include "core/mechanism.hh"
#include "core/registry.hh"
#include "cpu/ooo_core.hh"
#include "trace/window.hh"

namespace microlib
{

/** Which slice of a benchmark is simulated (Figure 11). */
enum class TraceSelection
{
    SimPoint,  ///< BBV + k-means chosen representative window
    Arbitrary, ///< "skip N, simulate M"
};

/** Configuration of one experiment run. */
struct RunConfig
{
    BaselineConfig system = makeBaseline();
    TraceSelection selection = TraceSelection::SimPoint;
    TraceScale scale = makeTraceScale();
    MechanismConfig mech;
};

/** Outcome of one run. */
struct RunOutput
{
    std::string benchmark;
    std::string mechanism;
    CoreResult core;
    std::map<std::string, double> stats; ///< full StatSet snapshot
    std::vector<SramSpec> hardware;      ///< mechanism structures

    double ipc() const { return core.ipc; }
    double stat(const std::string &name) const;
};

/**
 * Canonical string describing the trace window @p cfg selects — the
 * selection mode plus every scale field that shapes the window, but
 * not the benchmark. ExperimentEngine::traceKey() appends this to
 * the benchmark name to key the trace cache, and the result store
 * mixes it into the config fingerprint, so "same window" means
 * exactly one thing across both subsystems. Deliberately built from
 * the raw scale parameters, not the resolved SimPoint choice:
 * computing the key must never trigger BBV profiling.
 */
std::string windowKey(const RunConfig &cfg);

/**
 * The trace window for @p benchmark under @p cfg, materialized fresh
 * on every call; SimPoint choices are cached per (benchmark, scale)
 * in the process-wide TraceCache, so the lookup is thread-safe.
 *
 * Prefer ExperimentEngine::trace(), which also caches and shares the
 * materialized records; this standalone fallback is kept for code
 * that wants an owned copy.
 */
MaterializedTrace materializeFor(const std::string &benchmark,
                                 const RunConfig &cfg);

/** Run one mechanism over an already materialized trace. */
RunOutput runOne(const MaterializedTrace &trace,
                 const std::string &mechanism, const RunConfig &cfg);

/**
 * Run V config variants of @p mechanism over @p trace in lockstep:
 * one SoA trace pass, V independent (hierarchy, mechanism, core)
 * instances advanced per block (cpu/lockstep.hh). Outputs are in
 * @p cfgs order and bit-identical — every CoreResult and stat — to V
 * separate runOne() calls; the per-variant path is the oracle
 * (tests/test_lockstep.cc). The configs may differ in anything that
 * leaves the trace window untouched (callers group by trace slot).
 */
std::vector<RunOutput>
runLockstep(const MaterializedTrace &trace, const std::string &mechanism,
            const std::vector<const RunConfig *> &cfgs);

/** IPCs (and outputs) for mechanisms x benchmarks. */
struct MatrixResult
{
    std::vector<std::string> mechanisms;
    std::vector<std::string> benchmarks;
    /** ipc[m][b] indexed like the name vectors. */
    std::vector<std::vector<double>> ipc;
    std::vector<std::vector<RunOutput>> outputs;
    /** fault[m][b] != 0 marks a quarantined cell: the task repeatedly
     *  crashed or wedged its worker and was excluded by supervision,
     *  so ipc/outputs hold no result there. Reports render such
     *  cells as FAULT; numeric consumers must skip them. Empty (not
     *  just zero) when the matrix predates supervision. */
    std::vector<std::vector<char>> fault;

    /**
     * Rebuild the name -> index maps behind mechIndex()/benchIndex()
     * from the current name vectors. The engine and the bench cache
     * loader call this; call it yourself after assembling a
     * MatrixResult by hand if you query indices in a hot loop (the
     * lookups fall back to a linear scan otherwise).
     */
    void buildIndices();

    std::size_t mechIndex(const std::string &name) const;
    std::size_t benchIndex(const std::string &name) const;

    /** Whether cell (@p m, @p b) was quarantined (see `fault`). */
    bool faulted(std::size_t m, std::size_t b) const
    {
        return !fault.empty() && fault[m][b] != 0;
    }

    /** Speedup of mechanism @p m on benchmark @p b vs "Base". */
    double speedup(std::size_t m, std::size_t b) const;

    /** Arithmetic mean speedup of mechanism @p m over a benchmark
     *  subset (empty = all). */
    double avgSpeedup(std::size_t m,
                      const std::vector<std::size_t> &subset = {}) const;

  private:
    /** Prebuilt lookups; empty until buildIndices() runs. */
    std::unordered_map<std::string, std::size_t> _mech_index;
    std::unordered_map<std::string, std::size_t> _bench_index;
};

/**
 * Run the full matrix: a thin compatibility wrapper that builds a
 * one-shot ExperimentEngine (see core/scheduler.hh), runs every
 * (benchmark, mechanism) pair on its persistent worker pool, and
 * drops each trace once its runs complete. Each trace is still
 * materialized exactly once, and the result is bit-identical for any
 * MICROLIB_THREADS value. Long-lived callers running several
 * matrices should hold an ExperimentEngine instead and reuse its
 * trace cache.
 *
 * @param mechanisms mechanism acronyms; must include "Base" for
 *        speedup computation
 * @param benchmarks benchmark names
 * @param cfg shared run configuration
 * @param verbose print per-run progress
 */
MatrixResult runMatrix(const std::vector<std::string> &mechanisms,
                       const std::vector<std::string> &benchmarks,
                       const RunConfig &cfg, bool verbose = false);

} // namespace microlib

#endif // MICROLIB_CORE_EXPERIMENT_HH
