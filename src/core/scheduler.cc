#include "core/scheduler.hh"

#include <chrono>
#include <deque>
#include <exception>
#include <mutex>

#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib
{

namespace
{

/** One cell of the matrix: mechanism index x benchmark index. */
struct RunTask
{
    std::size_t m = 0;
    std::size_t b = 0;
};

} // namespace

/** A run whose trace another worker is still materializing. */
struct DeferredRun
{
    RunTask task;
    TraceCache::Future future;
};

/**
 * Shared scheduling state for one run(). The task list is the flat
 * enumeration of the matrix with benchmark varying slowest, so one
 * benchmark's runs are contiguous and its trace can be evicted soon
 * after its block drains (the keep_traces=false memory profile).
 * Pipelining across benchmarks still happens: workers that find a
 * trace in flight defer those runs (a mutex-bump per task, no
 * simulation work) and fall through to the next benchmark's block,
 * whose trace they materialize concurrently.
 */
struct ExperimentEngine::State
{
    const std::vector<std::string> &mechanisms;
    const std::vector<std::string> &benchmarks;
    const RunConfig &cfg;
    MatrixResult &res;

    std::vector<std::string> keys;       ///< trace key per benchmark
    std::vector<std::size_t> remaining;  ///< unfinished runs per benchmark

    std::mutex mu;
    std::size_t next = 0;                ///< cursor into the flat order
    std::deque<DeferredRun> deferred;    ///< runs awaiting their trace
    std::size_t done = 0;                ///< finished runs (progress)
    std::exception_ptr error;            ///< first failure, if any

    State(const std::vector<std::string> &mechs,
          const std::vector<std::string> &benchs, const RunConfig &c,
          MatrixResult &r)
        : mechanisms(mechs), benchmarks(benchs), cfg(c), res(r),
          remaining(benchs.size(), mechs.size())
    {
        keys.reserve(benchs.size());
        for (const auto &b : benchs)
            keys.push_back(traceKey(b, c));
    }

    std::size_t total() const
    {
        return mechanisms.size() * benchmarks.size();
    }

    RunTask decode(std::size_t flat) const
    {
        return {flat % mechanisms.size(), flat / mechanisms.size()};
    }
};

ExperimentEngine::ExperimentEngine(EngineOptions opts)
    : _opts(opts),
      _pool((opts.threads ? opts.threads
                          : ThreadPool::defaultThreadCount()) - 1)
{
}

ExperimentEngine::~ExperimentEngine() = default;

std::string
ExperimentEngine::traceKey(const std::string &benchmark,
                           const RunConfig &cfg)
{
    std::string key = benchmark;
    key += '\0';
    if (cfg.selection == TraceSelection::SimPoint) {
        key += "sp";
        key += '\0';
        key += std::to_string(cfg.scale.simpoint_interval);
        key += '\0';
        key += std::to_string(cfg.scale.simpoint_k);
        key += '\0';
        key += std::to_string(cfg.scale.simpoint_trace);
    } else {
        key += "arb";
        key += '\0';
        key += std::to_string(cfg.scale.arbitrary_skip);
        key += '\0';
        key += std::to_string(cfg.scale.arbitrary_length);
    }
    return key;
}

std::shared_ptr<const MaterializedTrace>
ExperimentEngine::materializeInto(const std::string &key,
                                  const std::string &benchmark,
                                  const RunConfig &cfg)
{
    try {
        TraceWindow window;
        if (cfg.selection == TraceSelection::SimPoint) {
            // The process-wide cache, not the engine's: SimPoint
            // choices are pure (benchmark, interval, k) functions and
            // expensive, so one-shot engines (runMatrix) must not
            // recompute what an earlier call already profiled.
            const SimPointChoice sp = TraceCache::process().simPoint(
                benchmark, cfg.scale.simpoint_interval,
                cfg.scale.simpoint_k);
            window.skip = sp.start_instruction;
            window.length = cfg.scale.simpoint_trace;
        } else {
            window.skip = cfg.scale.arbitrary_skip;
            window.length = cfg.scale.arbitrary_length;
        }
        _cache.fulfill(key,
                       materialize(specProgram(benchmark), window));
    } catch (...) {
        _cache.fail(key, std::current_exception());
        throw;
    }
    return _cache.wait(key);
}

std::shared_ptr<const MaterializedTrace>
ExperimentEngine::trace(const std::string &benchmark,
                        const RunConfig &cfg)
{
    const std::string key = traceKey(benchmark, cfg);
    TraceCache::Future fut;
    if (_cache.claim(key, fut) == TraceCache::Claim::Owner)
        return materializeInto(key, benchmark, cfg);
    return fut.get();
}

void
ExperimentEngine::drain(State &st)
{
    for (;;) {
        RunTask task;
        TraceCache::Future deferred_fut;
        bool have = false;
        bool must_wait = false;
        {
            std::unique_lock<std::mutex> lock(st.mu);
            if (st.error)
                return; // a sibling failed: stop picking up work
            // Deferred runs whose trace has landed come first: their
            // benchmark is fully paid for.
            for (auto it = st.deferred.begin();
                 it != st.deferred.end(); ++it) {
                if (it->future.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                    task = it->task;
                    deferred_fut = it->future;
                    st.deferred.erase(it);
                    have = true;
                    must_wait = true;
                    break;
                }
            }
            if (!have && st.next < st.total()) {
                task = st.decode(st.next++);
                have = true;
            }
            if (!have && !st.deferred.empty()) {
                // Nothing else to steal: block on a pending trace.
                task = st.deferred.front().task;
                deferred_fut = st.deferred.front().future;
                st.deferred.pop_front();
                have = true;
                must_wait = true;
            }
            if (!have)
                return;
        }

        const std::string &key = st.keys[task.b];
        TraceCache::TracePtr trace;
        if (must_wait) {
            // Deferred runs keep the future from their original
            // claim: even if the owner failed and the cache entry
            // was dropped for retry, this surfaces that error
            // instead of panicking on a missing key.
            trace = deferred_fut.get();
        } else {
            TraceCache::Future fut;
            switch (_cache.claim(key, fut)) {
              case TraceCache::Claim::Owner:
                trace = materializeInto(key, st.benchmarks[task.b],
                                        st.cfg);
                break;
              case TraceCache::Claim::Ready:
                trace = fut.get();
                break;
              case TraceCache::Claim::Pending:
                // Someone else is materializing: steal unrelated
                // work instead of idling on the future.
                std::unique_lock<std::mutex> lock(st.mu);
                st.deferred.push_back({task, std::move(fut)});
                continue;
            }
        }

        RunOutput out = runOne(*trace, st.mechanisms[task.m], st.cfg);
        // Each task owns its (m, b) slot exclusively: no lock needed,
        // and the matrix is identical for any worker count.
        st.res.ipc[task.m][task.b] = out.core.ipc;
        st.res.outputs[task.m][task.b] = std::move(out);

        std::size_t done_now = 0;
        bool evict = false;
        {
            std::unique_lock<std::mutex> lock(st.mu);
            done_now = ++st.done;
            if (--st.remaining[task.b] == 0 && !_opts.keep_traces)
                evict = true;
        }
        if (evict)
            _cache.evict(key);
        if (_opts.verbose)
            inform("[", done_now, "/", st.total(), "] ",
                   st.benchmarks[task.b], " / ",
                   st.mechanisms[task.m], ": IPC ",
                   st.res.ipc[task.m][task.b]);
    }
}

MatrixResult
ExperimentEngine::run(const std::vector<std::string> &mechanisms,
                      const std::vector<std::string> &benchmarks,
                      const RunConfig &cfg)
{
    MatrixResult res;
    res.mechanisms = mechanisms;
    res.benchmarks = benchmarks;
    res.ipc.assign(mechanisms.size(),
                   std::vector<double>(benchmarks.size(), 0.0));
    res.outputs.assign(mechanisms.size(),
                       std::vector<RunOutput>(benchmarks.size()));
    res.buildIndices();
    if (mechanisms.empty() || benchmarks.empty())
        return res;

    State st(mechanisms, benchmarks, cfg, res);
    // Failures are captured, never thrown across the pool: every
    // worker must come home before State leaves scope.
    auto guarded = [this, &st] {
        try {
            drain(st);
        } catch (...) {
            std::unique_lock<std::mutex> lock(st.mu);
            if (!st.error)
                st.error = std::current_exception();
        }
    };
    for (unsigned t = 0; t < _pool.size(); ++t)
        _pool.submit(guarded);
    guarded(); // the calling thread is worker zero
    _pool.wait();
    if (st.error)
        std::rethrow_exception(st.error);
    return res;
}

} // namespace microlib
