#include "core/scheduler.hh"

#include <cstdlib>

#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/thread_pool_backend.hh"
#include "sim/logging.hh"
#include "trace/spec_suite.hh"
#include "trace/trace_arena.hh"

namespace microlib
{

namespace
{

/** Effective trace-cache budget: the explicit option, else the
 *  MICROLIB_TRACE_BUDGET_MB environment knob, else unlimited. */
std::size_t
resolveTraceBudget(const EngineOptions &opts)
{
    if (opts.trace_budget_bytes)
        return opts.trace_budget_bytes;
    const char *env = std::getenv("MICROLIB_TRACE_BUDGET_MB");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
        warn("ignoring malformed MICROLIB_TRACE_BUDGET_MB=", env);
        return 0;
    }
    return static_cast<std::size_t>(mb) * 1024 * 1024;
}

/** Effective arena directory: the explicit option, else the
 *  MICROLIB_TRACE_DIR environment knob, else none. */
std::string
resolveTraceDir(const EngineOptions &opts)
{
    if (!opts.trace_dir.empty())
        return opts.trace_dir;
    const char *env = std::getenv("MICROLIB_TRACE_DIR");
    return (env && *env) ? std::string(env) : std::string();
}

/** Effective lockstep toggle: MICROLIB_LOCKSTEP (0/1) wins over the
 *  option, so CLI runs can flip the path without a flag. */
bool
resolveLockstep(const EngineOptions &opts)
{
    const char *env = std::getenv("MICROLIB_LOCKSTEP");
    if (!env || !*env)
        return opts.lockstep;
    const std::string v(env);
    if (v == "0")
        return false;
    if (v == "1")
        return true;
    warn("ignoring malformed MICROLIB_LOCKSTEP=", v, " (want 0 or 1)");
    return opts.lockstep;
}

} // namespace

ExperimentEngine::ExperimentEngine(EngineOptions opts)
    : _opts(opts),
      _pool((opts.threads ? opts.threads
                          : ThreadPool::defaultThreadCount()) - 1)
{
    if (_opts.shard.count == 0)
        fatal("EngineOptions::shard.count must be >= 1");
    if (_opts.shard.index >= _opts.shard.count)
        fatal("EngineOptions::shard.index ", _opts.shard.index,
              " out of range for ", _opts.shard.count, " shard(s)");
    _opts.lockstep = resolveLockstep(opts);
    _cache.setByteBudget(resolveTraceBudget(_opts));
    _opts.trace_dir = resolveTraceDir(opts);
    if (!_opts.trace_dir.empty())
        _cache.setArena(
            std::make_shared<TraceArena>(_opts.trace_dir));
}

ExperimentEngine::~ExperimentEngine() = default;

std::string
ExperimentEngine::traceKey(const std::string &benchmark,
                           const RunConfig &cfg)
{
    return traceCacheKey(benchmark, cfg);
}

std::shared_ptr<const MaterializedTrace>
ExperimentEngine::materializeInto(TraceCache &cache,
                                  const std::string &key,
                                  const std::string &benchmark,
                                  const RunConfig &cfg,
                                  TraceOrigin *origin)
{
    if (origin)
        *origin = TraceOrigin::Generated;
    try {
        // Tier 2 first: an arena hit carries its resolved window, so
        // it skips SimPoint BBV profiling along with generation.
        const std::shared_ptr<TraceArena> arena = cache.arena();
        if (arena) {
            if (auto mapped = arena->tryLoad(key)) {
                if (origin)
                    *origin = TraceOrigin::Mapped;
                return cache.fulfill(key, std::move(*mapped));
            }
        }
        TraceWindow window;
        if (cfg.selection == TraceSelection::SimPoint) {
            // The process-wide cache, not the engine's: SimPoint
            // choices are pure (benchmark, interval, k) functions and
            // expensive, so one-shot engines (runMatrix) must not
            // recompute what an earlier call already profiled.
            const SimPointChoice sp = TraceCache::process().simPoint(
                benchmark, cfg.scale.simpoint_interval,
                cfg.scale.simpoint_k);
            window.skip = sp.start_instruction;
            window.length = cfg.scale.simpoint_trace;
        } else {
            window.skip = cfg.scale.arbitrary_skip;
            window.length = cfg.scale.arbitrary_length;
        }
        MaterializedTrace trace =
            materialize(specProgram(benchmark), window);
        if (arena && arena->publish(key, trace)) {
            // Swap the heap copy for a mapping of the file we just
            // published: frees ~all of the trace's owned bytes and
            // joins the directory-wide shared page-cache copy. Still
            // src=gen — this process paid for the generation.
            if (auto mapped = arena->tryLoad(key))
                return cache.fulfill(key, std::move(*mapped));
        }
        // Return fulfill()'s own pointer: under a byte budget the
        // entry can be evicted the moment it lands, so re-looking
        // the key up (wait()) could panic on an unclaimed key.
        return cache.fulfill(key, std::move(trace));
    } catch (...) {
        cache.fail(key, std::current_exception());
        throw;
    }
}

std::shared_ptr<const MaterializedTrace>
ExperimentEngine::trace(const std::string &benchmark,
                        const RunConfig &cfg)
{
    const std::string key = traceKey(benchmark, cfg);
    TraceCache::Future fut;
    if (_cache.claim(key, fut) == TraceCache::Claim::Owner)
        return materializeInto(_cache, key, benchmark, cfg);
    return fut.get();
}

SweepResult
ExperimentEngine::run(const SweepSpec &spec)
{
    return runPlan(TaskPlan(spec));
}

MatrixResult
ExperimentEngine::run(const std::vector<std::string> &mechanisms,
                      const std::vector<std::string> &benchmarks,
                      const RunConfig &cfg)
{
    SweepResult res =
        runPlan(TaskPlan(mechanisms, benchmarks, cfg));
    return std::move(res.matrices.front());
}

SweepResult
ExperimentEngine::runPlan(const TaskPlan &plan)
{
    _last = RunCounters{};
    SweepResult res = plan.emptyResult();
    if (plan.empty())
        return res;

    // Resume pass (plan logic): pre-fill every slot whose
    // fingerprint already has a record, shard membership
    // notwithstanding — a resumed slot is free no matter who ran it.
    // A benchmark whose tasks all resume is never materialized.
    std::vector<char> done(plan.size(), 0);
    if (_opts.store) {
        _last.resumed = plan.prefill(*_opts.store, res, done);
        if (_opts.verbose && _last.resumed)
            inform("resumed ", _last.resumed, "/", plan.size(),
                   " runs from ", _opts.store->path().empty()
                                      ? "<memory store>"
                                      : _opts.store->path());
    }

    ProgressWriter progress(_opts.progress_path);
    const ExecutionContext ctx{*this, _opts,
                               progress.enabled() ? &progress
                                                  : nullptr};
    ThreadPoolBackend builtin;
    ExecutionBackend *backend =
        _opts.backend ? _opts.backend : &builtin;

    if (progress.enabled()) {
        const std::size_t pending =
            plan.pendingTasks(done, _opts.shard).size();
        progress.write(ProgressEvent("plan")
                           .field("backend", backend->name())
                           .field("lockstep",
                                  static_cast<std::uint64_t>(
                                      _opts.lockstep ? 1 : 0))
                           .field("shard", _opts.shard.str())
                           .field("total", plan.size())
                           .field("pending", pending)
                           .field("resumed", _last.resumed)
                           .field("benchmarks",
                                  plan.benchmarks().size())
                           .field("mechanisms",
                                  plan.mechanisms().size())
                           .field("variants", plan.variantCount()));
    }

    backend->execute(plan, done, ctx, res, _last);
    // Cumulative unreadable-line count across this store's loads and
    // merges — the durability telemetry behind the checksum field.
    if (_opts.store)
        _last.store_skipped = _opts.store->unreadable();

    if (progress.enabled())
        progress.write(ProgressEvent("done")
                           .field("backend", backend->name())
                           .field("shard", _opts.shard.str())
                           .field("executed", _last.executed)
                           .field("resumed", _last.resumed)
                           .field("skipped", _last.skipped)
                           .field("quarantined",
                                  _last.quarantined.size())
                           .field("store_skipped",
                                  _last.store_skipped));
    return res;
}

} // namespace microlib
