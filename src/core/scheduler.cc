#include "core/scheduler.hh"

#include <chrono>
#include <deque>
#include <exception>
#include <mutex>

#include "core/result_store.hh"
#include "sim/logging.hh"
#include "trace/spec_suite.hh"

namespace microlib
{

namespace
{

/** One cell of the matrix: mechanism index x benchmark index. */
struct RunTask
{
    std::size_t m = 0;
    std::size_t b = 0;
};

} // namespace

/** A run whose trace another worker is still materializing. */
struct DeferredRun
{
    RunTask task;
    TraceCache::Future future;
};

/**
 * Shared scheduling state for one run(). The task list is the flat
 * enumeration of the matrix with benchmark varying slowest, so one
 * benchmark's runs are contiguous and its trace can be evicted soon
 * after its block drains (the keep_traces=false memory profile).
 * Pipelining across benchmarks still happens: workers that find a
 * trace in flight defer those runs (a mutex-bump per task, no
 * simulation work) and fall through to the next benchmark's block,
 * whose trace they materialize concurrently.
 */
struct ExperimentEngine::State
{
    const std::vector<std::string> &mechanisms;
    const std::vector<std::string> &benchmarks;
    const RunConfig &cfg;
    MatrixResult &res;

    std::vector<std::string> keys;       ///< trace key per benchmark
    std::vector<std::size_t> remaining;  ///< unfinished runs per benchmark

    /** Per-flat-index resume flags: tasks whose result the store
     *  already held were pre-filled by run() and are never picked
     *  up by a worker. */
    std::vector<char> skip;
    std::size_t resumed = 0;             ///< pre-filled task count
    std::uint64_t config_hash = 0;       ///< fingerprintConfig(cfg)

    std::mutex mu;
    std::size_t next = 0;                ///< cursor into the flat order
    std::deque<DeferredRun> deferred;    ///< runs awaiting their trace
    std::size_t done = 0;                ///< finished runs (progress)
    std::exception_ptr error;            ///< first failure, if any

    State(const std::vector<std::string> &mechs,
          const std::vector<std::string> &benchs, const RunConfig &c,
          MatrixResult &r)
        : mechanisms(mechs), benchmarks(benchs), cfg(c), res(r),
          remaining(benchs.size(), mechs.size()),
          skip(mechs.size() * benchs.size(), 0)
    {
        keys.reserve(benchs.size());
        for (const auto &b : benchs)
            keys.push_back(traceKey(b, c));
    }

    std::size_t total() const
    {
        return mechanisms.size() * benchmarks.size();
    }

    RunTask decode(std::size_t flat) const
    {
        return {flat % mechanisms.size(), flat / mechanisms.size()};
    }
};

ExperimentEngine::ExperimentEngine(EngineOptions opts)
    : _opts(opts),
      _pool((opts.threads ? opts.threads
                          : ThreadPool::defaultThreadCount()) - 1)
{
}

ExperimentEngine::~ExperimentEngine() = default;

std::string
ExperimentEngine::traceKey(const std::string &benchmark,
                           const RunConfig &cfg)
{
    // benchmark + the shared window description (experiment.cc):
    // the same string the result-store fingerprint mixes in.
    std::string key = benchmark;
    key += '\0';
    key += windowKey(cfg);
    return key;
}

std::shared_ptr<const MaterializedTrace>
ExperimentEngine::materializeInto(const std::string &key,
                                  const std::string &benchmark,
                                  const RunConfig &cfg)
{
    try {
        TraceWindow window;
        if (cfg.selection == TraceSelection::SimPoint) {
            // The process-wide cache, not the engine's: SimPoint
            // choices are pure (benchmark, interval, k) functions and
            // expensive, so one-shot engines (runMatrix) must not
            // recompute what an earlier call already profiled.
            const SimPointChoice sp = TraceCache::process().simPoint(
                benchmark, cfg.scale.simpoint_interval,
                cfg.scale.simpoint_k);
            window.skip = sp.start_instruction;
            window.length = cfg.scale.simpoint_trace;
        } else {
            window.skip = cfg.scale.arbitrary_skip;
            window.length = cfg.scale.arbitrary_length;
        }
        _cache.fulfill(key,
                       materialize(specProgram(benchmark), window));
    } catch (...) {
        _cache.fail(key, std::current_exception());
        throw;
    }
    return _cache.wait(key);
}

std::shared_ptr<const MaterializedTrace>
ExperimentEngine::trace(const std::string &benchmark,
                        const RunConfig &cfg)
{
    const std::string key = traceKey(benchmark, cfg);
    TraceCache::Future fut;
    if (_cache.claim(key, fut) == TraceCache::Claim::Owner)
        return materializeInto(key, benchmark, cfg);
    return fut.get();
}

void
ExperimentEngine::drain(State &st)
{
    for (;;) {
        RunTask task;
        TraceCache::Future deferred_fut;
        bool have = false;
        bool must_wait = false;
        {
            std::unique_lock<std::mutex> lock(st.mu);
            if (st.error)
                return; // a sibling failed: stop picking up work
            // Deferred runs whose trace has landed come first: their
            // benchmark is fully paid for.
            for (auto it = st.deferred.begin();
                 it != st.deferred.end(); ++it) {
                if (it->future.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                    task = it->task;
                    deferred_fut = it->future;
                    st.deferred.erase(it);
                    have = true;
                    must_wait = true;
                    break;
                }
            }
            if (!have) {
                // Resumed slots were pre-filled by run(): skip them.
                while (st.next < st.total() && st.skip[st.next])
                    ++st.next;
                if (st.next < st.total()) {
                    task = st.decode(st.next++);
                    have = true;
                }
            }
            if (!have && !st.deferred.empty()) {
                // Nothing else to steal: block on a pending trace.
                task = st.deferred.front().task;
                deferred_fut = st.deferred.front().future;
                st.deferred.pop_front();
                have = true;
                must_wait = true;
            }
            if (!have)
                return;
        }

        const std::string &key = st.keys[task.b];
        TraceCache::TracePtr trace;
        if (must_wait) {
            // Deferred runs keep the future from their original
            // claim: even if the owner failed and the cache entry
            // was dropped for retry, this surfaces that error
            // instead of panicking on a missing key.
            trace = deferred_fut.get();
        } else {
            TraceCache::Future fut;
            switch (_cache.claim(key, fut)) {
              case TraceCache::Claim::Owner:
                trace = materializeInto(key, st.benchmarks[task.b],
                                        st.cfg);
                break;
              case TraceCache::Claim::Ready:
                trace = fut.get();
                break;
              case TraceCache::Claim::Pending:
                // Someone else is materializing: steal unrelated
                // work instead of idling on the future.
                std::unique_lock<std::mutex> lock(st.mu);
                st.deferred.push_back({task, std::move(fut)});
                continue;
            }
        }

        RunOutput out = runOne(*trace, st.mechanisms[task.m], st.cfg);
        if (_opts.store) {
            // Persist before publishing: a sweep killed after this
            // point resumes past this run. put() flushes, so the
            // record survives even an abrupt exit.
            _opts.store->put(makeRecord(
                makeResultKey(st.benchmarks[task.b],
                              st.mechanisms[task.m], st.config_hash),
                out));
        }
        // Each task owns its (m, b) slot exclusively: no lock needed,
        // and the matrix is identical for any worker count.
        st.res.ipc[task.m][task.b] = out.core.ipc;
        st.res.outputs[task.m][task.b] = std::move(out);

        std::size_t done_now = 0;
        bool evict = false;
        {
            std::unique_lock<std::mutex> lock(st.mu);
            done_now = ++st.done;
            if (--st.remaining[task.b] == 0 && !_opts.keep_traces)
                evict = true;
        }
        if (evict)
            _cache.evict(key);
        if (_opts.verbose)
            inform("[", done_now + st.resumed, "/", st.total(), "] ",
                   st.benchmarks[task.b], " / ",
                   st.mechanisms[task.m], ": IPC ",
                   st.res.ipc[task.m][task.b]);
    }
}

MatrixResult
ExperimentEngine::run(const std::vector<std::string> &mechanisms,
                      const std::vector<std::string> &benchmarks,
                      const RunConfig &cfg)
{
    _last = RunCounters{};
    MatrixResult res;
    res.mechanisms = mechanisms;
    res.benchmarks = benchmarks;
    res.ipc.assign(mechanisms.size(),
                   std::vector<double>(benchmarks.size(), 0.0));
    res.outputs.assign(mechanisms.size(),
                       std::vector<RunOutput>(benchmarks.size()));
    res.buildIndices();
    if (mechanisms.empty() || benchmarks.empty())
        return res;

    State st(mechanisms, benchmarks, cfg, res);
    if (_opts.store) {
        // Resume pass: pre-fill every slot whose fingerprint already
        // has a record. The config is hashed once; keys differ only
        // in (benchmark, mechanism, seed). A benchmark whose runs
        // all resume is never materialized at all.
        st.config_hash = fingerprintConfig(cfg);
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            for (std::size_t m = 0; m < mechanisms.size(); ++m) {
                const std::optional<ResultRecord> rec =
                    _opts.store->find(
                        makeResultKey(benchmarks[b], mechanisms[m],
                                      st.config_hash));
                if (!rec)
                    continue;
                res.ipc[m][b] = rec->core.ipc;
                res.outputs[m][b] = toRunOutput(*rec);
                st.skip[b * mechanisms.size() + m] = 1;
                --st.remaining[b];
                ++st.resumed;
            }
        }
        if (_opts.verbose && st.resumed)
            inform("resumed ", st.resumed, "/", st.total(),
                   " runs from ", _opts.store->path().empty()
                                      ? "<memory store>"
                                      : _opts.store->path());
    }
    // Failures are captured, never thrown across the pool: every
    // worker must come home before State leaves scope.
    auto guarded = [this, &st] {
        try {
            drain(st);
        } catch (...) {
            std::unique_lock<std::mutex> lock(st.mu);
            if (!st.error)
                st.error = std::current_exception();
        }
    };
    for (unsigned t = 0; t < _pool.size(); ++t)
        _pool.submit(guarded);
    guarded(); // the calling thread is worker zero
    _pool.wait();
    _last.executed = st.done;
    _last.resumed = st.resumed;
    if (st.error)
        std::rethrow_exception(st.error);
    return res;
}

} // namespace microlib
