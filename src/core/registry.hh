/**
 * @file
 * Mechanism registry: the paper's Table 2 in executable form.
 *
 * Every mechanism is registered with its acronym, description,
 * reference, publication year, attachment level and the list of
 * mechanisms its original article compared against (Table 5). The
 * experiment engine instantiates mechanisms by acronym; "Base" is the
 * no-mechanism baseline.
 */

#ifndef MICROLIB_CORE_REGISTRY_HH
#define MICROLIB_CORE_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.hh"

namespace microlib
{

/** Registry entry: one row of the paper's Table 2. */
struct MechanismDesc
{
    std::string acronym;
    std::string title;
    std::string description;
    std::string reference;
    int year = 0;
    CacheLevel level = CacheLevel::L1D;
    /** Mechanisms the original article quantitatively compared
     *  against (paper Table 5). */
    std::vector<std::string> compared_against;
    std::function<std::unique_ptr<CacheMechanism>(
        const MechanismConfig &)> make;
};

/** All registered mechanisms, in the paper's Table 2 order. */
const std::vector<MechanismDesc> &mechanismRegistry();

/** Descriptor for @p acronym (fatal if unknown). */
const MechanismDesc &mechanismDesc(const std::string &acronym);

/** Instantiate @p acronym; returns nullptr for "Base". */
std::unique_ptr<CacheMechanism>
makeMechanism(const std::string &acronym, const MechanismConfig &cfg);

/** "Base" plus the twelve mechanisms, in the paper's figure order. */
const std::vector<std::string> &allMechanismNames();

} // namespace microlib

#endif // MICROLIB_CORE_REGISTRY_HH
