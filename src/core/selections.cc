#include "core/selections.hh"

namespace microlib
{

const std::vector<std::string> &
dbcpSelection()
{
    // Pointer/irregular-heavy set favouring dead-block correlation
    // (the paper: "DBCP favors its article benchmark selection").
    static const std::vector<std::string> sel = {
        "art", "equake", "mcf", "parser", "vpr",
    };
    return sel;
}

const std::vector<std::string> &
ghbSelection()
{
    // The memory-bound half of the suite, per the GHB article's
    // focus; on this set SP is at its strongest too, which is why
    // the paper finds GHB outperformed by SP on its own selection.
    static const std::vector<std::string> sel = {
        "ammp", "applu", "art",  "equake", "facerec", "lucas",
        "mcf",  "mgrid", "parser", "swim", "twolf",   "wupwise",
    };
    return sel;
}

const std::vector<std::string> &
highSensitivitySelection()
{
    // Paper Section 3.2: apsi, equake, fma3d, mgrid, swim and gap
    // "will have a strong impact on assessing research ideas".
    static const std::vector<std::string> sel = {
        "apsi", "equake", "fma3d", "mgrid", "swim", "gap",
    };
    return sel;
}

const std::vector<std::string> &
lowSensitivitySelection()
{
    // Paper Section 3.2: wupwise, bzip2, crafty, eon, perlbmk and
    // vortex "are barely sensitive to data cache optimizations".
    static const std::vector<std::string> sel = {
        "wupwise", "bzip2", "crafty", "eon", "perlbmk", "vortex",
    };
    return sel;
}

} // namespace microlib
