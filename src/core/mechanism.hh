/**
 * @file
 * The data-cache mechanism API — the paper's central abstraction.
 *
 * A CacheMechanism plugs into the Hierarchy and observes one or both
 * data-cache levels: demand accesses (with PC and hit/miss outcome),
 * evictions, refills (optionally with line contents for
 * content-directed techniques) and may supply missing lines from side
 * structures (victim caches, prefetch buffers) or issue prefetches
 * through bounded request queues (Table 3's "Request Queue Size").
 *
 * The building blocks below (RequestQueue, LineBuffer) are shared by
 * the twelve published mechanisms and by user-defined ones (see
 * examples/custom_prefetcher.cc).
 */

#ifndef MICROLIB_CORE_MECHANISM_HH
#define MICROLIB_CORE_MECHANISM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/module.hh"
#include "mem/hierarchy.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/memory_image.hh"

namespace microlib
{

/** One SRAM/CAM structure a mechanism adds to the chip; the cost and
 *  power models (Figure 5) consume this inventory. */
struct SramSpec
{
    std::string name;
    std::uint64_t bytes = 0;
    unsigned assoc = 1;     ///< 0 = fully associative (CAM)
    unsigned ports = 1;
};

/** Options that select published-variant behaviour per mechanism. */
struct MechanismConfig
{
    /**
     * Build the mechanism the way a reader would before contacting
     * the authors: the documented wrong guesses (DBCP without PC
     * pre-hashing, half-size table, no confidence decay; TCP with a
     * 1-entry prefetch buffer; TK with an unquantized threshold).
     * Used by the Figure 2/3 validation experiments.
     */
    bool second_guess = false;

    /** TCP prefetch request buffer size (Figure 10 sweeps 1 vs 128). */
    unsigned tcp_buffer = 128;
};

/**
 * Bounded prefetch request queue (timestamp model).
 *
 * Entries represent in-flight prefetches; a new request is dropped
 * when the queue is full at issue time — exactly the behaviour whose
 * undocumented sizing the paper shows can swing results (Fig. 10).
 */
class RequestQueue
{
  public:
    explicit RequestQueue(unsigned capacity);

    /** Prune finished entries; true if a slot is free at @p now. */
    bool hasSlot(Cycle now);

    /** Register an in-flight request completing at @p done. */
    void add(Cycle done);

    unsigned capacity() const { return _capacity; }
    std::size_t inFlight(Cycle now);

  private:
    unsigned _capacity;
    std::vector<Cycle> _inflight;
};

/**
 * Small fully-associative line store with LRU replacement and
 * optional per-line ready times: victim caches, frequent-value
 * caches and prefetch buffers are all instances.
 */
class LineBuffer
{
  public:
    LineBuffer(unsigned lines, std::uint64_t line_bytes);

    /**
     * Probe for @p line_addr at @p now. On a hit the entry is
     * removed (the line migrates into the cache) and @p extra is the
     * additional latency: the buffer access itself plus any wait for
     * an in-flight fill.
     */
    bool probeAndTake(Addr line_addr, Cycle now, Cycle &extra);

    /** Insert a line available at @p ready (evicts LRU if full). */
    void insert(Addr line_addr, Cycle ready);

    bool contains(Addr line_addr) const;
    std::size_t occupancy() const;
    unsigned capacity() const { return _lines; }
    std::uint64_t lineBytes() const { return _line_bytes; }

    /** Lines evicted without ever being hit (prefetch waste). */
    std::uint64_t unusedEvictions() const { return _unused_evictions; }

  private:
    struct Entry
    {
        Cycle ready = 0;
        std::uint64_t stamp = 0;
    };

    unsigned _lines;
    std::uint64_t _line_bytes;
    std::uint64_t _tick = 0;
    std::uint64_t _unused_evictions = 0;
    std::unordered_map<Addr, Entry> _entries;
};

/** Base class for all data-cache mechanisms. */
class CacheMechanism : public Module, public HierarchyClient
{
  public:
    CacheMechanism(std::string acronym, const MechanismConfig &cfg);

    /** Wire the mechanism to a hierarchy (called once per run). */
    virtual void bind(Hierarchy &hier);

    /** Added hardware structures (cost/power models, Figure 5). */
    virtual std::vector<SramSpec> hardware() const = 0;

    void registerStats(StatSet &stats) const override;

    const MechanismConfig &config() const { return _cfg; }

    // Common activity counters (public for the harnesses).
    Counter table_reads;
    Counter table_writes;
    Counter prefetches_issued;
    Counter prefetches_dropped;
    Counter side_hits;          ///< misses served from side structures

  protected:
    Hierarchy *hier() const { return _hier; }

    Addr l1LineAddr(Addr a) const;
    Addr l2LineAddr(Addr a) const;
    std::uint64_t l1LineBytes() const;
    std::uint64_t l2LineBytes() const;

    /**
     * Issue an L2 prefetch through @p queue; honors queue capacity
     * (dropping when full), skips lines already present, and
     * accounts statistics.
     * @return true if the prefetch was issued.
     */
    bool issueL2Prefetch(RequestQueue &queue, Addr addr, Addr pc,
                         Cycle now);

    /**
     * Issue an L1-side buffer fill through @p queue into @p buffer.
     * @return true if the fetch was issued.
     */
    bool issueBufferFetch(RequestQueue &queue, LineBuffer &buffer,
                          Addr addr, Cycle now);

  private:
    MechanismConfig _cfg;
    Hierarchy *_hier = nullptr;
};

} // namespace microlib

#endif // MICROLIB_CORE_MECHANISM_HH
