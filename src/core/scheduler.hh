/**
 * @file
 * ExperimentEngine: the sweep-wide experiment driver.
 *
 * A sweep is described declaratively by a SweepSpec
 * (core/sweep_spec.hh): benchmarks x mechanisms x config variants
 * expanded from declared axes. A TaskPlan (core/task_plan.hh) turns
 * the spec into the deterministic, fingerprinted enumeration of every
 * (benchmark, mechanism, variant) task with its stable index and
 * pre-assigned result slot. The engine is the facade that ties a
 * plan to an execution strategy:
 *
 *   run(spec) = build TaskPlan
 *             + pre-fill resumed slots from the ResultStore
 *             + hand the pending tasks to an ExecutionBackend
 *
 * The default backend is ThreadPoolBackend (the in-process drain
 * loop over the engine's persistent worker pool); EngineOptions can
 * swap in ProcessShardBackend (forked shard workers, one store per
 * shard, merged by concatenation) or any custom ExecutionBackend.
 * EngineOptions::shard restricts an in-process run to one shard of
 * the plan — the `microlib_sweep --shard i/N` building block for
 * cluster-scale sweeps.
 *
 * Determinism contract, regardless of backend, worker count or shard
 * count: every task writes its pre-assigned (m, b, variant) slot of
 * the SweepResult with a result that is a pure function of the plan,
 * so the result is bit-identical for any MICROLIB_THREADS value and
 * for any shard partitioning whose stores are merged back together.
 * Scheduling affects wall-clock only, never results.
 *
 * The engine outlives individual matrices; traces (and SimPoint
 * choices) are shared across run() calls, so e.g. a finite- vs
 * infinite-MSHR study materializes each benchmark once, not twice.
 * With a ResultStore attached (EngineOptions::store), finished runs
 * are persisted as fingerprinted records and run() pre-fills matrix
 * slots whose record already exists, executing only the missing
 * tasks — the resume path an interrupted sweep takes on restart.
 */

#ifndef MICROLIB_CORE_SCHEDULER_HH
#define MICROLIB_CORE_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/execution_backend.hh"
#include "core/experiment.hh"
#include "sim/thread_pool.hh"
#include "trace/trace_cache.hh"

namespace microlib
{

class ResultStore;

/** Engine construction knobs. */
struct EngineOptions
{
    /** Worker threads including the caller; 0 = MICROLIB_THREADS or
     *  hardware concurrency. */
    unsigned threads = 0;

    /** Log each finished run plus a progress counter. */
    bool verbose = false;

    /**
     * Keep traces cached after their runs complete, so later
     * matrices on the same engine reuse them. Disable to drop each
     * benchmark's trace the moment its last run finishes — the old
     * runMatrix() memory profile.
     */
    bool keep_traces = true;

    /**
     * Versioned result store (core/result_store.hh); not owned, may
     * be nullptr. When set, every finished run is persisted as a
     * fingerprinted record, and run() skips any task whose
     * fingerprint already has one — an interrupted or repeated sweep
     * resumes instead of restarting. Records from a different
     * configuration or schema never match, so stale results are
     * ignored rather than reused.
     */
    ResultStore *store = nullptr;

    /**
     * Execute only shard (index mod count) of the plan; pending
     * tasks outside the shard are counted as RunCounters::skipped
     * and their matrix slots stay empty unless the store resumed
     * them. The default {0, 1} runs the whole plan. Disjoint shards
     * run by separate processes/hosts against separate stores merge
     * bit-identically — see docs/SHARDING.md.
     */
    ShardSpec shard;

    /** JSONL progress stream path (core/progress.hh); empty =
     *  disabled. Truncated at each run(). */
    std::string progress_path;

    /**
     * Trace-cache byte budget; 0 = read MICROLIB_TRACE_BUDGET_MB
     * (unset or 0 = unlimited, the default). Under a budget the
     * cache LRU-evicts ready traces that no pending task references
     * — full-suite sweeps on small hosts trade re-materialization
     * time for memory, never correctness.
     */
    std::size_t trace_budget_bytes = 0;

    /**
     * Persistent trace-arena directory (trace/trace_arena.hh); empty
     * = read MICROLIB_TRACE_DIR (unset or empty = no arena, the
     * default). With an arena, trace owners probe the directory
     * before materializing — a hit mmaps the stored window read-only
     * (skipping generation AND SimPoint profiling) — and publish
     * what they had to generate, so the window is materialized once
     * per directory rather than once per process. Shard workers
     * inherit the parent's directory and share it concurrently.
     */
    std::string trace_dir;

    /** Execution strategy; not owned, may be nullptr = the engine's
     *  built-in ThreadPoolBackend. See core/execution_backend.hh. */
    ExecutionBackend *backend = nullptr;

    /**
     * Supervision knobs for ProcessShardBackend (ignored elsewhere;
     * see core/supervisor.hh and docs/FAULT_TOLERANCE.md).
     *
     * heartbeat_timeout: seconds without progress-stream growth
     * before a shard worker is declared stalled and SIGKILLed for
     * restart. Must exceed the longest single task; <= 0 (default)
     * disables stall detection — crash supervision still applies.
     */
    double heartbeat_timeout = 0.0;

    /** Worker restarts allowed per shard before the sweep fails
     *  (0 = the old fail-fast behavior). The budget resets when a
     *  quarantine removes the task that was killing the worker. */
    std::size_t max_worker_retries = 2;

    /** Failures blamed on the same task before it is quarantined
     *  (excluded, its cell rendered FAULT) instead of retried;
     *  0 disables quarantine. */
    std::size_t quarantine_strikes = 3;

    /** First worker-restart delay in seconds; doubles per
     *  consecutive retry of the same shard (capped internally). */
    double worker_backoff_s = 0.25;

    /**
     * Advance the config variants of each (benchmark-window,
     * mechanism) group in lockstep over a single trace pass — one
     * decode, V state machines per block (cpu/lockstep.hh) — instead
     * of re-streaming the trace once per variant. On by default;
     * results are bit-identical either way, and the off path (each
     * task simulated alone, today's loop) is the correctness oracle.
     * The MICROLIB_LOCKSTEP environment variable (0 = off, 1 = on)
     * overrides this option, so CLI sweeps can cross-check both
     * paths without a flag — CI byte-diffs the two.
     */
    bool lockstep = true;
};

/** Where a fulfilled trace came from (progress telemetry: the warm-
 *  arena acceptance check greps for the absence of src=gen). */
enum class TraceOrigin
{
    Generated, ///< materialized by this process (arena miss or none)
    Mapped,    ///< mmap'd straight out of the trace arena
};

/** Matrix-wide experiment driver over plan + backend. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions opts = {});
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /**
     * Run the sweep @p spec describes: benchmarks x mechanisms x
     * config variants. The primary entry point — every result lands
     * in its deterministic (m, b, variant) slot regardless of
     * backend, worker count or scheduling order. Not reentrant: one
     * run() at a time per engine.
     */
    SweepResult run(const SweepSpec &spec);

    /**
     * Classic two-vector form: the full @p mechanisms x @p benchmarks
     * matrix under the single configuration @p cfg. A thin wrapper
     * over run(SweepSpec::single(...)) returning the one variant's
     * matrix; kept for the figure harnesses and one-config studies.
     */
    MatrixResult run(const std::vector<std::string> &mechanisms,
                     const std::vector<std::string> &benchmarks,
                     const RunConfig &cfg);

    /** Run an already-built @p plan (shared by callers that also
     *  print or shard it). Same contract as run(). */
    SweepResult runPlan(const TaskPlan &plan);

    /**
     * The cached trace for (@p benchmark, @p cfg), materializing it
     * on first use. Configurations that resolve to the same window
     * share one materialization.
     */
    std::shared_ptr<const MaterializedTrace>
    trace(const std::string &benchmark, const RunConfig &cfg);

    /** Total worker count, the calling thread included. */
    unsigned threads() const { return _pool.size() + 1; }

    /** The engine's trace cache (tests and memory-conscious callers:
     *  cache().clear() releases all retained traces). */
    TraceCache &cache() { return _cache; }

    /** The engine's persistent worker pool (execution backends drain
     *  their task queues on it). */
    ThreadPool &pool() { return _pool; }

    /** Attach/replace the result store (nullptr detaches). Takes
     *  effect on the next run(); the store must outlive the engine
     *  or be detached first. */
    void setResultStore(ResultStore *store) { _opts.store = store; }

    /** The attached result store, or nullptr. */
    ResultStore *resultStore() const { return _opts.store; }

    /** The options the engine was built with. */
    const EngineOptions &options() const { return _opts; }

    /** Executed/resumed/skipped counts of the most recent run(). */
    RunCounters lastRun() const { return _last; }

    /**
     * Cache key for (@p benchmark, @p cfg): benchmark plus the
     * resolved trace window — everything a materialized trace
     * depends on. Delegates to traceCacheKey (core/task_plan.hh).
     */
    static std::string traceKey(const std::string &benchmark,
                                const RunConfig &cfg);

    /**
     * Owner-side materialization: fulfill @p key in @p cache with
     * the trace for (@p benchmark, @p cfg), or fail the entry and
     * rethrow. Call only after claim() returned Owner. Shared by the
     * engine's trace() endpoint and the execution backends.
     *
     * With an arena attached to @p cache, the arena is probed FIRST
     * — before window resolution — so a hit skips SimPoint BBV
     * profiling along with generation (the stored file carries the
     * resolved window). A miss generates, publishes to the arena,
     * then re-loads the published file so the heap copy is released
     * in favor of the shared page-cache mapping. @p origin (when
     * non-null) reports which path ran.
     */
    static std::shared_ptr<const MaterializedTrace>
    materializeInto(TraceCache &cache, const std::string &key,
                    const std::string &benchmark, const RunConfig &cfg,
                    TraceOrigin *origin = nullptr);

  private:
    EngineOptions _opts;
    TraceCache _cache;
    ThreadPool _pool;
    RunCounters _last;
};

} // namespace microlib

#endif // MICROLIB_CORE_SCHEDULER_HH
