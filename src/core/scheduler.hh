/**
 * @file
 * ExperimentEngine: the matrix-wide experiment scheduler.
 *
 * The old runMatrix() walked benchmarks one at a time: materialize
 * the trace, spawn a thread team over the mechanisms, join, repeat.
 * That design erects a full barrier after every benchmark, caps
 * parallelism at the mechanism count, and pays thread creation per
 * benchmark. The engine instead drains ONE work queue holding every
 * (benchmark, mechanism) run of the matrix on a persistent worker
 * pool:
 *
 *  - the first worker to need a benchmark's trace becomes its owner
 *    and materializes it once into the engine's TraceCache;
 *  - workers that hit a trace still being materialized defer that
 *    run and steal unrelated work instead of blocking;
 *  - only when no other work exists does a worker wait on a trace's
 *    shared_future.
 *
 * Every run writes its pre-assigned (m, b) slot of MatrixResult, so
 * the IPC matrix is bit-identical for any MICROLIB_THREADS value:
 * scheduling order affects wall-clock only, never results. The
 * engine outlives individual matrices; traces (and SimPoint choices)
 * are shared across run() calls, so e.g. a finite- vs infinite-MSHR
 * study materializes each benchmark once, not twice.
 *
 * With a ResultStore attached (EngineOptions::store), finished runs
 * are persisted as fingerprinted records and run() pre-fills matrix
 * slots whose record already exists, executing only the missing
 * tasks — the resume path an interrupted sweep takes on restart.
 */

#ifndef MICROLIB_CORE_SCHEDULER_HH
#define MICROLIB_CORE_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "sim/thread_pool.hh"
#include "trace/trace_cache.hh"

namespace microlib
{

class ResultStore;

/** Engine construction knobs. */
struct EngineOptions
{
    /** Worker threads including the caller; 0 = MICROLIB_THREADS or
     *  hardware concurrency. */
    unsigned threads = 0;

    /** Log each finished run plus a progress counter. */
    bool verbose = false;

    /**
     * Keep traces cached after their runs complete, so later
     * matrices on the same engine reuse them. Disable to drop each
     * benchmark's trace the moment its last run finishes — the old
     * runMatrix() memory profile.
     */
    bool keep_traces = true;

    /**
     * Versioned result store (core/result_store.hh); not owned, may
     * be nullptr. When set, every finished run is persisted as a
     * fingerprinted record, and run() skips any task whose
     * fingerprint already has one — an interrupted or repeated sweep
     * resumes instead of restarting. Records from a different
     * configuration or schema never match, so stale results are
     * ignored rather than reused.
     */
    ResultStore *store = nullptr;
};

/** What the last run() actually did (resume accounting). */
struct RunCounters
{
    std::size_t executed = 0; ///< runs simulated by this call
    std::size_t resumed = 0;  ///< runs restored from the store
};

/** Matrix-wide experiment scheduler over a persistent thread pool. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions opts = {});
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /**
     * Run the full @p mechanisms x @p benchmarks matrix under
     * @p cfg. Results land in deterministic (m, b) slots regardless
     * of worker count or scheduling order. Not reentrant: one run()
     * at a time per engine.
     */
    MatrixResult run(const std::vector<std::string> &mechanisms,
                     const std::vector<std::string> &benchmarks,
                     const RunConfig &cfg);

    /**
     * The cached trace for (@p benchmark, @p cfg), materializing it
     * on first use. Configurations that resolve to the same window
     * share one materialization.
     */
    std::shared_ptr<const MaterializedTrace>
    trace(const std::string &benchmark, const RunConfig &cfg);

    /** Total worker count, the calling thread included. */
    unsigned threads() const { return _pool.size() + 1; }

    /** The engine's trace cache (tests and memory-conscious callers:
     *  cache().clear() releases all retained traces). */
    TraceCache &cache() { return _cache; }

    /** Attach/replace the result store (nullptr detaches). Takes
     *  effect on the next run(); the store must outlive the engine
     *  or be detached first. */
    void setResultStore(ResultStore *store) { _opts.store = store; }

    /** The attached result store, or nullptr. */
    ResultStore *resultStore() const { return _opts.store; }

    /** Executed/resumed counts of the most recent run(). */
    RunCounters lastRun() const { return _last; }

    /**
     * Cache key for (@p benchmark, @p cfg): benchmark plus the
     * resolved trace window — everything a materialized trace
     * depends on.
     */
    static std::string traceKey(const std::string &benchmark,
                                const RunConfig &cfg);

  private:
    struct State;

    void drain(State &st);
    std::shared_ptr<const MaterializedTrace>
    materializeInto(const std::string &key, const std::string &benchmark,
                    const RunConfig &cfg);

    EngineOptions _opts;
    TraceCache _cache;
    ThreadPool _pool;
    RunCounters _last;
};

} // namespace microlib

#endif // MICROLIB_CORE_SCHEDULER_HH
