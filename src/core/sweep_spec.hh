/**
 * @file
 * SweepSpec: the declarative, serializable description of a sweep.
 *
 * MicroLib's comparisons are only meaningful when every run — across
 * mechanisms AND system configurations — comes from one reproducible
 * experiment description. A SweepSpec is that description as data,
 * not code: benchmarks x mechanisms x named config variants, where
 * the variants are the cartesian expansion of declared *axes*
 * ("hier.l2.size = 256k, 512k, 1M") over a registry of settable
 * BaselineConfig / TraceScale parameters. The spec serializes to a
 * canonical line-based `.sweep` text format, so any host that parses
 * the same file builds the identical fingerprinted TaskPlan — the
 * property cluster-wide sharding rests on.
 *
 * Format (see docs/SWEEP_SPEC.md for the grammar and axis table):
 *
 *   sweep-spec v1
 *   bench swim gzip mcf
 *   mech Base TP SP GHB
 *   base window.trace_length=100000
 *   axis hier.l2.size 256k 1M
 *
 * `base` lines set one parameter for every variant; each `axis` line
 * declares one swept parameter. Variants are the cartesian product
 * of the axes in declared order, the first axis varying slowest; a
 * spec with no axes has the single variant "base". `#` starts a
 * comment; parse accepts any whitespace, canonicalText() emits the
 * normalized form whose FNV-1a hash is stable across hosts.
 *
 * The spec never stores a resolved RunConfig: each variant's config
 * is produced by applying the base settings and then the variant's
 * axis settings to a default RunConfig. Result-store fingerprints
 * hash the *resolved* config, so two variants differing in any
 * setting can never collide in the store.
 */

#ifndef MICROLIB_CORE_SWEEP_SPEC_HH
#define MICROLIB_CORE_SWEEP_SPEC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "sim/report.hh"

namespace microlib
{

/**
 * Version of the sweep-hash algorithm: the `.sweep` canonical text
 * format ("sweep-spec v<N>" header) whose FNV-1a hash identifies a
 * sweep across hosts — the dedup key microlib_sweepd keys jobs on.
 * Bump whenever canonicalText()'s output or the hash function
 * changes; it is part of the schema tuple (sim/version.hh) the
 * daemon uses to reject incompatible workers.
 */
constexpr int sweep_hash_version = 1;

/**
 * Legal granularity of a parameter's numeric domain — what "the next
 * value" means when a search bisects along the axis
 * (core/cliff_finder.hh).
 *
 *  - None:   not a searchable number (enums, booleans, fractions);
 *            sweeps may still enumerate its values explicitly.
 *  - Linear: any integer >= the parameter's minimum; adjacent values
 *            differ by 1 (widths, counts, latencies).
 *  - Pow2:   powers of two only (cache sizes and associativities —
 *            the cache model requires a power-of-two set count);
 *            adjacent values differ by a factor of 2.
 */
enum class AxisScale
{
    None,
    Linear,
    Pow2,
};

/** One settable parameter of the axis registry. */
struct AxisParam
{
    std::string key;    ///< dotted name, e.g. "hier.l2.size"
    std::string values; ///< value syntax help, e.g. "bytes (k/M/G)"
    std::string what;   ///< one-line description
    /** Apply @p value to @p cfg; false + *error on a bad value. */
    std::function<bool(RunConfig &cfg, const std::string &value,
                       std::string *error)>
        apply;
    /** Numeric granularity for axis searches (None = unsearchable). */
    AxisScale scale = AxisScale::None;
    /** Smallest legal value on a searchable axis. */
    std::uint64_t search_min = 1;
};

/** Every parameter a spec may set, in canonical (docs) order. */
const std::vector<AxisParam> &axisRegistry();

/** Registry entry for @p key, or nullptr if unknown. */
const AxisParam *findAxisParam(const std::string &key);

/** One key=value assignment. */
struct AxisSetting
{
    std::string key;
    std::string value;
};

/** One declared axis: a key and the values it sweeps over. */
struct AxisDecl
{
    std::string key;
    std::vector<std::string> values;
};

/**
 * One expanded point of the axes: the variant's display name
 * ("hier.l2.size=256k" / "base") and its axis assignments in axis
 * declaration order.
 */
struct ConfigVariant
{
    std::string name;
    std::vector<AxisSetting> settings;
};

/** Declarative sweep description; see the file comment. */
class SweepSpec
{
  public:
    SweepSpec() = default;

    /**
     * Wrap the classic two-vector API: one variant whose config is
     * @p cfg verbatim. Such a spec runs exactly like the old
     * ExperimentEngine::run(mechanisms, benchmarks, cfg); it is not
     * round-trippable through canonicalText() because @p cfg is not
     * expressed as settings.
     */
    static SweepSpec single(std::vector<std::string> mechanisms,
                            std::vector<std::string> benchmarks,
                            const RunConfig &cfg);

    const std::vector<std::string> &benchmarks() const
    {
        return _benchmarks;
    }
    const std::vector<std::string> &mechanisms() const
    {
        return _mechanisms;
    }
    void setBenchmarks(std::vector<std::string> b)
    {
        _benchmarks = std::move(b);
    }
    void setMechanisms(std::vector<std::string> m)
    {
        _mechanisms = std::move(m);
    }

    /** Settings applied to every variant, in application order. */
    const std::vector<AxisSetting> &baseSettings() const
    {
        return _base;
    }
    /** Declared axes, first = slowest-varying. */
    const std::vector<AxisDecl> &axes() const { return _axes; }

    /** Add a base setting; false + *error on an unknown key or a
     *  value its parameter rejects. */
    bool addBase(const std::string &key, const std::string &value,
                 std::string *error = nullptr);

    /** Declare an axis; false + *error on an unknown key, a bad
     *  value, an empty value list, or a duplicate axis key. */
    bool addAxis(const std::string &key,
                 const std::vector<std::string> &values,
                 std::string *error = nullptr);

    /**
     * Parse a spec from `.sweep` text. On failure returns false and
     * sets *error to a message naming the line and the problem
     * (unknown benchmark / mechanism / axis key, bad value, ...).
     */
    static bool parse(const std::string &text, SweepSpec &out,
                      std::string *error);

    /** Parse the file at @p path; false + *error if unreadable or
     *  malformed. */
    static bool load(const std::string &path, SweepSpec &out,
                     std::string *error);

    /**
     * The canonical serialized form: fixed line order, single-space
     * separators, no comments. parse(canonicalText()) reproduces the
     * spec, and hash() is the FNV-1a hash of exactly this text — the
     * same on every host.
     */
    std::string canonicalText() const;

    /** FNV-1a hash of canonicalText(). */
    std::uint64_t hash() const;

    /** Number of variants the axes expand to (1 with no axes). */
    std::size_t variantCount() const;

    /** All variants, in expansion order (first axis slowest). */
    std::vector<ConfigVariant> variants() const;

    /** The resolved configuration of @p variant: base config + base
     *  settings + the variant's settings. Fatal on a setting the
     *  registry rejects (specs built through addBase/addAxis/parse
     *  were already validated). */
    RunConfig resolve(const ConfigVariant &variant) const;

    /**
     * Synthesize the spec of one slice of this sweep's axis space:
     * the same benchmarks and base settings, the mechanism list
     * replaced by @p mechanisms, every axis other than @p axis_key
     * pinned at its first declared value (appended as a base setting,
     * in axis order), and @p axis_key declared as the sole axis over
     * @p values. The cliff finder builds every probe (one value) and
     * every flip witness (the two bracket values) through this: a
     * probe's resolved config differs from the parent sweep's
     * matching variant only where the parent's axes were pinned, so
     * result-store fingerprints dedupe shared points. @p axis_key
     * need not be declared in this spec, but must be a registry key
     * and accept every value. False + *error on a bad key/value or
     * empty @p values.
     */
    bool axisSlice(const std::vector<std::string> &mechanisms,
                   const std::string &axis_key,
                   const std::vector<std::string> &values,
                   SweepSpec &out, std::string *error = nullptr) const;

  private:
    std::vector<std::string> _benchmarks;
    std::vector<std::string> _mechanisms;
    std::vector<AxisSetting> _base;
    std::vector<AxisDecl> _axes;
    /** Starting point for resolve(); the process default unless the
     *  spec came from single(). */
    RunConfig _base_cfg;
};

/**
 * Outcome of one sweep: the per-variant IPC matrices plus the variant
 * names, in the spec's expansion order. Every matrix shares the same
 * mechanism and benchmark vectors.
 */
struct SweepResult
{
    std::vector<std::string> variants; ///< display names
    std::vector<MatrixResult> matrices;

    MatrixResult &matrix(std::size_t v) { return matrices[v]; }
    const MatrixResult &matrix(std::size_t v) const
    {
        return matrices[v];
    }
};

/**
 * Cross-variant sensitivity table: mechanisms as rows, variants as
 * columns. Cells are the mean speedup over all benchmarks vs "Base"
 * within the same variant when the sweep includes "Base", else the
 * mean IPC — the title says which. A pure function of @p res, so a
 * merged sharded sweep renders it byte-identically to a
 * single-process run.
 */
Table sensitivityTable(const SweepResult &res);

} // namespace microlib

#endif // MICROLIB_CORE_SWEEP_SPEC_HH
