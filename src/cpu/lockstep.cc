#include "cpu/lockstep.hh"

#include <algorithm>

#include "mem/hierarchy.hh"

namespace microlib
{

void
LockstepGroup::add(OoOCore &core, Hierarchy &mem)
{
    _members.push_back({&core, &mem});
    _results.resize(_members.size());
}

void
LockstepGroup::clear()
{
    _members.clear();
    _results.clear();
}

void
LockstepGroup::run(const TraceView &trace)
{
    const std::size_t n = trace.size();
    constexpr std::size_t block = OoOCore::blockSize();

    for (Member &m : _members)
        m.core->beginRun(n, *m.mem);
    // The single trace pass: each block is decoded from the SoA
    // arrays once and consumed by every member while it is hot.
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = std::min(block, n - base);
        for (Member &m : _members)
            m.core->stepBlock(trace, *m.mem, base, len);
    }
    for (std::size_t i = 0; i < _members.size(); ++i)
        _results[i] = _members[i].core->finishRun();
}

} // namespace microlib
