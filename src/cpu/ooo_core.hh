/**
 * @file
 * Trace-driven out-of-order core (the sim-outorder stand-in).
 *
 * Models the timing bottlenecks the paper's evaluation depends on —
 * a 128-entry RUU instruction window, a 128-entry LSQ, 8-wide
 * fetch/issue/commit, the Table 1 functional unit pool, in-order
 * commit, instruction-cache stalls and branch mispredictions — with
 * timestamp algebra: each dynamic instruction gets dispatch, ready,
 * issue, complete and commit cycles derived from its predecessors
 * and the memory hierarchy's resource state. Loads visit the
 * hierarchy at issue; stores write at commit (posted).
 */

#ifndef MICROLIB_CPU_OOO_CORE_HH
#define MICROLIB_CPU_OOO_CORE_HH

#include <vector>

#include "cpu/fu_pool.hh"
#include "mem/hierarchy.hh"
#include "sim/stats.hh"
#include "trace/record.hh"
#include "trace/trace_view.hh"

namespace microlib
{

/** Core configuration (Table 1 values as defaults). */
struct CoreParams
{
    unsigned ruu_size = 128;
    unsigned lsq_size = 128;
    unsigned fetch_width = 8;
    unsigned commit_width = 8;
    FuPoolParams fu;

    /** Branch misprediction rate and recovery penalty. The rate is a
     *  deterministic hash of (pc, occurrence) so every mechanism sees
     *  the same misprediction pattern on the same trace. */
    double mispredict_rate = 0.04;
    Cycle mispredict_penalty = 3;
};

/** Results of one simulation run. */
struct CoreResult
{
    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    double ipc = 0.0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
};

/** The out-of-order core. */
class OoOCore
{
  public:
    explicit OoOCore(const CoreParams &p);

    /**
     * Run @p trace against @p mem and return timing results.
     * The core is reset first; the hierarchy is not (caller decides
     * warm/cold state).
     *
     * This is the hot path: the dependence-timestamp algebra and the
     * memory-hierarchy visits stream over the view's dense parallel
     * arrays in fixed-size blocks. Results are bit-identical to
     * runReference() on the same record stream. Implemented on the
     * block-resumable API below (beginRun + stepBlock + finishRun),
     * so the monolithic and lockstep paths share one loop body.
     */
    CoreResult run(const TraceView &trace, Hierarchy &mem);

    // ----- block-resumable stepping (lockstep execution) ---------
    //
    // A run can be advanced one block at a time, with the state the
    // monolithic loop kept in locals held in a member context
    // instead. LockstepGroup (cpu/lockstep.hh) interleaves the
    // blocks of several cores over a single pass of one shared
    // TraceView: one trace decode, V state machines per block. Block
    // boundaries carry no model state — any in-order decomposition
    // computes the identical result — so stepping is bit-identical
    // to run() by construction.

    /** Start a block-resumable run of @p n records against @p mem:
     *  resets the core and the in-flight run context. Allocation-free
     *  (the history rings are sized at construction). */
    void beginRun(std::size_t n, Hierarchy &mem);

    /**
     * Advance the in-flight run over records [@p base, @p base +
     * @p len) of @p trace. Blocks must be fed in order and cover the
     * trace exactly; @p mem must be the hierarchy beginRun() saw.
     */
    void stepBlock(const TraceView &trace, Hierarchy &mem,
                   std::size_t base, std::size_t len);

    /** Finish the in-flight run and return its results. */
    CoreResult finishRun();

    /** The fixed block length run() streams in — lockstep callers
     *  use the same decomposition. */
    static constexpr std::size_t blockSize() { return block_size; }

    /** Convenience overload: transposes @p trace into a temporary
     *  SoA and runs it. Callers holding a MaterializedTrace should
     *  pass its prebuilt view() instead. */
    CoreResult run(const Trace &trace, Hierarchy &mem);

    /**
     * The seed's record-at-a-time AoS loop, kept verbatim as the
     * correctness oracle for the SoA hot path (the determinism test
     * asserts bit-identical CoreResult and hierarchy counters) and
     * as the baseline side of the BM_TraceViewRun microbenchmark.
     */
    CoreResult runReference(const Trace &trace, Hierarchy &mem);

    const CoreParams &params() const { return _p; }

  private:
    CoreParams _p;
    FuPool _fu;

    /** History ring large enough for 255-distance dependences. */
    static constexpr std::size_t history = 512;

    /** Records streamed per block of the SoA loop: long enough to
     *  amortize the span pointer setup, short enough that the six
     *  live arrays stay resident in L1. */
    static constexpr std::size_t block_size = 256;

    std::vector<Cycle> _complete; // ring: completion per instruction
    std::vector<Cycle> _dispatch; // ring: dispatch per instruction
    std::vector<Cycle> _commit;   // ring: commit per instruction
    std::vector<Cycle> _mem_complete; // ring: per memory instruction

    /** In-flight state of a block-resumable run: everything the
     *  monolithic loop held in locals, so a run survives between
     *  stepBlock() calls while other cores advance over the same
     *  trace. POD throughout — beginRun()'s reset never allocates. */
    struct RunState
    {
        CoreResult res;          ///< counters accumulated so far
        std::uint64_t icache_line = 1;
        Addr last_fetch_line = invalid_addr;
        Cycle fetch_release = 0; ///< earliest fetch after a mispredict
        std::uint64_t mem_ops = 0;
        std::size_t n = 0;       ///< total record count of the run
        std::size_t pos = 0;     ///< next base stepBlock() expects
    };
    RunState _run;

    static bool deterministicMispredict(Addr pc, std::uint64_t n,
                                        double rate);
};

} // namespace microlib

#endif // MICROLIB_CPU_OOO_CORE_HH
