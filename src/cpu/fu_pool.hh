/**
 * @file
 * Functional unit pool (Table 1: 8 IntALU, 3 IntMult/Div, 6 FPALU,
 * 2 FPMult/Div, 4 Load/Store units).
 *
 * Units are modeled as next-free timestamps: issuing an instruction
 * acquires the earliest-free unit of its class at or after its ready
 * time. All units are pipelined with an issue-to-issue interval of
 * one cycle except multipliers (interval two), matching the
 * sim-outorder defaults the paper inherits.
 */

#ifndef MICROLIB_CPU_FU_POOL_HH
#define MICROLIB_CPU_FU_POOL_HH

#include <array>
#include <vector>

#include "sim/types.hh"
#include "trace/record.hh"

namespace microlib
{

/** Functional unit configuration. */
struct FuPoolParams
{
    unsigned int_alu = 8;
    unsigned int_mult = 3;
    unsigned fp_alu = 6;
    unsigned fp_mult = 2;
    unsigned ls_units = 4;

    Cycle int_alu_latency = 1;
    Cycle int_mult_latency = 3;
    Cycle fp_alu_latency = 2;
    Cycle fp_mult_latency = 4;
    Cycle agen_latency = 1;     ///< address generation before cache
};

/** Timestamp-based functional unit pool. */
class FuPool
{
  public:
    explicit FuPool(const FuPoolParams &p);

    /** Reset all units to free-at-zero. */
    void reset();

    /**
     * Acquire a unit for @p op at or after @p ready.
     * @return issue cycle (>= ready).
     */
    Cycle acquire(OpClass op, Cycle ready);

    /** Execution latency of @p op (cache time excluded for memory). */
    Cycle latency(OpClass op) const;

    const FuPoolParams &params() const { return _p; }

  private:
    FuPoolParams _p;

    /** Unit classes: IntALU, IntMult, FpALU, FpMult, LS. */
    std::array<std::vector<Cycle>, 5> _units;

    unsigned unitClass(OpClass op) const;
    Cycle issueInterval(OpClass op) const;
};

} // namespace microlib

#endif // MICROLIB_CPU_FU_POOL_HH
