#include "cpu/ooo_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

OoOCore::OoOCore(const CoreParams &p) : _p(p), _fu(p.fu)
{
    if (p.ruu_size == 0 || p.lsq_size == 0 || p.fetch_width == 0 ||
        p.commit_width == 0)
        fatal("core parameters must be non-zero");
    if (p.ruu_size > history || p.lsq_size > history)
        fatal("RUU/LSQ larger than the core's history ring");
    _complete.resize(history);
    _dispatch.resize(history);
    _commit.resize(history);
    _mem_complete.resize(history);
}

bool
OoOCore::deterministicMispredict(Addr pc, std::uint64_t n, double rate)
{
    // splitmix64 finalizer over (pc, occurrence index).
    std::uint64_t z = pc * 0x9e3779b97f4a7c15ull + n;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * 0x1.0p-53;
    return u < rate;
}

void
OoOCore::beginRun(std::size_t n, Hierarchy &mem)
{
    _run = RunState{};
    _run.n = n;
    _run.res.instructions = n;
    _run.icache_line = mem.params().l1i.line;
    if (n == 0)
        return;

    _fu.reset();
    std::fill(_complete.begin(), _complete.end(), 0);
    std::fill(_dispatch.begin(), _dispatch.end(), 0);
    std::fill(_commit.begin(), _commit.end(), 0);
    std::fill(_mem_complete.begin(), _mem_complete.end(), 0);
}

void
OoOCore::stepBlock(const TraceView &trace, Hierarchy &mem,
                   std::size_t base, std::size_t len)
{
    if (base != _run.pos || len == 0 || base + len > _run.n)
        fatal("OoOCore::stepBlock: blocks must be fed in order "
              "(expected base ", _run.pos, ", got [", base, ", ",
              base + len, ") of ", _run.n, ")");

    // The carried run context lives in locals for the duration of the
    // block; the algebra below is byte-for-byte the monolithic loop's.
    CoreResult &res = _run.res;
    const std::uint64_t icache_line = _run.icache_line;
    Addr last_fetch_line = _run.last_fetch_line;
    Cycle fetch_release = _run.fetch_release;
    std::uint64_t mem_ops = _run.mem_ops;

    // Per-block span cursors: six dense streams, each advancing
    // one element per instruction.
    const std::uint32_t *const pc = trace.pc + base;
    const std::uint32_t *const addr = trace.addr + base;
    const OpClass *const op = trace.op + base;
    const std::uint8_t *const dep1 = trace.dep1 + base;
    const std::uint8_t *const dep2 = trace.dep2 + base;

    for (std::size_t k = 0; k < len; ++k) {
        const std::size_t i = base + k;
        const std::size_t slot = i % history;
        const OpClass o = op[k];
        const bool is_load = o == OpClass::Load;
        const bool is_store = o == OpClass::Store;

        // ------------------------------------------------ dispatch
        Cycle d = fetch_release;
        if (i >= _p.fetch_width)
            d = std::max(d, _dispatch[(i - _p.fetch_width) % history] + 1);
        if (i >= _p.ruu_size)
            d = std::max(d, _commit[(i - _p.ruu_size) % history]);
        if ((is_load || is_store) && mem_ops >= _p.lsq_size) {
            // LSQ entry frees when the older memory op's data moved.
            d = std::max(
                d, _mem_complete[(mem_ops - _p.lsq_size) % history]);
        }

        // Instruction fetch: only line changes touch the L1I.
        const Addr fetch_line = alignDown(pc[k], icache_line);
        if (fetch_line != last_fetch_line) {
            d = mem.ifetch(pc[k], d);
            last_fetch_line = fetch_line;
        }
        _dispatch[slot] = d;

        // --------------------------------------------------- ready
        Cycle ready = d + 1; // rename/dispatch pipeline stage
        if (dep1[k] && dep1[k] <= i)
            ready = std::max(ready,
                             _complete[(i - dep1[k]) % history]);
        if (dep2[k] && dep2[k] <= i)
            ready = std::max(ready,
                             _complete[(i - dep2[k]) % history]);

        // ----------------------------------------- issue & execute
        const Cycle issue = _fu.acquire(o, ready);
        Cycle complete;
        switch (o) {
          case OpClass::Load:
            complete = mem.load(addr[k], pc[k],
                                issue + _fu.latency(OpClass::Load));
            ++res.loads;
            break;
          case OpClass::Store:
            // Value is produced at issue; memory is updated at commit
            // (see below). Dependents wait only for address+data.
            complete = issue + _fu.latency(OpClass::Store);
            ++res.stores;
            break;
          default:
            complete = issue + _fu.latency(o);
            break;
        }
        _complete[slot] = complete;

        // -------------------------------------------------- commit
        Cycle commit = complete;
        if (i >= 1)
            commit = std::max(commit, _commit[(i - 1) % history]);
        if (i >= _p.commit_width)
            commit = std::max(
                commit, _commit[(i - _p.commit_width) % history] + 1);
        _commit[slot] = commit;

        // Retiring stores update the cache (posted write): the LSQ
        // entry frees at commit; the store's cache occupancy effects
        // still happen, but the core never waits on them.
        if (is_store) {
            mem.store(addr[k], pc[k], commit);
            _mem_complete[mem_ops % history] = commit;
            ++mem_ops;
        } else if (is_load) {
            _mem_complete[mem_ops % history] = complete;
            ++mem_ops;
        }

        // ------------------------------------------------ branches
        if (o == OpClass::Branch) {
            ++res.branches;
            if (deterministicMispredict(pc[k], res.branches,
                                        _p.mispredict_rate)) {
                ++res.mispredicts;
                fetch_release = std::max(
                    fetch_release, complete + _p.mispredict_penalty);
                last_fetch_line = invalid_addr; // redirected fetch
            }
        }
    }

    _run.last_fetch_line = last_fetch_line;
    _run.fetch_release = fetch_release;
    _run.mem_ops = mem_ops;
    _run.pos = base + len;
}

CoreResult
OoOCore::finishRun()
{
    CoreResult res = _run.res;
    if (_run.n == 0)
        return res;
    if (_run.pos != _run.n)
        fatal("OoOCore::finishRun: run stopped at record ", _run.pos,
              " of ", _run.n);
    res.cycles = _commit[(_run.n - 1) % history];
    if (res.cycles == 0)
        res.cycles = 1;
    res.ipc = static_cast<double>(res.instructions) /
              static_cast<double>(res.cycles);
    return res;
}

CoreResult
OoOCore::run(const TraceView &trace, Hierarchy &mem)
{
    const std::size_t n = trace.size();
    beginRun(n, mem);
    for (std::size_t base = 0; base < n; base += block_size)
        stepBlock(trace, mem, base, std::min(block_size, n - base));
    return finishRun();
}

CoreResult
OoOCore::run(const Trace &trace, Hierarchy &mem)
{
    // One-shot transposition for callers without a cached SoA; the
    // loop itself is shared with the span-based entry point, so the
    // two overloads cannot diverge.
    const TraceSoA soa(trace);
    return run(soa.view(), mem);
}

CoreResult
OoOCore::runReference(const Trace &trace, Hierarchy &mem)
{
    CoreResult res;
    res.instructions = trace.size();
    if (trace.empty())
        return res;

    _fu.reset();
    std::fill(_complete.begin(), _complete.end(), 0);
    std::fill(_dispatch.begin(), _dispatch.end(), 0);
    std::fill(_commit.begin(), _commit.end(), 0);
    std::fill(_mem_complete.begin(), _mem_complete.end(), 0);

    const std::uint64_t icache_line = mem.params().l1i.line;
    Addr last_fetch_line = invalid_addr;
    Cycle fetch_release = 0; ///< earliest fetch after a mispredict

    std::uint64_t mem_ops = 0;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &rec = trace[i];
        const std::size_t slot = i % history;

        // ------------------------------------------------ dispatch
        Cycle d = fetch_release;
        if (i >= _p.fetch_width)
            d = std::max(d, _dispatch[(i - _p.fetch_width) % history] + 1);
        if (i >= _p.ruu_size)
            d = std::max(d, _commit[(i - _p.ruu_size) % history]);
        if (rec.isMem() && mem_ops >= _p.lsq_size) {
            // LSQ entry frees when the older memory op's data moved.
            d = std::max(
                d, _mem_complete[(mem_ops - _p.lsq_size) % history]);
        }

        // Instruction fetch: only line changes touch the L1I.
        const Addr fetch_line = alignDown(rec.pc, icache_line);
        if (fetch_line != last_fetch_line) {
            d = mem.ifetch(rec.pc, d);
            last_fetch_line = fetch_line;
        }
        _dispatch[slot] = d;

        // --------------------------------------------------- ready
        Cycle ready = d + 1; // rename/dispatch pipeline stage
        if (rec.dep1 && rec.dep1 <= i)
            ready = std::max(ready,
                             _complete[(i - rec.dep1) % history]);
        if (rec.dep2 && rec.dep2 <= i)
            ready = std::max(ready,
                             _complete[(i - rec.dep2) % history]);

        // ----------------------------------------- issue & execute
        const Cycle issue = _fu.acquire(rec.op, ready);
        Cycle complete;
        switch (rec.op) {
          case OpClass::Load:
            complete = mem.load(rec.addr, rec.pc,
                                issue + _fu.latency(OpClass::Load));
            ++res.loads;
            break;
          case OpClass::Store:
            // Value is produced at issue; memory is updated at commit
            // (see below). Dependents wait only for address+data.
            complete = issue + _fu.latency(OpClass::Store);
            ++res.stores;
            break;
          default:
            complete = issue + _fu.latency(rec.op);
            break;
        }
        _complete[slot] = complete;

        // -------------------------------------------------- commit
        Cycle commit = complete;
        if (i >= 1)
            commit = std::max(commit, _commit[(i - 1) % history]);
        if (i >= _p.commit_width)
            commit = std::max(
                commit, _commit[(i - _p.commit_width) % history] + 1);
        _commit[slot] = commit;

        // Retiring stores update the cache (posted write): the LSQ
        // entry frees at commit; the store's cache occupancy effects
        // still happen, but the core never waits on them.
        if (rec.isStore()) {
            mem.store(rec.addr, rec.pc, commit);
            _mem_complete[mem_ops % history] = commit;
            ++mem_ops;
        } else if (rec.isLoad()) {
            _mem_complete[mem_ops % history] = complete;
            ++mem_ops;
        }

        // ------------------------------------------------ branches
        if (rec.op == OpClass::Branch) {
            ++res.branches;
            if (deterministicMispredict(rec.pc, res.branches,
                                        _p.mispredict_rate)) {
                ++res.mispredicts;
                fetch_release = std::max(
                    fetch_release, complete + _p.mispredict_penalty);
                last_fetch_line = invalid_addr; // redirected fetch
            }
        }
    }

    res.cycles = _commit[(trace.size() - 1) % history];
    if (res.cycles == 0)
        res.cycles = 1;
    res.ipc = static_cast<double>(res.instructions) /
              static_cast<double>(res.cycles);
    return res;
}

} // namespace microlib
