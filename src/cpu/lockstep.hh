/**
 * @file
 * Lockstep multi-variant execution: advance several simulations over
 * one trace pass.
 *
 * A sensitivity sweep runs V near-identical configurations over the
 * same trace window. Executed independently, sweep cost scales as
 * V x trace length: every variant re-streams (and re-decodes) the
 * whole SoA trace through its own OoOCore::run pass. A LockstepGroup
 * instead takes ONE TraceView and V (core, hierarchy) members and
 * advances all V simulations block-by-block over a single pass: each
 * fixed-size block of the six parallel trace arrays is touched once
 * — hot in cache — while V state machines consume it, so trace decode
 * and memory traffic amortize across the group and only cache/core
 * state multiplies.
 *
 * Members never interact: each owns its core, hierarchy, mechanism
 * and statistics, and block boundaries carry no model state (see
 * OoOCore::stepBlock), so every member's CoreResult and stats are
 * bit-identical to the same configuration run alone — the per-variant
 * path is the oracle, asserted by tests/test_lockstep.cc. run() is
 * allocation-free in steady state; the member table is sized by
 * add() at setup time.
 */

#ifndef MICROLIB_CPU_LOCKSTEP_HH
#define MICROLIB_CPU_LOCKSTEP_HH

#include <cstddef>
#include <vector>

#include "cpu/ooo_core.hh"

namespace microlib
{

class Hierarchy;

/** V simulations advanced per block over one shared trace pass. */
class LockstepGroup
{
  public:
    /** Enroll a member; @p core and @p mem must outlive the group.
     *  May allocate (setup, not the hot path). */
    void add(OoOCore &core, Hierarchy &mem);

    std::size_t size() const { return _members.size(); }
    bool empty() const { return _members.empty(); }

    /** Drop all members (the group can be refilled and rerun). */
    void clear();

    /**
     * One pass over @p trace: beginRun every member, advance all of
     * them one OoOCore::blockSize() block at a time, finish. Results
     * are retrievable per member via result() until the next run().
     * Allocation-free.
     */
    void run(const TraceView &trace);

    /** Result of member @p i from the last run(). */
    const CoreResult &result(std::size_t i) const
    {
        return _results[i];
    }

  private:
    struct Member
    {
        OoOCore *core = nullptr;
        Hierarchy *mem = nullptr;
    };

    std::vector<Member> _members;
    std::vector<CoreResult> _results;
};

} // namespace microlib

#endif // MICROLIB_CPU_LOCKSTEP_HH
