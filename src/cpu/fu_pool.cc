#include "cpu/fu_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

FuPool::FuPool(const FuPoolParams &p) : _p(p)
{
    if (!p.int_alu || !p.int_mult || !p.fp_alu || !p.fp_mult ||
        !p.ls_units)
        fatal("every functional unit class needs at least one unit");
    _units[0].resize(p.int_alu);
    _units[1].resize(p.int_mult);
    _units[2].resize(p.fp_alu);
    _units[3].resize(p.fp_mult);
    _units[4].resize(p.ls_units);
    reset();
}

void
FuPool::reset()
{
    for (auto &cls : _units)
        std::fill(cls.begin(), cls.end(), 0);
}

unsigned
FuPool::unitClass(OpClass op) const
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        return 0;
      case OpClass::IntMult:
        return 1;
      case OpClass::FpAlu:
        return 2;
      case OpClass::FpMult:
        return 3;
      case OpClass::Load:
      case OpClass::Store:
        return 4;
    }
    panic("unknown op class");
}

Cycle
FuPool::issueInterval(OpClass op) const
{
    // Multipliers accept a new op every other cycle; everything else
    // is fully pipelined.
    return (op == OpClass::IntMult || op == OpClass::FpMult) ? 2 : 1;
}

Cycle
FuPool::acquire(OpClass op, Cycle ready)
{
    auto &cls = _units[unitClass(op)];
    std::size_t best = 0;
    for (std::size_t i = 1; i < cls.size(); ++i)
        if (cls[i] < cls[best])
            best = i;
    const Cycle issue = std::max(ready, cls[best]);
    cls[best] = issue + issueInterval(op);
    return issue;
}

Cycle
FuPool::latency(OpClass op) const
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        return _p.int_alu_latency;
      case OpClass::IntMult:
        return _p.int_mult_latency;
      case OpClass::FpAlu:
        return _p.fp_alu_latency;
      case OpClass::FpMult:
        return _p.fp_mult_latency;
      case OpClass::Load:
      case OpClass::Store:
        return _p.agen_latency;
    }
    panic("unknown op class");
}

} // namespace microlib
