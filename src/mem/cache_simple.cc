#include "mem/cache_simple.hh"

#include "sim/logging.hh"

namespace microlib
{

const std::vector<RealismFeature> &
allRealismFeatures()
{
    static const std::vector<RealismFeature> features = {
        RealismFeature::FiniteMshr,
        RealismFeature::PipelineStalls,
        RealismFeature::LsqBackpressure,
        RealismFeature::RefillPorts,
    };
    return features;
}

std::string
realismFeatureName(RealismFeature f)
{
    switch (f) {
      case RealismFeature::FiniteMshr:
        return "finite MSHR";
      case RealismFeature::PipelineStalls:
        return "pipeline stalls";
      case RealismFeature::LsqBackpressure:
        return "LSQ back-pressure";
      case RealismFeature::RefillPorts:
        return "refills use ports";
    }
    panic("unknown realism feature");
}

CacheParams
makeSimpleScalarLike(CacheParams p)
{
    p.finite_mshr = false;
    p.pipeline_stalls = false;
    p.refill_uses_ports = false;
    // SimpleScalar does model demand ports, so port_contention stays.
    return p;
}

CacheParams
withRealism(CacheParams p, const std::vector<RealismFeature> &enabled)
{
    p = makeSimpleScalarLike(p);
    for (const auto f : enabled) {
        switch (f) {
          case RealismFeature::FiniteMshr:
            p.finite_mshr = true;
            break;
          case RealismFeature::PipelineStalls:
            p.pipeline_stalls = true;
            break;
          case RealismFeature::LsqBackpressure:
            // Modeled jointly with pipeline stalls: acceptance delays
            // are what the LSQ observes. The separate enum value lets
            // experiments report the step distinctly.
            p.pipeline_stalls = true;
            break;
          case RealismFeature::RefillPorts:
            p.refill_uses_ports = true;
            break;
        }
    }
    return p;
}

} // namespace microlib
