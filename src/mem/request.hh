/**
 * @file
 * Memory request types shared across the hierarchy.
 *
 * Timing in MicroLib's hierarchy is expressed with timestamp algebra:
 * a request enters a device at a cycle and the device returns the
 * cycle its data is available, mutating internal resource-availability
 * state (ports, MSHRs, buses, DRAM banks) along the way. This keeps
 * trace-driven simulation fast while modeling the contention effects
 * the paper shows matter (Sections 2.2, 3.3).
 */

#ifndef MICROLIB_MEM_REQUEST_HH
#define MICROLIB_MEM_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace microlib
{

/** Why a request was made; devices treat kinds differently. */
enum class AccessKind : std::uint8_t
{
    DemandRead,   ///< load (or ifetch) the core is waiting on
    DemandWrite,  ///< store retiring from the core
    Writeback,    ///< dirty line eviction (posted, not waited on)
    Prefetch,     ///< mechanism-generated fill
};

/** True for kinds originating from the core. */
constexpr bool
isDemand(AccessKind kind)
{
    return kind == AccessKind::DemandRead || kind == AccessKind::DemandWrite;
}

/** One request presented to a memory device. */
struct MemRequest
{
    Addr addr = 0;          ///< byte address (devices align internally)
    AccessKind kind = AccessKind::DemandRead;
    Cycle when = 0;         ///< cycle the request is presented
    Addr pc = 0;            ///< originating instruction (PC-indexed
                            ///< mechanisms: SP, GHB, DBCP)
};

/**
 * Abstract timing sink: caches stack on top of each other and finally
 * on a memory model through this interface.
 */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /**
     * Present @p req; returns the cycle the requested data is
     * available at this device's boundary. Writebacks are posted:
     * the return value is when the device accepted the write.
     */
    virtual Cycle access(const MemRequest &req) = 0;

    /** Device name for diagnostics. */
    virtual const char *deviceName() const = 0;
};

} // namespace microlib

#endif // MICROLIB_MEM_REQUEST_HH
