#include "mem/resource.hh"

#include "sim/logging.hh"

namespace microlib
{

ResourceSchedule::ResourceSchedule(unsigned capacity_per_cycle,
                                   std::size_t window)
    : _capacity(capacity_per_cycle), _slots(window)
{
    if (capacity_per_cycle == 0 || window == 0)
        fatal("ResourceSchedule needs capacity and window");
}

Cycle
ResourceSchedule::acquire(Cycle t)
{
    for (Cycle c = t;; ++c) {
        Slot &s = _slots[c % _slots.size()];
        if (s.cycle != c) {
            // Stale or fresh slot: claim it for cycle c.
            s.cycle = c;
            s.used = 1;
            return c;
        }
        if (s.used < _capacity) {
            ++s.used;
            return c;
        }
    }
}

unsigned
ResourceSchedule::booked(Cycle t) const
{
    const Slot &s = _slots[t % _slots.size()];
    return s.cycle == t ? s.used : 0;
}

} // namespace microlib
