/**
 * @file
 * Shared bus with beat-granular occupancy.
 *
 * Two instances appear in the baseline system (Table 1): the 32-byte
 * L1/L2 bus at core frequency and the 64-byte 400 MHz front-side bus
 * (5 CPU cycles per beat). Prefetch traffic competes with demand
 * traffic here, which is how prefetcher-induced slowdowns (lucas
 * under GHB, Figure 8) arise.
 */

#ifndef MICROLIB_MEM_BUS_HH
#define MICROLIB_MEM_BUS_HH

#include <string>

#include "mem/resource.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace microlib
{

/** Bus configuration. */
struct BusParams
{
    std::string name = "bus";
    std::uint64_t bytes_per_beat = 32;
    Cycle cycles_per_beat = 1;   ///< CPU cycles per bus beat
};

/**
 * Split-transaction bus: each beat books one bus cycle; beats of
 * different transfers may interleave, and a transfer booked in the
 * future does not starve an earlier-arriving one (backfill).
 */
class Bus
{
  public:
    explicit Bus(const BusParams &p);

    /**
     * Occupy the bus for @p bytes starting no earlier than @p when.
     * @return the cycle the transfer completes.
     */
    Cycle transfer(Cycle when, std::uint64_t bytes);

    const BusParams &params() const { return _p; }
    const Counter &transfers() const { return _transfers; }
    const Counter &busyCycles() const { return _busy_cycles; }

  private:
    BusParams _p;
    ResourceSchedule _beats;
    Counter _transfers;
    Counter _busy_cycles;
};

} // namespace microlib

#endif // MICROLIB_MEM_BUS_HH
