/**
 * @file
 * Miss Status Holding Register (MSHR) file.
 *
 * SimpleScalar's miss address file is unlimited; the paper shows the
 * difference a finite one makes (Figure 9). This model tracks one
 * entry per in-flight missing line with a bounded number of merged
 * reads per entry; allocation stalls when the file is full, and
 * secondary misses beyond the merge limit wait for the refill.
 */

#ifndef MICROLIB_MEM_MSHR_HH
#define MICROLIB_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace microlib
{

/** Outcome of presenting a miss to the MSHR file. */
struct MshrOutcome
{
    Cycle start = 0;       ///< when the miss could begin service
    bool merged = false;   ///< true: ride an existing entry
    Cycle data_ready = 0;  ///< merged only: when the refill lands
};

/** Finite (or infinite) MSHR file using timestamp algebra. */
class MshrFile
{
  public:
    /**
     * @param entries entry count (ignored when infinite)
     * @param reads_per_entry max merged reads per entry
     * @param infinite SimpleScalar-like unlimited file
     */
    MshrFile(unsigned entries, unsigned reads_per_entry, bool infinite);

    /**
     * Present a miss on @p line at @p when.
     *
     * If an in-flight entry covers the line: merge when capacity
     * remains (outcome.merged, data_ready set to the entry's refill
     * time if already known); otherwise the miss must wait for the
     * entry to retire and then allocates fresh.
     *
     * A fresh allocation may stall until an entry frees.
     */
    MshrOutcome allocate(Addr line, Cycle when);

    /** Record the refill completion for the entry covering @p line. */
    void complete(Addr line, Cycle data_ready);

    /** In-flight entries at @p when (for tests / occupancy stats). */
    unsigned occupancy(Cycle when) const;

    bool infinite() const { return _infinite; }
    unsigned entries() const { return _entries; }

    /** Number of allocations that had to wait for a free entry. */
    const Counter &fullStalls() const { return _full_stalls; }
    /** Number of merged (secondary) misses. */
    const Counter &merges() const { return _merges; }

  private:
    struct Entry
    {
        Addr line = invalid_addr;
        Cycle busy_until = 0;   ///< refill time; `never` while unknown
        Cycle allocated_at = 0;
        unsigned reads = 0;
        bool active = false;
    };

    unsigned _entries;
    unsigned _reads_per_entry;
    bool _infinite;
    std::vector<Entry> _slots;

    Counter _full_stalls;
    Counter _merges;

    Entry *find(Addr line, Cycle when);
    Entry *acquire(Cycle &when);
};

} // namespace microlib

#endif // MICROLIB_MEM_MSHR_HH
