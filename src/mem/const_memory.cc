#include "mem/const_memory.hh"

// ConstMemory is header-only; this translation unit anchors the
// component in the library so it appears as a distinct module.
