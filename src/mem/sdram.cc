#include "mem/sdram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace microlib
{

void
SdramParams::scaleTimings(double factor)
{
    auto scale = [factor](Cycle c) {
        return static_cast<Cycle>(
            std::max(1.0, std::round(static_cast<double>(c) * factor)));
    };
    ras_to_ras = scale(ras_to_ras);
    ras_active = scale(ras_active);
    ras_to_cas = scale(ras_to_cas);
    cas_latency = scale(cas_latency);
    ras_precharge = scale(ras_precharge);
    ras_cycle = scale(ras_cycle);
}

Sdram::Sdram(const SdramParams &p, Bus *fsb) : _p(p), _fsb(fsb),
    _banks(p.banks)
{
    if (!isPowerOfTwo(p.banks))
        fatal("SDRAM '", p.name, "': bank count must be a power of two");
    if (p.queue_entries == 0)
        fatal("SDRAM '", p.name, "': controller queue needs entries");
    if (p.scheduler_rows == 0)
        fatal("SDRAM '", p.name, "': scheduler needs at least one row");
    for (auto &b : _banks)
        b.slots.resize(p.scheduler_rows);
    // The controller queue never exceeds queue_entries: reserving it
    // here keeps the per-access admit/retire path allocation-free.
    _queue.reserve(p.queue_entries);
}

Sdram::Decoded
Sdram::decode(Addr addr) const
{
    // Line-interleaved mapping: consecutive cache lines go to
    // consecutive banks, rows span (columns x column_bytes) bytes of
    // one bank.
    const std::uint64_t line_idx = addr / _p.line_bytes;
    const std::uint64_t row_bytes = _p.columns * _p.column_bytes;
    const std::uint64_t lines_per_row = row_bytes / _p.line_bytes;

    Decoded d;
    d.bank = static_cast<unsigned>(line_idx % _p.banks);
    const std::uint64_t in_bank = line_idx / _p.banks;
    d.row = (in_bank / lines_per_row) % _p.rows;
    d.column = (in_bank % lines_per_row) *
               (_p.line_bytes / _p.column_bytes);

    if (_p.mapping == DramMapping::PermutationInterleave) {
        // Zhang/Zhu/Zhang MICRO'00: XOR low row bits into the bank
        // index so same-stride streams spread across banks instead of
        // ping-ponging one row buffer.
        d.bank = static_cast<unsigned>(
            (d.bank ^ (d.row & (_p.banks - 1))) % _p.banks);
    }
    return d;
}

Cycle
Sdram::admit(Cycle when)
{
    // Drop retired entries.
    std::erase_if(_queue, [when](Cycle c) { return c <= when; });
    if (_queue.size() < _p.queue_entries)
        return when;

    // Wait for the oldest in-flight request to complete.
    auto earliest = std::min_element(_queue.begin(), _queue.end());
    const Cycle start = std::max(when, *earliest);
    _queue.erase(earliest);
    ++queue_stalls;
    return start;
}

void
Sdram::retire(Cycle completion)
{
    _queue.push_back(completion);
}

Cycle
Sdram::access(const MemRequest &req)
{
    const bool is_write = req.kind == AccessKind::DemandWrite ||
                          req.kind == AccessKind::Writeback;
    if (is_write)
        ++writes;
    else
        ++reads;

    Cycle t = admit(req.when);

    const Decoded d = decode(req.addr);
    BankState &bank = _banks[d.bank];

    Cycle cmd = std::max(t, bank.ready);

    // Scheduler row batching: a row recently serviced in this bank is
    // treated as still open — the controller queue groups same-row
    // requests back-to-back even when streams interleave.
    RowSlot *hit_slot = nullptr;
    for (auto &slot : bank.slots) {
        if (slot.valid && slot.row == d.row &&
            cmd - slot.last_use <= _p.scheduler_window) {
            hit_slot = &slot;
            break;
        }
    }

    if (hit_slot) {
        // Row hit: CAS only.
        ++row_hits;
        hit_slot->last_use = cmd;
    } else {
        // Need an activate; maybe a precharge first.
        Cycle act = cmd;
        if (bank.any_open) {
            ++row_conflicts;
            ++precharges;
            // Precharge may not start before tRAS after activation.
            const Cycle pre_start =
                std::max(cmd, bank.last_activate + _p.ras_active);
            act = pre_start + _p.ras_precharge;
        } else {
            ++row_empty;
        }
        // tRC: activate-to-activate in the same bank;
        // tRRD: activate-to-activate across banks.
        if (bank.ever_activated)
            act = std::max(act, bank.last_activate + _p.ras_cycle);
        if (_any_activated)
            act = std::max(act, _last_activate_any + _p.ras_to_ras);
        ++activates;
        bank.last_activate = act;
        bank.ever_activated = true;
        _last_activate_any = act;
        _any_activated = true;
        bank.any_open = true;

        // Install in the least-recently-used scheduler slot.
        RowSlot *victim = &bank.slots[0];
        for (auto &slot : bank.slots) {
            if (!slot.valid) {
                victim = &slot;
                break;
            }
            if (slot.last_use < victim->last_use)
                victim = &slot;
        }
        victim->row = d.row;
        victim->valid = true;
        victim->last_use = act;

        cmd = act + _p.ras_to_cas;
    }

    const Cycle data_at_pins = cmd + _p.cas_latency;

    // Data burst over the shared front-side bus.
    Cycle done = data_at_pins;
    if (_fsb)
        done = _fsb->transfer(data_at_pins, _p.line_bytes);

    bank.ready = cmd + 1; // command bus pipelining within the bank

    retire(done);
    if (!is_write)
        latency.sample(static_cast<double>(done - req.when));
    return done;
}

void
Sdram::registerStats(StatSet &stats) const
{
    const std::string n = _p.name;
    stats.registerCounter(n + ".reads", &reads);
    stats.registerCounter(n + ".writes", &writes);
    stats.registerCounter(n + ".row_hits", &row_hits);
    stats.registerCounter(n + ".row_conflicts", &row_conflicts);
    stats.registerCounter(n + ".row_empty", &row_empty);
    stats.registerCounter(n + ".precharges", &precharges);
    stats.registerCounter(n + ".activates", &activates);
    stats.registerCounter(n + ".queue_stalls", &queue_stalls);
    stats.registerAverage(n + ".latency", &latency);
}

} // namespace microlib
