/**
 * @file
 * Replacement policy state for set-associative arrays.
 *
 * Both the caches and several mechanism side structures (victim
 * caches, correlation tables) need LRU bookkeeping; this class keeps
 * it in one place and one test target.
 */

#ifndef MICROLIB_MEM_REPLACEMENT_HH
#define MICROLIB_MEM_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace microlib
{

/**
 * LRU state for an array of sets. Each way holds a last-use stamp;
 * the victim is the smallest stamp among valid ways, preferring
 * invalid ways first. At most 64 ways per set: occupancy travels as
 * a bit mask so the cache's miss path never heap-allocates (the old
 * std::vector<bool> parameter cost one allocation per install).
 */
class LruState
{
  public:
    LruState(std::size_t sets, std::size_t ways);

    /** Mark (set, way) used at logical time (an internal sequence). */
    void touch(std::size_t set, std::size_t way);

    /** Way to evict in @p set. Bit w of @p valid_mask is set iff way
     *  w holds a valid line; bits at and above ways() must be zero. */
    std::size_t victim(std::size_t set,
                       std::uint64_t valid_mask) const;

    /** Least-recently-used way assuming all ways valid. */
    std::size_t lruWay(std::size_t set) const;

    std::size_t sets() const { return _sets; }
    std::size_t ways() const { return _ways; }

  private:
    std::size_t _sets;
    std::size_t _ways;
    std::uint64_t _tick = 0;
    std::vector<std::uint64_t> _stamps; // sets x ways
};

} // namespace microlib

#endif // MICROLIB_MEM_REPLACEMENT_HH
