/**
 * @file
 * Replacement policy state for set-associative arrays.
 *
 * Both the caches and several mechanism side structures (victim
 * caches, correlation tables) need LRU bookkeeping; this class keeps
 * it in one place and one test target.
 */

#ifndef MICROLIB_MEM_REPLACEMENT_HH
#define MICROLIB_MEM_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace microlib
{

/**
 * LRU state for an array of sets. Each way holds a last-use stamp;
 * the victim is the smallest stamp among valid ways, preferring
 * invalid ways first.
 */
class LruState
{
  public:
    LruState(std::size_t sets, std::size_t ways);

    /** Mark (set, way) used at logical time (an internal sequence). */
    void touch(std::size_t set, std::size_t way);

    /** Way to evict in @p set given validity bits from the caller. */
    std::size_t victim(std::size_t set,
                       const std::vector<bool> &valid_ways) const;

    /** Least-recently-used way assuming all ways valid. */
    std::size_t lruWay(std::size_t set) const;

    std::size_t sets() const { return _sets; }
    std::size_t ways() const { return _ways; }

  private:
    std::size_t _sets;
    std::size_t _ways;
    std::uint64_t _tick = 0;
    std::vector<std::uint64_t> _stamps; // sets x ways
};

} // namespace microlib

#endif // MICROLIB_MEM_REPLACEMENT_HH
