#include "mem/hierarchy.hh"

#include "sim/logging.hh"

namespace microlib
{

Hierarchy::Hierarchy(const HierarchyParams &p,
                     std::shared_ptr<const MemoryImage> image)
    : _p(p), _image(std::move(image))
{
    _fsb = std::make_unique<Bus>(p.fsb);
    _l1l2_bus = std::make_unique<Bus>(p.l1l2_bus);

    if (p.memory == MemoryModelKind::Sdram)
        _sdram = std::make_unique<Sdram>(p.sdram, _fsb.get());
    else
        _constmem = std::make_unique<ConstMemory>(p.const_latency);

    _l2 = std::make_unique<Cache>(p.l2, memoryDevice(), nullptr);
    _l1d = std::make_unique<Cache>(p.l1d, _l2.get(), _l1l2_bus.get());
    if (p.model_icache)
        _l1i = std::make_unique<Cache>(p.l1i, _l2.get(),
                                       _l1l2_bus.get());

    setClient(nullptr); // initialize both caches' hook shims
}

Hierarchy::~Hierarchy() = default;

void
Hierarchy::setClient(HierarchyClient *client)
{
    _client = client;
    // The caches dispatch to the client through their own sealed
    // shims — no per-event indirection through the Hierarchy.
    _l1d->bindClient(client, CacheLevel::L1D, _image.get());
    _l2->bindClient(client, CacheLevel::L2, _image.get());
}

MemDevice *
Hierarchy::memoryDevice()
{
    if (_sdram)
        return _sdram.get();
    return _constmem.get();
}

Cycle
Hierarchy::load(Addr addr, Addr pc, Cycle when)
{
    MemRequest req;
    req.addr = addr;
    req.kind = AccessKind::DemandRead;
    req.when = when;
    req.pc = pc;
    return _l1d->access(req);
}

Cycle
Hierarchy::store(Addr addr, Addr pc, Cycle when)
{
    MemRequest req;
    req.addr = addr;
    req.kind = AccessKind::DemandWrite;
    req.when = when;
    req.pc = pc;
    return _l1d->access(req);
}

Cycle
Hierarchy::ifetch(Addr pc, Cycle when)
{
    if (!_l1i)
        return when + 1;
    MemRequest req;
    req.addr = pc;
    req.kind = AccessKind::DemandRead;
    req.when = when;
    req.pc = pc;
    return _l1i->access(req);
}

Cycle
Hierarchy::prefetchIntoL2(Addr addr, Addr pc, Cycle now)
{
    MemRequest req;
    req.addr = addr;
    req.kind = AccessKind::Prefetch;
    req.when = now;
    req.pc = pc;
    return _l2->access(req);
}

Cycle
Hierarchy::fetchForL1Buffer(Addr addr, Cycle now)
{
    // The request crosses the L1/L2 bus, queries the L2 (fetching
    // from memory on an L2 miss) and the line travels back. It never
    // enters the L1 array: mechanisms keep it in their own buffers.
    Cycle t = _l1l2_bus->transfer(now, 8);

    MemRequest req;
    req.addr = addr;
    req.kind = AccessKind::Prefetch;
    req.when = t;
    const Cycle ready = _l2->access(req);

    return _l1l2_bus->transfer(ready, _p.l1d.line);
}

std::vector<Word>
Hierarchy::readLine(Addr addr, CacheLevel lvl) const
{
    const std::uint64_t bytes =
        lvl == CacheLevel::L1D ? _p.l1d.line : _p.l2.line;
    std::vector<Word> words;
    if (_image)
        _image->readLine(addr, bytes, words);
    else
        words.assign(bytes / 8, 0);
    return words;
}

void
Hierarchy::registerStats(StatSet &stats) const
{
    _l1d->registerStats(stats);
    if (_l1i)
        _l1i->registerStats(stats);
    _l2->registerStats(stats);
    if (_sdram)
        _sdram->registerStats(stats);
    if (_constmem)
        _constmem->registerStats(stats);
}

} // namespace microlib
