/**
 * @file
 * SDRAM timing model (paper Table 1, Section 3.3).
 *
 * The paper replaces SimpleScalar's constant-latency memory with a
 * banked SDRAM behind a 400 MHz front-side bus: open-page row
 * buffers, RAS/CAS/precharge timings (given in CPU cycles), a
 * 32-entry controller queue, and a bank-interleaved address mapping
 * with an optional permutation scheme (Zhang et al.) that reduces
 * row-buffer conflicts. The result is the benchmark- and
 * mechanism-dependent latency spread of Figure 8 (87 CPU cycles on
 * gzip to 389 on lucas for the baseline).
 */

#ifndef MICROLIB_MEM_SDRAM_HH
#define MICROLIB_MEM_SDRAM_HH

#include <string>
#include <vector>

#include "mem/bus.hh"
#include "mem/request.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace microlib
{

/** How physical addresses map onto (bank, row, column). */
enum class DramMapping
{
    LineInterleave,        ///< consecutive lines round-robin over banks
    PermutationInterleave, ///< + XOR of row bits into the bank index
};

/** SDRAM configuration; defaults are the paper's Table 1 values,
 *  with timings in CPU cycles (2 GHz core). */
struct SdramParams
{
    std::string name = "dram";
    unsigned banks = 4;
    unsigned rows = 8192;
    unsigned columns = 1024;
    std::uint64_t column_bytes = 8;   ///< bytes per column access

    Cycle ras_to_ras = 20;      ///< tRRD, across banks
    Cycle ras_active = 80;      ///< tRAS, activate to precharge
    Cycle ras_to_cas = 30;      ///< tRCD
    Cycle cas_latency = 30;     ///< CL
    Cycle ras_precharge = 30;   ///< tRP
    Cycle ras_cycle = 110;      ///< tRC, activate to activate (same bank)

    unsigned queue_entries = 32;
    DramMapping mapping = DramMapping::PermutationInterleave;

    /**
     * Controller scheduling (Green et al., retained by the paper
     * because it "significantly reduces conflicts in row buffers"):
     * the queue reorders requests so that accesses to the same row
     * are serviced back-to-back. Modeled as this many concurrently
     * "batched" rows per bank; 1 = plain in-order open-page.
     */
    unsigned scheduler_rows = 4;
    /** A batched row goes stale after this many idle cycles. */
    Cycle scheduler_window = 2000;

    /** Transfer granularity seen from the bus side (L2 line). */
    std::uint64_t line_bytes = 64;

    /** Uniformly scale all timing parameters (the Figure 8
     *  "70-cycle SDRAM" point scales CAS and friends down). */
    void scaleTimings(double factor);
};

/** Open-page SDRAM with a shared data bus and controller queue. */
class Sdram : public MemDevice
{
  public:
    /**
     * @param p timing/geometry
     * @param fsb front-side bus the data travels over (owned by the
     *        hierarchy; shared with other DRAM traffic)
     */
    Sdram(const SdramParams &p, Bus *fsb);

    Cycle access(const MemRequest &req) override;
    const char *deviceName() const override { return _p.name.c_str(); }

    void registerStats(StatSet &stats) const;

    const SdramParams &params() const { return _p; }

    // Statistics
    Counter reads;
    Counter writes;
    Counter row_hits;
    Counter row_conflicts; ///< had to precharge an open row
    Counter row_empty;     ///< bank had no open row
    Counter precharges;
    Counter activates;
    Counter queue_stalls;
    Average latency;       ///< request-to-data CPU cycles (reads)

  private:
    SdramParams _p;
    Bus *_fsb;

    struct RowSlot
    {
        std::uint64_t row = 0;
        Cycle last_use = 0;
        bool valid = false;
    };

    struct BankState
    {
        Cycle ready = 0;          ///< bank command ready time
        Cycle last_activate = 0;
        bool ever_activated = false;
        bool any_open = false;
        std::vector<RowSlot> slots; ///< scheduler-batched rows
    };

    std::vector<BankState> _banks;
    Cycle _last_activate_any = 0;
    bool _any_activated = false;
    std::vector<Cycle> _queue; ///< completion times of queued requests

    struct Decoded
    {
        unsigned bank;
        std::uint64_t row;
        std::uint64_t column;
    };

    Decoded decode(Addr addr) const;

    /** Admit into the controller queue; returns possibly delayed
     *  start time. */
    Cycle admit(Cycle when);
    void retire(Cycle completion);
};

} // namespace microlib

#endif // MICROLIB_MEM_SDRAM_HH
