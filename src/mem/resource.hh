/**
 * @file
 * Per-cycle resource schedule with backfill.
 *
 * Timestamp-algebra models present requests in program order, but the
 * timestamps themselves are not monotonic: a refill may book a cache
 * port far in the future while the next demand access wants a port
 * *now*. A single next-free timestamp would starve the earlier
 * request behind the later booking; this schedule instead tracks how
 * many acquisitions landed on each cycle (over a sliding window) so a
 * request can claim any gap where capacity remains — which is what
 * pipelined ports do in hardware.
 */

#ifndef MICROLIB_MEM_RESOURCE_HH
#define MICROLIB_MEM_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace microlib
{

/** Sliding-window cycle-capacity schedule. */
class ResourceSchedule
{
  public:
    /**
     * @param capacity_per_cycle simultaneous acquisitions per cycle
     * @param window how far apart bookings may be without aliasing;
     *        must exceed the largest plausible latency spread
     */
    explicit ResourceSchedule(unsigned capacity_per_cycle,
                              std::size_t window = 8192);

    /** Book the first cycle >= @p t with spare capacity. */
    Cycle acquire(Cycle t);

    /** Bookings currently recorded for cycle @p t (for tests). */
    unsigned booked(Cycle t) const;

    unsigned capacity() const { return _capacity; }

  private:
    struct Slot
    {
        Cycle cycle = never;
        std::uint16_t used = 0;
    };

    unsigned _capacity;
    std::vector<Slot> _slots;
};

} // namespace microlib

#endif // MICROLIB_MEM_RESOURCE_HH
