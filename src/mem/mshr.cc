#include "mem/mshr.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

MshrFile::MshrFile(unsigned entries, unsigned reads_per_entry,
                   bool infinite)
    : _entries(entries), _reads_per_entry(reads_per_entry),
      _infinite(infinite)
{
    if (!infinite && entries == 0)
        fatal("finite MSHR file needs at least one entry");
    _slots.resize(infinite ? 64 : entries);
}

MshrFile::Entry *
MshrFile::find(Addr line, Cycle when)
{
    for (auto &e : _slots) {
        if (!e.active || e.line != line)
            continue;
        // An entry is live until its refill lands (busy_until==never
        // means the refill time is not known yet, i.e. in flight).
        if (e.busy_until == never || e.busy_until > when)
            return &e;
    }
    return nullptr;
}

MshrFile::Entry *
MshrFile::acquire(Cycle &when)
{
    // Free slot: retired (busy_until <= when) or never used.
    Entry *oldest = nullptr;
    for (auto &e : _slots) {
        if (!e.active || (e.busy_until != never && e.busy_until <= when)) {
            e.active = false;
            return &e;
        }
        if (!oldest || (e.busy_until != never &&
                        (oldest->busy_until == never ||
                         e.busy_until < oldest->busy_until)))
            oldest = &e;
    }

    if (_infinite) {
        // Grow: the SimpleScalar miss address file never fills.
        _slots.push_back(Entry{});
        return &_slots.back();
    }

    // Stall until the earliest in-flight entry retires.
    ++_full_stalls;
    if (!oldest || oldest->busy_until == never)
        panic("MSHR full of entries with unknown completion");
    when = std::max(when, oldest->busy_until);
    oldest->active = false;
    return oldest;
}

MshrOutcome
MshrFile::allocate(Addr line, Cycle when)
{
    MshrOutcome out;

    if (Entry *e = find(line, when)) {
        if (e->reads < _reads_per_entry || _infinite) {
            ++e->reads;
            ++_merges;
            out.merged = true;
            out.start = when;
            out.data_ready =
                e->busy_until == never ? when : e->busy_until;
            return out;
        }
        // Merge capacity exhausted: wait for the refill, then the
        // request allocates a fresh entry (it will hit by then in
        // the cache; timing-wise we charge the wait).
        if (e->busy_until != never)
            when = std::max(when, e->busy_until);
    }

    Entry *e = acquire(when);
    e->active = true;
    e->line = line;
    e->allocated_at = when;
    e->busy_until = never;
    e->reads = 1;
    out.start = when;
    out.merged = false;
    return out;
}

void
MshrFile::complete(Addr line, Cycle data_ready)
{
    for (auto &e : _slots) {
        if (e.active && e.line == line && e.busy_until == never) {
            e.busy_until = data_ready;
            return;
        }
    }
    // Completion for an unknown entry is a modeling bug.
    panic("MSHR completion without allocation, line ", line);
}

unsigned
MshrFile::occupancy(Cycle when) const
{
    unsigned n = 0;
    for (const auto &e : _slots)
        if (e.active && (e.busy_until == never || e.busy_until > when))
            ++n;
    return n;
}

} // namespace microlib
