/**
 * @file
 * SimpleScalar-like cache configuration presets.
 *
 * The paper's Figure 1 measures how far SimpleScalar's idealized
 * cache model sits from the MicroLib one, then closes the gap by
 * aligning four modeled behaviours. These helpers produce the
 * corresponding CacheParams so experiments can sweep the alignment
 * steps one by one.
 */

#ifndef MICROLIB_MEM_CACHE_SIMPLE_HH
#define MICROLIB_MEM_CACHE_SIMPLE_HH

#include <string>
#include <vector>

#include "mem/cache.hh"

namespace microlib
{

/** The four modeling differences of Section 2.2, in the paper's
 *  order of discussion. */
enum class RealismFeature
{
    FiniteMshr,      ///< bounded miss address file
    PipelineStalls,  ///< requests can delay following requests
    LsqBackpressure, ///< cache stalls propagate into the core's LSQ
    RefillPorts,     ///< refills occupy real cache ports
};

/** All four features, in presentation order. */
const std::vector<RealismFeature> &allRealismFeatures();

/** Human-readable feature name. */
std::string realismFeatureName(RealismFeature f);

/** Strip @p p down to the SimpleScalar idealized model. */
CacheParams makeSimpleScalarLike(CacheParams p);

/** Enable exactly the features in @p enabled on an idealized model. */
CacheParams withRealism(CacheParams p,
                        const std::vector<RealismFeature> &enabled);

} // namespace microlib

#endif // MICROLIB_MEM_CACHE_SIMPLE_HH
