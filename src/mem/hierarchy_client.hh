/**
 * @file
 * Mechanism-facing cache event interface.
 *
 * HierarchyClient is what the fourteen data-cache mechanisms (and any
 * user-defined one) implement to observe the memory system: demand
 * accesses with hit/miss outcome, miss-probes into side structures,
 * evictions and refills. It lives in its own header, below both the
 * cache model and the Hierarchy, so the cache's inlined hook shim
 * (CacheHookShim in mem/cache.hh) can dispatch straight into the
 * client without pulling the whole hierarchy in.
 */

#ifndef MICROLIB_MEM_HIERARCHY_CLIENT_HH
#define MICROLIB_MEM_HIERARCHY_CLIENT_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "sim/types.hh"

namespace microlib
{

/** Cache level tag used in client callbacks. */
enum class CacheLevel : std::uint8_t { L1D, L2 };

/** Mechanism-facing event interface (implemented in src/core). */
class HierarchyClient
{
  public:
    virtual ~HierarchyClient() = default;

    virtual void
    cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                bool first_use)
    {
        (void)lvl; (void)req; (void)hit; (void)first_use;
    }

    /** Side-structure probe on a demand miss (victim caches,
     *  prefetch buffers). Return true to supply the line after
     *  @p extra_latency cycles. */
    virtual bool
    cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                   Cycle &extra_latency)
    {
        (void)lvl; (void)line; (void)now; (void)extra_latency;
        return false;
    }

    virtual void
    cacheEvict(CacheLevel lvl, Addr line, bool dirty, Cycle now)
    {
        (void)lvl; (void)line; (void)dirty; (void)now;
    }

    virtual void
    cacheRefill(CacheLevel lvl, Addr line, AccessKind cause, Cycle now)
    {
        (void)lvl; (void)line; (void)cause; (void)now;
    }

    /** Opt in to receive refilled line contents (CDP scans them).
     *  Sampled once when the client is bound: the answer must be a
     *  constant property of the mechanism, not run-time state. */
    virtual bool wantsLineContent(CacheLevel lvl) const
    {
        (void)lvl;
        return false;
    }

    virtual void
    lineContent(CacheLevel lvl, Addr line, const std::vector<Word> &words,
                AccessKind cause, Cycle now)
    {
        (void)lvl; (void)line; (void)words; (void)cause; (void)now;
    }
};

} // namespace microlib

#endif // MICROLIB_MEM_HIERARCHY_CLIENT_HH
