/**
 * @file
 * Constant-latency memory: the SimpleScalar model.
 *
 * Many of the articles the paper reproduces use SimpleScalar's flat
 * 70-cycle memory; Figure 8 contrasts it with the SDRAM model. This
 * device returns after a fixed latency with unlimited bandwidth and
 * no queueing — exactly the idealization under study.
 */

#ifndef MICROLIB_MEM_CONST_MEMORY_HH
#define MICROLIB_MEM_CONST_MEMORY_HH

#include <string>

#include "mem/request.hh"
#include "sim/stats.hh"

namespace microlib
{

/** Flat-latency, infinite-bandwidth memory. */
class ConstMemory : public MemDevice
{
  public:
    explicit ConstMemory(Cycle latency, std::string name = "constmem")
        : _latency(latency), _name(std::move(name))
    {}

    Cycle
    access(const MemRequest &req) override
    {
        const bool is_write = req.kind == AccessKind::DemandWrite ||
                              req.kind == AccessKind::Writeback;
        if (is_write) {
            ++writes;
            return req.when; // posted, free
        }
        ++reads;
        return req.when + _latency;
    }

    const char *deviceName() const override { return _name.c_str(); }

    void
    registerStats(StatSet &stats) const
    {
        stats.registerCounter(_name + ".reads", &reads);
        stats.registerCounter(_name + ".writes", &writes);
    }

    Cycle latency() const { return _latency; }

    Counter reads;
    Counter writes;

  private:
    Cycle _latency;
    std::string _name;
};

} // namespace microlib

#endif // MICROLIB_MEM_CONST_MEMORY_HH
